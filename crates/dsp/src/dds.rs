//! Direct digital synthesis — the signal source of the experimental setup.
//!
//! The paper's testbed uses three synchronised DDS modules (Fig. 4) driven by
//! the BuTiS campus clock; the reference DDS "generates a sine wave that
//! follows the revolution frequency set values in an undisturbed way"
//! (Section IV-B). This model is a classic phase-accumulator + sine-LUT DDS
//! with run-time frequency/phase control and synchronised reset.

use crate::fixed::PhaseAccumulator;

/// A direct digital synthesiser producing one sample per clock tick.
#[derive(Debug, Clone)]
pub struct Dds {
    accumulator: PhaseAccumulator,
    lut: Box<[f64]>,
    lut_bits: u32,
    amplitude: f64,
    f_clk: f64,
    /// Output mute (injected fault): the accumulator keeps running — as a
    /// real DDS with a failed output stage would — but the analogue output
    /// is zero.
    dropout: bool,
}

impl Dds {
    /// New DDS with a 32-bit phase accumulator and a `2^lut_bits`-entry sine
    /// table, clocked at `f_clk` Hz.
    pub fn new(f_clk: f64, lut_bits: u32) -> Self {
        assert!((4..=20).contains(&lut_bits), "LUT size out of range");
        let n = 1usize << lut_bits;
        let lut: Box<[f64]> = (0..n)
            .map(|i| (std::f64::consts::TAU * i as f64 / n as f64).sin())
            .collect();
        Self {
            accumulator: PhaseAccumulator::new(32),
            lut,
            lut_bits,
            amplitude: 1.0,
            f_clk,
            dropout: false,
        }
    }

    /// Standard instance for the paper's setup: 250 MHz clock, 4096-entry
    /// table.
    pub fn standard(f_clk: f64) -> Self {
        Self::new(f_clk, 12)
    }

    /// Set the output frequency in Hz (set-value interface).
    pub fn set_frequency(&mut self, freq: f64) {
        self.accumulator.set_frequency(freq, self.f_clk);
    }

    /// Actual synthesised frequency after tuning-word rounding.
    pub fn actual_frequency(&self) -> f64 {
        self.accumulator.actual_frequency(self.f_clk)
    }

    /// Set the peak output amplitude (volts).
    pub fn set_amplitude(&mut self, amplitude: f64) {
        assert!(amplitude >= 0.0);
        self.amplitude = amplitude;
    }

    /// Jump the output phase by `deg` degrees (the AWG/CEL phase-jump path
    /// of the evaluation acts here).
    pub fn jump_phase_deg(&mut self, deg: f64) {
        self.accumulator.add_phase_turns(deg / 360.0);
    }

    /// Synchronised phase reset (the "mini control system" resetting all
    /// DDS modules simultaneously, Section V).
    pub fn sync_reset(&mut self) {
        self.accumulator.reset();
    }

    /// Current phase in turns [0, 1) without advancing.
    pub fn phase_turns(&self) -> f64 {
        self.accumulator.acc as f64 / 2.0_f64.powi(32)
    }

    /// Inject or clear an output dropout. While set, [`Self::tick`] returns
    /// 0 V but the phase accumulator keeps advancing, so clearing the fault
    /// resumes the waveform phase-continuously.
    pub fn set_dropout(&mut self, dropout: bool) {
        self.dropout = dropout;
    }

    /// Whether an output dropout is currently injected.
    pub fn dropout(&self) -> bool {
        self.dropout
    }

    /// Produce the next sample (volts) and advance one clock.
    #[inline]
    pub fn tick(&mut self) -> f64 {
        if self.dropout {
            self.accumulator.tick();
            return 0.0;
        }
        let phase = self.accumulator.tick();
        let idx_f = phase * (1u64 << self.lut_bits) as f64;
        let idx = idx_f as usize & ((1usize << self.lut_bits) - 1);
        // Linear interpolation between adjacent LUT entries keeps spurs far
        // below the 14-bit ADC floor.
        let next = (idx + 1) & ((1usize << self.lut_bits) - 1);
        let frac = idx_f - idx_f.floor();
        self.amplitude * (self.lut[idx] * (1.0 - frac) + self.lut[next] * frac)
    }

    /// Sample clock frequency, Hz.
    pub fn f_clk(&self) -> f64 {
        self.f_clk
    }

    /// Snapshot the dynamic state (accumulator position + tuning word,
    /// amplitude, dropout flag). The sine LUT is pure configuration and is
    /// rebuilt, not captured.
    pub fn state(&self) -> DdsState {
        DdsState {
            acc: self.accumulator.acc,
            increment: self.accumulator.increment,
            amplitude: self.amplitude,
            dropout: self.dropout,
        }
    }

    /// Restore a state captured by [`Self::state`].
    pub fn restore(&mut self, state: &DdsState) {
        self.accumulator.acc = state.acc;
        self.accumulator.increment = state.increment;
        self.amplitude = state.amplitude;
        self.dropout = state.dropout;
    }
}

/// Checkpointable state of a [`Dds`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdsState {
    /// Phase accumulator value.
    pub acc: u64,
    /// Tuning word (per-tick accumulator increment).
    pub increment: u64,
    /// Peak output amplitude, volts.
    pub amplitude: f64,
    /// Output-dropout fault flag.
    pub dropout: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dds_produces_requested_frequency() {
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(800e3);
        // Count positive zero crossings over 1 ms = 800 periods.
        let samples = 250_000;
        let mut crossings = 0;
        let mut last = dds.tick();
        for _ in 0..samples {
            let s = dds.tick();
            if last < 0.0 && s >= 0.0 {
                crossings += 1;
            }
            last = s;
        }
        assert!(
            (crossings as i64 - 800).abs() <= 1,
            "crossings = {crossings}"
        );
    }

    #[test]
    fn amplitude_scales_output() {
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(1e6);
        dds.set_amplitude(0.5);
        let max = (0..1000).map(|_| dds.tick()).fold(f64::MIN, f64::max);
        assert!((max - 0.5).abs() < 0.01);
    }

    #[test]
    fn sine_purity() {
        // RMS of a sine is A/sqrt(2); LUT interpolation keeps the error tiny.
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(2.5e6); // 100 samples per period
        let n = 100_000;
        let sum_sq: f64 = (0..n).map(|_| dds.tick().powi(2)).sum();
        let rms = (sum_sq / n as f64).sqrt();
        assert!((rms - 1.0 / 2.0_f64.sqrt()).abs() < 1e-3, "rms = {rms}");
    }

    #[test]
    fn phase_jump_shifts_waveform() {
        let mut a = Dds::standard(250e6);
        let mut b = Dds::standard(250e6);
        a.set_frequency(1e6);
        b.set_frequency(1e6);
        b.jump_phase_deg(90.0);
        // After a 90° jump, b leads a by a quarter period: b(t) = sin(x+π/2)=cos(x).
        let sa = a.tick();
        let sb = b.tick();
        assert!(sa.abs() < 1e-6, "a starts at sin(0)=0");
        assert!((sb - 1.0).abs() < 1e-6, "b starts at cos(0)=1");
    }

    #[test]
    fn sync_reset_aligns_two_modules() {
        let mut a = Dds::standard(250e6);
        let mut b = Dds::standard(250e6);
        // Use frequencies with an integer number of samples per period so
        // the check is exact up to tuning-word rounding.
        a.set_frequency(1e6);
        b.set_frequency(4e6);
        // Let them free-run out of alignment, then reset both.
        for _ in 0..12345 {
            a.tick();
            b.tick();
        }
        a.sync_reset();
        b.sync_reset();
        assert_eq!(a.phase_turns(), 0.0);
        assert_eq!(b.phase_turns(), 0.0);
        // Harmonic relationship: after one reference period both are at a
        // positive zero crossing again (h = 4).
        for _ in 0..250 {
            a.tick();
            b.tick();
        }
        let ap = a.phase_turns();
        assert!(
            !(1e-5..=1.0 - 1e-5).contains(&ap),
            "reference DDS phase = {ap}"
        );
        let bp = b.phase_turns();
        assert!(!(1e-4..=1.0 - 1e-4).contains(&bp), "gap DDS phase = {bp}");
    }

    #[test]
    fn negative_phase_jump() {
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(1e6);
        dds.jump_phase_deg(-90.0);
        let s = dds.tick();
        assert!((s + 1.0).abs() < 1e-6, "sin(-90°) = -1, got {s}");
    }

    #[test]
    fn dropout_mutes_but_keeps_phase() {
        let mut with_fault = Dds::standard(250e6);
        let mut clean = Dds::standard(250e6);
        with_fault.set_frequency(1e6);
        clean.set_frequency(1e6);
        // Mute for 100 samples: output is zero, accumulator still runs.
        with_fault.set_dropout(true);
        for _ in 0..100 {
            assert_eq!(with_fault.tick(), 0.0);
            clean.tick();
        }
        with_fault.set_dropout(false);
        // Phase-continuous resume: both modules agree exactly.
        for _ in 0..100 {
            assert_eq!(with_fault.tick(), clean.tick());
        }
    }

    #[test]
    fn tuning_word_rounding_reported() {
        let mut dds = Dds::standard(250e6);
        dds.set_frequency(800e3);
        assert!((dds.actual_frequency() - 800e3).abs() < 0.06);
    }
}
