//! The dual-port capture ring buffers of the FPGA framework (Section III-B).
//!
//! One buffer per input signal, written at the full 250 MHz sample rate.
//! Capacity is 2¹³ = 8192 samples — enough for two full reference periods at
//! the lowest supported revolution frequency (100 kHz → 2500 samples per
//! period), so both positive and negative Δt lookups stay in range. A second
//! read port lets the CGRA fetch any held sample each cycle without stalling
//! capture.

/// Dual-port sample capture buffer.
///
/// Indexing convention: `read_back(0)` is the most recently written sample,
/// `read_back(1)` the one before, etc. The simulator addresses samples
/// relative to the last positive zero crossing, which the zero-crossing
/// detector reports as such a back-offset.
#[derive(Debug, Clone)]
pub struct CaptureRingBuffer {
    data: Box<[f64]>,
    /// Next write position.
    head: usize,
    /// Total samples ever written.
    written: u64,
}

/// The paper's buffer depth: 2^13 samples.
pub const PAPER_DEPTH: usize = 8192;

impl CaptureRingBuffer {
    /// New buffer of `depth` samples (must be a power of two, like the
    /// hardware address space).
    pub fn new(depth: usize) -> Self {
        assert!(depth.is_power_of_two(), "depth must be a power of two");
        Self {
            data: vec![0.0; depth].into_boxed_slice(),
            head: 0,
            written: 0,
        }
    }

    /// The paper's 8192-sample configuration.
    pub fn paper_sized() -> Self {
        Self::new(PAPER_DEPTH)
    }

    /// Write one sample (port A — the capture port).
    #[inline]
    pub fn push(&mut self, sample: f64) {
        self.data[self.head] = sample;
        self.head = (self.head + 1) & (self.data.len() - 1);
        self.written += 1;
    }

    /// Read the sample written `back` positions ago (port B — the simulator
    /// port). `back = 0` is the latest sample. Returns `None` if that sample
    /// has not been written yet or has been overwritten (out of capacity).
    #[inline]
    pub fn read_back(&self, back: usize) -> Option<f64> {
        if back as u64 >= self.written || back >= self.data.len() {
            return None;
        }
        let idx = (self.head + self.data.len() - 1 - back) & (self.data.len() - 1);
        Some(self.data[idx])
    }

    /// Like [`Self::read_back`] but with a fractional offset: performs the
    /// two reads + linear interpolation of Section IV-B. `back` may be
    /// fractional; interpolates between `floor(back)` and `floor(back)+1`
    /// samples ago.
    #[inline]
    pub fn read_back_interpolated(&self, back: f64) -> Option<f64> {
        if back < 0.0 {
            return None;
        }
        let i = back.floor() as usize;
        let frac = back - back.floor();
        let a = self.read_back(i)?;
        if frac == 0.0 {
            return Some(a);
        }
        let b = self.read_back(i + 1)?;
        // `a` is newer than `b`; "back + frac" moves toward the older sample.
        Some(a * (1.0 - frac) + b * frac)
    }

    /// Buffer capacity in samples.
    pub fn depth(&self) -> usize {
        self.data.len()
    }

    /// Total samples written since construction.
    pub fn samples_written(&self) -> u64 {
        self.written
    }

    /// Valid samples currently held: `samples_written` until the buffer
    /// fills, then the capacity. Telemetry layers sample this as the
    /// occupancy gauge.
    pub fn occupancy(&self) -> usize {
        self.written.min(self.data.len() as u64) as usize
    }

    /// Whether the buffer can hold two full periods of `period_samples`.
    /// The paper sizes buffers so this holds for f_rev ≥ 100 kHz.
    pub fn holds_two_periods(&self, period_samples: usize) -> bool {
        2 * period_samples <= self.depth()
    }

    /// Snapshot the complete buffer state for checkpointing.
    pub fn state(&self) -> RingBufferState {
        RingBufferState {
            data: self.data.to_vec(),
            head: self.head,
            written: self.written,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the snapshot's depth does not match this buffer's depth or its
    /// cursor is out of range — a restore must never manufacture an
    /// inconsistent buffer.
    pub fn restore(&mut self, state: &RingBufferState) -> bool {
        if state.data.len() != self.data.len() || state.head >= self.data.len() {
            return false;
        }
        self.data.copy_from_slice(&state.data);
        self.head = state.head;
        self.written = state.written;
        true
    }
}

/// Checkpointable state of a [`CaptureRingBuffer`].
#[derive(Debug, Clone, PartialEq)]
pub struct RingBufferState {
    /// Raw sample memory, oldest-to-newest in physical order.
    pub data: Vec<f64>,
    /// Next write position.
    pub head: usize,
    /// Total samples ever written.
    pub written: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizing_invariant() {
        // 100 kHz at 250 MS/s → 2500 samples/period; two periods fit in 8192.
        let buf = CaptureRingBuffer::paper_sized();
        assert_eq!(buf.depth(), 8192);
        assert!(buf.holds_two_periods(2500));
        // But not at 50 kHz.
        assert!(!buf.holds_two_periods(5000));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = CaptureRingBuffer::new(1000);
    }

    #[test]
    fn read_back_returns_recent_samples() {
        let mut buf = CaptureRingBuffer::new(8);
        for i in 0..5 {
            buf.push(i as f64);
        }
        assert_eq!(buf.read_back(0), Some(4.0));
        assert_eq!(buf.read_back(4), Some(0.0));
        assert_eq!(buf.read_back(5), None, "never written");
    }

    #[test]
    fn wraparound_overwrites_oldest() {
        let mut buf = CaptureRingBuffer::new(4);
        for i in 0..6 {
            buf.push(i as f64);
        }
        assert_eq!(buf.read_back(0), Some(5.0));
        assert_eq!(buf.read_back(3), Some(2.0));
        assert_eq!(buf.read_back(4), None, "out of capacity");
    }

    #[test]
    fn capture_continues_while_reading() {
        // Dual-port semantics: reads never disturb the write cursor.
        let mut buf = CaptureRingBuffer::new(16);
        for i in 0..10 {
            buf.push(i as f64);
            let _ = buf.read_back(0);
            let _ = buf.read_back(3);
        }
        assert_eq!(buf.samples_written(), 10);
        assert_eq!(buf.read_back(0), Some(9.0));
    }

    #[test]
    fn interpolated_read_between_samples() {
        let mut buf = CaptureRingBuffer::new(8);
        buf.push(10.0); // back=1 after next push
        buf.push(20.0); // back=0
                        // back=0.25: 25% of the way from newest (20) toward older (10) = 17.5.
        let v = buf.read_back_interpolated(0.25).unwrap();
        assert!((v - 17.5).abs() < 1e-12);
    }

    #[test]
    fn interpolated_read_on_integer_offset_needs_one_sample() {
        let mut buf = CaptureRingBuffer::new(8);
        buf.push(42.0);
        assert_eq!(buf.read_back_interpolated(0.0), Some(42.0));
        assert_eq!(buf.read_back_interpolated(0.5), None, "needs 2 samples");
    }

    #[test]
    fn interpolation_reconstructs_slow_sine() {
        // A 1 MHz sine sampled at 250 MS/s: interpolation error well below
        // 1e-3 of full scale.
        let mut buf = CaptureRingBuffer::paper_sized();
        let f = 1e6;
        let fs = 250e6;
        let n = 4096;
        for i in 0..n {
            buf.push((std::f64::consts::TAU * f * i as f64 / fs).sin());
        }
        // True value 2.5 samples back from sample n-1:
        let t_true = (n - 1) as f64 - 2.5;
        let expect = (std::f64::consts::TAU * f * t_true / fs).sin();
        let got = buf.read_back_interpolated(2.5).unwrap();
        assert!((got - expect).abs() < 1e-4, "got {got}, expect {expect}");
    }

    #[test]
    fn negative_back_rejected() {
        let mut buf = CaptureRingBuffer::new(8);
        buf.push(1.0);
        assert_eq!(buf.read_back_interpolated(-0.5), None);
    }
}
