//! Spectral estimation for scoring traces.
//!
//! The evaluation quotes the synchrotron frequency measured from the phase
//! traces (1.2 kHz in the MDE, 1.28 kHz in the simulator). This module
//! provides a Goertzel single-bin estimator, a coarse DFT magnitude scan,
//! and a peak finder used by the Fig. 5 score code and ablations.

/// Goertzel algorithm: amplitude and phase of one frequency bin.
///
/// `f_norm` is the analysis frequency normalised to the sample rate.
/// Returns `(amplitude, phase_rad)` where amplitude is the peak amplitude of
/// a matching sine (2·|X|/N).
pub fn goertzel(samples: &[f64], f_norm: f64) -> (f64, f64) {
    assert!(!samples.is_empty());
    assert!((0.0..=0.5).contains(&f_norm));
    let w = std::f64::consts::TAU * f_norm;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0_f64, 0.0_f64);
    for &x in samples {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let re = s1 - s2 * w.cos();
    let im = s2 * w.sin();
    let n = samples.len() as f64;
    // The recursion leaves a residual e^{-jw} rotation relative to an
    // n = 0 cosine reference; compensate so that a pure cos(w·n) reads
    // phase 0 when the window spans an integer number of periods.
    let phase = (im.atan2(re) + w).rem_euclid(std::f64::consts::TAU);
    let phase = if phase > std::f64::consts::PI {
        phase - std::f64::consts::TAU
    } else {
        phase
    };
    ((re * re + im * im).sqrt() * 2.0 / n, phase)
}

/// Magnitude spectrum on a uniform frequency grid `[f_lo, f_hi]` with
/// `bins` points (normalised frequencies). Brute-force DFT — intended for
/// scoring, not real-time use.
pub fn magnitude_scan(samples: &[f64], f_lo: f64, f_hi: f64, bins: usize) -> Vec<(f64, f64)> {
    assert!(bins >= 2);
    assert!(f_lo < f_hi && f_lo >= 0.0 && f_hi <= 0.5);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let detrended: Vec<f64> = samples.iter().map(|x| x - mean).collect();
    (0..bins)
        .map(|k| {
            let f = f_lo + (f_hi - f_lo) * k as f64 / (bins - 1) as f64;
            let (a, _) = goertzel(&detrended, f);
            (f, a)
        })
        .collect()
}

/// Find the dominant peak of a trace in `[f_lo, f_hi]` (normalised), with
/// parabolic refinement. Returns `(f_norm, amplitude)`.
pub fn dominant_frequency(samples: &[f64], f_lo: f64, f_hi: f64) -> (f64, f64) {
    let bins = 1024;
    let scan = magnitude_scan(samples, f_lo, f_hi, bins);
    let (k, &(f_pk, a_pk)) = scan
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
        .unwrap();
    if k == 0 || k == bins - 1 {
        return (f_pk, a_pk);
    }
    let (a0, a1, a2) = (scan[k - 1].1, scan[k].1, scan[k + 1].1);
    let denom = a0 - 2.0 * a1 + a2;
    let delta = if denom.abs() > 1e-30 {
        (0.5 * (a0 - a2) / denom).clamp(-0.5, 0.5)
    } else {
        0.0
    };
    let df = (f_hi - f_lo) / (bins - 1) as f64;
    (f_pk + delta * df, a1)
}

/// Convert a normalised frequency to Hz given the sample rate.
pub fn to_hz(f_norm: f64, sample_rate: f64) -> f64 {
    f_norm * sample_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, amp: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (std::f64::consts::TAU * f * i as f64).sin())
            .collect()
    }

    #[test]
    fn goertzel_measures_amplitude() {
        let s = tone(0.1, 2.5, 1000);
        let (a, _) = goertzel(&s, 0.1);
        assert!((a - 2.5).abs() < 0.01, "a = {a}");
    }

    #[test]
    fn goertzel_rejects_off_bin() {
        let s = tone(0.1, 1.0, 10_000);
        let (a, _) = goertzel(&s, 0.3);
        assert!(a < 0.01, "a = {a}");
    }

    #[test]
    fn goertzel_phase_of_cosine() {
        let n = 1000;
        let s: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * 0.05 * i as f64).cos())
            .collect();
        let (_, ph) = goertzel(&s, 0.05);
        // Phase convention: 0 for cosine.
        assert!(ph.abs() < 0.05, "phase = {ph}");
    }

    #[test]
    fn dominant_frequency_found() {
        let s = tone(0.0123, 1.0, 8192);
        let (f, a) = dominant_frequency(&s, 0.001, 0.05);
        assert!((f - 0.0123).abs() < 1e-4, "f = {f}");
        assert!((a - 1.0).abs() < 0.05);
    }

    #[test]
    fn dominant_frequency_with_dc_offset() {
        let mut s = tone(0.02, 0.5, 8192);
        for v in &mut s {
            *v += 100.0;
        }
        let (f, _) = dominant_frequency(&s, 0.005, 0.05);
        assert!((f - 0.02).abs() < 1e-4, "detrending works, f = {f}");
    }

    #[test]
    fn to_hz_conversion() {
        assert_eq!(to_hz(0.1, 1000.0), 100.0);
    }

    #[test]
    fn fig5_scale_scenario() {
        // Phase trace sampled at the revolution rate (800 kHz), oscillating
        // at 1.28 kHz: f_norm = 0.0016.
        let f_norm = 1.28e3 / 800e3;
        let s = tone(f_norm, 16.0, 100_000);
        let (f, a) = dominant_frequency(&s, 0.0002, 0.01);
        assert!((to_hz(f, 800e3) - 1.28e3).abs() < 10.0);
        assert!((a - 16.0).abs() < 0.5);
    }
}
