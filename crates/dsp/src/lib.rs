//! # cil-dsp — signal-processing substrate
//!
//! Software models of every piece of "electronics" the paper's testbed is
//! built from (Sections III and V): direct digital synthesis, the 14-bit ADC
//! / 16-bit DAC of the FMC151 card, the 2¹³-sample dual-port capture ring
//! buffers, the zero-crossing and period-length detectors, the Gauss pulse
//! generator, linear sample interpolation, FIR/IIR filters for the beam-phase
//! controller, the DSP phase-difference detector, and spectral estimation for
//! scoring traces.
//!
//! Everything here is sample-domain and allocation-free on the hot path:
//! each model is a small state machine advanced one sample (or one query) at
//! a time, exactly like the synchronous logic it stands in for.

pub mod cic;
pub mod converter;
pub mod dds;
pub mod fir;
pub mod fixed;
pub mod gauss;
pub mod iir;
pub mod interp;
pub mod iq;
pub mod period;
pub mod phase_detector;
pub mod ring_buffer;
pub mod spectrum;
pub mod zero_crossing;

pub use converter::{AdcModel, DacModel};
pub use dds::Dds;
pub use gauss::GaussPulseGenerator;
pub use period::PeriodLengthDetector;
pub use ring_buffer::CaptureRingBuffer;
pub use zero_crossing::ZeroCrossingDetector;
