//! IQ-demodulation phase measurement.
//!
//! The GSI DSP system of ref. [8] measures bunch phase by quadrature
//! demodulation at the RF harmonic rather than pulse-centroid timing: the
//! input is multiplied by cos/sin local oscillators at h·f_ref, lowpassed,
//! and the phase is `atan2(Q, I)`. This resolves phase continuously (no
//! 4 ns trigger grid) and tracks *any* periodic beam signal, which is why
//! the real instrument prefers it. Provided here as the alternative
//! instrument for the detector-comparison ablation.

use crate::iir::LeakyIntegrator;

/// Streaming IQ demodulator at a fixed analysis frequency.
#[derive(Debug, Clone)]
pub struct IqDemodulator {
    /// Analysis frequency normalised to the sample rate.
    f_norm: f64,
    phase: f64,
    lp_i: LeakyIntegrator,
    lp_q: LeakyIntegrator,
    samples: u64,
    settle: u64,
}

impl IqDemodulator {
    /// New demodulator at `f_hz` with sample rate `fs_hz`; `bandwidth_hz`
    /// sets the lowpass (and thus the measurement response time ≈
    /// 1/(2π·BW)).
    pub fn new(f_hz: f64, fs_hz: f64, bandwidth_hz: f64) -> Self {
        assert!(
            f_hz > 0.0 && f_hz < fs_hz / 2.0,
            "analysis frequency out of band"
        );
        assert!(
            bandwidth_hz > 0.0 && bandwidth_hz < f_hz,
            "bandwidth must sit below f"
        );
        // One-pole lowpass: r = 1 - 2π·BW/fs.
        let r = (1.0 - std::f64::consts::TAU * bandwidth_hz / fs_hz).clamp(0.0, 0.999_999);
        let settle = (fs_hz / bandwidth_hz * 3.0) as u64;
        Self {
            f_norm: f_hz / fs_hz,
            phase: 0.0,
            lp_i: LeakyIntegrator::new(r),
            lp_q: LeakyIntegrator::new(r),
            samples: 0,
            settle,
        }
    }

    /// Feed one sample; returns the current phase estimate in degrees once
    /// the lowpass has settled (`None` during settling).
    #[inline]
    pub fn push(&mut self, x: f64) -> Option<f64> {
        let (s, c) = self.phase.sin_cos();
        self.phase += std::f64::consts::TAU * self.f_norm;
        if self.phase > std::f64::consts::TAU {
            self.phase -= std::f64::consts::TAU;
        }
        let i = self.lp_i.push(x * c);
        let q = self.lp_q.push(x * s);
        self.samples += 1;
        if self.samples < self.settle {
            return None;
        }
        // x = sin(ωt+φ): I = ½sin(φ), Q = ½cos(φ) → φ = atan2(I, Q).
        Some(i.atan2(q).to_degrees())
    }

    /// Magnitude of the demodulated component (amplitude/2 of a matching
    /// sine once settled).
    pub fn magnitude(&self) -> f64 {
        (self.lp_i.state().powi(2) + self.lp_q.state().powi(2)).sqrt()
    }

    /// True once the lowpass has settled.
    pub fn settled(&self) -> bool {
        self.samples >= self.settle
    }
}

/// Differential phase meter: demodulates two channels at the same frequency
/// and reports their phase difference — beam vs reference, immune to the
/// common LO phase.
#[derive(Debug, Clone)]
pub struct IqPhaseMeter {
    a: IqDemodulator,
    b: IqDemodulator,
}

impl IqPhaseMeter {
    /// New meter at `f_hz` (e.g. the gap harmonic) for sample rate `fs_hz`.
    pub fn new(f_hz: f64, fs_hz: f64, bandwidth_hz: f64) -> Self {
        Self {
            a: IqDemodulator::new(f_hz, fs_hz, bandwidth_hz),
            b: IqDemodulator::new(f_hz, fs_hz, bandwidth_hz),
        }
    }

    /// Feed one sample pair (channel A, channel B); returns
    /// `phase(A) − phase(B)` in degrees, wrapped to ±180°, once settled.
    #[inline]
    pub fn push(&mut self, a: f64, b: f64) -> Option<f64> {
        let pa = self.a.push(a);
        let pb = self.b.push(b);
        match (pa, pb) {
            (Some(x), Some(y)) => {
                let mut d = x - y;
                d -= (d / 360.0).round() * 360.0;
                Some(d)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, fs: f64, phase_deg: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs + phase_deg.to_radians()).sin())
            .collect()
    }

    #[test]
    fn measures_absolute_phase_shift() {
        let fs = 250e6;
        let f = 3.2e6;
        let run = |deg: f64| {
            let mut demod = IqDemodulator::new(f, fs, 50e3);
            let mut last = None;
            for x in tone(f, fs, deg, 60_000) {
                if let Some(p) = demod.push(x) {
                    last = Some(p);
                }
            }
            last.unwrap()
        };
        let d = run(25.0) - run(0.0);
        assert!((d - 25.0).abs() < 0.5, "delta = {d}");
    }

    #[test]
    fn magnitude_tracks_amplitude() {
        let fs = 250e6;
        let f = 3.2e6;
        let mut demod = IqDemodulator::new(f, fs, 100e3);
        for x in tone(f, fs, 0.0, 60_000) {
            demod.push(x);
        }
        // Mixer halves the amplitude: |IQ| = A/2.
        assert!(
            (demod.magnitude() - 0.5).abs() < 0.02,
            "{}",
            demod.magnitude()
        );
    }

    #[test]
    fn rejects_off_frequency_component() {
        let fs = 250e6;
        let mut demod = IqDemodulator::new(3.2e6, fs, 20e3);
        // 800 kHz tone only: demodulated magnitude near zero.
        for x in tone(800e3, fs, 0.0, 100_000) {
            demod.push(x);
        }
        assert!(demod.magnitude() < 0.01, "{}", demod.magnitude());
    }

    #[test]
    fn differential_meter_ignores_common_phase() {
        let fs = 250e6;
        let f = 3.2e6;
        let mut meter = IqPhaseMeter::new(f, fs, 50e3);
        let a = tone(f, fs, 40.0, 60_000);
        let b = tone(f, fs, 10.0, 60_000);
        let mut last = None;
        for (x, y) in a.into_iter().zip(b) {
            if let Some(d) = meter.push(x, y) {
                last = Some(d);
            }
        }
        let d = last.unwrap();
        assert!((d - 30.0).abs() < 0.5, "d = {d}");
    }

    #[test]
    fn wraps_difference_to_half_turn() {
        let fs = 250e6;
        let f = 1.6e6;
        let mut meter = IqPhaseMeter::new(f, fs, 50e3);
        let a = tone(f, fs, 170.0, 80_000);
        let b = tone(f, fs, -170.0, 80_000);
        let mut last = None;
        for (x, y) in a.into_iter().zip(b) {
            if let Some(d) = meter.push(x, y) {
                last = Some(d);
            }
        }
        // 170 - (-170) = 340 -> wrapped to -20.
        let d = last.unwrap();
        assert!((d + 20.0).abs() < 0.5, "d = {d}");
    }

    #[test]
    fn settling_gate_holds_output() {
        let mut demod = IqDemodulator::new(3.2e6, 250e6, 10e3);
        assert!(!demod.settled());
        assert_eq!(demod.push(1.0), None);
    }

    #[test]
    fn tracks_beam_pulse_train_phase() {
        // The real use: a Gaussian pulse train has a strong component at the
        // pulse-repetition harmonic; moving the pulses moves that phase.
        let fs = 250e6;
        let f_rf = 3.2e6;
        let period = fs / f_rf; // 78.125 samples
        let run = |offset: f64| {
            let mut meter = IqPhaseMeter::new(f_rf, fs, 30e3);
            let mut last = None;
            for i in 0..120_000 {
                let t = i as f64;
                let nearest = ((t - offset) / period).round() * period + offset;
                let beam = (-0.5 * ((t - nearest) / 4.0).powi(2)).exp();
                let reference = (std::f64::consts::TAU * f_rf * t / fs).sin();
                if let Some(d) = meter.push(beam, reference) {
                    last = Some(d);
                }
            }
            last.unwrap()
        };
        let delta = run(6.0) - run(2.0);
        // Later pulses lag in phase: delay t0 shifts the fundamental by
        // −ω·t0, so the difference is negative.
        let expected = -4.0 / period * 360.0; // 4 samples at the RF harmonic
        assert!(
            (delta - expected).abs() < 1.0,
            "delta {delta} vs {expected}"
        );
    }
}
