//! Analogue/digital converter models of the FMC151 daughter card
//! (Section III-A): two-channel 14-bit ADC and two-channel 16-bit DAC, both
//! at 250 MHz, with input/output amplitudes limited to 2 V peak-to-peak.
//!
//! The models capture the behaviourally relevant properties: quantisation,
//! full-scale clipping, optional additive noise and aperture jitter. The
//! resolution is a parameter so ablation A3 can sweep it.

use crate::fixed;
use rand::Rng;

/// An injectable converter fault — the hardware failure modes LLRF
/// commissioning fights: rail saturation, a stuck output word, a flaky
/// data-line bit. Applied to the produced code by [`AdcModel::apply_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdcFault {
    /// The input stage is driven to the rail: the code pins at full scale
    /// with the sign of the (otherwise converted) sample.
    Saturated,
    /// The converter output is stuck at a fixed code (e.g. a latched data
    /// bus).
    StuckCode(i32),
    /// A single data line toggles: XOR the given bit into every code.
    BitFlip(u32),
}

/// ADC model: samples a continuous-time signal (provided by the caller as a
/// function of time) into signed codes, or quantises already-discrete
/// samples.
#[derive(Debug, Clone)]
pub struct AdcModel {
    /// Resolution in bits (FMC151: 14).
    pub bits: u32,
    /// Full scale voltage, i.e. ±`full_scale` (FMC151 at 2 Vp-p: 1.0).
    pub full_scale: f64,
    /// RMS of additive input-referred noise, volts.
    pub noise_rms: f64,
    /// RMS aperture jitter, seconds (affects `sample_at` only).
    pub aperture_jitter_s: f64,
}

impl AdcModel {
    /// Ideal converter with the given resolution.
    pub fn ideal(bits: u32, full_scale: f64) -> Self {
        Self {
            bits,
            full_scale,
            noise_rms: 0.0,
            aperture_jitter_s: 0.0,
        }
    }

    /// The FMC151 ADC: 14 bits, ±1 V.
    pub fn fmc151() -> Self {
        Self::ideal(14, 1.0)
    }

    /// Quantise one voltage to a code (no noise path — deterministic).
    #[inline]
    pub fn quantize(&self, v: f64) -> i32 {
        fixed::quantize(v, self.full_scale, self.bits)
    }

    /// Convert a code back to the voltage the downstream logic works with.
    #[inline]
    pub fn code_to_volts(&self, code: i32) -> f64 {
        fixed::dequantize(code, self.full_scale, self.bits)
    }

    /// Quantise with the noise model applied (needs an RNG).
    #[inline]
    pub fn convert<R: Rng>(&self, v: f64, rng: &mut R) -> i32 {
        let noisy = if self.noise_rms > 0.0 {
            v + gauss_sample(rng) * self.noise_rms
        } else {
            v
        };
        self.quantize(noisy)
    }

    /// Sample a continuous signal `f(t)` at time `t` with aperture jitter.
    pub fn sample_at<R: Rng, F: Fn(f64) -> f64>(&self, f: F, t: f64, rng: &mut R) -> i32 {
        let t_eff = if self.aperture_jitter_s > 0.0 {
            t + gauss_sample(rng) * self.aperture_jitter_s
        } else {
            t
        };
        self.convert(f(t_eff), rng)
    }

    /// One least-significant bit in volts.
    pub fn lsb(&self) -> f64 {
        fixed::lsb(self.full_scale, self.bits)
    }

    /// Largest positive code this converter can produce.
    pub fn max_code(&self) -> i32 {
        (1i32 << (self.bits - 1)) - 1
    }

    /// Most negative code this converter can produce.
    pub fn min_code(&self) -> i32 {
        -(1i32 << (self.bits - 1))
    }

    /// Corrupt a converted code with an injected hardware fault. The result
    /// stays inside the code range (real hardware cannot emit out-of-range
    /// words either).
    #[inline]
    pub fn apply_fault(&self, code: i32, fault: AdcFault) -> i32 {
        match fault {
            AdcFault::Saturated => {
                if code < 0 {
                    self.min_code()
                } else {
                    self.max_code()
                }
            }
            AdcFault::StuckCode(c) => c.clamp(self.min_code(), self.max_code()),
            AdcFault::BitFlip(bit) => {
                let flipped = code ^ (1i32 << (bit % self.bits));
                flipped.clamp(self.min_code(), self.max_code())
            }
        }
    }
}

/// DAC model: signed codes to output voltage, with full-scale clipping.
#[derive(Debug, Clone)]
pub struct DacModel {
    /// Resolution in bits (FMC151: 16).
    pub bits: u32,
    /// Full scale voltage, i.e. ±`full_scale`.
    pub full_scale: f64,
}

impl DacModel {
    /// The FMC151 DAC: 16 bits, ±1 V.
    pub fn fmc151() -> Self {
        Self {
            bits: 16,
            full_scale: 1.0,
        }
    }

    /// Convert a code to the output voltage.
    #[inline]
    pub fn code_to_volts(&self, code: i32) -> f64 {
        let max = (1i64 << (self.bits - 1)) - 1;
        let min = -(1i64 << (self.bits - 1));
        fixed::dequantize(
            (i64::from(code)).clamp(min, max) as i32,
            self.full_scale,
            self.bits,
        )
    }

    /// Quantise a desired voltage to the nearest producible output voltage
    /// (code → volts roundtrip).
    #[inline]
    pub fn quantize_volts(&self, v: f64) -> f64 {
        self.code_to_volts(fixed::quantize(v, self.full_scale, self.bits))
    }
}

/// Box–Muller standard normal sample (keeps `rand_distr` out of the deps).
fn gauss_sample<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fmc151_resolutions() {
        assert_eq!(AdcModel::fmc151().bits, 14);
        assert_eq!(DacModel::fmc151().bits, 16);
    }

    #[test]
    fn adc_quantization_error_bounded_by_lsb() {
        let adc = AdcModel::fmc151();
        for i in 0..2000 {
            let v = (i as f64 / 1000.0 - 1.0) * 0.99;
            let err = (adc.code_to_volts(adc.quantize(v)) - v).abs();
            assert!(err <= adc.lsb(), "v = {v}");
        }
    }

    #[test]
    fn adc_clips_at_full_scale() {
        let adc = AdcModel::fmc151();
        assert_eq!(adc.quantize(5.0), 8191);
        assert_eq!(adc.quantize(-5.0), -8192);
    }

    #[test]
    fn dac_roundtrip_is_idempotent() {
        let dac = DacModel::fmc151();
        let v1 = dac.quantize_volts(0.123456789);
        let v2 = dac.quantize_volts(v1);
        assert_eq!(v1, v2, "re-quantising a producible voltage is identity");
    }

    #[test]
    fn noise_model_produces_requested_rms() {
        let adc = AdcModel {
            noise_rms: 0.01,
            ..AdcModel::fmc151()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let code = adc.convert(0.0, &mut rng);
            let v = adc.code_to_volts(code);
            sum_sq += v * v;
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!((rms - 0.01).abs() < 0.001, "rms = {rms}");
    }

    #[test]
    fn aperture_jitter_blurs_fast_edge() {
        // Sampling a 10 MHz sine at its zero crossing with 1 ns jitter gives
        // voltage spread ≈ 2π·10 MHz·1 ns ≈ 0.063 V RMS.
        let adc = AdcModel {
            aperture_jitter_s: 1e-9,
            ..AdcModel::fmc151()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let f = |t: f64| (std::f64::consts::TAU * 10e6 * t).sin();
        let n = 50_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let v = adc.code_to_volts(adc.sample_at(f, 0.0, &mut rng));
            sum_sq += v * v;
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!((rms - 0.0628).abs() < 0.005, "rms = {rms}");
    }

    #[test]
    fn saturation_fault_pins_to_rail() {
        let adc = AdcModel::fmc151();
        assert_eq!(adc.apply_fault(123, AdcFault::Saturated), 8191);
        assert_eq!(adc.apply_fault(-123, AdcFault::Saturated), -8192);
    }

    #[test]
    fn stuck_code_fault_is_constant_and_clamped() {
        let adc = AdcModel::fmc151();
        assert_eq!(adc.apply_fault(5, AdcFault::StuckCode(77)), 77);
        assert_eq!(adc.apply_fault(-900, AdcFault::StuckCode(77)), 77);
        assert_eq!(adc.apply_fault(0, AdcFault::StuckCode(1 << 20)), 8191);
    }

    #[test]
    fn bit_flip_fault_toggles_one_bit() {
        let adc = AdcModel::fmc151();
        assert_eq!(adc.apply_fault(0, AdcFault::BitFlip(3)), 8);
        assert_eq!(adc.apply_fault(8, AdcFault::BitFlip(3)), 0);
        // Bit index wraps at the resolution, so it always hits a data line.
        assert_eq!(
            adc.apply_fault(0, AdcFault::BitFlip(14)),
            adc.apply_fault(0, AdcFault::BitFlip(0))
        );
    }

    #[test]
    fn lower_resolution_larger_error() {
        let adc8 = AdcModel::ideal(8, 1.0);
        let adc14 = AdcModel::ideal(14, 1.0);
        let v = 0.34567;
        let e8 = (adc8.code_to_volts(adc8.quantize(v)) - v).abs();
        let e14 = (adc14.code_to_volts(adc14.quantize(v)) - v).abs();
        assert!(adc8.lsb() > adc14.lsb());
        assert!(e8 >= e14);
    }
}
