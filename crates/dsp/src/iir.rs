//! Small IIR building blocks.
//!
//! The beam-phase controller's "recursion factor = 0.99" (Section V) is the
//! pole of a first-order recursive section in the Klingbeil 2007 filter
//! structure. We provide the leaky integrator, a DC blocker, and a
//! comb-resonator section — the pieces `cil-core::control` assembles.

/// First-order leaky integrator: `y[n] = r·y[n−1] + (1−r)·x[n]`.
///
/// DC gain is exactly 1; `r` close to 1 gives a long memory. With r = 0.99
/// at the revolution rate this matches the paper's recursion factor.
#[derive(Debug, Clone, Copy)]
pub struct LeakyIntegrator {
    /// Recursion factor r ∈ [0, 1).
    pub r: f64,
    y: f64,
}

impl LeakyIntegrator {
    /// New integrator with recursion factor `r`.
    pub fn new(r: f64) -> Self {
        assert!((0.0..1.0).contains(&r), "r must be in [0, 1)");
        Self { r, y: 0.0 }
    }

    /// Process one sample.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        self.y = self.r * self.y + (1.0 - self.r) * x;
        self.y
    }

    /// Current output state.
    pub fn state(&self) -> f64 {
        self.y
    }

    /// Reset state to zero.
    pub fn reset(&mut self) {
        self.y = 0.0;
    }

    /// −3 dB cutoff in units of the sample rate: fc ≈ (1−r)/(2π) for r→1.
    pub fn cutoff(&self) -> f64 {
        (1.0 - self.r) / std::f64::consts::TAU
    }
}

/// DC blocker: `y[n] = x[n] − x[n−1] + r·y[n−1]`.
///
/// Removes slowly varying offsets (the constant phase offset the paper notes
/// is irrelevant) while passing the synchrotron-frequency band.
#[derive(Debug, Clone, Copy)]
pub struct DcBlocker {
    /// Pole radius r ∈ [0, 1): closer to 1 = narrower notch at DC.
    pub r: f64,
    x1: f64,
    y1: f64,
}

impl DcBlocker {
    /// New blocker with pole radius `r`.
    pub fn new(r: f64) -> Self {
        assert!((0.0..1.0).contains(&r), "r must be in [0, 1)");
        Self {
            r,
            x1: 0.0,
            y1: 0.0,
        }
    }

    /// Process one sample.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let y = x - self.x1 + self.r * self.y1;
        self.x1 = x;
        self.y1 = y;
        y
    }

    /// Reset state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.y1 = 0.0;
    }

    /// Filter memory `(x[n−1], y[n−1])` — the anti-windup rollback state
    /// the controller checkpoints.
    pub fn state(&self) -> (f64, f64) {
        (self.x1, self.y1)
    }

    /// Restore filter memory captured by [`Self::state`].
    pub fn restore(&mut self, x1: f64, y1: f64) {
        self.x1 = x1;
        self.y1 = y1;
    }
}

/// Comb resonator `y[n] = x[n] − x[n−N] + r·y[n−N]` — the periodic
/// pass/notch structure of the GSI beam-phase filter ([8]): notches at DC
/// and multiples of fs/N, passbands in between.
#[derive(Debug, Clone)]
pub struct CombResonator {
    /// Loop delay N in samples.
    pub delay: usize,
    /// Recursion factor r ∈ [0, 1).
    pub r: f64,
    x_hist: Vec<f64>,
    y_hist: Vec<f64>,
    cursor: usize,
}

impl CombResonator {
    /// New comb with delay `n` samples and recursion factor `r`.
    pub fn new(n: usize, r: f64) -> Self {
        assert!(n >= 1);
        assert!((0.0..1.0).contains(&r));
        Self {
            delay: n,
            r,
            x_hist: vec![0.0; n],
            y_hist: vec![0.0; n],
            cursor: 0,
        }
    }

    /// Process one sample.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        let xn = self.x_hist[self.cursor];
        let yn = self.y_hist[self.cursor];
        let y = x - xn + self.r * yn;
        self.x_hist[self.cursor] = x;
        self.y_hist[self.cursor] = y;
        self.cursor = (self.cursor + 1) % self.delay;
        y
    }

    /// Steady-state amplitude response at normalised frequency `f`.
    pub fn magnitude_at(&self, f: f64) -> f64 {
        // H(z) = (1 - z^-N) / (1 - r z^-N)
        let w = std::f64::consts::TAU * f * self.delay as f64;
        let num = ((1.0 - w.cos()).powi(2) + w.sin().powi(2)).sqrt();
        let den = ((1.0 - self.r * w.cos()).powi(2) + (self.r * w.sin()).powi(2)).sqrt();
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaky_integrator_converges_to_dc() {
        let mut li = LeakyIntegrator::new(0.99);
        let mut y = 0.0;
        for _ in 0..2000 {
            y = li.push(5.0);
        }
        assert!((y - 5.0).abs() < 1e-6, "y = {y}");
    }

    #[test]
    fn leaky_integrator_smooths_noise() {
        let mut li = LeakyIntegrator::new(0.99);
        let mut out = Vec::new();
        for i in 0..10_000 {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            out.push(li.push(x));
        }
        let tail_max = out[5000..].iter().fold(0.0_f64, |a, &b| a.max(b.abs()));
        assert!(
            tail_max < 0.02,
            "alternating input almost cancelled: {tail_max}"
        );
    }

    #[test]
    fn dc_blocker_removes_offset_passes_ac() {
        let mut db = DcBlocker::new(0.995);
        let mut out = Vec::new();
        for i in 0..20_000 {
            let x = 3.0 + (std::f64::consts::TAU * 0.05 * i as f64).sin();
            out.push(db.push(x));
        }
        let tail = &out[10_000..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let rms =
            (tail.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / tail.len() as f64).sqrt();
        assert!(mean.abs() < 1e-3, "DC removed: {mean}");
        assert!(
            (rms - 1.0 / 2.0_f64.sqrt()).abs() < 0.05,
            "AC passed: {rms}"
        );
    }

    #[test]
    fn comb_notches_dc_and_harmonics() {
        let comb = CombResonator::new(10, 0.9);
        assert!(comb.magnitude_at(0.0) < 1e-9);
        assert!(comb.magnitude_at(0.1) < 1e-9, "notch at fs/N");
        assert!(comb.magnitude_at(0.05) > 1.0, "peak between notches");
    }

    #[test]
    fn comb_streaming_matches_analytic() {
        let mut comb = CombResonator::new(8, 0.8);
        let f = 1.0 / 16.0; // halfway between notches
        let n = 4000;
        let mut out = Vec::new();
        for i in 0..n {
            out.push(comb.push((std::f64::consts::TAU * f * i as f64).sin()));
        }
        let tail = &out[n / 2..];
        let rms = (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt();
        let gain = rms * 2.0_f64.sqrt();
        let expect = comb.magnitude_at(f);
        assert!(
            (gain - expect).abs() / expect < 0.02,
            "gain {gain} vs {expect}"
        );
    }

    #[test]
    fn leaky_cutoff_formula() {
        let li = LeakyIntegrator::new(0.99);
        assert!((li.cutoff() - 0.01 / std::f64::consts::TAU).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn unstable_pole_rejected() {
        let _ = LeakyIntegrator::new(1.0);
    }
}
