//! FIR filters.
//!
//! The closed-loop beam-phase control system "uses a Finite Impulse Response
//! (FIR) filter" with parameters f_pass = 1.4 kHz, gain = −5 and recursion
//! factor 0.99 (Section V, citing Klingbeil 2007). This module provides
//! windowed-sinc designs (lowpass / highpass / bandpass), a moving-average
//! filter (the 5-sample display filter of Fig. 5a), and a streaming
//! convolution engine with O(1) per-sample work via a circular delay line.

/// A streaming FIR filter.
#[derive(Debug, Clone)]
pub struct FirFilter {
    taps: Vec<f64>,
    delay: Vec<f64>,
    cursor: usize,
}

impl FirFilter {
    /// Build from explicit taps.
    pub fn from_taps(taps: Vec<f64>) -> Self {
        assert!(!taps.is_empty(), "FIR needs at least one tap");
        let n = taps.len();
        Self {
            taps,
            delay: vec![0.0; n],
            cursor: 0,
        }
    }

    /// Moving-average filter of `width` samples (the Fig. 5a display filter
    /// uses width 5).
    pub fn moving_average(width: usize) -> Self {
        assert!(width >= 1);
        Self::from_taps(vec![1.0 / width as f64; width])
    }

    /// Windowed-sinc lowpass: cutoff `fc` (normalised to the sample rate,
    /// 0 < fc < 0.5), `taps` coefficients (odd preferred), Hamming window.
    pub fn lowpass(fc: f64, taps: usize) -> Self {
        assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
        assert!(taps >= 3);
        let m = (taps - 1) as f64;
        let mut h: Vec<f64> = (0..taps)
            .map(|i| {
                let x = i as f64 - m / 2.0;
                let sinc = if x == 0.0 {
                    2.0 * fc
                } else {
                    (std::f64::consts::TAU * fc * x).sin() / (std::f64::consts::PI * x)
                };
                let w = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / m).cos();
                sinc * w
            })
            .collect();
        // Normalise DC gain to exactly 1.
        let sum: f64 = h.iter().sum();
        for v in &mut h {
            *v /= sum;
        }
        Self::from_taps(h)
    }

    /// Windowed-sinc highpass by spectral inversion of a lowpass.
    pub fn highpass(fc: f64, taps: usize) -> Self {
        assert!(taps % 2 == 1, "highpass needs an odd tap count");
        let lp = Self::lowpass(fc, taps);
        let mut h: Vec<f64> = lp.taps.iter().map(|v| -v).collect();
        h[(taps - 1) / 2] += 1.0;
        Self::from_taps(h)
    }

    /// Bandpass as highpass(f_lo) ∗ lowpass(f_hi) cascade collapsed into a
    /// single impulse response.
    pub fn bandpass(f_lo: f64, f_hi: f64, taps: usize) -> Self {
        assert!(f_lo < f_hi, "band edges out of order");
        assert!(taps % 2 == 1);
        let hp = Self::highpass(f_lo, taps);
        let lp = Self::lowpass(f_hi, taps);
        // Convolve the two tap sets. The full-length response is kept:
        // trimming would break the exact DC null inherited from the
        // highpass stage.
        let full_len = 2 * taps - 1;
        let mut full = vec![0.0; full_len];
        for (i, a) in hp.taps.iter().enumerate() {
            for (j, b) in lp.taps.iter().enumerate() {
                full[i + j] += a * b;
            }
        }
        Self::from_taps(full)
    }

    /// Process one sample.
    #[inline]
    pub fn push(&mut self, x: f64) -> f64 {
        self.delay[self.cursor] = x;
        let n = self.taps.len();
        let mut acc = 0.0;
        let mut idx = self.cursor;
        for &t in &self.taps {
            acc += t * self.delay[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.cursor = (self.cursor + 1) % n;
        acc
    }

    /// Filter an entire slice (convenience for offline traces).
    pub fn filter(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.push(x)).collect()
    }

    /// Steady-state amplitude response at normalised frequency `f`
    /// (|H(e^{j2πf})|).
    pub fn magnitude_at(&self, f: f64) -> f64 {
        let (mut re, mut im) = (0.0, 0.0);
        for (k, &t) in self.taps.iter().enumerate() {
            let ph = std::f64::consts::TAU * f * k as f64;
            re += t * ph.cos();
            im -= t * ph.sin();
        }
        (re * re + im * im).sqrt()
    }

    /// Group delay in samples (linear-phase symmetric filters only).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Whether the filter has no taps (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Reset the delay line to zero.
    pub fn reset(&mut self) {
        self.delay.iter_mut().for_each(|v| *v = 0.0);
        self.cursor = 0;
    }

    /// Snapshot the delay-line state for checkpointing. The taps are
    /// configuration and are not captured.
    pub fn state(&self) -> FirState {
        FirState {
            delay: self.delay.clone(),
            cursor: self.cursor,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the snapshot's length does not match this filter's tap count.
    pub fn restore(&mut self, state: &FirState) -> bool {
        if state.delay.len() != self.delay.len() || state.cursor >= self.delay.len() {
            return false;
        }
        self.delay.copy_from_slice(&state.delay);
        self.cursor = state.cursor;
        true
    }
}

/// Checkpointable state of a [`FirFilter`] delay line.
#[derive(Debug, Clone, PartialEq)]
pub struct FirState {
    /// Circular delay line contents.
    pub delay: Vec<f64>,
    /// Write cursor.
    pub cursor: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64).sin())
            .collect()
    }

    fn steady_rms(filtered: &[f64]) -> f64 {
        let tail = &filtered[filtered.len() / 2..];
        (tail.iter().map(|v| v * v).sum::<f64>() / tail.len() as f64).sqrt()
    }

    #[test]
    fn moving_average_of_constant_is_identity() {
        let mut f = FirFilter::moving_average(5);
        let out = f.filter(&[3.0; 20]);
        assert!((out[19] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moving_average_smooths_alternating() {
        let mut f = FirFilter::moving_average(2);
        let x: Vec<f64> = (0..10)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = f.filter(&x);
        for &v in &out[2..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn lowpass_passes_dc_blocks_high() {
        let mut lp = FirFilter::lowpass(0.05, 101);
        assert!((lp.magnitude_at(0.0) - 1.0).abs() < 1e-9, "unity DC gain");
        assert!(lp.magnitude_at(0.25) < 1e-3, "stopband rejection");
        // Time-domain check.
        let out_low = steady_rms(&lp.filter(&tone(0.01, 2000)));
        lp.reset();
        let out_high = steady_rms(&lp.filter(&tone(0.3, 2000)));
        let sine_rms = 1.0 / 2.0_f64.sqrt();
        assert!((out_low - sine_rms).abs() < 0.02);
        assert!(out_high < 0.01);
    }

    #[test]
    fn highpass_blocks_dc() {
        let hp = FirFilter::highpass(0.1, 101);
        assert!(hp.magnitude_at(0.0) < 1e-9);
        assert!((hp.magnitude_at(0.3) - 1.0).abs() < 0.01);
    }

    #[test]
    fn bandpass_selects_band() {
        let bp = FirFilter::bandpass(0.05, 0.15, 201);
        assert!(bp.magnitude_at(0.0) < 1e-6, "DC blocked");
        assert!(
            (bp.magnitude_at(0.10) - 1.0).abs() < 0.05,
            "band centre passes"
        );
        assert!(bp.magnitude_at(0.35) < 1e-3, "high stopband");
    }

    #[test]
    fn reset_clears_state() {
        let mut f = FirFilter::moving_average(4);
        f.push(100.0);
        f.reset();
        assert_eq!(f.push(0.0), 0.0);
    }

    #[test]
    fn group_delay_of_symmetric_filter() {
        let f = FirFilter::lowpass(0.1, 21);
        assert_eq!(f.group_delay(), 10.0);
        // An impulse peaks at the group delay.
        let mut f = f;
        let mut out = Vec::new();
        out.push(f.push(1.0));
        for _ in 0..20 {
            out.push(f.push(0.0));
        }
        let imax = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(imax, 10);
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = FirFilter::from_taps(vec![]);
    }

    #[test]
    #[should_panic(expected = "band edges")]
    fn inverted_band_rejected() {
        let _ = FirFilter::bandpass(0.2, 0.1, 101);
    }
}
