//! Positive zero-crossing detector (Section III-B).
//!
//! Watches the reference-voltage sample stream and records the time (in
//! sample indices, with sub-sample linear refinement) of the last positive
//! zero crossing. The simulator uses that time as the position of the
//! reference particle in the stationary case.

/// Detector state machine; feed it every ADC sample.
#[derive(Debug, Clone, Default)]
pub struct ZeroCrossingDetector {
    last_sample: f64,
    sample_index: u64,
    /// Sample index of the most recent positive crossing (the sample *after*
    /// the sign change), if any.
    last_crossing: Option<u64>,
    /// Sub-sample position of the crossing in [0,1) before `last_crossing`.
    last_crossing_frac: f64,
    /// Hysteresis threshold: the signal must have been below `-threshold`
    /// since the previous crossing before a new one is accepted. Suppresses
    /// multiple triggers on a noisy slow crossing.
    threshold: f64,
    armed: bool,
    crossings_seen: u64,
}

impl ZeroCrossingDetector {
    /// New detector with a given noise-hysteresis threshold (volts).
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0);
        Self {
            threshold,
            armed: false,
            ..Default::default()
        }
    }

    /// Process one sample. Returns `Some(sample_time)` at the instant a
    /// positive crossing is detected, where `sample_time` is the fractional
    /// sample index of the crossing.
    #[inline]
    pub fn push(&mut self, sample: f64) -> Option<f64> {
        let idx = self.sample_index;
        self.sample_index += 1;
        let prev = self.last_sample;
        self.last_sample = sample;

        if sample < -self.threshold {
            self.armed = true;
        }
        if idx == 0 {
            return None;
        }
        if self.armed && prev < 0.0 && sample >= 0.0 {
            self.armed = false;
            // Linear sub-sample refinement between prev (at idx-1) and sample.
            let frac = if sample - prev > 0.0 {
                -prev / (sample - prev)
            } else {
                0.0
            };
            self.last_crossing = Some(idx);
            self.last_crossing_frac = frac;
            self.crossings_seen += 1;
            return Some((idx - 1) as f64 + frac);
        }
        None
    }

    /// Fractional sample time of the last positive crossing.
    pub fn last_crossing_time(&self) -> Option<f64> {
        self.last_crossing
            .map(|i| (i - 1) as f64 + self.last_crossing_frac)
    }

    /// How many samples ago the last positive crossing was (fractional);
    /// this is the address offset the ring-buffer lookups are based on.
    pub fn samples_since_crossing(&self) -> Option<f64> {
        self.last_crossing_time()
            .map(|t| self.sample_index as f64 - 1.0 - t)
    }

    /// Total crossings detected (the kernel waits for four before
    /// initialising, Section IV-B).
    pub fn crossings_seen(&self) -> u64 {
        self.crossings_seen
    }

    /// Snapshot the complete detector state for checkpointing. The
    /// hysteresis threshold is configuration and is not captured.
    pub fn state(&self) -> ZeroCrossingState {
        ZeroCrossingState {
            last_sample: self.last_sample,
            sample_index: self.sample_index,
            last_crossing: self.last_crossing,
            last_crossing_frac: self.last_crossing_frac,
            armed: self.armed,
            crossings_seen: self.crossings_seen,
        }
    }

    /// Restore a state captured by [`Self::state`].
    pub fn restore(&mut self, state: &ZeroCrossingState) {
        self.last_sample = state.last_sample;
        self.sample_index = state.sample_index;
        self.last_crossing = state.last_crossing;
        self.last_crossing_frac = state.last_crossing_frac;
        self.armed = state.armed;
        self.crossings_seen = state.crossings_seen;
    }
}

/// Checkpointable state of a [`ZeroCrossingDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroCrossingState {
    /// Previous sample fed to the detector.
    pub last_sample: f64,
    /// Running sample counter.
    pub sample_index: u64,
    /// Integer index of the most recent accepted crossing.
    pub last_crossing: Option<u64>,
    /// Sub-sample position of that crossing.
    pub last_crossing_frac: f64,
    /// Hysteresis arm flag.
    pub armed: bool,
    /// Total crossings detected.
    pub crossings_seen: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_sine(det: &mut ZeroCrossingDetector, f: f64, fs: f64, n: usize) -> Vec<f64> {
        let mut times = Vec::new();
        for i in 0..n {
            if let Some(t) = det.push((std::f64::consts::TAU * f * i as f64 / fs).sin()) {
                times.push(t);
            }
        }
        times
    }

    #[test]
    fn detects_crossings_of_clean_sine() {
        let mut det = ZeroCrossingDetector::new(0.01);
        let times = feed_sine(&mut det, 800e3, 250e6, 250_000); // 1 ms
                                                                // 800 periods in 1 ms; the first crossing at t=0 is not counted
                                                                // (needs a preceding negative excursion).
        assert!((times.len() as i64 - 799).abs() <= 1, "n = {}", times.len());
        assert_eq!(det.crossings_seen(), times.len() as u64);
    }

    #[test]
    fn crossing_times_are_one_period_apart() {
        let mut det = ZeroCrossingDetector::new(0.01);
        let times = feed_sine(&mut det, 800e3, 250e6, 250_000);
        let period = 250e6 / 800e3; // 312.5 samples
        for w in times.windows(2) {
            let dt = w[1] - w[0];
            assert!((dt - period).abs() < 0.01, "dt = {dt}");
        }
    }

    #[test]
    fn subsample_refinement_beats_integer_resolution() {
        // 800 kHz at 250 MS/s = 312.5 samples/period: crossings alternate
        // between .0 and .5 fractional positions; integer detection would
        // show ±0.5 sample jitter, refined detection ~none.
        let mut det = ZeroCrossingDetector::new(0.0);
        let times = feed_sine(&mut det, 800e3, 250e6, 125_000);
        let period = 312.5;
        // Compare each crossing to the ideal k*period grid.
        let t0 = times[0];
        for (k, &t) in times.iter().enumerate() {
            let err = (t - t0 - k as f64 * period).abs();
            assert!(err < 0.02, "crossing {k} error {err} samples");
        }
    }

    #[test]
    fn hysteresis_rejects_noise_retrigger() {
        let mut det = ZeroCrossingDetector::new(0.1);
        // Noise wiggling around zero must not trigger: +0.05/-0.05 repeatedly.
        let mut count = 0;
        for i in 0..1000 {
            let s = if i % 2 == 0 { 0.05 } else { -0.05 };
            if det.push(s).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 0, "sub-threshold noise must not trigger");
        // A real swing does trigger.
        det.push(-1.0);
        assert!(det.push(1.0).is_some());
    }

    #[test]
    fn samples_since_crossing_tracks_age() {
        let mut det = ZeroCrossingDetector::new(0.0);
        det.push(-1.0);
        det.push(1.0); // crossing at sample 0.5
        assert!((det.samples_since_crossing().unwrap() - 0.5).abs() < 1e-12);
        det.push(1.0);
        det.push(1.0);
        assert!((det.samples_since_crossing().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn no_crossing_reported_before_first() {
        let det = ZeroCrossingDetector::new(0.0);
        assert_eq!(det.last_crossing_time(), None);
        assert_eq!(det.samples_since_crossing(), None);
    }
}
