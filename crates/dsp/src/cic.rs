//! CIC (cascaded integrator–comb) decimation filters.
//!
//! The beam-phase controller runs at a decimated rate (Section V's DSP
//! chain); in FPGA practice the rate change is done with a CIC filter —
//! multiplier-free, so it fits in front of the context-limited CGRA. An
//! order-N CIC decimating by R is N integrators at the input rate, a ÷R
//! sampler, and N combs at the output rate; its DC gain is Rᴺ
//! (normalised away here).

/// An order-N CIC decimator with unit differential delay.
#[derive(Debug, Clone)]
pub struct CicDecimator {
    /// Decimation ratio R.
    pub ratio: u32,
    /// Filter order N (number of integrator/comb pairs).
    pub order: u32,
    integrators: Vec<f64>,
    combs: Vec<f64>,
    phase: u32,
    gain: f64,
}

impl CicDecimator {
    /// New decimator with ratio `r` and order `n`.
    pub fn new(r: u32, n: u32) -> Self {
        assert!(r >= 1, "decimation ratio must be positive");
        assert!((1..=8).contains(&n), "order out of the practical range");
        Self {
            ratio: r,
            order: n,
            integrators: vec![0.0; n as usize],
            combs: vec![0.0; n as usize],
            phase: 0,
            gain: (f64::from(r)).powi(n as i32),
        }
    }

    /// Feed one input-rate sample; returns an output-rate sample every
    /// `ratio` inputs.
    #[inline]
    pub fn push(&mut self, x: f64) -> Option<f64> {
        // Integrator cascade at the input rate.
        let mut acc = x;
        for i in &mut self.integrators {
            *i += acc;
            acc = *i;
        }
        self.phase += 1;
        if self.phase < self.ratio {
            return None;
        }
        self.phase = 0;
        // Comb cascade at the output rate.
        let mut y = acc;
        for c in &mut self.combs {
            let prev = *c;
            *c = y;
            y -= prev;
        }
        Some(y / self.gain)
    }

    /// Amplitude response at normalised input frequency `f` (0..0.5):
    /// `|sin(πfR)/(R·sin(πf))|^N`.
    pub fn magnitude_at(&self, f: f64) -> f64 {
        if f == 0.0 {
            return 1.0;
        }
        let r = f64::from(self.ratio);
        let num = (std::f64::consts::PI * f * r).sin();
        let den = r * (std::f64::consts::PI * f).sin();
        (num / den).abs().powi(self.order as i32)
    }

    /// Reset all state.
    pub fn reset(&mut self) {
        self.integrators.iter_mut().for_each(|v| *v = 0.0);
        self.combs.iter_mut().for_each(|v| *v = 0.0);
        self.phase = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_gain_is_unity() {
        let mut cic = CicDecimator::new(8, 3);
        let mut last = 0.0;
        for _ in 0..1000 {
            if let Some(y) = cic.push(2.5) {
                last = y;
            }
        }
        assert!((last - 2.5).abs() < 1e-9, "dc out {last}");
    }

    #[test]
    fn output_rate_is_input_over_ratio() {
        let mut cic = CicDecimator::new(5, 2);
        let outputs = (0..100).filter(|_| cic.push(1.0).is_some()).count();
        assert_eq!(outputs, 20);
    }

    #[test]
    fn order_one_equals_boxcar_average() {
        let mut cic = CicDecimator::new(4, 1);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut outs = Vec::new();
        for &x in &xs {
            if let Some(y) = cic.push(x) {
                outs.push(y);
            }
        }
        assert_eq!(outs.len(), 2);
        assert!((outs[0] - 2.5).abs() < 1e-12, "mean of 1..4");
        assert!((outs[1] - 6.5).abs() < 1e-12, "mean of 5..8");
    }

    #[test]
    fn nulls_at_multiples_of_output_rate() {
        let cic = CicDecimator::new(8, 3);
        for k in 1..4 {
            let f = f64::from(k) / 8.0;
            assert!(cic.magnitude_at(f) < 1e-12, "null at k/R");
        }
        assert!(cic.magnitude_at(0.01) > 0.9, "passband nearly flat");
    }

    #[test]
    fn alias_rejection_in_time_domain() {
        // A tone exactly at the first null (f = 1/R) must vanish.
        let mut cic = CicDecimator::new(10, 3);
        let mut outs = Vec::new();
        for i in 0..10_000 {
            let x = (std::f64::consts::TAU * 0.1 * i as f64).sin();
            if let Some(y) = cic.push(x) {
                outs.push(y);
            }
        }
        let tail_max = outs[20..].iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        assert!(tail_max < 1e-9, "nulled alias: {tail_max}");
    }

    #[test]
    fn higher_order_rejects_more_stopband() {
        let lo = CicDecimator::new(8, 1);
        let hi = CicDecimator::new(8, 4);
        let f = 0.09; // just off the first null
        assert!(hi.magnitude_at(f) < lo.magnitude_at(f) * 0.1);
    }

    #[test]
    fn reset_clears_state() {
        let mut cic = CicDecimator::new(4, 2);
        for _ in 0..7 {
            cic.push(100.0);
        }
        cic.reset();
        let mut first = None;
        for _ in 0..4 {
            if let Some(y) = cic.push(0.0) {
                first = Some(y);
            }
        }
        assert_eq!(first, Some(0.0));
    }
}
