//! Period-length detector (Section III-B / IV-B).
//!
//! Determines the frequency of the reference signal by measuring the number
//! of clock cycles between positive zero crossings, averaged over the past
//! four periods to reduce jitter ("the measured frequency is averaged over
//! the past four periods"). The width of the averaging window is a
//! parameter here so ablation A2 can sweep it.

use crate::zero_crossing::ZeroCrossingDetector;

/// Period-length detector with an N-period moving-average filter.
#[derive(Debug, Clone)]
pub struct PeriodLengthDetector {
    zcd: ZeroCrossingDetector,
    /// Most recent raw period measurements, in samples (fractional).
    history: Vec<f64>,
    /// Ring cursor into `history`.
    cursor: usize,
    /// Number of valid entries in `history`.
    filled: usize,
    last_crossing: Option<f64>,
}

impl PeriodLengthDetector {
    /// Detector averaging over `window` periods (the paper uses 4) with the
    /// given zero-crossing hysteresis threshold.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window >= 1, "window must be at least one period");
        Self {
            zcd: ZeroCrossingDetector::new(threshold),
            history: vec![0.0; window],
            cursor: 0,
            filled: 0,
            last_crossing: None,
        }
    }

    /// The paper's configuration: 4-period average.
    pub fn paper_default() -> Self {
        Self::new(4, 0.005)
    }

    /// Feed one reference-signal sample. Returns `Some(avg_period_samples)`
    /// whenever a new period measurement completes.
    #[inline]
    pub fn push(&mut self, sample: f64) -> Option<f64> {
        let t = self.zcd.push(sample)?;
        let result = if let Some(prev) = self.last_crossing {
            let period = t - prev;
            self.history[self.cursor] = period;
            self.cursor = (self.cursor + 1) % self.history.len();
            self.filled = (self.filled + 1).min(self.history.len());
            Some(self.average_period().unwrap())
        } else {
            None
        };
        self.last_crossing = Some(t);
        result
    }

    /// Average period over the filled window, in samples. `None` until the
    /// first full period has been measured.
    pub fn average_period(&self) -> Option<f64> {
        if self.filled == 0 {
            return None;
        }
        Some(
            self.history[..self.filled.max(1)]
                .iter()
                .take(self.filled)
                .sum::<f64>()
                / self.filled as f64,
        )
    }

    /// Measured frequency in Hz given the sample rate.
    pub fn frequency(&self, sample_rate: f64) -> Option<f64> {
        self.average_period().map(|p| sample_rate / p)
    }

    /// True once `window` periods have been accumulated — the kernel's
    /// "wait for a valid measurement of four full sine waves" condition.
    pub fn warmed_up(&self) -> bool {
        self.filled == self.history.len()
    }

    /// Access the inner zero-crossing detector (for crossing-relative
    /// addressing).
    pub fn zero_crossing(&self) -> &ZeroCrossingDetector {
        &self.zcd
    }

    /// Snapshot the complete detector state (including the nested
    /// zero-crossing detector) for checkpointing.
    pub fn state(&self) -> PeriodDetectorState {
        PeriodDetectorState {
            zcd: self.zcd.state(),
            history: self.history.clone(),
            cursor: self.cursor,
            filled: self.filled,
            last_crossing: self.last_crossing,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the snapshot's window size does not match this detector's.
    pub fn restore(&mut self, state: &PeriodDetectorState) -> bool {
        if state.history.len() != self.history.len() || state.cursor >= self.history.len() {
            return false;
        }
        self.zcd.restore(&state.zcd);
        self.history.copy_from_slice(&state.history);
        self.cursor = state.cursor;
        self.filled = state.filled.min(self.history.len());
        self.last_crossing = state.last_crossing;
        true
    }
}

/// Checkpointable state of a [`PeriodLengthDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodDetectorState {
    /// Nested zero-crossing detector state.
    pub zcd: crate::zero_crossing::ZeroCrossingState,
    /// Raw period history ring.
    pub history: Vec<f64>,
    /// Ring cursor.
    pub cursor: usize,
    /// Valid entries in the ring.
    pub filled: usize,
    /// Fractional sample time of the previous crossing.
    pub last_crossing: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sine(det: &mut PeriodLengthDetector, f: f64, fs: f64, n: usize) {
        for i in 0..n {
            det.push((std::f64::consts::TAU * f * i as f64 / fs).sin());
        }
    }

    #[test]
    fn measures_800khz_at_250msps() {
        let mut det = PeriodLengthDetector::paper_default();
        run_sine(&mut det, 800e3, 250e6, 10_000);
        assert!(det.warmed_up());
        let f = det.frequency(250e6).unwrap();
        assert!((f - 800e3).abs() < 50.0, "f = {f}");
    }

    #[test]
    fn warms_up_after_window_periods() {
        let mut det = PeriodLengthDetector::new(4, 0.0);
        let fs = 250e6;
        let f = 1e6;
        // 4 period measurements need 5 crossings → just over 5 periods of samples.
        let mut pushed = 0usize;
        while !det.warmed_up() {
            det.push((std::f64::consts::TAU * f * pushed as f64 / fs).sin());
            pushed += 1;
            assert!(pushed < 2000, "did not warm up in time");
        }
        let periods = pushed as f64 / (fs / f);
        assert!(
            periods > 4.5 && periods < 6.5,
            "warmed up after {periods} periods"
        );
    }

    #[test]
    fn averaging_reduces_quantization_jitter() {
        // At 800 kHz / 250 MS/s the true period is 312.5 samples; raw
        // crossing-to-crossing measurements (without sub-sample refinement
        // the hardware might lack) would alternate 312/313. With refinement
        // plus averaging the estimate is essentially exact; we instead
        // compare window=1 vs window=8 under additive noise.
        let fs = 250e6;
        let f = 800e3;
        let make_noise = |i: usize| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
        let mut narrow = PeriodLengthDetector::new(1, 0.05);
        let mut wide = PeriodLengthDetector::new(8, 0.05);
        let mut narrow_errs = Vec::new();
        let mut wide_errs = Vec::new();
        for i in 0..200_000 {
            let s = (std::f64::consts::TAU * f * i as f64 / fs).sin() + 0.02 * make_noise(i);
            if let Some(p) = narrow.push(s) {
                narrow_errs.push((p - 312.5).abs());
            }
            if let Some(p) = wide.push(s) {
                wide_errs.push((p - 312.5).abs());
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Skip the warm-up region of the wide filter.
        let nw = mean(&narrow_errs[8..]);
        let ww = mean(&wide_errs[8..]);
        assert!(
            ww < nw,
            "averaging must reduce error: narrow {nw} vs wide {ww}"
        );
    }

    #[test]
    fn tracks_frequency_change() {
        let mut det = PeriodLengthDetector::paper_default();
        let fs = 250e6;
        // 1 MHz then 0.5 MHz; detector should converge to the new value.
        let mut phase = 0.0_f64;
        for _ in 0..5_000 {
            phase += std::f64::consts::TAU * 1e6 / fs;
            det.push(phase.sin());
        }
        for _ in 0..20_000 {
            phase += std::f64::consts::TAU * 0.5e6 / fs;
            det.push(phase.sin());
        }
        let f = det.frequency(fs).unwrap();
        assert!((f - 0.5e6).abs() < 1e3, "f = {f}");
    }

    #[test]
    fn no_frequency_before_first_period() {
        let det = PeriodLengthDetector::paper_default();
        assert_eq!(det.frequency(250e6), None);
        assert!(!det.warmed_up());
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn zero_window_rejected() {
        let _ = PeriodLengthDetector::new(0, 0.0);
    }
}
