//! Gauss pulse generator (Section III-B).
//!
//! "When the timer module triggers, a single, precalculated, Gaussian
//! distributed pulse is played back from sample memory through the DAC
//! output." This module holds the precomputed pulse table (or a parametric
//! bunch-shape table, the Section VI extension) and plays it back sample by
//! sample when triggered at a programmable sample time.

/// Precomputed pulse table + playback engine.
#[derive(Debug, Clone)]
pub struct GaussPulseGenerator {
    table: Vec<f64>,
    /// Playback position; `None` when idle.
    playing: Option<usize>,
    /// Pending triggers: absolute sample indices at which playback starts.
    /// A queue, because the framework arms the *next* revolution's pulse
    /// while the previous one may still be pending.
    armed_at: std::collections::VecDeque<u64>,
    /// Current absolute sample index.
    now: u64,
    /// Output amplitude scale.
    pub amplitude: f64,
}

impl GaussPulseGenerator {
    /// Build from an arbitrary normalised pulse table (peak 1.0).
    pub fn from_table(table: Vec<f64>, amplitude: f64) -> Self {
        assert!(!table.is_empty(), "pulse table must not be empty");
        Self {
            table,
            playing: None,
            armed_at: std::collections::VecDeque::new(),
            now: 0,
            amplitude,
        }
    }

    /// Precompute a Gaussian pulse with RMS width `sigma_samples`, covering
    /// ±`span_sigmas`·σ.
    pub fn gaussian(sigma_samples: f64, span_sigmas: f64, amplitude: f64) -> Self {
        assert!(sigma_samples > 0.0 && span_sigmas > 0.0);
        let half = (sigma_samples * span_sigmas).ceil() as i64;
        let table: Vec<f64> = (-half..=half)
            .map(|i| (-0.5 * (i as f64 / sigma_samples).powi(2)).exp())
            .collect();
        Self::from_table(table, amplitude)
    }

    /// The evaluation's beam-pulse shape: a bunch of RMS length
    /// `sigma_seconds` sampled at `sample_rate`, ±4σ span.
    pub fn for_bunch(sigma_seconds: f64, sample_rate: f64, amplitude: f64) -> Self {
        Self::gaussian(sigma_seconds * sample_rate, 4.0, amplitude)
    }

    /// Arm a trigger: playback starts when the sample counter reaches
    /// `at_sample` (absolute index; may be fractional in the framework —
    /// rounding to the nearest sample is the DAC-side quantisation the
    /// jitter analysis quantifies). Triggers queue in arming order, so the
    /// per-revolution arm of the next pulse never cancels a pending one.
    pub fn arm(&mut self, at_sample: u64) {
        self.armed_at.push_back(at_sample);
    }

    /// Advance one sample clock and produce the output voltage.
    #[inline]
    pub fn tick(&mut self) -> f64 {
        if let Some(&at) = self.armed_at.front() {
            if self.now >= at {
                self.playing = Some(0);
                self.armed_at.pop_front();
            }
        }
        self.now += 1;
        match self.playing {
            Some(pos) => {
                let v = self.table[pos] * self.amplitude;
                self.playing = if pos + 1 < self.table.len() {
                    Some(pos + 1)
                } else {
                    None
                };
                v
            }
            None => 0.0,
        }
    }

    /// Swap the pulse table in place, preserving the time base and any
    /// pending triggers — the runtime path for parametric bunch shapes.
    /// An in-flight pulse is restarted on the new table.
    pub fn set_table(&mut self, table: Vec<f64>) {
        assert!(!table.is_empty(), "pulse table must not be empty");
        self.table = table;
        if self.playing.is_some() {
            self.playing = Some(0);
        }
    }

    /// Current absolute sample index (next tick's timestamp).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Length of the pulse table in samples.
    pub fn pulse_len(&self) -> usize {
        self.table.len()
    }

    /// True while a pulse is being played.
    pub fn is_playing(&self) -> bool {
        self.playing.is_some()
    }

    /// Snapshot the playback state (position, pending triggers, time base,
    /// amplitude). The pulse table itself is configuration and is rebuilt.
    pub fn state(&self) -> GaussPulseState {
        GaussPulseState {
            playing: self.playing,
            armed_at: self.armed_at.iter().copied().collect(),
            now: self.now,
            amplitude: self.amplitude,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the playback position is beyond this generator's table.
    pub fn restore(&mut self, state: &GaussPulseState) -> bool {
        if let Some(pos) = state.playing {
            if pos >= self.table.len() {
                return false;
            }
        }
        self.playing = state.playing;
        self.armed_at = state.armed_at.iter().copied().collect();
        self.now = state.now;
        self.amplitude = state.amplitude;
        true
    }
}

/// Checkpointable state of a [`GaussPulseGenerator`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaussPulseState {
    /// Playback position, if a pulse is in flight.
    pub playing: Option<usize>,
    /// Pending trigger sample times, in arming order.
    pub armed_at: Vec<u64>,
    /// Current absolute sample index.
    pub now: u64,
    /// Output amplitude scale.
    pub amplitude: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_output_is_zero() {
        let mut g = GaussPulseGenerator::gaussian(10.0, 4.0, 1.0);
        for _ in 0..100 {
            assert_eq!(g.tick(), 0.0);
        }
    }

    #[test]
    fn triggered_pulse_peaks_at_center() {
        let mut g = GaussPulseGenerator::gaussian(10.0, 4.0, 0.8);
        g.arm(5);
        let mut out = Vec::new();
        for _ in 0..120 {
            out.push(g.tick());
        }
        let (imax, &vmax) = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((vmax - 0.8).abs() < 1e-12, "peak = {vmax}");
        // Pulse spans 81 samples (±40); center 40 samples after start at 5.
        assert_eq!(imax, 5 + 40);
    }

    #[test]
    fn pulse_is_symmetric() {
        let g = GaussPulseGenerator::gaussian(8.0, 3.0, 1.0);
        let t = &g.table;
        for i in 0..t.len() / 2 {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn immediate_trigger_when_time_passed() {
        let mut g = GaussPulseGenerator::gaussian(2.0, 2.0, 1.0);
        for _ in 0..10 {
            g.tick();
        }
        g.arm(3); // already in the past → fires on next tick
        let v = g.tick();
        assert!(v > 0.0, "playback must start immediately");
    }

    #[test]
    fn triggers_queue_in_order() {
        let mut g = GaussPulseGenerator::gaussian(2.0, 2.0, 1.0);
        g.arm(5);
        g.arm(30); // next revolution's pulse, armed early
        let mut peaks = Vec::new();
        for n in 0..60u64 {
            if g.tick() >= 0.999 {
                peaks.push(n);
            }
        }
        assert_eq!(peaks.len(), 2, "both pulses fire: {peaks:?}");
        // Pulse table spans ±4 samples, peak 4 samples after the trigger.
        assert_eq!(peaks[0], 5 + 4);
        assert_eq!(peaks[1], 30 + 4);
    }

    #[test]
    fn periodic_pulse_train() {
        // Fire every 100 samples — the per-revolution beam signal.
        let mut g = GaussPulseGenerator::gaussian(3.0, 3.0, 1.0);
        let mut peaks = 0;
        for n in 0..1000u64 {
            if n % 100 == 0 {
                g.arm(n);
            }
            if g.tick() >= 0.999 {
                peaks += 1;
            }
        }
        assert_eq!(peaks, 10);
    }

    #[test]
    fn set_table_preserves_clock_and_triggers() {
        let mut g = GaussPulseGenerator::gaussian(2.0, 2.0, 1.0);
        for _ in 0..100 {
            g.tick();
        }
        g.arm(110);
        g.set_table(vec![1.0, 1.0, 1.0]);
        let mut fired = false;
        for n in 100..130u64 {
            if g.tick() > 0.5 {
                fired = true;
                assert!(n >= 110, "fires at the armed time, not early");
                break;
            }
        }
        assert!(fired, "pending trigger survives the table swap");
    }

    #[test]
    fn for_bunch_sizes_table_from_time() {
        // 20 ns RMS at 250 MS/s → σ = 5 samples → table 2*20+1 = 41.
        let g = GaussPulseGenerator::for_bunch(20e-9, 250e6, 1.0);
        assert_eq!(g.pulse_len(), 41);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_rejected() {
        let _ = GaussPulseGenerator::from_table(vec![], 1.0);
    }
}
