//! Sample interpolation (Section IV-B).
//!
//! "Since ΔT is rarely ever an integer multiple of the period length of the
//! sampling frequency, a second value is requested from the buffer to
//! perform linear interpolation to increase the accuracy." Ablation A1
//! compares these interpolators on the Δt accuracy of the whole loop.

/// Interpolation policy for fractional-sample reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interpolation {
    /// Take the nearest sample (what the kernel would do without the second
    /// buffer read).
    NearestNeighbor,
    /// Two-point linear interpolation — the paper's choice.
    Linear,
    /// Four-point Catmull-Rom cubic — a candidate refinement the paper does
    /// not use; included for the ablation's upper bound.
    CatmullRom,
}

impl Interpolation {
    /// Interpolate at fractional position `x` into `samples`, where `x = i`
    /// hits `samples[i]` exactly. Returns `None` when the stencil would
    /// leave the slice.
    pub fn at(&self, samples: &[f64], x: f64) -> Option<f64> {
        if x < 0.0 {
            return None;
        }
        let i = x.floor() as usize;
        let frac = x - x.floor();
        match self {
            Self::NearestNeighbor => {
                let idx = if frac < 0.5 { i } else { i + 1 };
                samples.get(idx).copied()
            }
            Self::Linear => {
                if frac == 0.0 {
                    return samples.get(i).copied();
                }
                let a = *samples.get(i)?;
                let b = *samples.get(i + 1)?;
                Some(a * (1.0 - frac) + b * frac)
            }
            Self::CatmullRom => {
                if frac == 0.0 {
                    return samples.get(i).copied();
                }
                if i == 0 {
                    return None;
                }
                let p0 = *samples.get(i - 1)?;
                let p1 = *samples.get(i)?;
                let p2 = *samples.get(i + 1)?;
                let p3 = *samples.get(i + 2)?;
                let t = frac;
                let t2 = t * t;
                let t3 = t2 * t;
                Some(
                    0.5 * ((2.0 * p1)
                        + (-p0 + p2) * t
                        + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
                        + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3),
                )
            }
        }
    }

    /// Worst-case reconstruction error of a unit-amplitude sine of
    /// `samples_per_period` samples, evaluated empirically over one period.
    /// Used by ablation A1 to rank the policies.
    pub fn sine_error(&self, samples_per_period: f64) -> f64 {
        let n = (samples_per_period * 4.0).ceil() as usize + 8;
        let signal: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * i as f64 / samples_per_period).sin())
            .collect();
        let mut worst = 0.0_f64;
        let probes = 1000;
        for k in 0..probes {
            let x = 2.0 + (n as f64 - 6.0) * k as f64 / probes as f64;
            if let Some(v) = self.at(&signal, x) {
                let truth = (std::f64::consts::TAU * x / samples_per_period).sin();
                worst = worst.max((v - truth).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_integer_positions() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0];
        for interp in [
            Interpolation::NearestNeighbor,
            Interpolation::Linear,
            Interpolation::CatmullRom,
        ] {
            assert_eq!(interp.at(&s, 2.0), Some(3.0), "{interp:?}");
        }
    }

    #[test]
    fn linear_midpoint() {
        let s = [0.0, 10.0];
        assert_eq!(Interpolation::Linear.at(&s, 0.5), Some(5.0));
    }

    #[test]
    fn nearest_picks_closer_sample() {
        let s = [0.0, 10.0];
        assert_eq!(Interpolation::NearestNeighbor.at(&s, 0.4), Some(0.0));
        assert_eq!(Interpolation::NearestNeighbor.at(&s, 0.6), Some(10.0));
    }

    #[test]
    fn catmull_rom_reproduces_linear_ramp() {
        let s = [0.0, 1.0, 2.0, 3.0, 4.0];
        let v = Interpolation::CatmullRom.at(&s, 1.5).unwrap();
        assert!((v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_is_none() {
        let s = [1.0, 2.0];
        assert_eq!(Interpolation::Linear.at(&s, 1.5), None);
        assert_eq!(Interpolation::Linear.at(&s, -0.1), None);
        assert_eq!(
            Interpolation::CatmullRom.at(&s, 0.5),
            None,
            "stencil needs i-1"
        );
    }

    #[test]
    fn accuracy_ordering_on_sine() {
        // 312.5 samples/period (800 kHz at 250 MS/s): linear beats nearest
        // by orders of magnitude; cubic beats linear.
        let spp = 312.5;
        let e_nn = Interpolation::NearestNeighbor.sine_error(spp);
        let e_lin = Interpolation::Linear.sine_error(spp);
        let e_cr = Interpolation::CatmullRom.sine_error(spp);
        assert!(e_lin < e_nn / 10.0, "linear {e_lin} vs nearest {e_nn}");
        assert!(e_cr < e_lin, "cubic {e_cr} vs linear {e_lin}");
    }

    #[test]
    fn error_grows_with_faster_signals() {
        let lin = Interpolation::Linear;
        assert!(lin.sine_error(20.0) > lin.sine_error(300.0));
    }
}
