//! Fixed-point helpers shared by the converter and DDS models.
//!
//! The FPGA framework operates on integer sample codes (14-bit ADC, 16-bit
//! DAC, 32-bit DDS phase accumulator). These helpers implement the
//! quantisation and wrap-around arithmetic of that world, with explicit
//! saturation semantics matching real converter front-ends.

/// Quantise a real value in `[-full_scale, +full_scale)` to a signed code of
/// `bits` bits, saturating at the rails (converter-style clipping).
#[inline]
pub fn quantize(value: f64, full_scale: f64, bits: u32) -> i32 {
    debug_assert!((2..=31).contains(&bits));
    debug_assert!(full_scale > 0.0);
    let max_code = (1i64 << (bits - 1)) - 1;
    let min_code = -(1i64 << (bits - 1));
    let scaled = (value / full_scale * (max_code as f64 + 1.0)).round() as i64;
    scaled.clamp(min_code, max_code) as i32
}

/// Reconstruct a real value from a signed `bits`-bit code (ideal DAC).
#[inline]
pub fn dequantize(code: i32, full_scale: f64, bits: u32) -> f64 {
    debug_assert!((2..=31).contains(&bits));
    let denom = (1i64 << (bits - 1)) as f64;
    f64::from(code) / denom * full_scale
}

/// One LSB of a `bits`-bit converter with the given full scale.
#[inline]
pub fn lsb(full_scale: f64, bits: u32) -> f64 {
    full_scale / (1i64 << (bits - 1)) as f64
}

/// A wrapping phase accumulator of `bits` bits — the core of every DDS.
///
/// The accumulator maps the full `2^bits` range onto one signal period, so
/// frequency resolution is `f_clk / 2^bits` and phase arithmetic wraps for
/// free, exactly like the hardware register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseAccumulator {
    /// Current accumulator value (wraps modulo 2^bits).
    pub acc: u64,
    /// Per-clock increment (frequency tuning word).
    pub increment: u64,
    bits: u32,
}

impl PhaseAccumulator {
    /// New accumulator with the given width in bits (≤ 63).
    pub fn new(bits: u32) -> Self {
        assert!((8..=63).contains(&bits), "accumulator width out of range");
        Self {
            acc: 0,
            increment: 0,
            bits,
        }
    }

    /// Set the frequency tuning word for `freq` Hz at clock `f_clk` Hz.
    pub fn set_frequency(&mut self, freq: f64, f_clk: f64) {
        assert!(
            freq >= 0.0 && freq < f_clk / 2.0,
            "frequency out of Nyquist range"
        );
        let span = (1u128 << self.bits) as f64;
        self.increment = (freq / f_clk * span).round() as u64 & self.mask();
    }

    /// Actual synthesised frequency (Hz) after tuning-word rounding.
    pub fn actual_frequency(&self, f_clk: f64) -> f64 {
        self.increment as f64 / (1u128 << self.bits) as f64 * f_clk
    }

    /// Advance one clock; returns the *pre-increment* phase in turns [0, 1).
    #[inline]
    pub fn tick(&mut self) -> f64 {
        let phase = self.acc as f64 / (1u128 << self.bits) as f64;
        self.acc = (self.acc + self.increment) & self.mask();
        phase
    }

    /// Add a (possibly negative) phase offset in turns, wrapping.
    pub fn add_phase_turns(&mut self, turns: f64) {
        let span = (1u128 << self.bits) as f64;
        let delta = (turns.rem_euclid(1.0) * span) as u64;
        self.acc = (self.acc + delta) & self.mask();
    }

    /// Reset the accumulator phase to zero (the synchronised DDS reset the
    /// mini control system performs in Fig. 4).
    pub fn reset(&mut self) {
        self.acc = 0;
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_zero_is_zero() {
        assert_eq!(quantize(0.0, 1.0, 14), 0);
    }

    #[test]
    fn quantize_saturates_at_rails() {
        assert_eq!(quantize(2.0, 1.0, 14), 8191);
        assert_eq!(quantize(-2.0, 1.0, 14), -8192);
    }

    #[test]
    fn quantize_roundtrip_error_below_lsb() {
        let fs = 1.0;
        for i in 0..1000 {
            let v = (i as f64 / 1000.0) * 1.9 - 0.95;
            let code = quantize(v, fs, 14);
            let back = dequantize(code, fs, 14);
            assert!((back - v).abs() <= lsb(fs, 14), "v={v}");
        }
    }

    #[test]
    fn lsb_of_14_bit_2vpp() {
        // FMC151: ±1 V on 14 bits → LSB ≈ 122 µV.
        let l = lsb(1.0, 14);
        assert!((l - 1.0 / 8192.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_frequency_resolution() {
        let mut acc = PhaseAccumulator::new(32);
        acc.set_frequency(800e3, 250e6);
        let f = acc.actual_frequency(250e6);
        // 32-bit accumulator at 250 MHz: resolution ≈ 0.058 Hz.
        assert!((f - 800e3).abs() < 0.06, "f = {f}");
    }

    #[test]
    fn accumulator_phase_advances_linearly() {
        let mut acc = PhaseAccumulator::new(32);
        acc.set_frequency(1.0, 8.0); // period = 8 clocks
        let phases: Vec<f64> = (0..8).map(|_| acc.tick()).collect();
        for (i, p) in phases.iter().enumerate() {
            assert!((p - i as f64 / 8.0).abs() < 1e-9);
        }
        // Wrapped around after a full period.
        assert!(acc.tick() < 1e-9);
    }

    #[test]
    fn phase_offset_wraps() {
        let mut acc = PhaseAccumulator::new(32);
        acc.add_phase_turns(0.75);
        acc.add_phase_turns(0.5);
        let p = acc.tick();
        assert!((p - 0.25).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn negative_phase_offset() {
        let mut acc = PhaseAccumulator::new(32);
        acc.add_phase_turns(-0.25);
        let p = acc.tick();
        assert!((p - 0.75).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn reset_clears_phase() {
        let mut acc = PhaseAccumulator::new(32);
        acc.set_frequency(1e6, 250e6);
        for _ in 0..1000 {
            acc.tick();
        }
        acc.reset();
        assert_eq!(acc.acc, 0);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn rejects_above_nyquist() {
        let mut acc = PhaseAccumulator::new(32);
        acc.set_frequency(200e6, 250e6);
    }
}
