//! The beam-phase control loop (Section V; structure after Klingbeil 2007,
//! ref. [8] of the paper).
//!
//! The DSP measures the phase difference between beam and reference signal;
//! the controller filters it with an FIR filter (pass frequency 1.4 kHz),
//! applies the loop gain (−5) and a recursive (pole 0.99) DC-rejection
//! stage, and actuates the *frequency* of the gap-voltage DDS. Frequency
//! actuation turns the loop into velocity-type feedback on the RF phase, so
//! a proportional path damps the dipole synchrotron oscillation; the DC
//! blocker prevents the constant (dead-time) phase offset — which the paper
//! notes is irrelevant — from winding up the frequency integrator.
//!
//! Linearised analysis (checked numerically in the tests): with gap-phase
//! dynamics `y'' = −ω_s²(y + φ_rf)` and actuation `φ_rf' = 360·G·y` deg/s,
//! the oscillatory pair gets `Re(s) = 180·G`, so `G < 0` damps — matching
//! the paper's negative gain — with time constant `τ = 1/(180·|G|)` seconds.

use cil_dsp::fir::FirFilter;
use cil_dsp::iir::DcBlocker;
use serde::{Deserialize, Serialize};

/// Controller parameters. Defaults reproduce the evaluation's settings
/// ("f_pass = 1.4 kHz, gain = −5 and recursion factor = 0.99, which are the
/// optimal parameters according to [8]").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerParams {
    /// Pass frequency of the FIR lowpass, Hz.
    pub f_pass: f64,
    /// Dimensionless loop gain (paper convention; negative damps).
    pub gain: f64,
    /// Recursion factor: pole radius of the DC-rejection stage.
    pub recursion: f64,
    /// Revolutions averaged per controller sample (decimation).
    pub decimation: u32,
    /// FIR tap count.
    pub fir_taps: usize,
    /// Actuator saturation: |Δf| limit on the gap DDS, Hz.
    pub max_freq_offset_hz: f64,
    /// Gain normalisation: Hz of frequency trim per degree of filtered
    /// phase error and per unit of `gain`.
    pub hz_per_deg_per_gain: f64,
}

impl ControllerParams {
    /// The evaluation's parameter set at an 800 kHz revolution frequency.
    pub fn evaluation_default() -> Self {
        Self {
            f_pass: 1.4e3,
            gain: -5.0,
            recursion: 0.99,
            decimation: 4,
            fir_taps: 63,
            max_freq_offset_hz: 2.0e3,
            hz_per_deg_per_gain: 0.25,
        }
    }

    /// Effective proportional gain G in Hz per degree.
    pub fn effective_gain_hz_per_deg(&self) -> f64 {
        self.gain * self.hz_per_deg_per_gain
    }

    /// Predicted closed-loop damping time constant, seconds
    /// (`1/(180·|G|)`, from the linearised analysis; valid while the
    /// damping rate is well below ω_s).
    pub fn predicted_damping_time(&self) -> f64 {
        1.0 / (180.0 * self.effective_gain_hz_per_deg().abs())
    }
}

/// How the supervisor compensates a degraded RF plant (cavity quench, trip
/// or tune drift — the C-ADS cavity-failure rematch scenario, PAPERS.md).
/// Policies are pure configuration; the run-time ladder state (commanded
/// boost, gain multiplier, sag latch) lives in
/// [`crate::fault::LoopSupervisor`] and is checkpointed with it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CompensationPolicy {
    /// No compensation: ride the degraded plant until the beam is lost.
    #[default]
    None,
    /// Retune the controller gain to the surviving voltage: the loop gain
    /// is multiplied by `1/sqrt(scale)` — the synchrotron frequency, and
    /// with it the plant gain of the phase loop, scales with `sqrt(V)` —
    /// capped at `max_gain_scale`.
    GainRescale {
        /// Cap on the gain multiplier (the controller has finite headroom
        /// before its own phase margin goes).
        max_gain_scale: f64,
    },
    /// Command the signal generator to raise the reference amplitude toward
    /// the pre-fault bucket area. The boost is slew-rate-limited per
    /// decimated actuation interval and observes the *effective* (already
    /// boosted) voltage, so it stops commanding once the sag is healed —
    /// closed-loop anti-windup rather than open-loop inversion.
    VoltageRematch {
        /// Maximum boost change per controller actuation interval.
        slew_per_update: f64,
        /// Hard amplifier ceiling on the commanded boost.
        max_boost: f64,
    },
}

impl CompensationPolicy {
    /// Gain-rescale policy with the default 4x gain headroom.
    pub fn gain_rescale() -> Self {
        Self::GainRescale {
            max_gain_scale: 4.0,
        }
    }

    /// Voltage-rematch policy with the default slew (5 % of nominal per
    /// actuation tick) and a 3x amplifier ceiling.
    pub fn voltage_rematch() -> Self {
        Self::VoltageRematch {
            slew_per_update: 0.05,
            max_boost: 3.0,
        }
    }

    /// Short label for tables and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::GainRescale { .. } => "gain_rescale",
            Self::VoltageRematch { .. } => "voltage_rematch",
        }
    }
}

/// One decimated controller step under a supervisor-imposed limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LimitedControl {
    /// Actuation after clamping and the enable gate, Hz.
    pub actuation_hz: f64,
    /// Unclamped controller output, Hz.
    pub raw_hz: f64,
    /// The limit in force (tightest of supervisor and saturation), Hz.
    pub limit_hz: f64,
    /// True when the limit engaged (and anti-windup rolled the DC stage
    /// back).
    pub clamped: bool,
}

/// The streaming beam-phase controller.
#[derive(Debug, Clone)]
pub struct BeamPhaseController {
    /// Parameters in force.
    pub params: ControllerParams,
    dc: DcBlocker,
    fir: FirFilter,
    /// Decimation accumulator.
    acc: f64,
    acc_n: u32,
    /// Last actuation output, Hz.
    last_output: f64,
    /// Supervisor-commanded gain multiplier ([`CompensationPolicy::
    /// GainRescale`]); 1.0 = nominal.
    gain_scale: f64,
    /// True when the loop is closed (false = monitoring only).
    pub enabled: bool,
}

impl BeamPhaseController {
    /// Build a controller for a given revolution frequency (sets the FIR
    /// cutoff relative to the decimated sample rate).
    pub fn new(params: ControllerParams, f_rev: f64) -> Self {
        assert!(params.decimation >= 1);
        let f_ctrl = f_rev / f64::from(params.decimation);
        let fc = (params.f_pass / f_ctrl).min(0.45);
        Self {
            params,
            dc: DcBlocker::new(params.recursion),
            fir: FirFilter::lowpass(fc, params.fir_taps | 1),
            acc: 0.0,
            acc_n: 0,
            last_output: 0.0,
            gain_scale: 1.0,
            enabled: true,
        }
    }

    /// Supervisor-commanded gain multiplier in force (1.0 = nominal).
    pub fn gain_scale(&self) -> f64 {
        self.gain_scale
    }

    /// Set the gain multiplier ([`CompensationPolicy::GainRescale`] path).
    /// Multiplies the effective loop gain on every subsequent decimated
    /// step; 1.0 restores the nominal gain exactly.
    pub fn set_gain_scale(&mut self, scale: f64) {
        assert!(scale.is_finite() && scale > 0.0);
        self.gain_scale = scale;
    }

    /// Feed one per-revolution phase measurement (degrees at the RF
    /// harmonic). Returns `Some(freq_offset_hz)` when a decimated controller
    /// step completes; the returned value is also retained as
    /// [`Self::output`].
    pub fn push_measurement(&mut self, phase_deg: f64) -> Option<f64> {
        self.acc += phase_deg;
        self.acc_n += 1;
        if self.acc_n < self.params.decimation {
            return None;
        }
        let avg = self.acc / f64::from(self.acc_n);
        self.acc = 0.0;
        self.acc_n = 0;

        let ac = self.dc.push(avg);
        let filtered = self.fir.push(ac);
        let raw = self.params.effective_gain_hz_per_deg() * self.gain_scale * filtered;
        let clamped = raw.clamp(
            -self.params.max_freq_offset_hz,
            self.params.max_freq_offset_hz,
        );
        self.last_output = if self.enabled { clamped } else { 0.0 };
        Some(self.last_output)
    }

    /// Like [`Self::push_measurement`], with a supervisor-imposed actuation
    /// limit (tightest of `limit_hz` and the configured saturation) and
    /// anti-windup: when the limit engages, the recursive DC-rejection
    /// stage is rolled back to its pre-sample state (conditional
    /// integration), so a long clamped stretch cannot wind the infinite
    /// -memory pole up. The FIR stage has finite memory and needs no
    /// rollback. Returns one [`LimitedControl`] per decimated step.
    pub fn push_measurement_limited(
        &mut self,
        phase_deg: f64,
        limit_hz: f64,
    ) -> Option<LimitedControl> {
        self.acc += phase_deg;
        self.acc_n += 1;
        if self.acc_n < self.params.decimation {
            return None;
        }
        let avg = self.acc / f64::from(self.acc_n);
        self.acc = 0.0;
        self.acc_n = 0;

        let dc_snapshot = self.dc;
        let ac = self.dc.push(avg);
        let filtered = self.fir.push(ac);
        let raw = self.params.effective_gain_hz_per_deg() * self.gain_scale * filtered;
        let lim = limit_hz.min(self.params.max_freq_offset_hz).max(0.0);
        let clamped_flag = raw.abs() > lim;
        if clamped_flag {
            self.dc = dc_snapshot;
        }
        let clamped = raw.clamp(-lim, lim);
        self.last_output = if self.enabled { clamped } else { 0.0 };
        Some(LimitedControl {
            actuation_hz: self.last_output,
            raw_hz: raw,
            limit_hz: lim,
            clamped: clamped_flag,
        })
    }

    /// Most recent actuation value, Hz.
    pub fn output(&self) -> f64 {
        self.last_output
    }

    /// Measurements still to be pushed before the next decimated controller
    /// step fires (always ≥ 1: the accumulator empties whenever it reaches
    /// the decimation). The harness uses this to size engine step blocks so
    /// an actuation can only ever fall on a block's last row.
    pub fn rows_until_actuation(&self) -> u32 {
        self.params.decimation - self.acc_n
    }

    /// Reset all filter state (e.g. between experiments).
    pub fn reset(&mut self) {
        self.dc.reset();
        self.fir.reset();
        self.acc = 0.0;
        self.acc_n = 0;
        self.last_output = 0.0;
    }

    /// Snapshot all filter and accumulator state (DC-blocker registers, FIR
    /// delay line, decimation accumulator, last output, enable gate). The
    /// parameters and FIR taps are configuration and are rebuilt.
    pub fn state(&self) -> ControllerState {
        let (dc_x1, dc_y1) = self.dc.state();
        ControllerState {
            dc_x1,
            dc_y1,
            fir: self.fir.state(),
            acc: self.acc,
            acc_n: self.acc_n,
            last_output: self.last_output,
            gain_scale: self.gain_scale,
            enabled: self.enabled,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the FIR delay-line length does not match this controller's tap
    /// count.
    pub fn restore(&mut self, state: &ControllerState) -> bool {
        if !self.fir.restore(&state.fir) {
            return false;
        }
        self.dc.restore(state.dc_x1, state.dc_y1);
        self.acc = state.acc;
        self.acc_n = state.acc_n;
        self.last_output = state.last_output;
        self.gain_scale = state.gain_scale;
        self.enabled = state.enabled;
        true
    }
}

/// Checkpointable state of a [`BeamPhaseController`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerState {
    /// DC-blocker previous input.
    pub dc_x1: f64,
    /// DC-blocker previous output.
    pub dc_y1: f64,
    /// FIR delay line + cursor.
    pub fir: cil_dsp::fir::FirState,
    /// Decimation accumulator.
    pub acc: f64,
    /// Samples accumulated toward the next decimated step.
    pub acc_n: u32,
    /// Last actuation output, Hz.
    pub last_output: f64,
    /// Supervisor-commanded gain multiplier.
    pub gain_scale: f64,
    /// Loop-closed gate.
    pub enabled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cil_physics::machine::{MachineParams, OperatingPoint};
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::tracking::TwoParticleMap;
    use cil_physics::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn dc_offset_is_rejected() {
        // A constant phase offset (dead times, cable lengths — the paper
        // says it is irrelevant) must produce no steady-state actuation.
        let mut c = BeamPhaseController::new(ControllerParams::evaluation_default(), 800e3);
        let mut last = f64::MAX;
        for _ in 0..400_000 {
            if let Some(u) = c.push_measurement(25.0) {
                last = u;
            }
        }
        assert!(last.abs() < 1e-3, "steady-state output {last} Hz");
    }

    #[test]
    fn saturation_clamps_output() {
        let mut p = ControllerParams::evaluation_default();
        p.max_freq_offset_hz = 10.0;
        let mut c = BeamPhaseController::new(p, 800e3);
        let mut max_out = 0.0f64;
        // Huge oscillating input at fs.
        for i in 0..100_000 {
            let phase = 1e4 * (std::f64::consts::TAU * 1.28e3 / 800e3 * i as f64).sin();
            if let Some(u) = c.push_measurement(phase) {
                max_out = max_out.max(u.abs());
            }
        }
        assert!(max_out <= 10.0 + 1e-9);
        assert!(max_out > 9.0, "saturation actually reached");
    }

    #[test]
    fn disabled_controller_outputs_zero() {
        let mut c = BeamPhaseController::new(ControllerParams::evaluation_default(), 800e3);
        c.enabled = false;
        for i in 0..10_000 {
            let phase = 10.0 * (0.01 * i as f64).sin();
            if let Some(u) = c.push_measurement(phase) {
                assert_eq!(u, 0.0);
            }
        }
    }

    /// The decisive test: close the loop around the two-particle map after
    /// an 8° phase jump and verify (a) damping, (b) the paper's sign
    /// convention (negative gain damps, positive gain does not).
    fn closed_loop_amplitude(gain: f64, turns: usize) -> (f64, f64) {
        let op = op();
        let mut params = ControllerParams::evaluation_default();
        params.gain = gain;
        let mut ctrl = BeamPhaseController::new(params, op.f_rev());
        let mut map = TwoParticleMap::at_operating_point(&op);
        let t_rev = 1.0 / op.f_rev();

        // 8 degree jump at t=0: gap phase offset starts at 8 deg.
        let jump_rad = 8.0_f64.to_radians();
        let mut ctrl_phase_rad = 0.0; // integral of the frequency trim
        let period_turns = (op.f_rev() / 1.28e3) as usize;
        let mut trace = Vec::with_capacity(turns);
        for _ in 0..turns {
            let phi = jump_rad + ctrl_phase_rad;
            let dt = map.step_stationary(op.v_gap_volts, phi);
            let phase_deg = dt * op.f_rf() * 360.0;
            if let Some(u) = ctrl.push_measurement(phase_deg) {
                // integrate over the decimation window
                ctrl_phase_rad += std::f64::consts::TAU * u * t_rev * f64::from(params.decimation);
            }
            trace.push(phase_deg);
        }
        // Oscillation amplitude about the local mean — the jump moves the
        // equilibrium to −8°, so raw |phase| would conflate offset and
        // oscillation (the paper makes the same distinction about constant
        // offsets in Fig. 5).
        let amp = |w: &[f64]| {
            let max = w.iter().cloned().fold(f64::MIN, f64::max);
            let min = w.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / 2.0
        };
        (
            amp(&trace[..period_turns]),
            amp(&trace[turns - period_turns..]),
        )
    }

    #[test]
    fn negative_gain_damps_the_oscillation() {
        // 25 ms ≈ 5 predicted damping times at gain −5.
        let turns = (0.025 * 800e3) as usize;
        let (first, tail) = closed_loop_amplitude(-5.0, turns);
        // First swing: amplitude ≈ 8° about the new equilibrium, i.e. the
        // paper's "peak-to-peak phase amplitude … twice the amplitude of the
        // phase jump".
        assert!(first > 7.0 && first < 10.0, "first amplitude {first}");
        assert!(tail < first * 0.25, "damped: first {first}, tail {tail}");
    }

    #[test]
    fn positive_gain_does_not_damp() {
        let turns = (0.025 * 800e3) as usize;
        let (first, tail) = closed_loop_amplitude(5.0, turns);
        assert!(
            tail > first * 0.5,
            "undamped/growing: first {first}, tail {tail}"
        );
    }

    #[test]
    fn open_loop_oscillation_persists() {
        let turns = (0.025 * 800e3) as usize;
        let (first, tail) = closed_loop_amplitude(0.0, turns);
        assert!((tail - first).abs() / first < 0.2, "no loop, no damping");
    }

    #[test]
    fn predicted_damping_time_matches_measurement() {
        // Measure the e-folding time from the envelope and compare with the
        // linearised prediction (within a factor ~2 — the DC blocker and FIR
        // phase shift perturb the ideal value).
        let op = op();
        let params = ControllerParams::evaluation_default();
        let mut ctrl = BeamPhaseController::new(params, op.f_rev());
        let mut map = TwoParticleMap::at_operating_point(&op);
        let t_rev = 1.0 / op.f_rev();
        let jump_rad = 8.0_f64.to_radians();
        let mut ctrl_phase = 0.0;
        let mut trace = Vec::new();
        for _ in 0..(0.03 * 800e3) as usize {
            let dt = map.step_stationary(op.v_gap_volts, jump_rad + ctrl_phase);
            let deg = dt * op.f_rf() * 360.0;
            if let Some(u) = ctrl.push_measurement(deg) {
                ctrl_phase += std::f64::consts::TAU * u * t_rev * f64::from(params.decimation);
            }
            trace.push(deg);
        }
        let tau_turns = cil_physics::modes::damping_time_turns(&trace).expect("decaying envelope");
        let tau_s = tau_turns / 800e3;
        let predicted = params.predicted_damping_time();
        assert!(
            tau_s > predicted * 0.4 && tau_s < predicted * 2.5,
            "tau {tau_s} vs predicted {predicted}"
        );
    }

    #[test]
    fn stronger_gain_damps_faster() {
        let turns = (0.02 * 800e3) as usize;
        let (_, tail_weak) = closed_loop_amplitude(-2.0, turns);
        let (_, tail_strong) = closed_loop_amplitude(-8.0, turns);
        assert!(
            tail_strong < tail_weak,
            "gain -8 tail {tail_strong} vs gain -2 tail {tail_weak}"
        );
    }
}
