//! Multi-bunch closed-loop operation — the Section VI extension:
//! "Ultimately, we will also extend the simulation to support multiple
//! bunches circulating in the ring at the same time."
//!
//! The B-bunch beam kernel (already what Section IV-B schedules) runs on
//! the CGRA with one Δt actuator per bunch; each bunch can be displaced
//! independently, and the beam-phase controller acts on the *average* bunch
//! phase, as a single-pickup LLRF does. The per-bunch traces expose both
//! the common (controlled) dipole mode and the counter-phase modes the loop
//! cannot see. A thin adapter: [`crate::engine::CgraEngine`] carries the
//! beam, [`crate::harness::LoopHarness`] closes the loop.

use crate::engine::CgraEngine;
use crate::error::{CilError, Result};
use crate::harness::LoopHarness;
use crate::scenario::MdeScenario;
use crate::trace::TimeSeries;

/// Result of a multi-bunch run.
#[derive(Debug, Clone)]
pub struct MultiBunchResult {
    /// Per-bunch phase traces (degrees at the RF harmonic), one sample per
    /// revolution.
    pub bunch_phase_deg: Vec<TimeSeries>,
    /// The pickup-average phase the controller acted on.
    pub mean_phase_deg: TimeSeries,
}

/// Turn-level multi-bunch executive on the CGRA.
pub struct MultiBunchLoop {
    scenario: MdeScenario,
    /// Initial phase offset per bunch, degrees at the RF harmonic.
    pub initial_offsets_deg: Vec<f64>,
}

impl MultiBunchLoop {
    /// New loop; `initial_offsets_deg.len()` sets the bunch count (≤ the
    /// scenario's harmonic number, like real buckets).
    pub fn new(scenario: MdeScenario, initial_offsets_deg: Vec<f64>) -> Result<Self> {
        if initial_offsets_deg.is_empty() {
            return Err(CilError::InvalidConfig(
                "at least one bunch is required".into(),
            ));
        }
        if initial_offsets_deg.len() > scenario.harmonic() as usize {
            return Err(CilError::InvalidConfig(
                "at most one bunch per bucket".into(),
            ));
        }
        Ok(Self {
            scenario,
            initial_offsets_deg,
        })
    }

    /// Run closed- or open-loop for the scenario duration.
    pub fn run(&self, control_enabled: bool) -> Result<MultiBunchResult> {
        let s = &self.scenario;
        let bunches = self.initial_offsets_deg.len();
        let t_rev = 1.0 / s.f_rev;
        let mut engine = CgraEngine::from_scenario(s, bunches, &self.initial_offsets_deg)?;
        let mut harness = LoopHarness::for_scenario(s, control_enabled);
        let trace = harness.run(&mut engine, s.duration_s);
        Ok(MultiBunchResult {
            bunch_phase_deg: trace
                .bunch_phase_deg
                .into_iter()
                .map(|v| TimeSeries::new(0.0, t_rev, v))
                .collect(),
            mean_phase_deg: TimeSeries::new(0.0, t_rev, trace.mean_phase_deg),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signalgen::PhaseJumpProgram;

    fn scenario(duration: f64) -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = duration;
        s.instrument_offset_deg = 0.0;
        s.jumps = PhaseJumpProgram {
            amplitude_deg: 0.0,
            interval_s: 1e9,
            path_latency_s: 0.0,
        };
        s
    }

    #[test]
    fn common_mode_is_damped() {
        // All four bunches displaced identically: pure common mode — the
        // loop sees it and damps it.
        let looped = MultiBunchLoop::new(scenario(0.05), vec![6.0; 4]).unwrap();
        let r = looped.run(true).unwrap();
        assert_eq!(r.bunch_phase_deg.len(), 4);
        let head = r.mean_phase_deg.window(0.0, 0.01).peak_to_peak();
        let tail = r.mean_phase_deg.window(0.04, 0.05).peak_to_peak();
        assert!(tail < head * 0.35, "common mode damped: {head} -> {tail}");
    }

    #[test]
    fn counter_phase_mode_is_invisible_to_the_loop() {
        // Bunches displaced in opposite directions: the pickup average is
        // ~zero, so the loop cannot damp the relative motion (a known
        // limitation of average-phase feedback).
        let looped = MultiBunchLoop::new(scenario(0.04), vec![6.0, -6.0]).unwrap();
        let r = looped.run(true).unwrap();
        let mean_amp = r.mean_phase_deg.peak_to_peak() / 2.0;
        assert!(mean_amp < 1.0, "common signal ~ 0, got {mean_amp}");
        // Each bunch keeps ringing at ~its initial amplitude.
        for (b, trace) in r.bunch_phase_deg.iter().enumerate() {
            let tail = trace.window(0.03, 0.04).peak_to_peak() / 2.0;
            assert!(tail > 4.0, "bunch {b} still oscillates, tail amp {tail}");
        }
    }

    #[test]
    fn bunches_oscillate_independently_open_loop() {
        let looped = MultiBunchLoop::new(scenario(0.01), vec![4.0, 8.0]).unwrap();
        let r = looped.run(false).unwrap();
        // Amplitudes stay proportional to the initial offsets.
        let a0 = r.bunch_phase_deg[0].peak_to_peak() / 2.0;
        let a1 = r.bunch_phase_deg[1].peak_to_peak() / 2.0;
        assert!((a1 / a0 - 2.0).abs() < 0.2, "ratio {}", a1 / a0);
    }

    #[test]
    fn more_bunches_than_buckets_rejected() {
        let err = match MultiBunchLoop::new(scenario(0.01), vec![0.0; 5]) {
            Err(e) => e,
            Ok(_) => panic!("over-filled ring must be rejected"),
        };
        assert!(err.to_string().contains("at most one bunch per bucket"));
    }
}
