//! Multi-bunch closed-loop operation — the Section VI extension:
//! "Ultimately, we will also extend the simulation to support multiple
//! bunches circulating in the ring at the same time."
//!
//! The B-bunch beam kernel (already what Section IV-B schedules) runs on
//! the CGRA with one Δt actuator per bunch; each bunch can be displaced
//! independently, and the beam-phase controller acts on the *average* bunch
//! phase, as a single-pickup LLRF does. The per-bunch traces expose both
//! the common (controlled) dipole mode and the counter-phase modes the loop
//! cannot see.

use crate::control::BeamPhaseController;
use crate::scenario::MdeScenario;
use crate::trace::TimeSeries;
use cil_cgra::exec::{CgraExecutor, SensorBus};
use cil_cgra::kernels::{build_beam_kernel, ACT_DT_BASE, PORT_GAP_BUF, PORT_PERIOD, PORT_REF_BUF};
use cil_cgra::sched::ListScheduler;
use cil_physics::constants::TWO_PI;

/// Result of a multi-bunch run.
#[derive(Debug, Clone)]
pub struct MultiBunchResult {
    /// Per-bunch phase traces (degrees at the RF harmonic), one sample per
    /// revolution.
    pub bunch_phase_deg: Vec<TimeSeries>,
    /// The pickup-average phase the controller acted on.
    pub mean_phase_deg: TimeSeries,
}

/// Analytic bus for the multi-bunch kernel (ideal DDS waveforms).
struct Bus {
    f_rev: f64,
    f_rf: f64,
    sample_rate: f64,
    amp: f64,
    gap_phase_rad: f64,
    dt_out: Vec<f64>,
}

impl SensorBus for Bus {
    fn read(&mut self, port: u16, addr: f64) -> f64 {
        let t = addr / self.sample_rate;
        match port {
            PORT_PERIOD => 1.0 / self.f_rev,
            PORT_REF_BUF => self.amp * (TWO_PI * self.f_rev * t).sin(),
            PORT_GAP_BUF => self.amp * (TWO_PI * self.f_rf * t + self.gap_phase_rad).sin(),
            _ => 0.0,
        }
    }
    fn write(&mut self, port: u16, value: f64) {
        let b = (port - ACT_DT_BASE) as usize;
        if b < self.dt_out.len() {
            self.dt_out[b] = value;
        }
    }
}

/// Turn-level multi-bunch executive on the CGRA.
pub struct MultiBunchLoop {
    scenario: MdeScenario,
    /// Initial phase offset per bunch, degrees at the RF harmonic.
    pub initial_offsets_deg: Vec<f64>,
}

impl MultiBunchLoop {
    /// New loop; `initial_offsets_deg.len()` sets the bunch count (≤ the
    /// scenario's harmonic number, like real buckets).
    pub fn new(scenario: MdeScenario, initial_offsets_deg: Vec<f64>) -> Self {
        assert!(!initial_offsets_deg.is_empty());
        assert!(
            initial_offsets_deg.len() <= scenario.harmonic() as usize,
            "at most one bunch per bucket"
        );
        Self { scenario, initial_offsets_deg }
    }

    /// Run closed- or open-loop for the scenario duration.
    pub fn run(&self, control_enabled: bool) -> MultiBunchResult {
        let s = &self.scenario;
        let bunches = self.initial_offsets_deg.len();
        let op = s.operating_point();
        let f_rf = op.f_rf();
        let t_rev = 1.0 / s.f_rev;
        let turns = s.revolutions();

        let bk = build_beam_kernel(&s.kernel_params(), bunches, s.pipelined);
        let sched = ListScheduler::new(s.grid).schedule(&bk.kernel.dfg);
        let mut ex = CgraExecutor::new(bk.kernel.dfg.clone(), sched);
        for &(r, v) in &bk.kernel.reg_inits {
            ex.set_reg(r, v);
        }
        // Displace each bunch.
        for (b, &deg) in self.initial_offsets_deg.iter().enumerate() {
            let reg = bk
                .kernel
                .statics
                .iter()
                .find(|(n, _)| *n == format!("dt_{b}"))
                .map(|(_, r)| *r)
                .expect("bunch state register");
            ex.set_reg(reg, deg / 360.0 / f_rf);
        }
        let mut bus = Bus {
            f_rev: s.f_rev,
            f_rf,
            sample_rate: 250e6,
            amp: s.adc_amplitude,
            gap_phase_rad: 0.0,
            dt_out: vec![0.0; bunches],
        };
        if s.pipelined {
            // Warm the stage bridges, then restore inits + displacements.
            let mut restore = bk.kernel.reg_inits.clone();
            for (b, &deg) in self.initial_offsets_deg.iter().enumerate() {
                let reg = bk
                    .kernel
                    .statics
                    .iter()
                    .find(|(n, _)| *n == format!("dt_{b}"))
                    .unwrap()
                    .1;
                restore.push((reg, deg / 360.0 / f_rf));
            }
            ex.warmup(&mut bus, &[], &restore);
        }

        let mut controller = BeamPhaseController::new(s.controller, s.f_rev);
        controller.enabled = control_enabled;
        let mut ctrl_phase_rad = 0.0f64;
        let mut per_bunch: Vec<Vec<f64>> = vec![Vec::with_capacity(turns); bunches];
        let mut mean = Vec::with_capacity(turns);

        for n in 0..turns {
            let t = n as f64 * t_rev;
            let jump = s.jumps.offset_deg_at(t).to_radians();
            bus.gap_phase_rad = jump + ctrl_phase_rad;
            ex.run_iteration(&mut bus, &[]);
            let mut acc = 0.0;
            for (b, trace) in per_bunch.iter_mut().enumerate() {
                let deg = bus.dt_out[b] * f_rf * 360.0;
                trace.push(deg);
                acc += deg;
            }
            let avg = acc / bunches as f64;
            mean.push(avg);
            if let Some(u) = controller.push_measurement(avg) {
                ctrl_phase_rad += TWO_PI * u * t_rev * f64::from(s.controller.decimation);
            }
        }

        MultiBunchResult {
            bunch_phase_deg: per_bunch
                .into_iter()
                .map(|v| TimeSeries::new(0.0, t_rev, v))
                .collect(),
            mean_phase_deg: TimeSeries::new(0.0, t_rev, mean),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signalgen::PhaseJumpProgram;

    fn scenario(duration: f64) -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = duration;
        s.instrument_offset_deg = 0.0;
        s.jumps = PhaseJumpProgram { amplitude_deg: 0.0, interval_s: 1e9, path_latency_s: 0.0 };
        s
    }

    #[test]
    fn common_mode_is_damped() {
        // All four bunches displaced identically: pure common mode — the
        // loop sees it and damps it.
        let looped = MultiBunchLoop::new(scenario(0.05), vec![6.0; 4]);
        let r = looped.run(true);
        assert_eq!(r.bunch_phase_deg.len(), 4);
        let head = r.mean_phase_deg.window(0.0, 0.01).peak_to_peak();
        let tail = r.mean_phase_deg.window(0.04, 0.05).peak_to_peak();
        assert!(tail < head * 0.35, "common mode damped: {head} -> {tail}");
    }

    #[test]
    fn counter_phase_mode_is_invisible_to_the_loop() {
        // Bunches displaced in opposite directions: the pickup average is
        // ~zero, so the loop cannot damp the relative motion (a known
        // limitation of average-phase feedback).
        let looped = MultiBunchLoop::new(scenario(0.04), vec![6.0, -6.0]);
        let r = looped.run(true);
        let mean_amp = r.mean_phase_deg.peak_to_peak() / 2.0;
        assert!(mean_amp < 1.0, "common signal ~ 0, got {mean_amp}");
        // Each bunch keeps ringing at ~its initial amplitude.
        for (b, trace) in r.bunch_phase_deg.iter().enumerate() {
            let tail = trace.window(0.03, 0.04).peak_to_peak() / 2.0;
            assert!(tail > 4.0, "bunch {b} still oscillates, tail amp {tail}");
        }
    }

    #[test]
    fn bunches_oscillate_independently_open_loop() {
        let looped = MultiBunchLoop::new(scenario(0.01), vec![4.0, 8.0]);
        let r = looped.run(false);
        // Amplitudes stay proportional to the initial offsets.
        let a0 = r.bunch_phase_deg[0].peak_to_peak() / 2.0;
        let a1 = r.bunch_phase_deg[1].peak_to_peak() / 2.0;
        assert!((a1 / a0 - 2.0).abs() < 0.2, "ratio {}", a1 / a0);
    }

    #[test]
    #[should_panic(expected = "at most one bunch per bucket")]
    fn more_bunches_than_buckets_rejected() {
        let _ = MultiBunchLoop::new(scenario(0.01), vec![0.0; 5]);
    }
}
