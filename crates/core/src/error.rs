//! Typed errors for the run path.
//!
//! Injected faults and invalid configurations must surface as values a
//! supervisor can react to, not as aborts: a loop service that panics on the
//! first bad scenario knob is exactly the failure mode the fault layer
//! exists to exercise. Everything on the executive run path returns
//! [`CilError`] through [`Result`].

use crate::checkpoint::CheckpointError;
use cil_physics::synchrotron::SynchrotronError;

/// Error type of the cil-core run path.
#[derive(Debug)]
pub enum CilError {
    /// A physics derivation failed (e.g. operating point above transition).
    Physics(SynchrotronError),
    /// A compiled kernel is missing an expected state register.
    MissingKernelRegister(String),
    /// A scenario or component configuration is invalid.
    InvalidConfig(String),
    /// A checkpoint could not be written, decoded or applied.
    Checkpoint(CheckpointError),
    /// A campaign could not run or resume (WAL damage, incompatible point
    /// list, commit failure). Per-point failures are *not* errors — they
    /// are retried and quarantined by the campaign runner.
    Campaign(crate::campaign::CampaignError),
    /// A multi-session executor operation failed (unknown session, a
    /// session in the wrong lifecycle state for the request, or a worker
    /// error recorded against the session).
    Session(String),
    /// A recording could not be encoded (inconsistent per-bunch row
    /// shapes).
    Recording(String),
}

impl std::fmt::Display for CilError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Physics(e) => write!(f, "physics error: {e}"),
            Self::MissingKernelRegister(name) => {
                write!(f, "compiled kernel has no register named {name:?}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Campaign(e) => write!(f, "campaign error: {e}"),
            Self::Session(msg) => write!(f, "session error: {msg}"),
            Self::Recording(msg) => write!(f, "recording error: {msg}"),
        }
    }
}

impl std::error::Error for CilError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Physics(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            Self::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SynchrotronError> for CilError {
    fn from(e: SynchrotronError) -> Self {
        Self::Physics(e)
    }
}

impl From<CheckpointError> for CilError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<crate::campaign::CampaignError> for CilError {
    fn from(e: crate::campaign::CampaignError) -> Self {
        Self::Campaign(e)
    }
}

/// Run-path result alias.
pub type Result<T> = std::result::Result<T, CilError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physics_errors_convert_and_chain() {
        let e: CilError = SynchrotronError::Unstable.into();
        assert!(matches!(e, CilError::Physics(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("physics"));
    }

    #[test]
    fn display_names_the_register() {
        let e = CilError::MissingKernelRegister("dt_3".into());
        assert!(e.to_string().contains("dt_3"));
    }
}
