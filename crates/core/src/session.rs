//! The multi-session execution core: thousands of concurrent closed-loop
//! sessions on one box.
//!
//! The ROADMAP's "HIL-as-a-service" target is a *fleet*, not a single
//! loop — the ESS cavity-simulator deployment runs 120+ plant instances
//! concurrently, and LLRF development wants many always-on sessions to
//! exercise controllers against. Per-loop performance is already solved
//! (plan+batched stepping, the event core, wide-lane RefTrack); what is
//! left is sessions-per-box, which is purely a scheduling and sharing
//! problem. This module solves it with four pieces the rest of the crate
//! already provides:
//!
//! * **Cooperative time slices.** Every session is a resumable closed-loop
//!   job on the event core: [`LoopHarness::run_supervised_slice`] runs at
//!   most [`MuxConfig::slice_rows`] measured rows per dispatch, then
//!   returns the live cursor. A slice boundary is just an extra block
//!   boundary, so the recorded trace, audit events and deterministic
//!   telemetry are bit-identical to an unsliced
//!   [`LoopHarness::run_supervised`] — no session can starve the fleet,
//!   and slicing costs nothing in fidelity.
//! * **Work-stealing workers.** The [`SessionMux`] owns one run queue per
//!   worker (one OS thread each); a worker pops its own queue front and
//!   steals from other queues' backs when idle. Sessions requeue onto the
//!   worker that last ran them, so engine-arena affinity is preserved
//!   unless load imbalance forces a steal.
//! * **Per-worker engine arenas.** Engines are not `Send`, so sessions
//!   carry only their plain-data [`EngineState`] between slices; each
//!   worker leases a warm engine from its private [`EngineArena`]
//!   ([`EngineArena::checkout`]), restores the session's state on top,
//!   and checks the engine back in after the slice. All workers share the
//!   process-wide [`cil_cgra::cache::global`] compiled-kernel cache, so
//!   kernel compilation is paid once per scenario shape.
//! * **Checkpoint-backed eviction.** A session parked longer than
//!   [`MuxConfig::evict_after`] is serialised to `CILCKPT` bytes (the
//!   PR 4 snapshot format plus one framed trace block) and its live state
//!   dropped; the next touch restores it transparently on a worker. The
//!   restore path is the checkpoint layer's resume path, so an evicted
//!   session's trace and telemetry stay bit-identical to an unevicted
//!   run. [`SessionHandle::snapshot`] exposes the same bytes for
//!   cross-mux migration ([`SessionMux::create_from_snapshot`]).
//!
//! What is *not* shared between sessions: controller, supervisor, fault
//! injector, trace, per-session telemetry registry and engine state are
//! all private per session. Shared: worker threads, engine arenas (rewound
//! between leases), the compiled-kernel cache, and the fleet registry.
//!
//! Fleet telemetry flows through the existing [`TelemetryRegistry`]:
//! sessions live/evicted/restored, dispatch-latency and slice wall-clock
//! histograms, steal counters and the arena hit/miss totals
//! ([`SessionMux::telemetry`]).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::checkpoint::{
    decode_snapshot, decode_trace_log, encode_snapshot, encode_trace_block, Checkpoint,
    CheckpointError,
};
use crate::engine::{EngineKind, EngineState};
use crate::error::{CilError, Result};
use crate::fault::{LoopSupervisor, SupervisorConfig};
use crate::harness::{trace_from_decoded, LoopHarness, LoopTrace, RunCursor, DEFAULT_BLOCK_ROWS};
use crate::scenario::MdeScenario;
use crate::sweep::{EngineArena, ARENA_SLOTS};
use crate::telemetry::{Counter, Gauge, Histogram, TelemetryRegistry};

/// Session-record shards (fixed; ids hash by modulo). More shards than
/// workers keeps handle operations and worker postludes from contending on
/// one map lock.
const SHARDS: usize = 16;

/// How long an idle worker parks before rechecking queues (and whether a
/// shard is due an eviction scan). Pushes notify the condvar, so this
/// bounds only the *eviction* latency, not dispatch latency.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Configuration of a [`SessionMux`].
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Worker threads (0 = one per available core).
    pub workers: usize,
    /// Cooperative time-slice budget: measured rows per dispatch before a
    /// session is requeued. Must be ≥ 1.
    pub slice_rows: u64,
    /// Measured rows per engine step block inside a slice (block-size
    /// invariance makes this a pure throughput knob). Must be ≥ 1.
    pub block_rows: usize,
    /// Evict sessions parked longer than this to checkpoint bytes
    /// (`None` = never evict automatically; [`SessionHandle::evict`] still
    /// works).
    pub evict_after: Option<Duration>,
    /// Warm engines each worker's arena keeps (floored at 1).
    pub arena_slots: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            slice_rows: 1024,
            block_rows: DEFAULT_BLOCK_ROWS,
            evict_after: None,
            arena_slots: ARENA_SLOTS,
        }
    }
}

/// Everything needed to (re)build one session's loop: the immutable
/// configuration half of a session (the mutable half lives in the session
/// body and its checkpoint bytes).
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The experiment the session runs.
    pub scenario: MdeScenario,
    /// Starting engine fidelity (the supervisor may demote it mid-run).
    pub kind: EngineKind,
    /// Scheduled end time, seconds of engine time.
    pub duration_s: f64,
    /// Supervision policy.
    pub supervisor: SupervisorConfig,
    /// Per-session loop telemetry, recorded into this registry when set.
    /// The registry persists in the session record across eviction, so
    /// evicted-and-restored sessions export the same totals as undisturbed
    /// ones.
    pub registry: Option<TelemetryRegistry>,
    /// Whether the beam-phase control loop is closed.
    pub control_enabled: bool,
}

impl SessionSpec {
    /// Spec running `scenario` to its own duration under
    /// [`SupervisorConfig::for_scenario`], closed-loop, no telemetry.
    pub fn new(scenario: MdeScenario, kind: EngineKind) -> Self {
        let supervisor = SupervisorConfig::for_scenario(&scenario);
        let duration_s = scenario.duration_s;
        Self {
            scenario,
            kind,
            duration_s,
            supervisor,
            registry: None,
            control_enabled: true,
        }
    }

    /// Record this session's loop telemetry into `registry` (builder
    /// style).
    pub fn with_registry(mut self, registry: &TelemetryRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }
}

/// Where a session asked to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// Stop at the next slice boundary.
    Pause,
    /// Park once the trace holds at least this many rows.
    Rows(u64),
    /// Run to the scenario end (or beam loss).
    End,
}

/// The mutable, `Send` half of a live session: everything
/// [`LoopHarness::run_supervised_slice`] needs, *except* the engine, which
/// is leased per slice from the dispatching worker's arena and carried
/// between slices as plain [`EngineState`] data.
struct SessionBody {
    harness: LoopHarness,
    supervisor: LoopSupervisor,
    kind: EngineKind,
    ctrl_phase_rad: f64,
    cursor: RunCursor,
    /// `None` until the first slice has run (a fresh lease is already
    /// bit-identical to a new build, so there is nothing to restore).
    engine_state: Option<EngineState>,
    /// Engine time after the last slice, seconds.
    time_s: f64,
}

/// A parked or queued session's state: live, or evicted to checkpoint
/// bytes (restored lazily on the next dispatch).
enum Work {
    Body(Box<SessionBody>),
    Bytes(Vec<u8>),
}

/// Session lifecycle.
enum Phase {
    /// Not queued; waiting for a step/resume (or for the eviction scan).
    Parked(Work),
    /// In a run queue, waiting for a worker.
    Queued(Work),
    /// A worker holds the body and is running a slice.
    Running,
    /// Ran to scheduled end or beam loss; the trace is ready to join.
    Finished(Box<LoopTrace>),
    /// A slice or restore failed; the message is surfaced by
    /// [`SessionHandle::join`].
    Failed(String),
    /// Killed.
    Dead,
}

struct SessionRecord {
    spec: Arc<SessionSpec>,
    phase: Phase,
    target: Target,
    /// Target to re-arm on [`SessionHandle::resume`] after a pause.
    resume_target: Target,
    killed: bool,
    /// True only for sessions seeded from external snapshot bytes
    /// ([`SessionMux::create_from_snapshot`]): the first restore must
    /// re-apply the snapshot's mid-run telemetry onto the (fresh)
    /// registry. In-mux eviction keeps the registry alive in this record,
    /// so re-applying would double-count.
    restore_telemetry: bool,
    rows: u64,
    time_s: f64,
    /// Set when the session was pushed to a run queue; cleared at
    /// dispatch (feeds the dispatch-latency histogram).
    enqueued_at: Option<Instant>,
    last_touch: Instant,
}

struct Shard {
    sessions: Mutex<HashMap<u64, SessionRecord>>,
    cv: Condvar,
}

/// Fleet-level metric handles, resolved once against the mux's registry.
struct FleetMetrics {
    registry: TelemetryRegistry,
    live: Gauge,
    live_count: AtomicI64,
    created: Counter,
    finished: Counter,
    failed: Counter,
    killed: Counter,
    evicted: Counter,
    restored: Counter,
    steals: Counter,
    dispatches: Counter,
    dispatch_latency: Histogram,
    slice_wall: Histogram,
}

impl FleetMetrics {
    fn new(registry: TelemetryRegistry) -> Self {
        Self {
            live: registry.gauge("cil_mux_sessions_live"),
            live_count: AtomicI64::new(0),
            created: registry.counter("cil_mux_sessions_created_total"),
            finished: registry.counter("cil_mux_sessions_finished_total"),
            failed: registry.counter("cil_mux_sessions_failed_total"),
            killed: registry.counter("cil_mux_sessions_killed_total"),
            evicted: registry.counter("cil_mux_evictions_total"),
            restored: registry.counter("cil_mux_restores_total"),
            steals: registry.counter("cil_mux_steals_total"),
            dispatches: registry.counter("cil_mux_dispatches_total"),
            dispatch_latency: registry.histogram("cil_mux_dispatch_latency_wall_seconds"),
            slice_wall: registry.histogram("cil_mux_slice_wall_seconds"),
            registry,
        }
    }

    fn session_opened(&self) {
        self.created.inc();
        let n = self.live_count.fetch_add(1, Ordering::Relaxed) + 1;
        self.live.set(n as f64);
    }

    fn session_closed(&self, outcome: &Counter) {
        outcome.inc();
        let n = self.live_count.fetch_sub(1, Ordering::Relaxed) - 1;
        self.live.set(n as f64);
    }
}

struct MuxShared {
    cfg: MuxConfig,
    shards: Vec<Shard>,
    /// One run queue per worker; a worker pops its own front and steals
    /// from other backs.
    queues: Vec<Mutex<VecDeque<u64>>>,
    /// Wakeup channel for idle workers (version counter + condvar).
    work: (Mutex<u64>, Condvar),
    next_id: AtomicU64,
    shutdown: AtomicBool,
    fleet: FleetMetrics,
}

impl MuxShared {
    fn shard(&self, id: u64) -> &Shard {
        &self.shards[(id as usize) % self.shards.len()]
    }

    /// Push a session onto a run queue and wake a worker.
    fn push_job(&self, queue: usize, id: u64) {
        self.queues[queue % self.queues.len()]
            .lock()
            .unwrap()
            .push_back(id);
        let (lock, cv) = &self.work;
        *lock.lock().unwrap() += 1;
        cv.notify_all();
    }
}

/// The work-stealing multi-session executor. Owns its worker threads;
/// dropping the mux shuts the workers down (sessions still queued at that
/// point never run, and their handles' waits return an error).
pub struct SessionMux {
    shared: Arc<MuxShared>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable typed handle to one session in a [`SessionMux`]. Handles
/// stay valid after the mux is dropped (terminal-state queries still
/// answer), but waits on a shut-down mux return a
/// [`CilError::Session`] error.
#[derive(Clone)]
pub struct SessionHandle {
    shared: Arc<MuxShared>,
    id: u64,
}

/// Coarse public session lifecycle, for [`SessionStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Parked with live in-memory state.
    Parked,
    /// Parked as checkpoint bytes (restored transparently on next touch).
    Evicted,
    /// Waiting in a run queue.
    Queued,
    /// A worker is running a slice right now.
    Running,
    /// Ran to scheduled end or beam loss.
    Finished,
    /// A slice or restore failed.
    Failed,
    /// Killed.
    Dead,
}

impl SessionState {
    /// True for states the session can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Finished | Self::Failed | Self::Dead)
    }
}

/// Point-in-time view of one session.
#[derive(Debug, Clone)]
pub struct SessionStatus {
    /// Lifecycle state.
    pub state: SessionState,
    /// Trace rows recorded so far.
    pub rows: u64,
    /// Engine time reached so far, seconds.
    pub time_s: f64,
    /// Failure message, for [`SessionState::Failed`].
    pub error: Option<String>,
}

impl SessionMux {
    /// Start a mux with `cfg.workers` worker threads (0 = one per
    /// available core).
    pub fn new(cfg: MuxConfig) -> Result<Self> {
        if cfg.slice_rows == 0 {
            return Err(CilError::InvalidConfig(
                "session time-slice budget (slice_rows) must be >= 1".into(),
            ));
        }
        if cfg.block_rows == 0 {
            return Err(CilError::InvalidConfig(
                "block size (measured rows per step block) must be >= 1".into(),
            ));
        }
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            cfg.workers
        };
        let shared = Arc::new(MuxShared {
            cfg,
            shards: (0..SHARDS)
                .map(|_| Shard {
                    sessions: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            work: (Mutex::new(0), Condvar::new()),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            fleet: FleetMetrics::new(TelemetryRegistry::new()),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cil-mux-{w}"))
                    .spawn(move || worker_main(&shared, w))
                    .map_err(|e| CilError::Session(format!("failed to spawn worker thread: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            shared,
            workers: handles,
        })
    }

    /// The fleet registry (sessions live/evicted/restored, dispatch
    /// latency, steals, arena hit/miss totals). Arena counters are folded
    /// in when workers exit (mux drop); everything else is live.
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.shared.fleet.registry
    }

    /// Create a session, parked. [`SessionHandle::run_to_end`],
    /// [`SessionHandle::step_to`] or [`SessionHandle::resume`] start it.
    pub fn create(&self, spec: SessionSpec) -> Result<SessionHandle> {
        let body = build_body(&spec, self.shared.cfg.block_rows)?;
        self.insert(
            spec,
            Phase::Parked(Work::Body(Box::new(body))),
            0,
            0.0,
            false,
        )
    }

    /// Create a session from [`SessionHandle::snapshot`] bytes — possibly
    /// from another mux or a previous process. The bytes are validated
    /// eagerly against `spec`; the full restore happens on first dispatch.
    /// The snapshot's mid-run telemetry is re-applied onto `spec`'s (fresh)
    /// registry, mirroring [`LoopHarness::resume_supervised_from`], so the
    /// continued session's exported totals match an uninterrupted run.
    pub fn create_from_snapshot(&self, spec: SessionSpec, bytes: Vec<u8>) -> Result<SessionHandle> {
        let (ck, _) = split_evicted(&bytes)?;
        if ck.bunches as usize != spec.scenario.bunches {
            return Err(
                CheckpointError::Incompatible("bunch count differs from the scenario").into(),
            );
        }
        let rows = ck.turn;
        let time_s = ck.time_s;
        self.insert(spec, Phase::Parked(Work::Bytes(bytes)), rows, time_s, true)
    }

    fn insert(
        &self,
        spec: SessionSpec,
        phase: Phase,
        rows: u64,
        time_s: f64,
        restore_telemetry: bool,
    ) -> Result<SessionHandle> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let record = SessionRecord {
            spec: Arc::new(spec),
            phase,
            target: Target::End,
            resume_target: Target::End,
            killed: false,
            restore_telemetry,
            rows,
            time_s,
            enqueued_at: None,
            last_touch: Instant::now(),
        };
        self.shared
            .shard(id)
            .sessions
            .lock()
            .unwrap()
            .insert(id, record);
        self.shared.fleet.session_opened();
        Ok(SessionHandle {
            shared: Arc::clone(&self.shared),
            id,
        })
    }
}

impl Drop for SessionMux {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.1.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        for shard in &self.shared.shards {
            shard.cv.notify_all();
        }
    }
}

impl SessionHandle {
    /// This session's mux-unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Run until the trace holds at least `rows` rows (or the run ends
    /// first). Returns immediately; [`Self::wait`] blocks until parked.
    pub fn step_to(&self, rows: u64) -> Result<()> {
        self.arm(Target::Rows(rows))
    }

    /// Run to the scenario end (or beam loss). Returns immediately;
    /// [`Self::join`] blocks for the trace.
    pub fn run_to_end(&self) -> Result<()> {
        self.arm(Target::End)
    }

    /// Re-arm the target in force before the last [`Self::pause`] and
    /// requeue.
    pub fn resume(&self) -> Result<()> {
        let shard = self.shared.shard(self.id);
        let target = {
            let map = shard.sessions.lock().unwrap();
            let rec = map
                .get(&self.id)
                .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
            rec.resume_target
        };
        self.arm(target)
    }

    fn arm(&self, target: Target) -> Result<()> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        let rec = map
            .get_mut(&self.id)
            .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
        match &rec.phase {
            Phase::Finished(_) => return Ok(()), // nothing left to run
            Phase::Failed(msg) => return Err(CilError::Session(msg.clone())),
            Phase::Dead => return Err(CilError::Session("session was killed".into())),
            Phase::Parked(_) | Phase::Queued(_) | Phase::Running => {}
        }
        rec.target = target;
        rec.resume_target = target;
        rec.last_touch = Instant::now();
        if matches!(rec.phase, Phase::Parked(_)) {
            let Phase::Parked(work) = std::mem::replace(&mut rec.phase, Phase::Running) else {
                unreachable!("matched Parked above");
            };
            rec.phase = Phase::Queued(work);
            rec.enqueued_at = Some(Instant::now());
            drop(map);
            let queues = self.shared.queues.len();
            self.shared.push_job(self.id as usize % queues, self.id);
            shard.cv.notify_all();
        }
        Ok(())
    }

    /// Stop at the next slice boundary and park. A queued session is
    /// parked immediately; a running one parks when its slice returns.
    pub fn pause(&self) -> Result<()> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        let rec = map
            .get_mut(&self.id)
            .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
        rec.target = Target::Pause;
        if matches!(rec.phase, Phase::Queued(_)) {
            let Phase::Queued(work) = std::mem::replace(&mut rec.phase, Phase::Running) else {
                unreachable!("matched Queued above");
            };
            // The stale run-queue entry is harmless: dispatch ignores
            // sessions that are not Queued.
            rec.phase = Phase::Parked(work);
            rec.enqueued_at = None;
        }
        drop(map);
        shard.cv.notify_all();
        Ok(())
    }

    /// Kill the session. Parked and queued sessions die immediately;
    /// a running one dies when its slice returns. Terminal sessions are
    /// left as they are.
    pub fn kill(&self) -> Result<()> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        let rec = map
            .get_mut(&self.id)
            .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
        rec.killed = true;
        if matches!(rec.phase, Phase::Parked(_) | Phase::Queued(_)) {
            rec.phase = Phase::Dead;
            self.shared.fleet.session_closed(&self.shared.fleet.killed);
        }
        drop(map);
        shard.cv.notify_all();
        Ok(())
    }

    /// Point-in-time status.
    pub fn status(&self) -> Result<SessionStatus> {
        let shard = self.shared.shard(self.id);
        let map = shard.sessions.lock().unwrap();
        let rec = map
            .get(&self.id)
            .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
        Ok(status_of(rec))
    }

    /// This session's loop-telemetry registry, when one was attached.
    pub fn registry(&self) -> Result<Option<TelemetryRegistry>> {
        let shard = self.shared.shard(self.id);
        let map = shard.sessions.lock().unwrap();
        let rec = map
            .get(&self.id)
            .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
        Ok(rec.spec.registry.clone())
    }

    /// Block until the session is parked or terminal (i.e. not queued and
    /// not running), and return its status.
    pub fn wait(&self) -> Result<SessionStatus> {
        self.wait_where(|rec| !matches!(rec.phase, Phase::Queued(_) | Phase::Running))
    }

    /// Block until the session is terminal and return its trace.
    /// [`SessionState::Failed`] and [`SessionState::Dead`] surface as
    /// [`CilError::Session`]. The trace is cloned, so every clone of the
    /// handle can join.
    pub fn join(&self) -> Result<LoopTrace> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        loop {
            let rec = map
                .get(&self.id)
                .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
            match &rec.phase {
                Phase::Finished(trace) => return Ok((**trace).clone()),
                Phase::Failed(msg) => return Err(CilError::Session(msg.clone())),
                Phase::Dead => return Err(CilError::Session("session was killed".into())),
                _ => {}
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(CilError::Session("session executor shut down".into()));
            }
            let (guard, _timeout) = shard
                .cv
                .wait_timeout(map, Duration::from_millis(50))
                .unwrap();
            map = guard;
        }
    }

    fn wait_where(&self, ready: impl Fn(&SessionRecord) -> bool) -> Result<SessionStatus> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        loop {
            let rec = map
                .get(&self.id)
                .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
            if ready(rec) {
                return Ok(status_of(rec));
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(CilError::Session("session executor shut down".into()));
            }
            let (guard, _timeout) = shard
                .cv
                .wait_timeout(map, Duration::from_millis(50))
                .unwrap();
            map = guard;
        }
    }

    /// Serialise the session to `CILCKPT` bytes: a framed snapshot of the
    /// complete mutable loop state plus one framed trace block. Waits out
    /// a running slice first. The bytes restore bit-identically through
    /// [`SessionMux::create_from_snapshot`] — on this mux, another, or a
    /// later process. The session itself is left untouched.
    pub fn snapshot(&self) -> Result<Vec<u8>> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        loop {
            let rec = map
                .get_mut(&self.id)
                .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
            match &mut rec.phase {
                Phase::Parked(work) | Phase::Queued(work) => {
                    return match work {
                        Work::Bytes(bytes) => Ok(bytes.clone()),
                        Work::Body(body) => serialize_body(&rec.spec, body, rec.rows),
                    };
                }
                Phase::Running => {}
                Phase::Finished(_) => {
                    return Err(CilError::Session(
                        "session already finished; join it for the trace".into(),
                    ));
                }
                Phase::Failed(msg) => return Err(CilError::Session(msg.clone())),
                Phase::Dead => return Err(CilError::Session("session was killed".into())),
            }
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(CilError::Session("session executor shut down".into()));
            }
            let (guard, _timeout) = shard
                .cv
                .wait_timeout(map, Duration::from_millis(50))
                .unwrap();
            map = guard;
        }
    }

    /// Force-evict a *parked* session to checkpoint bytes right now,
    /// regardless of [`MuxConfig::evict_after`]. Returns `true` when the
    /// session was evicted (false: already evicted, never ran, queued,
    /// running, or terminal).
    pub fn evict(&self) -> Result<bool> {
        let shard = self.shared.shard(self.id);
        let mut map = shard.sessions.lock().unwrap();
        let rec = map
            .get_mut(&self.id)
            .ok_or_else(|| CilError::Session(format!("unknown session {}", self.id)))?;
        Ok(evict_record(rec, &self.shared.fleet))
    }
}

fn status_of(rec: &SessionRecord) -> SessionStatus {
    let (state, error) = match &rec.phase {
        Phase::Parked(Work::Body(_)) => (SessionState::Parked, None),
        Phase::Parked(Work::Bytes(_)) => (SessionState::Evicted, None),
        Phase::Queued(_) => (SessionState::Queued, None),
        Phase::Running => (SessionState::Running, None),
        Phase::Finished(_) => (SessionState::Finished, None),
        Phase::Failed(msg) => (SessionState::Failed, Some(msg.clone())),
        Phase::Dead => (SessionState::Dead, None),
    };
    SessionStatus {
        state,
        rows: rec.rows,
        time_s: rec.time_s,
        error,
    }
}

/// Evict one record if (and only if) it is parked with live, previously
/// run state. Serialisation failures park the session as Failed.
fn evict_record(rec: &mut SessionRecord, fleet: &FleetMetrics) -> bool {
    let Phase::Parked(Work::Body(body)) = &rec.phase else {
        return false;
    };
    if body.engine_state.is_none() {
        // Never ran: there is no engine state to capture, and the body is
        // nothing but the spec's defaults — eviction would save nothing.
        return false;
    }
    match serialize_body(&rec.spec, body, rec.rows) {
        Ok(bytes) => {
            rec.phase = Phase::Parked(Work::Bytes(bytes));
            fleet.evicted.inc();
            true
        }
        Err(e) => {
            rec.phase = Phase::Failed(e.to_string());
            fleet.session_closed(&fleet.failed);
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Session body construction / serialisation
// ---------------------------------------------------------------------------

/// Build a fresh (row-zero) session body from its spec.
fn build_body(spec: &SessionSpec, block_rows: usize) -> Result<SessionBody> {
    let mut harness = LoopHarness::for_scenario(&spec.scenario, spec.control_enabled)
        .with_block_rows(block_rows)?;
    if let Some(registry) = &spec.registry {
        harness = harness.with_telemetry(registry);
    }
    Ok(SessionBody {
        harness,
        supervisor: LoopSupervisor::new(spec.supervisor),
        kind: spec.kind,
        ctrl_phase_rad: 0.0,
        cursor: RunCursor::fresh(spec.scenario.bunches),
        engine_state: None,
        time_s: 0.0,
    })
}

/// Serialise a session body to eviction bytes:
/// `[u64 le snapshot_len][CILCKPT snapshot][framed trace block]`.
fn serialize_body(spec: &SessionSpec, body: &SessionBody, rows: u64) -> Result<Vec<u8>> {
    let engine = match &body.engine_state {
        Some(state) => state.clone(),
        // Snapshot of a session that never ran a slice: a fresh build's
        // state is exactly what a restore should produce.
        None => body.kind.build(&spec.scenario)?.save_state(),
    };
    let trace = &body.cursor.trace;
    let ck = Checkpoint {
        turn: rows,
        time_s: body.time_s,
        supervised: true,
        kind: body.kind,
        bunches: spec.scenario.bunches as u32,
        engine,
        controller: body.harness.controller.state(),
        injector: body.harness.faults.state(),
        supervisor: Some(body.supervisor.state()),
        ctrl_phase_rad: body.ctrl_phase_rad,
        last_jump_deg: body.cursor.last_jump,
        rows,
        events: trace.events.len() as u64,
        jumps: trace.jump_times.len() as u64,
        log_bytes: 0,
        telemetry: body
            .harness
            .metrics()
            .map(crate::telemetry::LoopMetrics::checkpoint_snapshot),
    };
    let snap = encode_snapshot(&ck);
    let block = encode_trace_block(trace, 0, 0, 0);
    let mut out = Vec::with_capacity(8 + snap.len() + block.len());
    out.extend_from_slice(&(snap.len() as u64).to_le_bytes());
    out.extend_from_slice(&snap);
    out.extend_from_slice(&block);
    Ok(out)
}

/// Split eviction bytes back into their snapshot and decoded trace.
fn split_evicted(bytes: &[u8]) -> Result<(Checkpoint, crate::checkpoint::DecodedTrace)> {
    if bytes.len() < 8 {
        return Err(CheckpointError::TooShort.into());
    }
    let snap_len = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    let rest = &bytes[8..];
    if rest.len() < snap_len {
        return Err(CheckpointError::TooShort.into());
    }
    let ck = decode_snapshot(&rest[..snap_len])?;
    let decoded = decode_trace_log(&rest[snap_len..])?;
    Ok((ck, decoded))
}

/// Rebuild a live session body from eviction bytes. `restore_telemetry`
/// re-applies the snapshot's mid-run telemetry (external snapshots into a
/// fresh registry); in-mux restores skip it — the registry never left the
/// session record, so its values are already correct.
fn restore_body(
    spec: &SessionSpec,
    bytes: &[u8],
    block_rows: usize,
    restore_telemetry: bool,
) -> Result<SessionBody> {
    let (ck, decoded) = split_evicted(bytes)?;
    if ck.bunches as usize != spec.scenario.bunches {
        return Err(CheckpointError::Incompatible("bunch count differs from the scenario").into());
    }
    let mut body = build_body(spec, block_rows)?;
    if !body.harness.controller.restore(&ck.controller) {
        return Err(
            CheckpointError::Incompatible("controller state does not fit the scenario").into(),
        );
    }
    if !body.harness.faults.restore(&ck.injector) {
        return Err(CheckpointError::Incompatible(
            "fault-injector state does not fit the scenario's fault program",
        )
        .into());
    }
    let Some(sup_state) = &ck.supervisor else {
        return Err(CheckpointError::Malformed("session snapshot lacks supervisor state").into());
    };
    body.supervisor.restore(sup_state);
    if restore_telemetry {
        if let (Some(metrics), Some(t)) = (body.harness.metrics(), &ck.telemetry) {
            if !metrics.restore_checkpoint(t) {
                return Err(
                    CheckpointError::Incompatible("telemetry histogram shape changed").into(),
                );
            }
        }
    }
    body.kind = ck.kind;
    body.ctrl_phase_rad = ck.ctrl_phase_rad;
    body.cursor = RunCursor {
        trace: trace_from_decoded(decoded, ck.bunches as usize),
        last_jump: ck.last_jump_deg,
    };
    body.engine_state = Some(ck.engine);
    body.time_s = ck.time_s;
    Ok(body)
}

// ---------------------------------------------------------------------------
// Worker loop
// ---------------------------------------------------------------------------

fn worker_main(shared: &MuxShared, worker: usize) {
    let mut arena = EngineArena::with_slots(shared.cfg.arena_slots);
    let mut evict_cursor = worker; // stagger scan starts across workers
    while !shared.shutdown.load(Ordering::Acquire) {
        match next_job(shared, worker) {
            Some(id) => dispatch(shared, &mut arena, worker, id),
            None => {
                if shared.cfg.evict_after.is_some() {
                    scan_evictions(shared, evict_cursor % shared.shards.len());
                    evict_cursor = evict_cursor.wrapping_add(1);
                }
                let (lock, cv) = &shared.work;
                let guard = lock.lock().unwrap();
                let _ = cv.wait_timeout(guard, IDLE_PARK).unwrap();
            }
        }
    }
    // Fold this worker's arena reuse counters into the fleet registry
    // (counters sum across workers, so the totals are fleet-exact).
    arena.sample_telemetry(&shared.fleet.registry);
}

/// Pop the worker's own queue front, else steal another queue's back.
fn next_job(shared: &MuxShared, worker: usize) -> Option<u64> {
    if let Some(id) = shared.queues[worker].lock().unwrap().pop_front() {
        return Some(id);
    }
    let n = shared.queues.len();
    for i in 1..n {
        let victim = (worker + i) % n;
        if let Some(id) = shared.queues[victim].lock().unwrap().pop_back() {
            shared.fleet.steals.inc();
            return Some(id);
        }
    }
    None
}

/// Evict every over-deadline parked session in one shard.
fn scan_evictions(shared: &MuxShared, shard_idx: usize) {
    let Some(deadline) = shared.cfg.evict_after else {
        return;
    };
    let shard = &shared.shards[shard_idx];
    let mut map = shard.sessions.lock().unwrap();
    let mut changed = false;
    for rec in map.values_mut() {
        if rec.last_touch.elapsed() >= deadline {
            changed |= evict_record(rec, &shared.fleet);
        }
    }
    drop(map);
    if changed {
        shard.cv.notify_all();
    }
}

/// Run one cooperative time slice of session `id` on this worker.
fn dispatch(shared: &MuxShared, arena: &mut EngineArena, worker: usize, id: u64) {
    let shard = shared.shard(id);
    // Claim the session. Stale queue entries (paused, killed, already
    // claimed) are simply dropped.
    let (work, spec, target, restore_telemetry) = {
        let mut map = shard.sessions.lock().unwrap();
        let Some(rec) = map.get_mut(&id) else { return };
        if !matches!(rec.phase, Phase::Queued(_)) {
            return;
        }
        let Phase::Queued(work) = std::mem::replace(&mut rec.phase, Phase::Running) else {
            unreachable!("matched Queued above");
        };
        if let Some(t0) = rec.enqueued_at.take() {
            shared
                .fleet
                .dispatch_latency
                .observe(t0.elapsed().as_secs_f64());
        }
        shared.fleet.dispatches.inc();
        (
            work,
            Arc::clone(&rec.spec),
            rec.target,
            rec.restore_telemetry,
        )
    };

    let t_slice = Instant::now();
    let mut body = match work {
        Work::Body(body) => body,
        Work::Bytes(bytes) => {
            match restore_body(&spec, &bytes, shared.cfg.block_rows, restore_telemetry) {
                Ok(body) => {
                    shared.fleet.restored.inc();
                    Box::new(body)
                }
                Err(e) => {
                    let mut map = shard.sessions.lock().unwrap();
                    if let Some(rec) = map.get_mut(&id) {
                        rec.phase = Phase::Failed(e.to_string());
                        shared.fleet.session_closed(&shared.fleet.failed);
                    }
                    drop(map);
                    shard.cv.notify_all();
                    return;
                }
            }
        }
    };

    // The slice itself: lease an engine, restore the session's state on
    // top, run up to slice_rows more rows, save the state back.
    let rows_before = body.cursor.trace.times.len() as u64;
    let limit = match target {
        Target::Pause => rows_before,
        Target::Rows(n) => n.min(rows_before + shared.cfg.slice_rows),
        Target::End => rows_before + shared.cfg.slice_rows,
    };
    let slice_result: Result<()> = (|| {
        if limit <= rows_before {
            return Ok(());
        }
        let mut lease = arena.checkout(&spec.scenario, body.kind)?;
        if let Some(state) = &body.engine_state {
            if !lease.engine().restore_state(state) {
                return Err(CheckpointError::Incompatible(
                    "saved engine state does not fit a freshly built engine",
                )
                .into());
            }
        }
        let cursor = std::mem::replace(&mut body.cursor, RunCursor::fresh(0));
        let cursor = body.harness.run_supervised_slice(
            lease.engine(),
            &spec.scenario,
            &mut body.kind,
            &mut body.ctrl_phase_rad,
            &mut body.supervisor,
            spec.duration_s,
            limit,
            cursor,
        )?;
        body.engine_state = Some(lease.engine().save_state());
        body.time_s = lease.engine().time();
        body.cursor = cursor;
        // A demotion rebuilt the engine in the lease's box; the arena must
        // not re-admit it under the checkout key.
        if lease.kind() == body.kind {
            arena.checkin(lease);
        }
        Ok(())
    })();
    shared
        .fleet
        .slice_wall
        .observe(t_slice.elapsed().as_secs_f64());

    // Postlude: decide the session's next phase under the shard lock,
    // honouring any pause/kill that arrived mid-slice.
    let mut map = shard.sessions.lock().unwrap();
    let Some(rec) = map.get_mut(&id) else { return };
    rec.restore_telemetry = false;
    rec.rows = body.cursor.trace.times.len() as u64;
    rec.time_s = body.time_s;
    rec.last_touch = Instant::now();
    match slice_result {
        Err(e) => {
            rec.phase = Phase::Failed(e.to_string());
            shared.fleet.session_closed(&shared.fleet.failed);
        }
        Ok(()) => {
            let completed = !body.cursor.trace.outcome.survived() || body.time_s >= spec.duration_s;
            if rec.killed {
                rec.phase = Phase::Dead;
                shared.fleet.session_closed(&shared.fleet.killed);
            } else if completed {
                rec.phase = Phase::Finished(Box::new(body.cursor.trace));
                shared.fleet.session_closed(&shared.fleet.finished);
            } else {
                let reached = match rec.target {
                    Target::Pause => true,
                    Target::Rows(n) => rec.rows >= n,
                    Target::End => false,
                };
                if reached {
                    rec.phase = Phase::Parked(Work::Body(body));
                } else {
                    rec.phase = Phase::Queued(Work::Body(body));
                    rec.enqueued_at = Some(Instant::now());
                    drop(map);
                    // Requeue onto this worker: arena affinity, stolen
                    // only under load imbalance.
                    shared.push_job(worker, id);
                    shard.cv.notify_all();
                    return;
                }
            }
        }
    }
    drop(map);
    shard.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LoopSupervisor;

    fn scenario() -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.01;
        s.bunches = 1;
        s
    }

    fn mux(workers: usize, slice_rows: u64) -> SessionMux {
        SessionMux::new(MuxConfig {
            workers,
            slice_rows,
            ..MuxConfig::default()
        })
        .unwrap()
    }

    fn reference(s: &MdeScenario, registry: Option<&TelemetryRegistry>) -> LoopTrace {
        let mut harness = LoopHarness::for_scenario(s, true);
        if let Some(r) = registry {
            harness = harness.with_telemetry(r);
        }
        let mut sup = LoopSupervisor::for_scenario(s);
        harness
            .run_supervised(s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap()
    }

    fn assert_traces_equal(a: &LoopTrace, b: &LoopTrace) {
        assert_eq!(a.times, b.times);
        assert_eq!(a.bunch_phase_deg, b.bunch_phase_deg);
        assert_eq!(a.mean_phase_deg, b.mean_phase_deg);
        assert_eq!(a.control_hz, b.control_hz);
        assert_eq!(a.jump_times, b.jump_times);
        assert_eq!(a.events, b.events);
    }

    /// Deterministic (non-wall) metric values, sorted by name.
    fn deterministic_metrics(r: &TelemetryRegistry) -> Vec<(String, String)> {
        let snap = r.snapshot();
        let mut out: Vec<(String, String)> = Vec::new();
        for (name, v) in &snap.counters {
            if !name.contains("wall") {
                out.push((name.clone(), v.to_string()));
            }
        }
        for (name, v) in &snap.gauges {
            if !name.contains("wall") {
                out.push((name.clone(), format!("{v:?}")));
            }
        }
        for (name, h) in &snap.histograms {
            if !name.contains("wall") {
                out.push((
                    name.clone(),
                    format!("{:?}/{}/{:?}", h.buckets, h.count, h.sum),
                ));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn sliced_session_matches_run_supervised() {
        let s = scenario();
        let want = reference(&s, None);
        let m = mux(1, 64);
        let h = m
            .create(SessionSpec::new(s.clone(), EngineKind::Map))
            .unwrap();
        h.run_to_end().unwrap();
        let got = h.join().unwrap();
        assert_traces_equal(&got, &want);
        assert!(got.survived());
    }

    #[test]
    fn fleet_of_sessions_all_match_on_several_workers() {
        let s = scenario();
        let want = reference(&s, None);
        let m = mux(4, 128);
        let handles: Vec<_> = (0..24)
            .map(|_| {
                let h = m
                    .create(SessionSpec::new(s.clone(), EngineKind::Map))
                    .unwrap();
                h.run_to_end().unwrap();
                h
            })
            .collect();
        for h in &handles {
            assert_traces_equal(&h.join().unwrap(), &want);
        }
        let snap = m.telemetry().snapshot();
        assert_eq!(snap.counter("cil_mux_sessions_finished_total"), Some(24));
        assert_eq!(snap.gauge("cil_mux_sessions_live"), Some(0.0));
        assert!(snap.counter("cil_mux_dispatches_total").unwrap() >= 24);
    }

    #[test]
    fn pause_evict_resume_stays_bit_identical() {
        let s = scenario();
        let reg_ref = TelemetryRegistry::new();
        let want = reference(&s, Some(&reg_ref));
        let m = mux(2, 64);
        let reg = TelemetryRegistry::new();
        let h = m
            .create(SessionSpec::new(s.clone(), EngineKind::Map).with_registry(&reg))
            .unwrap();
        h.step_to(300).unwrap();
        let st = h.wait().unwrap();
        assert!(st.rows >= 300, "stepped to {}", st.rows);
        assert_eq!(st.state, SessionState::Parked);
        assert!(h.evict().unwrap(), "parked session must evict");
        assert_eq!(h.status().unwrap().state, SessionState::Evicted);
        h.run_to_end().unwrap();
        let got = h.join().unwrap();
        assert_traces_equal(&got, &want);
        assert_eq!(deterministic_metrics(&reg), deterministic_metrics(&reg_ref));
        let snap = m.telemetry().snapshot();
        assert_eq!(snap.counter("cil_mux_evictions_total"), Some(1));
        assert_eq!(snap.counter("cil_mux_restores_total"), Some(1));
    }

    #[test]
    fn snapshot_restores_into_a_fresh_mux_bit_identically() {
        let s = scenario();
        let reg_ref = TelemetryRegistry::new();
        let want = reference(&s, Some(&reg_ref));

        let m1 = mux(1, 64);
        let reg1 = TelemetryRegistry::new();
        let h1 = m1
            .create(SessionSpec::new(s.clone(), EngineKind::Map).with_registry(&reg1))
            .unwrap();
        h1.step_to(500).unwrap();
        h1.wait().unwrap();
        let bytes = h1.snapshot().unwrap();
        h1.kill().unwrap();
        assert!(h1.join().is_err(), "killed session must not join");

        let m2 = mux(2, 128);
        let reg2 = TelemetryRegistry::new();
        let h2 = m2
            .create_from_snapshot(
                SessionSpec::new(s.clone(), EngineKind::Map).with_registry(&reg2),
                bytes,
            )
            .unwrap();
        assert_eq!(h2.status().unwrap().state, SessionState::Evicted);
        h2.run_to_end().unwrap();
        let got = h2.join().unwrap();
        assert_traces_equal(&got, &want);
        assert_eq!(
            deterministic_metrics(&reg2),
            deterministic_metrics(&reg_ref)
        );
    }

    #[test]
    fn snapshot_of_a_never_run_session_restores_from_row_zero() {
        let s = scenario();
        let want = reference(&s, None);
        let m = mux(1, 256);
        let h = m
            .create(SessionSpec::new(s.clone(), EngineKind::Map))
            .unwrap();
        let bytes = h.snapshot().unwrap();
        let h2 = m
            .create_from_snapshot(SessionSpec::new(s.clone(), EngineKind::Map), bytes)
            .unwrap();
        h2.run_to_end().unwrap();
        assert_traces_equal(&h2.join().unwrap(), &want);
    }

    #[test]
    fn deadline_eviction_fires_without_explicit_evict() {
        let s = scenario();
        let m = SessionMux::new(MuxConfig {
            workers: 1,
            slice_rows: 64,
            evict_after: Some(Duration::from_millis(1)),
            ..MuxConfig::default()
        })
        .unwrap();
        let h = m
            .create(SessionSpec::new(s.clone(), EngineKind::Map))
            .unwrap();
        h.step_to(200).unwrap();
        h.wait().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while h.status().unwrap().state != SessionState::Evicted {
            assert!(Instant::now() < deadline, "eviction scan never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        h.run_to_end().unwrap();
        let want = reference(&s, None);
        assert_traces_equal(&h.join().unwrap(), &want);
    }

    #[test]
    fn kill_while_parked_is_immediate_and_final() {
        let s = scenario();
        let m = mux(1, 64);
        let h = m.create(SessionSpec::new(s, EngineKind::Map)).unwrap();
        h.kill().unwrap();
        assert_eq!(h.status().unwrap().state, SessionState::Dead);
        assert!(h.run_to_end().is_err());
        assert!(matches!(h.join(), Err(CilError::Session(_))));
        let snap = m.telemetry().snapshot();
        assert_eq!(snap.counter("cil_mux_sessions_killed_total"), Some(1));
        assert_eq!(snap.gauge("cil_mux_sessions_live"), Some(0.0));
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(SessionMux::new(MuxConfig {
            slice_rows: 0,
            ..MuxConfig::default()
        })
        .is_err());
        assert!(SessionMux::new(MuxConfig {
            block_rows: 0,
            ..MuxConfig::default()
        })
        .is_err());
    }
}
