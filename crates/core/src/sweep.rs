//! Parallel scenario sweeps.
//!
//! The ablations (A3, A5, …) evaluate many independent scenario variants;
//! each variant is seconds of simulation, so running them across cores is
//! the difference between an interactive sweep and a coffee break. Inputs
//! are split into contiguous chunks, one scoped thread per chunk, and every
//! worker writes its results into its own disjoint `&mut` slice of the
//! output — no locks anywhere. [`parallel_sweep_with`] additionally hands
//! each worker a reusable per-thread state arena (e.g. a warm
//! engine/trace allocation, or a handle that keeps compiled-kernel cache
//! entries alive) built once per thread instead of once per item.
//! [`parallel_sweep_telemetry`] specialises the state arena to a per-worker
//! [`TelemetryRegistry`] merged into a root registry at join — each worker
//! records into private atomics, so the sweep hot path takes no shared lock.

use crate::engine::{BeamEngine, EngineKind};
use crate::error::Result;
use crate::scenario::MdeScenario;
use crate::telemetry::TelemetryRegistry;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Context attached to a panic that escaped a sweep worker: which input
/// blew up, and its scenario digest when the caller supplied one.
///
/// A bare worker panic used to surface as an anonymous join panic — useless
/// for a 10⁵-point campaign where "which point?" is the whole question. Every
/// `parallel_sweep_*` entry point now re-raises worker panics through
/// [`resume_unwind`] with this struct as the payload; callers that want to
/// map a panic back to a point (the campaign layer's quarantine path)
/// downcast the payload to `SweepPanic`.
pub struct SweepPanic {
    /// Index of the failing item in the sweep's input slice.
    pub index: usize,
    /// Caller-supplied digest of the failing input (e.g.
    /// [`MdeScenario::digest`]); 0 when the sweep variant attaches none.
    pub digest: u64,
    /// The original panic payload.
    pub payload: Box<dyn Any + Send>,
}

impl SweepPanic {
    /// Human-readable form of the original payload: the `&str` / `String`
    /// message when the panic carried one, a placeholder otherwise.
    pub fn message(&self) -> &str {
        panic_message(&self.payload)
    }
}

impl std::fmt::Debug for SweepPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPanic")
            .field("index", &self.index)
            .field("digest", &format_args!("{:016x}", self.digest))
            .field("message", &self.message())
            .finish()
    }
}

/// Extract the conventional `&str` / `String` message from a panic payload.
pub(crate) fn panic_message(payload: &Box<dyn Any + Send>) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// Slots an [`EngineArena`] keeps warm before evicting least-recently-used
/// engines. Sized for the fleet executor's working set: one slot per
/// fidelity a mixed-session worker realistically cycles through.
pub const ARENA_SLOTS: usize = 4;

/// Per-worker engine cache: keeps recently-built engines alive (LRU over
/// [`ARENA_SLOTS`] slots, keyed on [`EngineKind`] +
/// [`MdeScenario::engine_config_eq`]) and leases them out again — rewound
/// to their freshly-built state — whenever the next lease would build an
/// identical engine.
///
/// Sweeps that vary only harness-side knobs (controller gain, jump program,
/// duration) hit the cache on every point after the first, skipping engine
/// construction — for the CGRA fidelity that is the schedule lookup,
/// executor build and pipeline warmup per point. The rewind goes through
/// [`BeamEngine::restore_state`], the same snapshot/restore pair the
/// checkpoint layer proves bit-identical, so a leased engine is
/// indistinguishable from a freshly built one. The session executor
/// ([`crate::session`]) additionally checks engines *out* of the arena
/// ([`Self::checkout`]/[`Self::checkin`]), holding one across a time slice
/// while the arena stays usable for the worker's other sessions.
pub struct EngineArena {
    /// Warm engines, least-recently-used first.
    slots: Vec<ArenaSlot>,
    /// LRU capacity (≥ 1).
    capacity: usize,
    hits: usize,
    misses: usize,
}

impl Default for EngineArena {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            capacity: ARENA_SLOTS,
            hits: 0,
            misses: 0,
        }
    }
}

struct ArenaSlot {
    kind: EngineKind,
    scenario: MdeScenario,
    engine: Box<dyn BeamEngine>,
    fresh: crate::engine::EngineState,
}

/// An engine checked out of an [`EngineArena`]: the engine itself plus the
/// bookkeeping needed to re-admit it ([`EngineArena::checkin`]). The engine
/// is handed over rewound to its freshly-built state; the holder may
/// restore any saved state on top.
pub struct ArenaLease {
    engine: Box<dyn BeamEngine>,
    kind: EngineKind,
    scenario: MdeScenario,
    fresh: crate::engine::EngineState,
}

impl ArenaLease {
    /// The leased engine (boxed, so a supervised slice can swap the
    /// fidelity in place on demotion).
    pub fn engine(&mut self) -> &mut Box<dyn BeamEngine> {
        &mut self.engine
    }

    /// Fidelity the lease was checked out under.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }
}

impl EngineArena {
    /// An empty arena (no engine cached yet), [`ARENA_SLOTS`] slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty arena holding up to `slots` warm engines (floored at 1).
    pub fn with_slots(slots: usize) -> Self {
        Self {
            capacity: slots.max(1),
            ..Self::default()
        }
    }

    /// Index of the slot matching (`kind`, `scenario`), if any.
    fn find(&self, scenario: &MdeScenario, kind: EngineKind) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.kind == kind && s.scenario.engine_config_eq(scenario))
    }

    /// Take the matching slot out, rewound to its freshly-built state; a
    /// rewind failure (the fresh snapshot no longer fits the engine that
    /// produced it) discards the slot — the caller must rebuild.
    fn take_rewound(&mut self, scenario: &MdeScenario, kind: EngineKind) -> Option<ArenaSlot> {
        let i = self.find(scenario, kind)?;
        let mut slot = self.slots.remove(i);
        if slot.engine.restore_state(&slot.fresh) {
            Some(slot)
        } else {
            None
        }
    }

    /// Push a slot, evicting the least-recently-used one over capacity.
    fn admit(&mut self, slot: ArenaSlot) {
        self.slots.push(slot);
        while self.slots.len() > self.capacity {
            self.slots.remove(0);
        }
    }

    /// Lease an engine for `scenario` at fidelity `kind`: reuses a cached
    /// engine rewound to its initial state when the configuration matches,
    /// builds (and caches) a fresh one otherwise.
    pub fn engine(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
    ) -> Result<&mut dyn BeamEngine> {
        match self.take_rewound(scenario, kind) {
            Some(slot) => {
                self.hits += 1;
                self.admit(slot);
            }
            None => {
                let engine = kind.build(scenario)?;
                let fresh = engine.save_state();
                self.misses += 1;
                self.admit(ArenaSlot {
                    kind,
                    scenario: scenario.clone(),
                    engine,
                    fresh,
                });
            }
        }
        Ok(self
            .slots
            .last_mut()
            .expect("slot was just admitted")
            .engine
            .as_mut())
    }

    /// Check an engine *out* of the arena (building one on a miss): the
    /// caller owns it until [`Self::checkin`]. The engine comes rewound to
    /// its freshly-built state, bit-identical to a new build.
    pub fn checkout(&mut self, scenario: &MdeScenario, kind: EngineKind) -> Result<ArenaLease> {
        let slot = match self.take_rewound(scenario, kind) {
            Some(slot) => {
                self.hits += 1;
                slot
            }
            None => {
                let engine = kind.build(scenario)?;
                let fresh = engine.save_state();
                self.misses += 1;
                ArenaSlot {
                    kind,
                    scenario: scenario.clone(),
                    engine,
                    fresh,
                }
            }
        };
        Ok(ArenaLease {
            engine: slot.engine,
            kind: slot.kind,
            scenario: slot.scenario,
            fresh: slot.fresh,
        })
    }

    /// Return a checked-out engine to the warm pool. Callers must *drop*
    /// (not check in) a lease whose engine was rebuilt at another fidelity
    /// mid-slice — the lease's fresh-state snapshot no longer describes the
    /// box's contents; [`Self::checkin`] detects the mismatch and discards
    /// the lease rather than poisoning the cache.
    pub fn checkin(&mut self, lease: ArenaLease) {
        let ArenaLease {
            mut engine,
            kind,
            scenario,
            fresh,
        } = lease;
        // A demoted lease holds a different fidelity than it was checked
        // out under; its fresh-state snapshot no longer fits the box's
        // contents. The rewind doubles as the compatibility check — on
        // failure the lease is discarded rather than poisoning the cache.
        if !engine.restore_state(&fresh) {
            return;
        }
        // One warm engine per key: a concurrent-looking checkout/checkin
        // sequence on the same key keeps the most recent engine.
        if let Some(i) = self.find(&scenario, kind) {
            self.slots.remove(i);
        }
        self.admit(ArenaSlot {
            kind,
            scenario,
            engine,
            fresh,
        });
    }

    /// Leases served from the cached engine.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Leases that had to build a fresh engine.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Drop every cached engine (hit/miss counters survive). The campaign
    /// runner calls this after a leased engine panicked mid-point: the
    /// engine's internal state is suspect, so the next lease must rebuild.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Record the arena's lease counters into `reg` as
    /// `cil_arena_hits_total` / `cil_arena_misses_total`.
    ///
    /// Call once per worker at sweep join (before the registry is absorbed
    /// into the root): counters sum across workers under
    /// [`TelemetryRegistry::absorb`], so the root totals are exact over the
    /// whole sweep. (The ISSUE sketch said "gauges", but absorb merges
    /// gauges by max — summing lease counts across workers needs counters.)
    pub fn sample_telemetry(&self, reg: &TelemetryRegistry) {
        reg.counter("cil_arena_hits_total").add(self.hits as u64);
        reg.counter("cil_arena_misses_total")
            .add(self.misses as u64);
    }
}

/// Run `f` over every item of `inputs` on up to `threads` worker threads,
/// giving each worker a private state value built by `init` (once per
/// thread). Results come back in input order; `f` must be deterministic per
/// input for the sweep to be reproducible (all our simulations are).
///
/// Chunking is contiguous, so for a fixed input list the (input, worker)
/// assignment — and therefore any per-thread state reuse — is itself
/// deterministic for a given thread count, and the *results* are identical
/// across thread counts.
pub fn parallel_sweep_with<I, O, S, G, F>(inputs: &[I], threads: usize, init: G, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &I) -> O + Sync,
{
    parallel_sweep_with_merge(inputs, threads, init, f, |_| {})
}

/// [`parallel_sweep_with`] plus a `merge` hook: each worker calls
/// `merge(state)` on its own thread after finishing its chunk, before
/// joining. `merge` observes every worker's final state exactly once
/// regardless of thread count — the primitive behind
/// [`parallel_sweep_telemetry`]'s lossless registry merging.
pub fn parallel_sweep_with_merge<I, O, S, G, F, M>(
    inputs: &[I],
    threads: usize,
    init: G,
    f: F,
    merge: M,
) -> Vec<O>
where
    I: Sync,
    O: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &I) -> O + Sync,
    M: Fn(S) + Sync,
{
    parallel_sweep_with_merge_digest(inputs, threads, init, f, merge, |_| 0)
}

/// [`parallel_sweep_with_merge`] plus a `digest` hook used only on the
/// failure path: when `f` panics, the unwind is resumed with a
/// [`SweepPanic`] payload carrying the failing input's index and
/// `digest(input)` so the error names the point instead of just the thread.
pub fn parallel_sweep_with_merge_digest<I, O, S, G, F, M, D>(
    inputs: &[I],
    threads: usize,
    init: G,
    f: F,
    merge: M,
    digest: D,
) -> Vec<O>
where
    I: Sync,
    O: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, &I) -> O + Sync,
    M: Fn(S) + Sync,
    D: Fn(&I) -> u64 + Sync,
{
    assert!(threads >= 1);
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(threads.min(n));

    let init = &init;
    let f = &f;
    let merge = &merge;
    let digest = &digest;
    // Each worker returns its chunk's results through the join handle;
    // joining in spawn order reassembles the input order without ever
    // holding partially-filled slots. Worker panics are caught per item so
    // the re-raise can say *which* item; the chunk stops at the first
    // panic (its state is suspect) and skips its merge.
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .enumerate()
            .map(|(ci, in_chunk)| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::with_capacity(in_chunk.len());
                    for (li, input) in in_chunk.iter().enumerate() {
                        match catch_unwind(AssertUnwindSafe(|| f(&mut state, input))) {
                            Ok(o) => out.push(o),
                            Err(payload) => {
                                return Err(SweepPanic {
                                    index: ci * chunk + li,
                                    digest: digest(input),
                                    payload,
                                })
                            }
                        }
                    }
                    merge(state);
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(Ok(chunk_out)) => chunk_out,
                Ok(Err(sweep_panic)) => resume_unwind(Box::new(sweep_panic)),
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    })
}

/// Telemetry-carrying sweep: each worker gets a private
/// [`TelemetryRegistry`] to record into (passed to `f` alongside the input),
/// absorbed into `root` when the worker finishes its chunk. Recording is
/// per-worker atomics — no shared lock on the hot path; the only
/// synchronisation is one absorb per worker at join. Counter and
/// histogram-bucket totals in `root` are exact sums over all items,
/// independent of thread count.
pub fn parallel_sweep_telemetry<I, O, F>(
    inputs: &[I],
    threads: usize,
    root: &TelemetryRegistry,
    f: F,
) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&TelemetryRegistry, &I) -> O + Sync,
{
    parallel_sweep_with_merge(
        inputs,
        threads,
        TelemetryRegistry::new,
        |reg, input| f(reg, input),
        |reg| root.absorb(&reg),
    )
}

/// Stateless sweep: run `f` over every item on up to `threads` workers;
/// results in input order.
pub fn parallel_sweep<I, O, F>(inputs: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_sweep_with(inputs, threads, || (), |(), input| f(input))
}

/// Convenience: sweep with one thread per available core.
pub fn parallel_sweep_auto<I, O, F>(inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    parallel_sweep(inputs, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::hil::TurnLevelLoop;
    use crate::scenario::MdeScenario;

    #[test]
    fn results_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_sweep(&inputs, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64).pow(2));
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let inputs: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.1).collect();
        let seq = parallel_sweep(&inputs, 1, |&x| (x.sin() * 1e6).round());
        let par = parallel_sweep(&inputs, 16, |&x| (x.sin() * 1e6).round());
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_sweep(&Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let inputs = [1u32, 2, 3];
        let out = parallel_sweep(&inputs, 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_state_is_reused_within_a_thread() {
        // One worker, stateful counter: proves `init` ran once and the
        // arena persisted across items of the chunk.
        let inputs: Vec<u32> = (0..10).collect();
        let out = parallel_sweep_with(
            &inputs,
            1,
            || 0u32,
            |seen, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        for (i, &(x, seen)) in out.iter().enumerate() {
            assert_eq!(x, i as u32);
            assert_eq!(seen, i as u32 + 1, "state carried across items");
        }
    }

    #[test]
    fn telemetry_sweep_counts_every_item_once() {
        let inputs: Vec<u32> = (0..40).collect();
        let root = TelemetryRegistry::new();
        let out = parallel_sweep_telemetry(&inputs, 4, &root, |reg, &x| {
            reg.counter("items_total").inc();
            reg.histogram("value_hist").observe(f64::from(x));
            x
        });
        assert_eq!(out.len(), 40);
        let snap = root.snapshot();
        assert_eq!(snap.counter("items_total"), Some(40));
        assert_eq!(snap.histogram("value_hist").unwrap().count, 40);
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_builds() {
        let gains = [-2.0, -5.0, -8.0];
        let mut arena = EngineArena::new();
        for kind in [EngineKind::Map, EngineKind::Cgra] {
            for &gain in &gains {
                let mut s = MdeScenario::nov24_2023();
                s.duration_s = 0.01;
                s.bunches = 1;
                s.controller.gain = gain;
                let hil = TurnLevelLoop::new(s.clone(), kind);
                let fresh = hil.run(true).unwrap();
                let leased = hil.run_on(arena.engine(&s, kind).unwrap(), true).unwrap();
                assert_eq!(
                    fresh.phase_deg.values, leased.phase_deg.values,
                    "kind={kind:?} gain={gain}"
                );
                assert_eq!(fresh.control_hz.values, leased.control_hz.values);
                assert_eq!(fresh.jump_times, leased.jump_times);
            }
        }
        // First point of each fidelity builds; the rest rewind the slot.
        assert_eq!(arena.misses(), 2);
        assert_eq!(arena.hits(), 4);
    }

    #[test]
    fn arena_rebuilds_on_engine_facing_change() {
        let mut arena = EngineArena::new();
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.005;
        s.bunches = 1;
        arena.engine(&s, EngineKind::Map).unwrap();
        s.fs_target = 1.0e3; // engine-facing: changes the operating point
        arena.engine(&s, EngineKind::Map).unwrap();
        assert_eq!(arena.misses(), 2);
        assert_eq!(arena.hits(), 0);
    }

    #[test]
    fn worker_panic_carries_index_and_digest() {
        let inputs: Vec<u32> = (0..10).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            parallel_sweep_with_merge_digest(
                &inputs,
                2,
                || (),
                |(), &x| {
                    if x == 7 {
                        panic!("boom at {x}");
                    }
                    x
                },
                |()| {},
                |&x| u64::from(x) * 3,
            )
        }));
        let payload = res.expect_err("sweep must re-raise the worker panic");
        let sp = payload
            .downcast::<SweepPanic>()
            .expect("payload must be a SweepPanic");
        assert_eq!(sp.index, 7);
        assert_eq!(sp.digest, 21);
        assert!(sp.message().contains("boom at 7"));
    }

    #[test]
    fn arena_checkout_checkin_round_trip_is_bit_identical() {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.01;
        s.bunches = 1;
        let mut arena = EngineArena::new();
        // First checkout builds; run a loop on it to dirty its state.
        let mut lease = arena.checkout(&s, EngineKind::Map).unwrap();
        let hil = TurnLevelLoop::new(s.clone(), EngineKind::Map);
        let first = hil.run_on(lease.engine().as_mut(), true).unwrap();
        arena.checkin(lease);
        // Second checkout must hit and come back rewound: same trace again.
        let mut lease = arena.checkout(&s, EngineKind::Map).unwrap();
        let second = hil.run_on(lease.engine().as_mut(), true).unwrap();
        arena.checkin(lease);
        assert_eq!(arena.misses(), 1);
        assert_eq!(arena.hits(), 1);
        assert_eq!(first.phase_deg.values, second.phase_deg.values);
        assert_eq!(first.control_hz.values, second.control_hz.values);
    }

    #[test]
    fn arena_lru_keeps_both_fidelities_warm() {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.005;
        s.bunches = 1;
        let mut arena = EngineArena::new();
        for _ in 0..3 {
            arena.engine(&s, EngineKind::Map).unwrap();
            arena.engine(&s, EngineKind::Cgra).unwrap();
        }
        // Alternating fidelities: one build each, every later lease warm —
        // the single-slot arena this replaces would have rebuilt every time.
        assert_eq!(arena.misses(), 2);
        assert_eq!(arena.hits(), 4);
    }

    #[test]
    fn arena_capacity_one_evicts_on_alternation() {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.005;
        s.bunches = 1;
        let mut arena = EngineArena::with_slots(1);
        arena.engine(&s, EngineKind::Map).unwrap();
        arena.engine(&s, EngineKind::Cgra).unwrap();
        arena.engine(&s, EngineKind::Map).unwrap();
        assert_eq!(arena.misses(), 3);
        assert_eq!(arena.hits(), 0);
    }

    #[test]
    fn arena_checkin_discards_demoted_lease() {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.005;
        s.bunches = 1;
        let mut arena = EngineArena::new();
        let mut lease = arena.checkout(&s, EngineKind::Cgra).unwrap();
        // Simulate a mid-slice demotion: the box now holds a Map engine.
        *lease.engine() = EngineKind::Map.build(&s).unwrap();
        arena.checkin(lease);
        // The stale lease must not have been admitted under the Cgra key.
        arena.engine(&s, EngineKind::Cgra).unwrap();
        assert_eq!(arena.misses(), 2);
        assert_eq!(arena.hits(), 0);
    }

    #[test]
    fn arena_sample_telemetry_sums_across_absorb() {
        let root = TelemetryRegistry::new();
        for (hits, misses) in [(3usize, 1usize), (5, 2)] {
            let reg = TelemetryRegistry::new();
            let arena = EngineArena {
                slots: Vec::new(),
                capacity: ARENA_SLOTS,
                hits,
                misses,
            };
            arena.sample_telemetry(&reg);
            root.absorb(&reg);
        }
        let snap = root.snapshot();
        assert_eq!(snap.counter("cil_arena_hits_total"), Some(8));
        assert_eq!(snap.counter("cil_arena_misses_total"), Some(3));
    }

    #[test]
    fn gain_sweep_over_threads_is_deterministic() {
        // A real use: damping-residual vs controller gain, in parallel.
        let gains = [-2.0, -5.0, -8.0];
        let run = |gain: &f64| {
            let mut s = MdeScenario::nov24_2023();
            s.duration_s = 0.02;
            s.bunches = 1;
            s.controller.gain = *gain;
            let r = TurnLevelLoop::new(s, EngineKind::Map).run(true).unwrap();
            // Hashable summary: sum of |phase| over the tail.
            r.phase_deg.values[10_000..]
                .iter()
                .map(|v| v.abs())
                .sum::<f64>()
        };
        let a = parallel_sweep(&gains, 3, run);
        let b = parallel_sweep(&gains, 1, run);
        assert_eq!(a, b, "bit-identical across thread counts");
    }
}
