//! Parallel scenario sweeps.
//!
//! The ablations (A3, A5, …) evaluate many independent scenario variants;
//! each variant is seconds of simulation, so running them across cores is
//! the difference between an interactive sweep and a coffee break. The
//! sweep fans variants out over scoped threads and collects results in
//! input order (a `parking_lot::Mutex` guards the shared result store; the
//! per-variant work is read-only over the inputs).

use parking_lot::Mutex;

/// Run `f` over every item of `inputs` on up to `threads` worker threads;
/// results come back in input order. `f` must be deterministic per input
/// for the sweep to be reproducible (all our simulations are).
pub fn parallel_sweep<I, O, F>(inputs: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(threads >= 1);
    let n = inputs.len();
    let results: Mutex<Vec<Option<O>>> =
        Mutex::new((0..n).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&inputs[i]);
                results.lock()[i] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("worker filled every slot"))
        .collect()
}

/// Convenience: sweep with one thread per available core.
pub fn parallel_sweep_auto<I, O, F>(inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |v| v.get());
    parallel_sweep(inputs, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hil::{TurnEngine, TurnLevelLoop};
    use crate::scenario::MdeScenario;

    #[test]
    fn results_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_sweep(&inputs, 8, |&x| x * x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64).pow(2));
        }
    }

    #[test]
    fn single_thread_matches_parallel() {
        let inputs: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.1).collect();
        let seq = parallel_sweep(&inputs, 1, |&x| (x.sin() * 1e6).round());
        let par = parallel_sweep(&inputs, 16, |&x| (x.sin() * 1e6).round());
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_sweep(&Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn gain_sweep_over_threads_is_deterministic() {
        // A real use: damping-residual vs controller gain, in parallel.
        let gains = [-2.0, -5.0, -8.0];
        let run = |gain: &f64| {
            let mut s = MdeScenario::nov24_2023();
            s.duration_s = 0.02;
            s.bunches = 1;
            s.controller.gain = *gain;
            let r = TurnLevelLoop::new(s, TurnEngine::Map).run(true);
            // Hashable summary: sum of |phase| over the tail.
            r.phase_deg.values[10_000..].iter().map(|v| v.abs()).sum::<f64>()
        };
        let a = parallel_sweep(&gains, 3, run);
        let b = parallel_sweep(&gains, 1, run);
        assert_eq!(a, b, "bit-identical across thread counts");
    }
}
