//! # cil-core — the Cavity-in-the-Loop HIL framework
//!
//! The paper's contribution: a hardware-in-the-loop environment in which the
//! (real) beam-phase control system runs against a real-time simulation of
//! the beam. This crate models the complete Fig. 3 / Fig. 4 setup:
//!
//! * [`clock`] — the two clock domains (250 MHz system, 111 MHz CGRA) and
//!   the BuTiS-grade master clock;
//! * [`signalgen`] — the group DDS (reference + gap, synchronised reset)
//!   and the AWG/CEL phase-jump injection path;
//! * [`framework`] — the FPGA top level: ADC front-ends, capture ring
//!   buffers, zero-crossing + period-length detectors, the CGRA
//!   `SensorBus` wiring, Gauss pulse generators, monitoring mux, the
//!   SpartanMC-style parameter interface and the DRAM recorder;
//! * [`control`] — the beam-phase control loop (FIR + recursion factor +
//!   gain, frequency actuation on the gap DDS — Klingbeil 2007);
//! * [`engine`] — the beam models behind one [`engine::BeamEngine`]
//!   step-per-measurement interface (two-particle map, CGRA executor,
//!   multi-particle reference, ramp, full signal chain);
//! * [`harness`] — the shared closed-loop skeleton (controller + jump
//!   program + instrumentation offset + trace recording) every executive
//!   runs through;
//! * [`hil`] — closed-loop executives at two fidelities: **signal-level**
//!   (every 250 MHz sample) and **turn-level** (one step per revolution,
//!   validated against signal-level in ablation A6);
//! * [`scenario`] — experiment descriptions (the Nov 24 2023 MDE, ramp-up,
//!   multi-bunch);
//! * [`jitter`] — output-timing jitter models comparing an OS-scheduled
//!   software simulator against the CGRA pipeline (the Section I
//!   motivation);
//! * [`fault`] — the fault-injection + loop-supervision layer: scheduled
//!   hardware faults (ADC, DDS, detector, engine), the per-revolution
//!   deadline watchdog and graceful engine degradation;
//! * [`error`] — the typed [`error::CilError`] every run-path constructor
//!   returns instead of panicking;
//! * [`event`] — the deterministic event-scheduled core: [`event::SimEvent`]
//!   taxonomy and the [`event::EventQueue`] whose horizon sizes every engine
//!   step block (actuation, checkpoint, observer, wall-sample and watchdog
//!   cadences all enter as scheduled events);
//! * [`campaign`] — the crash-safe campaign runner: resumable sharded
//!   sweeps over 10⁵+ points with a framed WAL, per-point panic isolation,
//!   deterministic retry/backoff and poison-point quarantine;
//! * [`checkpoint`] — versioned, CRC-checksummed snapshots of the complete
//!   closed-loop state plus a write-ahead trace log, so a killed run
//!   resumes bit-identical to an uninterrupted one;
//! * [`session`] — the multi-session execution core: [`session::SessionMux`]
//!   hosts thousands of concurrent closed-loop sessions with work-stealing
//!   workers, cooperative time slices, per-worker engine arenas and
//!   checkpoint-backed eviction of idle sessions;
//! * [`telemetry`] — the zero-allocation-on-hot-path metrics registry
//!   (counters, gauges, log2-bucket histograms), span timing, registry
//!   merging for parallel sweeps, and Prometheus/JSON export;
//! * [`trace`] — time-series recording, CSV export and the Fig. 5 summary
//!   statistics (measured f_s, first-peak ratio, damping time).

pub mod campaign;
pub mod checkpoint;
pub mod clock;
pub mod control;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod framework;
pub mod harness;
pub mod hil;
pub mod jitter;
pub mod multibunch;
pub mod ramploop;
pub mod recorder;
pub mod scenario;
pub mod session;
pub mod signalgen;
pub mod sweep;
pub mod telemetry;
pub mod trace;

pub use campaign::{
    Campaign, CampaignConfig, CampaignError, CampaignPoint, CampaignReport, CampaignWorker,
    PointOutcome, PointStatus,
};
pub use checkpoint::{Checkpoint, CheckpointConfig, CheckpointError};
pub use control::{BeamPhaseController, CompensationPolicy};
pub use engine::{BeamEngine, EngineKind, EngineState, EngineStep};
pub use error::CilError;
pub use event::{EventQueue, ScheduledEvent, SimEvent};
pub use fault::{
    CavityPlant, CavityPlantState, CavitySample, FaultEvent, FaultInjector, FaultKind,
    FaultProgram, LoopEvent, LoopOutcome, LoopSupervisor, LossCause, StepCalibration,
    SupervisorConfig,
};
pub use harness::{LoopHarness, LoopTrace};
pub use hil::{SignalLevelLoop, TurnLevelLoop};
pub use multibunch::MultiBunchLoop;
pub use ramploop::RampLoop;
pub use scenario::MdeScenario;
pub use session::{MuxConfig, SessionHandle, SessionMux, SessionSpec, SessionState, SessionStatus};
pub use sweep::{EngineArena, SweepPanic};
pub use telemetry::{TelemetryRegistry, TelemetrySnapshot};
pub use trace::TimeSeries;
