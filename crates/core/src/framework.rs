//! The FPGA framework top level (Fig. 3).
//!
//! Wires together, sample by sample at 250 MHz: the two ADC channels →
//! capture ring buffers, the zero-crossing + period-length detectors on the
//! reference channel, the CGRA (via its `SensorBus`), the Gauss pulse
//! generators and the DAC outputs, plus the monitoring mux, the
//! SpartanMC-style parameter interface and the DRAM recorder.

use crate::error::{CilError, Result};
use cil_cgra::cache::CompiledKernel;
use cil_cgra::exec::{CgraExecutor, SensorBus};
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::{
    BeamKernel, KernelParams, ACT_DT_BASE, ACT_MONITOR, PORT_GAP_BUF, PORT_PERIOD, PORT_REF_BUF,
};
use cil_dsp::converter::{AdcFault, AdcModel, DacModel};
use cil_dsp::gauss::GaussPulseGenerator;
use cil_dsp::period::PeriodLengthDetector;
use cil_dsp::ring_buffer::CaptureRingBuffer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the second DAC channel shows ("a monitoring signal to either show
/// the phase difference calculated in the model or mirror the generated
/// signal, this can be adjusted at runtime", Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorMode {
    /// Output the model's Δt (scaled to volts).
    PhaseDifference,
    /// Mirror the generated beam signal.
    MirrorBeam,
}

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// Sample rate of the converter clock, Hz (250 MHz).
    pub sample_rate: f64,
    /// ADC model for both input channels.
    pub adc: AdcModel,
    /// DAC model for both output channels.
    pub dac: DacModel,
    /// Capture-buffer depth (2^13 in the paper).
    pub buffer_depth: usize,
    /// Period-average window (4 in the paper).
    pub period_avg: usize,
    /// Zero-crossing hysteresis threshold on the reference channel, volts.
    /// Must sit well above the front-end noise floor.
    pub zc_threshold: f64,
    /// RMS width of the generated Gauss pulse, seconds.
    pub pulse_sigma_s: f64,
    /// Optional custom pulse table (normalised to peak 1) replacing the
    /// synthetic Gaussian — the parametric bunch-shape extension of
    /// Section VI ("replace the synthetic Gauss pulse by a parametric
    /// version that adapts to the energy/phase distribution of the bunch").
    pub pulse_table: Option<Vec<f64>>,
    /// Peak amplitude of the beam pulses, volts.
    pub pulse_amplitude: f64,
    /// Monitoring-channel selection.
    pub monitor_mode: MonitorMode,
    /// Volts of monitoring output per second of Δt.
    pub monitor_scale: f64,
    /// Bunches simulated (one Gauss pulse generator each).
    pub bunches: usize,
    /// Harmonic number (bunch spacing = period/h).
    pub harmonic: u32,
    /// CGRA grid.
    pub grid: GridConfig,
    /// Use the pipelined kernel variant.
    pub pipelined: bool,
    /// Use the two-read linear interpolation of Section IV-B (ablation A1
    /// turns this off for a single nearest-sample read).
    pub interpolate: bool,
    /// Capacity of the DRAM recorder in revolutions (0 disables).
    pub record_capacity: usize,
}

impl FrameworkConfig {
    /// The paper's configuration for the Fig. 5 experiment.
    pub fn evaluation_default() -> Self {
        Self {
            sample_rate: 250e6,
            adc: AdcModel::fmc151(),
            dac: DacModel::fmc151(),
            buffer_depth: 8192,
            period_avg: 4,
            zc_threshold: 0.05,
            pulse_sigma_s: 20e-9,
            pulse_table: None,
            pulse_amplitude: 0.8,
            monitor_mode: MonitorMode::PhaseDifference,
            monitor_scale: 1e7, // 100 ns full scale
            bunches: 4,
            harmonic: 4,
            grid: GridConfig::mesh_5x5(),
            pipelined: true,
            interpolate: true,
            record_capacity: 1 << 20,
        }
    }
}

/// One recorded revolution (the DRAM recording of Section III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevolutionRecord {
    /// Sample index of the triggering zero crossing.
    pub crossing_sample: u64,
    /// Measured revolution period, seconds.
    pub period_s: f64,
    /// Δt written by the kernel for each bunch, seconds.
    pub dt: Vec<f64>,
}

/// Output voltages of one framework sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameworkOutput {
    /// DAC channel 1: the synthetic beam signal.
    pub beam: f64,
    /// DAC channel 2: the monitoring signal.
    pub monitor: f64,
}

/// The SpartanMC-style parameter interface: a tiny register map through
/// which runtime parameters are adjusted (Section III-B).
pub mod params {
    /// Register: monitor mode (0 = phase difference, 1 = mirror).
    pub const REG_MONITOR_MODE: u16 = 0;
    /// Register: monitor scale, volts per second of Δt.
    pub const REG_MONITOR_SCALE: u16 = 1;
    /// Register: pulse amplitude, volts.
    pub const REG_PULSE_AMPLITUDE: u16 = 2;
    /// Register: recording enable (nonzero = record).
    pub const REG_RECORD_ENABLE: u16 = 3;
}

/// The simulator framework.
pub struct SimulatorFramework {
    /// Active configuration.
    pub config: FrameworkConfig,
    compiled: Arc<CompiledKernel>,
    executor: CgraExecutor,
    ref_buffer: CaptureRingBuffer,
    gap_buffer: CaptureRingBuffer,
    period: PeriodLengthDetector,
    pulses: Vec<GaussPulseGenerator>,
    /// Sample counter (framework time base).
    sample: u64,
    /// Integer sample index of the last accepted zero crossing.
    last_crossing_sample: Option<u64>,
    /// The crossing before that: buffer reads address around it, because
    /// samples after the *current* crossing are not captured yet — this is
    /// why the paper sizes the buffers for two full periods.
    prev_crossing_sample: Option<u64>,
    /// Latest Δt per bunch (monitoring + phase bookkeeping).
    last_dt: Vec<f64>,
    /// Monitoring value written by the kernel, if any.
    monitor_value: f64,
    /// Initialisation done (first kernel run used as pipeline warm-up).
    warmed_up: bool,
    /// DRAM recording.
    pub records: Vec<RevolutionRecord>,
    recording: bool,
    /// Kernel runs so far.
    pub revolutions: u64,
    /// Deterministic RNG for the ADC noise model (seeded per framework so
    /// runs are exactly reproducible).
    adc_rng: StdRng,
    /// Active ADC fault applied to both channel codes (fault injection).
    adc_fault: Option<AdcFault>,
}

impl SimulatorFramework {
    /// Build the framework. The beam kernel is compiled and scheduled at
    /// most once per configuration — repeated constructions (sweeps,
    /// repeated loop runs) reuse the shared artifact from
    /// [`cil_cgra::cache`] and only stamp out fresh executor state.
    pub fn new(config: FrameworkConfig, kernel_params: KernelParams) -> Self {
        let compiled = cil_cgra::cache::global().get_or_compile(
            &kernel_params,
            config.bunches,
            config.pipelined,
            config.interpolate,
            config.grid,
        );
        let executor = compiled.executor();
        let pulses = (0..config.bunches)
            .map(|_| match &config.pulse_table {
                Some(table) => {
                    GaussPulseGenerator::from_table(table.clone(), config.pulse_amplitude)
                }
                None => GaussPulseGenerator::for_bunch(
                    config.pulse_sigma_s,
                    config.sample_rate,
                    config.pulse_amplitude,
                ),
            })
            .collect();
        Self {
            ref_buffer: CaptureRingBuffer::new(config.buffer_depth),
            gap_buffer: CaptureRingBuffer::new(config.buffer_depth),
            period: PeriodLengthDetector::new(config.period_avg, config.zc_threshold),
            pulses,
            sample: 0,
            last_crossing_sample: None,
            prev_crossing_sample: None,
            last_dt: vec![0.0; config.bunches],
            monitor_value: 0.0,
            warmed_up: false,
            records: Vec::new(),
            recording: true,
            revolutions: 0,
            adc_rng: StdRng::seed_from_u64(0x05EE_DC11),
            adc_fault: None,
            compiled,
            executor,
            config,
        }
    }

    /// Parameter-interface write (the SpartanMC register map).
    pub fn write_param(&mut self, reg: u16, value: f64) {
        match reg {
            params::REG_MONITOR_MODE => {
                self.config.monitor_mode = if value == 0.0 {
                    MonitorMode::PhaseDifference
                } else {
                    MonitorMode::MirrorBeam
                };
            }
            params::REG_MONITOR_SCALE => self.config.monitor_scale = value,
            params::REG_PULSE_AMPLITUDE => {
                self.config.pulse_amplitude = value;
                for p in &mut self.pulses {
                    p.amplitude = value;
                }
            }
            params::REG_RECORD_ENABLE => self.recording = value != 0.0,
            _ => {} // unknown registers ignore writes, like real MMIO
        }
    }

    /// Set (or clear) the ADC fault applied to both channel codes — the
    /// injection point of `cil_core::fault` into the converter front-end.
    pub fn set_adc_fault(&mut self, fault: Option<AdcFault>) {
        self.adc_fault = fault;
    }

    /// Process one sample of the two analogue inputs (volts at the ADC
    /// pins); returns the DAC output voltages.
    pub fn push_sample(&mut self, v_ref: f64, v_gap: f64) -> FrameworkOutput {
        // ADC conversion (quantisation + optional input noise), fault
        // corruption at the code level, and capture.
        let (mut ref_code, mut gap_code) = if self.config.adc.noise_rms > 0.0 {
            (
                self.config.adc.convert(v_ref, &mut self.adc_rng),
                self.config.adc.convert(v_gap, &mut self.adc_rng),
            )
        } else {
            (
                self.config.adc.quantize(v_ref),
                self.config.adc.quantize(v_gap),
            )
        };
        if let Some(fault) = self.adc_fault {
            ref_code = self.config.adc.apply_fault(ref_code, fault);
            gap_code = self.config.adc.apply_fault(gap_code, fault);
        }
        let ref_q = self.config.adc.code_to_volts(ref_code);
        let gap_q = self.config.adc.code_to_volts(gap_code);
        self.ref_buffer.push(ref_q);
        self.gap_buffer.push(gap_q);

        // Reference-side detectors.
        let crossed = self.period.push(ref_q).is_some();
        if crossed && self.period.warmed_up() {
            // Integer sample index of the crossing (hardware addressing).
            // Rounding — not flooring — the refined crossing time keeps the
            // addressing bias zero-mean; a systematic half-sample offset
            // would slowly walk γ_R through the Eq. (2) feedback.
            // Faults on the reference channel can starve the crossing
            // detector of the refined timestamp; skip the revolution rather
            // than abort the loop service.
            if let Some(crossing_time) = self.period.zero_crossing().last_crossing_time() {
                let crossing = crossing_time.round() as u64;
                self.prev_crossing_sample = self.last_crossing_sample.replace(crossing);
                if let Some(prev) = self.prev_crossing_sample {
                    self.run_kernel(crossing, prev);
                }
            }
        }

        // Outputs.
        let mut beam = 0.0;
        for p in &mut self.pulses {
            beam += p.tick();
        }
        let beam = self.config.dac.quantize_volts(beam);
        let monitor = match self.config.monitor_mode {
            MonitorMode::PhaseDifference => self
                .config
                .dac
                .quantize_volts(self.last_dt[0] * self.config.monitor_scale),
            MonitorMode::MirrorBeam => beam,
        };
        self.sample += 1;
        FrameworkOutput { beam, monitor }
    }

    fn run_kernel(&mut self, crossing: u64, prev_crossing: u64) {
        // Only reachable after `warmed_up()`, but the average can still be
        // absent if a fault resets the detector between check and use.
        let Some(period_samples) = self.period.average_period() else {
            return;
        };
        let period_s = period_samples / self.config.sample_rate;
        let orbit_length = self.kernel_orbit_length();

        let mut bus = FrameworkBus {
            ref_buffer: &self.ref_buffer,
            gap_buffer: &self.gap_buffer,
            period_s,
            // Address relative to the previous crossing: everything within
            // ±Δt of it is guaranteed captured (the two-period buffer
            // sizing argument of Section III-B).
            crossing: prev_crossing,
            current_sample: self.sample,
            dt_out: &mut self.last_dt,
            monitor_out: &mut self.monitor_value,
        };

        if !self.warmed_up {
            // First run doubles as the pipeline warm-up: fill the stage
            // bridges, then restore the architectural state (and pull γ_R
            // from the *measured* frequency, as the paper's init phase does).
            let mut restore = self.compiled.kernel.kernel.reg_inits.clone();
            let gamma_meas =
                cil_physics::relativity::gamma_from_revolution(1.0 / period_s, orbit_length);
            for (name, reg) in &self.compiled.kernel.kernel.statics {
                if name == "gamma_r" {
                    for r in &mut restore {
                        if r.0 == *reg {
                            r.1 = gamma_meas;
                        }
                    }
                }
            }
            self.executor.warmup(&mut bus, &[], &restore);
            self.warmed_up = true;
            // Warm-up outputs are not armed.
            return;
        }

        self.executor.run_iteration(&mut bus, &[]);

        // Arm the Gauss pulses for the next revolution: bunch b sits b RF
        // periods after the crossing, plus its Δt.
        let rf_period = period_samples / f64::from(self.config.harmonic);
        for (b, pulse) in self.pulses.iter_mut().enumerate() {
            let dt_samples = self.last_dt[b] * self.config.sample_rate;
            let trigger = crossing as f64 + period_samples + b as f64 * rf_period + dt_samples;
            // DAC-side quantisation of the trigger instant (the residual
            // output jitter of the CGRA path, cf. `crate::jitter`).
            pulse.arm(trigger.round().max(0.0) as u64);
        }

        self.revolutions += 1;
        if self.recording
            && self.config.record_capacity > 0
            && self.records.len() < self.config.record_capacity
        {
            self.records.push(RevolutionRecord {
                crossing_sample: crossing,
                period_s,
                dt: self.last_dt.clone(),
            });
        }
    }

    fn kernel_orbit_length(&self) -> f64 {
        // The orbit length is a generation parameter; SIS18 in all shipped
        // scenarios. (Kept as a method so a future multi-ring setup can
        // thread it through BeamKernel.)
        216.72
    }

    /// Measured revolution period (seconds), if the detector has locked.
    pub fn measured_period(&self) -> Option<f64> {
        self.period
            .average_period()
            .map(|p| p / self.config.sample_rate)
    }

    /// Most recent Δt per bunch.
    pub fn last_dt(&self) -> &[f64] {
        &self.last_dt
    }

    /// Valid samples currently held in the reference capture buffer.
    pub fn ref_buffer_occupancy(&self) -> usize {
        self.ref_buffer.occupancy()
    }

    /// Valid samples currently held in the gap capture buffer.
    pub fn gap_buffer_occupancy(&self) -> usize {
        self.gap_buffer.occupancy()
    }

    /// Last value the kernel wrote to the monitoring actuator.
    pub fn monitor_value(&self) -> f64 {
        self.monitor_value
    }

    /// Direct register access to the CGRA state (test/diagnostic path, like
    /// the SpartanMC debug port). Returns `None` for unknown statics.
    pub fn kernel_static(&self, name: &str) -> Option<f64> {
        self.compiled
            .static_reg(name)
            .map(|reg| self.executor.reg(reg))
    }

    /// Overwrite a kernel static (e.g. to launch the bunch displaced).
    pub fn set_kernel_static(&mut self, name: &str, value: f64) -> bool {
        if let Some(reg) = self.compiled.static_reg(name) {
            self.executor.set_reg(reg, value);
            true
        } else {
            false
        }
    }

    /// The compiled kernel (source + DFG), for inspection.
    pub fn kernel(&self) -> &BeamKernel {
        &self.compiled.kernel
    }

    /// Snapshot the framework's dynamic state: CGRA register file, capture
    /// buffers, period detector, pulse generators, crossing bookkeeping,
    /// ADC-noise RNG cursor and the active ADC fault. The compiled kernel is
    /// *not* captured — it is recompiled (or taken from the shared cache) on
    /// restore. The DRAM recording (`records`) is also not captured; see
    /// DESIGN.md §5 for the rationale.
    pub fn state(&self) -> FrameworkState {
        FrameworkState {
            executor: self.executor.state(),
            ref_buffer: self.ref_buffer.state(),
            gap_buffer: self.gap_buffer.state(),
            period: self.period.state(),
            pulses: self.pulses.iter().map(|p| p.state()).collect(),
            sample: self.sample,
            last_crossing_sample: self.last_crossing_sample,
            prev_crossing_sample: self.prev_crossing_sample,
            last_dt: self.last_dt.clone(),
            monitor_value: self.monitor_value,
            warmed_up: self.warmed_up,
            recording: self.recording,
            revolutions: self.revolutions,
            adc_rng: self.adc_rng.state(),
            adc_fault: self.adc_fault,
        }
    }

    /// Restore a state captured by [`Self::state`] onto a freshly built
    /// framework of the *same configuration*. Fails (returns `false`) on any
    /// shape mismatch — buffer depth, period window, register-file size,
    /// pulse count or bunch count.
    pub fn restore(&mut self, state: &FrameworkState) -> bool {
        if state.pulses.len() != self.pulses.len() || state.last_dt.len() != self.last_dt.len() {
            return false;
        }
        if !self.executor.restore(&state.executor)
            || !self.ref_buffer.restore(&state.ref_buffer)
            || !self.gap_buffer.restore(&state.gap_buffer)
            || !self.period.restore(&state.period)
        {
            return false;
        }
        for (p, ps) in self.pulses.iter_mut().zip(&state.pulses) {
            if !p.restore(ps) {
                return false;
            }
        }
        self.sample = state.sample;
        self.last_crossing_sample = state.last_crossing_sample;
        self.prev_crossing_sample = state.prev_crossing_sample;
        self.last_dt = state.last_dt.clone();
        self.monitor_value = state.monitor_value;
        self.warmed_up = state.warmed_up;
        self.recording = state.recording;
        self.revolutions = state.revolutions;
        self.adc_rng = StdRng::from_state(state.adc_rng);
        self.adc_fault = state.adc_fault;
        true
    }

    /// Schedule length of the configured kernel in CGRA ticks.
    pub fn schedule_ticks(&self) -> u32 {
        self.executor.ticks_per_iteration()
    }

    /// Whether the initialisation (detector lock + pipeline warm-up) is done.
    pub fn initialised(&self) -> bool {
        self.warmed_up
    }

    /// Swap the beam-pulse table at runtime (normalised to peak 1) — the
    /// Section VI parametric-pulse path: e.g. feed in
    /// `cil_reftrack::observables::parametric_pulse` of a tracked ensemble
    /// so the synthetic beam adapts to the actual bunch shape.
    pub fn set_pulse_table(&mut self, table: Vec<f64>) -> Result<()> {
        if table.is_empty() {
            return Err(CilError::InvalidConfig(
                "pulse table must not be empty".into(),
            ));
        }
        for p in &mut self.pulses {
            p.set_table(table.clone());
        }
        self.config.pulse_table = Some(table);
        Ok(())
    }
}

/// Checkpointable state of a [`SimulatorFramework`].
///
/// Everything dynamic is here; the compiled kernel, pulse tables and
/// configuration are rebuilt from the scenario. The DRAM recording
/// (`records`) is intentionally excluded.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkState {
    /// CGRA register file + iteration counter.
    pub executor: cil_cgra::ExecutorState,
    /// Reference-channel capture buffer.
    pub ref_buffer: cil_dsp::ring_buffer::RingBufferState,
    /// Gap-channel capture buffer.
    pub gap_buffer: cil_dsp::ring_buffer::RingBufferState,
    /// Period-length detector (zero-crossing + averaging window).
    pub period: cil_dsp::period::PeriodDetectorState,
    /// Per-bunch Gauss pulse generator states.
    pub pulses: Vec<cil_dsp::gauss::GaussPulseState>,
    /// Framework sample clock.
    pub sample: u64,
    /// Last accepted zero-crossing sample index.
    pub last_crossing_sample: Option<u64>,
    /// The crossing before that (buffer addressing base).
    pub prev_crossing_sample: Option<u64>,
    /// Latest Δt per bunch, seconds.
    pub last_dt: Vec<f64>,
    /// Last kernel monitor write.
    pub monitor_value: f64,
    /// Pipeline warm-up done.
    pub warmed_up: bool,
    /// DRAM recording enabled.
    pub recording: bool,
    /// Kernel runs so far.
    pub revolutions: u64,
    /// ADC-noise RNG stream cursor.
    pub adc_rng: u64,
    /// Active ADC fault, if any.
    pub adc_fault: Option<AdcFault>,
}

/// The SensorAccess implementation backed by the framework's detectors and
/// capture buffers.
struct FrameworkBus<'a> {
    ref_buffer: &'a CaptureRingBuffer,
    gap_buffer: &'a CaptureRingBuffer,
    period_s: f64,
    crossing: u64,
    current_sample: u64,
    dt_out: &'a mut [f64],
    monitor_out: &'a mut f64,
}

impl FrameworkBus<'_> {
    fn buffer_read(&self, buf: &CaptureRingBuffer, addr: f64) -> f64 {
        // `addr` = whole samples relative to the last positive zero
        // crossing. Translate to a "samples back from now" offset.
        let abs = self.crossing as f64 + addr;
        let back = self.current_sample as f64 - abs;
        debug_assert!(
            back >= 0.0,
            "future read: addressing must use the previous crossing"
        );
        if back < 0.0 {
            return buf.read_back(0).unwrap_or(0.0);
        }
        buf.read_back(back.round() as usize).unwrap_or(0.0)
    }
}

impl SensorBus for FrameworkBus<'_> {
    fn read(&mut self, port: u16, addr: f64) -> f64 {
        match port {
            PORT_PERIOD => self.period_s,
            PORT_REF_BUF => self.buffer_read(self.ref_buffer, addr),
            PORT_GAP_BUF => self.buffer_read(self.gap_buffer, addr),
            _ => 0.0,
        }
    }

    fn write(&mut self, port: u16, value: f64) {
        if port == ACT_MONITOR {
            *self.monitor_out = value;
        } else {
            let b = (port - ACT_DT_BASE) as usize;
            if b < self.dt_out.len() {
                self.dt_out[b] = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signalgen::{PhaseJumpProgram, SignalBench};
    use cil_physics::machine::MachineParams;
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::IonSpecies;

    fn kernel_params(v_hat: f64, amp_adc: f64) -> KernelParams {
        let machine = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        KernelParams {
            orbit_length_m: machine.orbit_length_m,
            momentum_compaction: machine.momentum_compaction,
            gamma_per_volt: ion.gamma_per_volt(),
            sample_rate: 250e6,
            scale_ref: v_hat / amp_adc,
            scale_gap: v_hat / amp_adc,
            gamma_r_init: cil_physics::relativity::gamma_from_revolution(800e3, 216.72),
        }
    }

    fn v_hat() -> f64 {
        SynchrotronCalc::new(MachineParams::sis18(), IonSpecies::n14_7plus())
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap()
    }

    fn small_config(bunches: usize) -> FrameworkConfig {
        FrameworkConfig {
            bunches,
            record_capacity: 100_000,
            ..FrameworkConfig::evaluation_default()
        }
    }

    /// Run the framework against the signal bench for `seconds`, collecting
    /// outputs.
    fn run_bench(
        fw: &mut SimulatorFramework,
        bench: &mut SignalBench,
        seconds: f64,
    ) -> Vec<FrameworkOutput> {
        let n = (seconds * 250e6) as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (r, g) = bench.tick();
            out.push(fw.push_sample(r, g));
        }
        out
    }

    fn quiet_bench() -> SignalBench {
        SignalBench::new(
            250e6,
            800e3,
            4,
            0.5,
            0.5,
            PhaseJumpProgram {
                amplitude_deg: 0.0,
                interval_s: 1.0,
                path_latency_s: 0.0,
            },
        )
    }

    #[test]
    fn initialises_and_measures_period() {
        let mut fw = SimulatorFramework::new(small_config(1), kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        run_bench(&mut fw, &mut bench, 100e-6); // 80 revolutions
        assert!(fw.initialised());
        let p = fw.measured_period().unwrap();
        assert!((p - 1.25e-6).abs() < 1e-9, "period {p}");
        assert!(fw.revolutions > 50);
    }

    #[test]
    fn quiescent_beam_stays_on_reference() {
        let mut fw = SimulatorFramework::new(small_config(1), kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        run_bench(&mut fw, &mut bench, 200e-6);
        // No jump, bunch launched on-reference: |dt| stays tiny compared to
        // an RF period (78 ns).
        let dt = fw.last_dt()[0].abs();
        assert!(dt < 5e-9, "quiescent dt = {dt}");
    }

    #[test]
    fn beam_pulses_appear_once_per_rf_bucket() {
        let mut fw = SimulatorFramework::new(small_config(4), kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        let out = run_bench(&mut fw, &mut bench, 300e-6);
        // Count beam-pulse peaks in the second half (initialised, armed).
        let half = out.len() / 2;
        let beam: Vec<f64> = out[half..].iter().map(|o| o.beam).collect();
        let mut peaks = 0;
        for i in 1..beam.len() - 1 {
            if beam[i] > 0.7 && beam[i] >= beam[i - 1] && beam[i] > beam[i + 1] {
                peaks += 1;
            }
        }
        // 150 µs at 800 kHz × 4 bunches = 480 pulses.
        assert!((peaks as i64 - 480).abs() <= 8, "peaks = {peaks}");
    }

    #[test]
    fn displaced_bunch_oscillates_at_synchrotron_frequency() {
        // Unpipelined kernel: the pipelined variant's two-turn-stale
        // voltages add a slow anti-damping that grows the amplitude by
        // ~20% over this window (see hil tests / EXPERIMENTS.md), which
        // would confound the amplitude check here.
        let mut cfg = small_config(1);
        cfg.pipelined = false;
        let mut fw = SimulatorFramework::new(cfg, kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        // Initialise first.
        run_bench(&mut fw, &mut bench, 50e-6);
        assert!(fw.initialised());
        // Displace by 8° at the RF harmonic.
        let dt0 = 8.0 / 360.0 / 3.2e6;
        assert!(fw.set_kernel_static("dt_0", dt0));
        // Track for six synchrotron periods (~4.7 ms) — enough resolution
        // for the spectral estimate.
        fw.records.clear();
        run_bench(&mut fw, &mut bench, 4.7e-3);
        let trace: Vec<f64> = fw.records.iter().map(|r| r.dt[0]).collect();
        assert!(trace.len() > 3000);
        // Dominant frequency ≈ 1.28 kHz (trace sampled at 800 kHz).
        let (f_norm, amp) =
            cil_dsp::spectrum::dominant_frequency(&trace, 800.0 / 800e3, 2000.0 / 800e3);
        let fs = f_norm * 800e3;
        assert!((fs - 1.28e3).abs() < 60.0, "fs = {fs}");
        assert!((amp - dt0).abs() / dt0 < 0.2, "amplitude {amp} vs {dt0}");
    }

    #[test]
    fn monitor_mux_switches_at_runtime() {
        let mut fw = SimulatorFramework::new(small_config(1), kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        run_bench(&mut fw, &mut bench, 50e-6);
        fw.set_kernel_static("dt_0", 10e-9);
        let out_phase = run_bench(&mut fw, &mut bench, 20e-6);
        // Phase-difference mode: monitor ≈ dt * scale, nonzero.
        let m = out_phase.last().unwrap().monitor;
        assert!(m.abs() > 1e-3, "phase monitor {m}");
        // Switch to mirror mode via the parameter interface.
        fw.write_param(params::REG_MONITOR_MODE, 1.0);
        let out_mirror = run_bench(&mut fw, &mut bench, 20e-6);
        for o in &out_mirror {
            assert_eq!(o.monitor, o.beam, "mirror mode copies the beam output");
        }
    }

    #[test]
    fn recorder_respects_enable_and_capacity() {
        let mut cfg = small_config(1);
        cfg.record_capacity = 10;
        let mut fw = SimulatorFramework::new(cfg, kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        run_bench(&mut fw, &mut bench, 100e-6);
        assert_eq!(fw.records.len(), 10, "capacity bound");
        fw.write_param(params::REG_RECORD_ENABLE, 0.0);
        fw.records.clear();
        run_bench(&mut fw, &mut bench, 50e-6);
        assert!(fw.records.is_empty(), "recording disabled");
    }

    #[test]
    fn pulse_amplitude_parameter_applies() {
        let mut fw = SimulatorFramework::new(small_config(1), kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        fw.write_param(params::REG_PULSE_AMPLITUDE, 0.25);
        let out = run_bench(&mut fw, &mut bench, 300e-6);
        let max_beam = out[out.len() / 2..]
            .iter()
            .map(|o| o.beam)
            .fold(0.0f64, f64::max);
        assert!((max_beam - 0.25).abs() < 0.01, "peak {max_beam}");
    }

    #[test]
    fn unpipelined_kernel_also_runs() {
        let mut cfg = small_config(1);
        cfg.pipelined = false;
        let mut fw = SimulatorFramework::new(cfg, kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        run_bench(&mut fw, &mut bench, 100e-6);
        assert!(fw.initialised());
        assert!(fw.last_dt()[0].abs() < 5e-9);
    }

    #[test]
    fn parametric_pulse_table_shapes_the_beam() {
        // A rectangular pulse table replaces the Gaussian: the beam output
        // must show flat-topped pulses.
        let mut cfg = small_config(1);
        cfg.pulse_table = Some(vec![1.0; 15]);
        let mut fw = SimulatorFramework::new(cfg, kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        let out = run_bench(&mut fw, &mut bench, 200e-6);
        let half = &out[out.len() / 2..];
        // Count samples at the (quantised) top per pulse window: a Gaussian
        // has 1 peak sample, the rectangle has 15.
        let top = half.iter().filter(|o| o.beam > 0.79).count();
        let pulses = 200e-6 / 2.0 * 800e3; // pulses in the second half
        let per_pulse = top as f64 / pulses;
        assert!(
            (per_pulse - 15.0).abs() < 1.0,
            "flat top of {per_pulse} samples"
        );
    }

    #[test]
    fn pulse_table_swaps_at_runtime() {
        let mut fw = SimulatorFramework::new(small_config(1), kernel_params(v_hat(), 0.5));
        let mut bench = quiet_bench();
        run_bench(&mut fw, &mut bench, 100e-6);
        // Adapt the pulse to a wider flat shape mid-run.
        fw.set_pulse_table(vec![1.0; 25]).unwrap();
        let out = run_bench(&mut fw, &mut bench, 100e-6);
        let top = out[out.len() / 2..]
            .iter()
            .filter(|o| o.beam > 0.79)
            .count();
        let per_pulse = top as f64 / (100e-6 / 2.0 * 800e3);
        assert!(
            (per_pulse - 25.0).abs() < 2.0,
            "swapped table in effect: {per_pulse}"
        );
    }

    #[test]
    fn schedule_ticks_exposed() {
        let fw = SimulatorFramework::new(small_config(1), kernel_params(v_hat(), 0.5));
        let t = fw.schedule_ticks();
        assert!(t > 20 && t < 400, "ticks = {t}");
    }
}
