//! Time-series recording and the Fig. 5 summary statistics.
//!
//! Every experiment produces phase-vs-time traces; this module gives them a
//! common shape, CSV export (the artifact the paper's figures are plotted
//! from), the 5-sample averaging display filter of Fig. 5a, and the scalar
//! scores of Section V: measured synchrotron frequency, first-peak ratio
//! after a phase jump, and the closed-loop damping time.

use cil_dsp::fir::FirFilter;
use serde::{Deserialize, Serialize};

/// A uniformly sampled time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Time of the first sample, seconds.
    pub t0: f64,
    /// Sample spacing, seconds.
    pub dt: f64,
    /// Sample values.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// New series.
    pub fn new(t0: f64, dt: f64, values: Vec<f64>) -> Self {
        assert!(dt > 0.0);
        Self { t0, dt, values }
    }

    /// Time of sample `i`.
    pub fn time_at(&self, i: usize) -> f64 {
        self.t0 + self.dt * i as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample rate, Hz.
    pub fn sample_rate(&self) -> f64 {
        1.0 / self.dt
    }

    /// Apply the Fig. 5a display filter: a moving average of `width`
    /// samples ("An averaging filter with a width of 5 samples has been
    /// applied").
    pub fn averaged(&self, width: usize) -> TimeSeries {
        let mut f = FirFilter::moving_average(width);
        TimeSeries {
            t0: self.t0,
            dt: self.dt,
            values: f.filter(&self.values),
        }
    }

    /// Slice between two times (inclusive start, exclusive end).
    pub fn window(&self, t_start: f64, t_end: f64) -> TimeSeries {
        assert!(t_end > t_start);
        let i0 = (((t_start - self.t0) / self.dt).ceil().max(0.0)) as usize;
        let i1 = ((((t_end - self.t0) / self.dt).floor()).max(0.0) as usize).min(self.len());
        TimeSeries {
            t0: self.time_at(i0),
            dt: self.dt,
            values: self.values.get(i0..i1).unwrap_or(&[]).to_vec(),
        }
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Peak-to-peak amplitude.
    pub fn peak_to_peak(&self) -> f64 {
        let max = self.values.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.values.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }

    /// Dominant oscillation frequency in `[f_lo, f_hi]` Hz, via the DSP
    /// spectrum scan. Returns `(frequency_hz, amplitude)`.
    pub fn dominant_frequency(&self, f_lo: f64, f_hi: f64) -> (f64, f64) {
        let fs = self.sample_rate();
        let (f, a) = cil_dsp::spectrum::dominant_frequency(
            &self.values,
            (f_lo / fs).max(0.0),
            (f_hi / fs).min(0.5),
        );
        (f * fs, a)
    }

    /// CSV export with a `time,value` header — the plotting artifact.
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.len() * 24 + 16);
        s.push_str("time_s,value\n");
        for (i, v) in self.values.iter().enumerate() {
            s.push_str(&format!("{:.9},{:.9}\n", self.time_at(i), v));
        }
        s
    }

    /// Parse the CSV format produced by [`Self::to_csv`].
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut times = Vec::new();
        let mut values = Vec::new();
        for (ln, line) in csv.lines().enumerate() {
            if ln == 0 {
                continue; // header
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let t: f64 = parts
                .next()
                .ok_or_else(|| format!("line {ln}: missing time"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {ln}: {e}"))?;
            let v: f64 = parts
                .next()
                .ok_or_else(|| format!("line {ln}: missing value"))?
                .trim()
                .parse()
                .map_err(|e| format!("line {ln}: {e}"))?;
            times.push(t);
            values.push(v);
        }
        if times.len() < 2 {
            return Err("need at least two samples".into());
        }
        let dt = times[1] - times[0];
        if dt <= 0.0 {
            return Err("non-increasing time column".into());
        }
        Ok(Self {
            t0: times[0],
            dt,
            values,
        })
    }
}

/// Scores of a phase-jump response (one jump event within a trace), the
/// Section V observables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JumpResponse {
    /// Phase level before the jump (deg).
    pub baseline_deg: f64,
    /// First extremum after the jump, relative to the baseline (deg).
    pub first_peak_deg: f64,
    /// Ratio |first peak| / jump amplitude — ≈ 2 per the paper.
    pub first_peak_ratio: f64,
    /// Oscillation amplitude in the final quarter of the window, relative
    /// to the *initial oscillation amplitude* (half the first-peak
    /// deviation — a jump response swings from 0 to 2× around the shifted
    /// equilibrium). ≈ 1 undamped, ≈ 0 when the loop damps well.
    pub residual_ratio: f64,
    /// e-folding damping time (s), if the envelope decays.
    pub damping_time_s: Option<f64>,
}

/// Score the response to a jump of `jump_deg` occurring at `t_jump` within
/// `trace`; the analysis window extends to `t_end`.
pub fn score_jump_response(
    trace: &TimeSeries,
    t_jump: f64,
    t_end: f64,
    jump_deg: f64,
) -> JumpResponse {
    assert!(jump_deg > 0.0);
    let pre = trace.window((t_jump - 5e-3).max(trace.t0), t_jump);
    let baseline = if pre.is_empty() { 0.0 } else { pre.mean() };
    let post = trace.window(t_jump, t_end);
    assert!(!post.is_empty(), "empty post-jump window");

    // First extremum relative to baseline. The early exit only arms once
    // the excursion clearly exceeds the jump amplitude, so baseline ringing
    // (quantisation noise pumped by the pipelined kernel) cannot truncate
    // the search before the real swing.
    let mut first_peak = 0.0f64;
    for &v in &post.values {
        let dev = v - baseline;
        if dev.abs() > first_peak.abs() {
            first_peak = dev;
        } else if first_peak.abs() > jump_deg && dev.abs() < first_peak.abs() * 0.7 {
            break; // past the first swing
        }
    }

    let quarter = post.len() / 4;
    let tail = TimeSeries {
        t0: 0.0,
        dt: post.dt,
        values: post.values[post.len() - quarter.max(2)..].to_vec(),
    };
    let residual = tail.peak_to_peak() / 2.0;
    let damping = cil_physics::modes::damping_time_turns(&post.values).map(|turns| turns * post.dt);
    JumpResponse {
        baseline_deg: baseline,
        first_peak_deg: first_peak,
        first_peak_ratio: first_peak.abs() / jump_deg,
        residual_ratio: if first_peak != 0.0 {
            residual / (first_peak.abs() / 2.0)
        } else {
            0.0
        },
        damping_time_s: damping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_series() -> TimeSeries {
        TimeSeries::new(1.0, 0.5, vec![0.0, 1.0, 2.0, 3.0])
    }

    #[test]
    fn indexing_and_times() {
        let s = ramp_series();
        assert_eq!(s.len(), 4);
        assert_eq!(s.time_at(2), 2.0);
        assert_eq!(s.sample_rate(), 2.0);
    }

    #[test]
    fn window_selects_by_time() {
        let s = ramp_series();
        let w = s.window(1.4, 2.6);
        assert_eq!(w.values, vec![1.0, 2.0]);
        assert_eq!(w.t0, 1.5);
    }

    #[test]
    fn csv_roundtrip() {
        let s = ramp_series();
        let back = TimeSeries::from_csv(&s.to_csv()).unwrap();
        assert_eq!(back.len(), s.len());
        assert!((back.dt - s.dt).abs() < 1e-12);
        for (a, b) in back.values.iter().zip(&s.values) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(TimeSeries::from_csv("time,value\nx,y\n").is_err());
        assert!(
            TimeSeries::from_csv("time,value\n1.0,2.0\n").is_err(),
            "one sample"
        );
    }

    #[test]
    fn averaging_filter_smooths() {
        let mut values = Vec::new();
        for i in 0..100 {
            values.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let s = TimeSeries::new(0.0, 1.0, values);
        let a = s.averaged(2);
        let tail_max = a.values[2..]
            .iter()
            .cloned()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(tail_max < 1e-12);
    }

    #[test]
    fn dominant_frequency_in_hz() {
        let fs = 1000.0;
        let f = 37.0;
        let values: Vec<f64> = (0..4096)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
            .collect();
        let s = TimeSeries::new(0.0, 1.0 / fs, values);
        let (fm, am) = s.dominant_frequency(10.0, 100.0);
        assert!((fm - f).abs() < 0.5, "f = {fm}");
        assert!((am - 1.0).abs() < 0.05);
    }

    fn jump_trace(jump: f64, damping: f64) -> TimeSeries {
        // Baseline 3 deg; jump at t=0.05: oscillation around (3 - jump)
        // starting from 3, i.e. first peak ≈ 2*jump below baseline.
        let fs = 100e3;
        let f_s = 1.28e3;
        let n = (0.1 * fs) as usize;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                if t < 0.05 {
                    3.0
                } else {
                    let tau = t - 0.05;
                    3.0 - jump
                        + jump * (std::f64::consts::TAU * f_s * tau).cos() * (-tau / damping).exp()
                }
            })
            .collect();
        TimeSeries::new(0.0, 1.0 / fs, values)
    }

    #[test]
    fn jump_scoring_finds_two_to_one_peak() {
        let s = jump_trace(8.0, 5e-3);
        let r = score_jump_response(&s, 0.05, 0.1, 8.0);
        assert!((r.baseline_deg - 3.0).abs() < 0.01);
        // First extremum is -2*jump relative to baseline.
        assert!(
            (r.first_peak_ratio - 2.0).abs() < 0.15,
            "ratio {}",
            r.first_peak_ratio
        );
        assert!(r.first_peak_deg < 0.0);
        assert!(r.residual_ratio < 0.05, "well damped tail");
        let tau = r.damping_time_s.expect("damped");
        assert!((tau - 5e-3).abs() < 2e-3, "tau {tau}");
    }

    #[test]
    fn undamped_jump_has_large_residual() {
        let s = jump_trace(8.0, f64::INFINITY);
        let r = score_jump_response(&s, 0.05, 0.1, 8.0);
        assert!(r.residual_ratio > 0.8, "residual {}", r.residual_ratio);
    }
}
