//! Zero-allocation-on-hot-path telemetry for the closed loop.
//!
//! The paper validates its HIL rig by *observing* it — phase transients,
//! tick-accurate schedule lengths, deadline headroom per revolution. This
//! module gives the reproduction the same eyes: a [`TelemetryRegistry`] of
//! named counters, gauges and fixed-log2-bucket histograms whose hot-path
//! operations are single atomic instructions on pre-resolved handles.
//! Registration (name → cell) takes a mutex and allocates; recording through
//! a [`Counter`], [`Gauge`] or [`Histogram`] handle never does.
//!
//! Layering: the loop layers ([`crate::harness`], [`crate::hil`],
//! [`crate::sweep`]) thread a registry through their hot paths via
//! [`LoopMetrics`]; leaf crates that must not depend on `cil-core`
//! (`cil-dsp`, `cil-cgra`) expose plain stat accessors which are *sampled*
//! into a registry here ([`sample_kernel_cache`],
//! [`crate::engine::BeamEngine::sample_telemetry`]).
//!
//! A [`TelemetrySnapshot`] freezes the registry for export in Prometheus
//! text exposition format ([`TelemetrySnapshot::to_prometheus`]) or JSON
//! ([`TelemetrySnapshot::to_json`]). Registries merge losslessly and
//! order-independently with [`TelemetryRegistry::absorb`] — the join step of
//! [`crate::sweep::parallel_sweep_telemetry`].
//!
//! Metric naming: `cil_<subsystem>_<quantity>[_total]`, with Prometheus
//! labels embedded in the name string (e.g.
//! `cil_supervisor_calibrated_step_seconds{fidelity="cgra"}`). Counters end
//! in `_total`; histograms and gauges are named by unit (`_seconds`,
//! `_samples`). Wall-clock-derived metrics contain `wall` in their name so
//! determinism tests can filter them out.

use crate::fault::LoopEvent;
use crate::harness::LoopTrace;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets. Bucket `i` (for `0 < i < 63`) covers values
/// in `[2^(i-32), 2^(i-31))`; bucket 0 collects everything below `2^-31`
/// (including zero, negatives and subnormals), bucket 63 everything from
/// `2^31` up. That spans nanoseconds to decades when observing seconds.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent bias that maps the f64 binary exponent onto bucket 32 for
/// values in `[1, 2)`.
const BUCKET_BIAS: i64 = 32;

/// Bucket index for a value (see [`HISTOGRAM_BUCKETS`] for the scheme).
/// Non-finite values are treated as zero by [`Histogram::observe`], so they
/// land in bucket 0 and never poison the running sum.
fn bucket_index(v: f64) -> usize {
    if v <= 0.0 {
        return 0;
    }
    let biased_exp = ((v.to_bits() >> 52) & 0x7FF) as i64;
    if biased_exp == 0 {
        return 0; // subnormal
    }
    (biased_exp - 1023 + BUCKET_BIAS).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// Upper bound (`le` label) of bucket `i`; `f64::INFINITY` for the last.
fn bucket_upper_bound(i: usize) -> f64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        // 2^(i - 31)
        f64::from_bits((((i as i64 - 31 + 1023) as u64) & 0x7FF) << 52)
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    /// `f64` bit pattern (0u64 == 0.0).
    bits: AtomicU64,
}

impl GaugeCell {
    fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Running sum of observations, `f64` bit pattern, CAS-updated.
    sum_bits: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

impl HistogramCell {
    fn add_to_sum(&self, v: f64) {
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// Monotonic event counter handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<CounterCell>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// Last-value gauge handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (merge semantics — used by
    /// [`TelemetryRegistry::absorb`], where per-worker gauges sampling the
    /// same shared source must not add up).
    pub fn set_max(&self, v: f64) {
        if v > self.get() {
            self.set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.cell.get()
    }
}

/// Fixed-log2-bucket histogram handle. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation. Non-finite values are recorded as zero
    /// (bucket 0, no sum contribution) so a poisoned measurement can never
    /// NaN the export.
    #[inline]
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        self.cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.add_to_sum(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.cell.sum()
    }

    /// Span-style timing: returns a guard that observes the elapsed
    /// wall-clock seconds into this histogram when dropped.
    pub fn time(&self) -> Span {
        Span {
            histogram: self.clone(),
            start: Instant::now(),
        }
    }

    /// Overwrite this histogram's cells from a frozen snapshot — the
    /// checkpoint-resume path, which must reproduce the deterministic
    /// histograms bit-for-bit (the sum is restored as its exact bit pattern
    /// so continued sequential addition matches an uninterrupted run).
    /// Fails (returns `false`) on a bucket-count mismatch.
    pub fn restore_snapshot(&self, snap: &HistogramSnapshot) -> bool {
        if snap.buckets.len() != HISTOGRAM_BUCKETS {
            return false;
        }
        for (cell, &v) in self.cell.buckets.iter().zip(&snap.buckets) {
            cell.store(v, Ordering::Relaxed);
        }
        self.cell.count.store(snap.count, Ordering::Relaxed);
        self.cell
            .sum_bits
            .store(snap.sum.to_bits(), Ordering::Relaxed);
        true
    }

    /// Freeze this histogram's current state (checkpoint capture).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .cell
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.cell.count.load(Ordering::Relaxed),
            sum: self.cell.sum(),
        }
    }
}

/// Timing guard returned by [`Histogram::time`]; records the elapsed
/// wall-clock into the histogram on drop.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Instant,
}

impl Span {
    /// Elapsed seconds so far (without ending the span).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed().as_secs_f64());
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<CounterCell>>,
    gauges: BTreeMap<String, Arc<GaugeCell>>,
    histograms: BTreeMap<String, Arc<HistogramCell>>,
}

/// A registry of named metrics. Cheap to clone (shared handle); safe to use
/// from many threads. The name → cell map is mutex-guarded, but only
/// registration touches it — recording goes through pre-resolved
/// [`Counter`]/[`Gauge`]/[`Histogram`] handles and is lock- and
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct TelemetryRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl TelemetryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        let cell = inner.counters.entry(name.to_string()).or_default();
        Counter {
            cell: Arc::clone(cell),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        let cell = inner.gauges.entry(name.to_string()).or_default();
        Gauge {
            cell: Arc::clone(cell),
        }
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        let cell = inner.histograms.entry(name.to_string()).or_default();
        Histogram {
            cell: Arc::clone(cell),
        }
    }

    /// Merge another registry into this one: counters and histogram
    /// buckets/counts/sums add, gauges take the maximum. Counter and bucket
    /// merges are exact and order-independent; histogram sums are float
    /// additions (commutative, so N-way merges agree to rounding).
    pub fn absorb(&self, other: &TelemetryRegistry) {
        // Snapshot the other side's cells first so we never hold two
        // registry locks at once (self.absorb(self) or cross-absorb from
        // two threads must not deadlock).
        let (counters, gauges, histograms) = {
            let o = other.inner.lock().unwrap();
            (
                o.counters
                    .iter()
                    .map(|(n, c)| (n.clone(), Arc::clone(c)))
                    .collect::<Vec<_>>(),
                o.gauges
                    .iter()
                    .map(|(n, c)| (n.clone(), Arc::clone(c)))
                    .collect::<Vec<_>>(),
                o.histograms
                    .iter()
                    .map(|(n, c)| (n.clone(), Arc::clone(c)))
                    .collect::<Vec<_>>(),
            )
        };
        for (name, cell) in counters {
            self.counter(&name).add(cell.value.load(Ordering::Relaxed));
        }
        for (name, cell) in gauges {
            self.gauge(&name).set_max(cell.get());
        }
        for (name, cell) in histograms {
            let h = self.histogram(&name);
            for (i, b) in cell.buckets.iter().enumerate() {
                h.cell.buckets[i].fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            h.cell
                .count
                .fetch_add(cell.count.load(Ordering::Relaxed), Ordering::Relaxed);
            h.cell.add_to_sum(cell.sum());
        }
    }

    /// Freeze the current values into a [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().unwrap();
        TelemetrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.value.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, c)| {
                    (
                        n.clone(),
                        HistogramSnapshot {
                            buckets: c
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: c.count.load(Ordering::Relaxed),
                            sum: c.sum(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Sum over all buckets — equals [`Self::count`] by construction; the
    /// golden-trace tests assert this invariant on every exported histogram.
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`): the `le`
    /// edge of the bucket containing the `ceil(q · count)`-th observation.
    /// Conservative by construction — the true quantile lies at or below
    /// the returned edge (within one power of two). `None` on an empty
    /// histogram; the top bucket reports `f64::INFINITY`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(f64::INFINITY)
    }
}

/// Frozen registry state, ready for export. Metric names are sorted, so two
/// snapshots of identical registries compare (and serialise) identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter values by name (sorted).
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (sorted).
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name (sorted).
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Split `name{label="x"}` into `(base, Some(label="x"))`; a plain name
/// yields `(name, None)`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) — the
/// metric names carry embedded `label="value"` quotes.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TelemetrySnapshot {
    /// Value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// State of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus text exposition format. Histograms render cumulative
    /// `_bucket{le=...}` lines plus `_sum` and `_count`, skipping empty
    /// leading buckets to keep the output readable.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let (base, _) = split_labels(name);
            let _ = writeln!(out, "# TYPE {base} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let (base, _) = split_labels(name);
            let _ = writeln!(out, "# TYPE {base} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            let _ = writeln!(out, "# TYPE {base} histogram");
            let mut cumulative = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cumulative += b;
                // Print only the populated range plus the mandatory +Inf.
                let last = i == HISTOGRAM_BUCKETS - 1;
                if b == 0 && !last {
                    continue;
                }
                let le = bucket_upper_bound(i);
                let le = if le.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{le:e}")
                };
                let line = match labels {
                    Some(l) => format!("{base}_bucket{{{l},le=\"{le}\"}} {cumulative}"),
                    None => format!("{base}_bucket{{le=\"{le}\"}} {cumulative}"),
                };
                let _ = writeln!(out, "{line}");
            }
            let suffix = |metric: &str| match labels {
                Some(l) => format!("{base}_{metric}{{{l}}}"),
                None => format!("{base}_{metric}"),
            };
            let _ = writeln!(out, "{} {}", suffix("sum"), h.sum);
            let _ = writeln!(out, "{} {}", suffix("count"), h.count);
        }
        out
    }

    /// JSON object with `counters`, `gauges` and `histograms` maps
    /// (hand-rolled — the export must not drag a serialisation dependency
    /// into the hot-loop crate).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{value}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// How many measured rows share one wall-clock sample in the harness hot
/// loop. `Instant::now()` costs about as much as a Map-fidelity step, so the
/// harness reads the clock once per block and records the per-row average —
/// that is what keeps telemetry-on within 10% of telemetry-off (the
/// throughput-guard test). The harness's batched stepping
/// ([`crate::harness::LoopHarness::with_block_rows`]) defaults its block
/// size to this figure, so one engine block and one wall sample cover the
/// same row span; the sampler counts rows itself and stays correct (same
/// samples, same averages) for any other block size.
pub const WALL_SAMPLE_ROWS: u64 = 64;

/// Pre-resolved handles for every metric the loop harness records; built
/// once per run by [`LoopMetrics::register`] so the hot loop touches only
/// atomics.
#[derive(Debug, Clone)]
pub struct LoopMetrics {
    /// The registry the handles live in (engine-side sampling needs it).
    pub registry: TelemetryRegistry,
    pub(crate) idle_steps: Counter,
    pub(crate) revolution_wall: Histogram,
    pub(crate) step_modeled: Histogram,
    pub(crate) deadline_headroom: Histogram,
    revolutions: Counter,
    jump_edges: Counter,
    fault_activations: Counter,
    rows_corrupted: Counter,
    outliers_rejected: Counter,
    actuation_clamps: Counter,
    deadline_overruns: Counter,
    demotions: Counter,
    beam_losses: Counter,
    checkpoint_rejections: Counter,
    cavity_sags: Counter,
    compensations: Counter,
    pub(crate) checkpoint_writes: Counter,
    pub(crate) checkpoint_write_wall: Histogram,
}

impl LoopMetrics {
    /// Resolve (registering on first use) every loop metric in `registry`.
    pub fn register(registry: &TelemetryRegistry) -> Self {
        Self {
            idle_steps: registry.counter("cil_loop_idle_steps_total"),
            revolution_wall: registry.histogram("cil_loop_revolution_wall_seconds"),
            step_modeled: registry.histogram("cil_supervisor_step_modeled_seconds"),
            deadline_headroom: registry.histogram("cil_supervisor_deadline_headroom_seconds"),
            revolutions: registry.counter("cil_loop_revolutions_total"),
            jump_edges: registry.counter("cil_loop_jump_edges_total"),
            fault_activations: registry.counter("cil_fault_activations_total"),
            rows_corrupted: registry.counter("cil_fault_rows_corrupted_total"),
            outliers_rejected: registry.counter("cil_supervisor_outliers_rejected_total"),
            actuation_clamps: registry.counter("cil_supervisor_actuation_clamps_total"),
            deadline_overruns: registry.counter("cil_supervisor_deadline_overruns_total"),
            demotions: registry.counter("cil_supervisor_demotions_total"),
            beam_losses: registry.counter("cil_loop_beam_losses_total"),
            checkpoint_rejections: registry.counter("cil_checkpoint_rejections_total"),
            cavity_sags: registry.counter("cil_cavity_sags_total"),
            compensations: registry.counter("cil_cavity_compensations_total"),
            checkpoint_writes: registry.counter("cil_checkpoint_writes_total"),
            checkpoint_write_wall: registry.histogram("cil_checkpoint_write_wall_seconds"),
            registry: registry.clone(),
        }
    }

    /// Fold a finished run's trace into the counters. Counting from the
    /// recorded trace (rather than shadow-counting in the loop) guarantees
    /// the exported counters always equal what an auditor would count in
    /// `trace.events` — the invariant the golden-trace tests pin down.
    pub fn note_trace(&self, trace: &LoopTrace) {
        self.revolutions.add(trace.times.len() as u64);
        self.jump_edges.add(trace.jump_times.len() as u64);
        for event in &trace.events {
            match event {
                LoopEvent::FaultActive { .. } => self.fault_activations.inc(),
                LoopEvent::RowCorrupted { .. } => self.rows_corrupted.inc(),
                LoopEvent::OutlierRejected { .. } => self.outliers_rejected.inc(),
                LoopEvent::ActuationClamped { .. } => self.actuation_clamps.inc(),
                LoopEvent::DeadlineOverrun { .. } => self.deadline_overruns.inc(),
                LoopEvent::EngineDemoted { .. } => self.demotions.inc(),
                LoopEvent::BeamLost { .. } => self.beam_losses.inc(),
                LoopEvent::CheckpointRejected { .. } => self.checkpoint_rejections.inc(),
                LoopEvent::CavitySagDetected { .. } => self.cavity_sags.inc(),
                LoopEvent::CompensationEngaged { .. } => self.compensations.inc(),
            }
        }
    }

    /// Snapshot the metrics the loop accumulates *mid-run* (everything not
    /// derived from the trace at run end, minus wall-clock metrics, which
    /// are excluded from determinism comparisons anyway).
    pub(crate) fn checkpoint_snapshot(&self) -> crate::checkpoint::TelemetryCheckpoint {
        crate::checkpoint::TelemetryCheckpoint {
            idle_steps: self.idle_steps.get(),
            step_modeled: self.step_modeled.snapshot(),
            deadline_headroom: self.deadline_headroom.snapshot(),
        }
    }

    /// Fold a finished run's event-queue accounting into the registry:
    /// `cil_events_scheduled_total` / `cil_events_fired_total` per
    /// [`SimEvent`](crate::event::SimEvent) kind and the end-of-run queue
    /// depth gauge. Every kind is exported (zeros included) so two runs of
    /// the same configuration always produce identical metric name sets.
    /// Handles are resolved here, at fold time — the queue itself keeps
    /// plain per-kind arrays on the hot path. The depth gauge's label key
    /// (`checkpointing`) deliberately contains `checkpoint`: the armed
    /// count legitimately differs between a checkpointing run and its
    /// plain reference, so the determinism filters must drop it.
    pub fn note_events(&self, queue: &crate::event::EventQueue, checkpointing: bool) {
        for kind in crate::event::SimEvent::ALL {
            self.registry
                .counter(&format!(
                    "cil_events_scheduled_total{{kind=\"{}\"}}",
                    kind.label()
                ))
                .add(queue.scheduled_total(kind));
            self.registry
                .counter(&format!(
                    "cil_events_fired_total{{kind=\"{}\"}}",
                    kind.label()
                ))
                .add(queue.fired_total(kind));
        }
        self.registry
            .gauge(&format!(
                "cil_events_queue_depth{{checkpointing=\"{}\"}}",
                if checkpointing { "on" } else { "off" }
            ))
            .set(queue.depth() as f64);
    }

    /// Re-apply a mid-run telemetry snapshot onto this (fresh) registry.
    /// Counters are *added* (a resumed run starts from zero), histograms
    /// restored bit-exact. Returns `false` on a histogram shape mismatch.
    pub(crate) fn restore_checkpoint(&self, t: &crate::checkpoint::TelemetryCheckpoint) -> bool {
        self.idle_steps.add(t.idle_steps);
        self.step_modeled.restore_snapshot(&t.step_modeled)
            && self
                .deadline_headroom
                .restore_snapshot(&t.deadline_headroom)
    }
}

/// Sample a [`cil_cgra::cache::CompiledKernelCache`]'s statistics into
/// `registry` as gauges. Gauges (absolute samples), not counters: several
/// workers sampling the *shared* process-wide cache must not add up on
/// merge — [`TelemetryRegistry::absorb`] takes the max instead.
pub fn sample_kernel_cache(
    registry: &TelemetryRegistry,
    cache: &cil_cgra::cache::CompiledKernelCache,
) {
    registry
        .gauge("cil_cgra_cache_hits")
        .set(cache.hits() as f64);
    registry
        .gauge("cil_cgra_cache_misses")
        .set(cache.misses() as f64);
    registry
        .gauge("cil_cgra_cache_entries")
        .set(cache.len() as f64);
    registry
        .gauge("cil_cgra_cache_compile_wall_seconds")
        .set(cache.compile_seconds());
}

/// [`sample_kernel_cache`] over the process-wide [`cil_cgra::cache::global`]
/// cache — what the examples and bench binaries call before exporting.
pub fn sample_global_kernel_cache(registry: &TelemetryRegistry) {
    sample_kernel_cache(registry, cil_cgra::cache::global());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_line() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), 0, "subnormal");
        assert_eq!(bucket_index(1.0), 32);
        assert_eq!(bucket_index(1.999), 32);
        assert_eq!(bucket_index(2.0), 33);
        assert_eq!(bucket_index(0.5), 31);
        assert_eq!(bucket_index(1e-9), 2); // 2^-30 ≈ 9.3e-10 ≤ 1e-9 < 2^-29
        assert_eq!(bucket_index(1e300), 63);
        assert_eq!(bucket_index(f64::MAX), 63);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            let hi = bucket_upper_bound(i);
            let lo = bucket_upper_bound(i - 1);
            assert_eq!(bucket_index(lo), i, "lower edge lands in bucket {i}");
            assert_eq!(
                bucket_index(hi * (1.0 - 1e-12)),
                i,
                "just below the upper edge stays in bucket {i}"
            );
        }
        assert!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1).is_infinite());
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = TelemetryRegistry::new();
        let c = reg.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-resolving the same name shares the cell.
        assert_eq!(reg.counter("c_total").get(), 5);

        let g = reg.gauge("g");
        g.set(2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(3.0);
        assert_eq!(g.get(), 3.0);

        let h = reg.histogram("h_seconds");
        h.observe(1.5);
        h.observe(3.0);
        h.observe(f64::NAN); // folded to zero, never poisons the sum
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 4.5).abs() < 1e-12);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("c_total"), Some(5));
        assert_eq!(snap.gauge("g"), Some(3.0));
        let hs = snap.histogram("h_seconds").unwrap();
        assert_eq!(hs.count, 3);
        assert_eq!(hs.bucket_total(), hs.count);
        assert_eq!(hs.buckets[0], 1, "NaN observation fell into bucket 0");
        assert_eq!(hs.buckets[32], 1, "1.5 in [1,2)");
        assert_eq!(hs.buckets[33], 1, "3.0 in [2,4)");
    }

    #[test]
    fn span_records_elapsed_time() {
        let reg = TelemetryRegistry::new();
        let h = reg.histogram("span_wall_seconds");
        {
            let span = h.time();
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(span.elapsed_seconds() > 0.0);
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 2e-3, "slept 2 ms, recorded {}", h.sum());
    }

    #[test]
    fn absorb_adds_counters_and_histograms_and_maxes_gauges() {
        let a = TelemetryRegistry::new();
        let b = TelemetryRegistry::new();
        a.counter("c_total").add(2);
        b.counter("c_total").add(3);
        b.counter("only_b_total").add(7);
        a.gauge("g").set(1.0);
        b.gauge("g").set(9.0);
        a.histogram("h").observe(1.0);
        b.histogram("h").observe(1.0);
        b.histogram("h").observe(100.0);

        a.absorb(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c_total"), Some(5));
        assert_eq!(snap.counter("only_b_total"), Some(7));
        assert_eq!(snap.gauge("g"), Some(9.0));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.bucket_total(), 3);
        assert!((h.sum - 102.0).abs() < 1e-9);
        // b is untouched.
        assert_eq!(b.snapshot().counter("c_total"), Some(3));
    }

    #[test]
    fn prometheus_export_renders_all_kinds() {
        let reg = TelemetryRegistry::new();
        reg.counter("cil_demo_events_total").add(3);
        reg.gauge("cil_demo_level{channel=\"ref\"}").set(0.5);
        let h = reg.histogram("cil_demo_latency_seconds{fidelity=\"map\"}");
        h.observe(1.5);
        h.observe(1e-9);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE cil_demo_events_total counter"));
        assert!(text.contains("cil_demo_events_total 3"));
        assert!(text.contains("# TYPE cil_demo_level gauge"));
        assert!(text.contains("cil_demo_level{channel=\"ref\"} 0.5"));
        assert!(text.contains("# TYPE cil_demo_latency_seconds histogram"));
        // Labelled histograms splice the labels before the le bucket label.
        assert!(
            text.contains("cil_demo_latency_seconds_bucket{fidelity=\"map\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("cil_demo_latency_seconds_count{fidelity=\"map\"} 2"));
        assert!(text.contains("cil_demo_latency_seconds_sum{fidelity=\"map\"}"));
    }

    #[test]
    fn json_export_is_well_formed_and_escaped() {
        let reg = TelemetryRegistry::new();
        reg.counter("a_total").add(1);
        reg.gauge("g{label=\"x\"}").set(2.0);
        reg.histogram("h").observe(4.0);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":1"));
        // Embedded label quotes must be escaped.
        assert!(json.contains("\"g{label=\\\"x\\\"}\":2"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces/brackets (cheap well-formedness check; the names
        // contain no raw braces once escaped).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let make = |order: &[&str]| {
            let reg = TelemetryRegistry::new();
            for name in order {
                reg.counter(name).inc();
            }
            reg.snapshot()
        };
        let a = make(&["x_total", "a_total", "m_total"]);
        let b = make(&["m_total", "x_total", "a_total"]);
        assert_eq!(a, b);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(a.to_json(), b.to_json());
    }
}
