//! Closed-loop HIL during acceleration — the paper's Section VI current
//! work: "we are also implementing the ramp-up case, which simulates the
//! bunches after injection into the ring … the challenge is to emulate the
//! acceleration phase with variable RF frequencies and amplitudes."
//!
//! [`RampLoop`] runs the two-particle model along a ramp program with the
//! beam-phase controller closed and optional phase jumps injected — i.e.
//! the Fig. 5 experiment during acceleration instead of at flat top. A thin
//! adapter: [`crate::engine::RampEngine`] carries the beam,
//! [`crate::harness::LoopHarness`] closes the loop, and γ_R / φ_s telemetry
//! rides along through the harness observer hook.

use crate::control::BeamPhaseController;
use crate::engine::RampEngine;
use crate::error::{CilError, Result};
use crate::fault::{FaultInjector, FaultProgram, LoopEvent, LoopOutcome};
use crate::harness::LoopHarness;
use crate::signalgen::PhaseJumpProgram;
use crate::trace::TimeSeries;
use cil_physics::machine::MachineParams;
use cil_physics::ramp::RampProgram;
use cil_physics::IonSpecies;

/// Result of a ramp-loop run.
#[derive(Debug, Clone)]
pub struct RampLoopResult {
    /// Beam-vs-reference phase (degrees at the RF harmonic), uniformly
    /// resampled onto a fixed grid (the revolution period varies during the
    /// ramp, so per-turn samples are not uniform in time).
    pub phase_deg: TimeSeries,
    /// Reference γ over the same grid.
    pub gamma_r: TimeSeries,
    /// Synchronous phase over the same grid, degrees.
    pub phi_s_deg: TimeSeries,
    /// Audit channel: fault activations and losses, in order.
    pub events: Vec<LoopEvent>,
    /// How the ramp ended (loss carries turn index, time and cause: bucket
    /// over-demanded, phase left the bucket, or an injected fault).
    pub outcome: LoopOutcome,
}

impl RampLoopResult {
    /// True if the beam survived the whole ramp (bucket never over-demanded
    /// and |Δt| stayed within half an RF period).
    pub fn survived(&self) -> bool {
        self.outcome.survived()
    }
}

/// Closed-loop executive for the ramp-up case.
pub struct RampLoop {
    /// Ring parameters.
    pub machine: MachineParams,
    /// Ion species.
    pub ion: IonSpecies,
    /// Set-value program.
    pub program: RampProgram,
    /// Controller settings (constructed per run at the *injection*
    /// revolution frequency; the decimated rate then tracks the ramp only
    /// approximately, as a real fixed-rate DSP would).
    pub controller: crate::control::ControllerParams,
    /// Optional phase jumps during the ramp.
    pub jumps: PhaseJumpProgram,
    /// Scheduled fault injection along the ramp.
    pub faults: FaultProgram,
    /// Output sample spacing, seconds.
    pub output_dt: f64,
}

impl RampLoop {
    /// New ramp loop with no jumps and 0.5 ms output sampling.
    pub fn new(
        machine: MachineParams,
        ion: IonSpecies,
        program: RampProgram,
        controller: crate::control::ControllerParams,
    ) -> Self {
        Self {
            machine,
            ion,
            program,
            controller,
            jumps: PhaseJumpProgram {
                amplitude_deg: 0.0,
                interval_s: 1e9,
                path_latency_s: 0.0,
            },
            faults: FaultProgram::none(),
            output_dt: 5e-4,
        }
    }

    /// Run until `t_end` seconds (closed loop if `control_enabled`).
    ///
    /// Fails with [`CilError::InvalidConfig`] on a non-finite or
    /// non-positive horizon/output grid, or an unusable injection
    /// revolution frequency — instead of panicking deep inside the loop.
    pub fn run(&self, t_end: f64, control_enabled: bool) -> Result<RampLoopResult> {
        if !t_end.is_finite() || t_end <= 0.0 {
            return Err(CilError::InvalidConfig(format!(
                "ramp horizon must be finite and positive, got {t_end}"
            )));
        }
        if !self.output_dt.is_finite() || self.output_dt <= 0.0 {
            return Err(CilError::InvalidConfig(format!(
                "output_dt must be finite and positive, got {}",
                self.output_dt
            )));
        }
        let f0 = self.program.f_rev.at(0.0);
        if !f0.is_finite() || f0 <= 0.0 {
            return Err(CilError::InvalidConfig(format!(
                "ramp program's injection revolution frequency must be \
                 finite and positive, got {f0}"
            )));
        }
        let mut engine = RampEngine::new(self.machine, self.ion, self.program.clone());
        let mut controller = BeamPhaseController::new(self.controller, f0);
        controller.enabled = control_enabled;
        // No instrumentation offset on the ramp: the phase here is the raw
        // model observable.
        let mut harness = LoopHarness::new(controller, self.jumps, 0.0);
        harness.faults = FaultInjector::new(self.faults.clone());

        let mut gammas = Vec::new();
        let mut phis = Vec::new();
        let trace = harness.run_with(&mut engine, t_end, |e: &RampEngine| {
            gammas.push(e.gamma_r());
            phis.push(e.phi_s_deg());
        });

        // Forward-hold the per-turn rows onto the uniform output grid.
        let n_out = (t_end / self.output_dt) as usize;
        let mut phase = Vec::with_capacity(n_out);
        let mut gamma = Vec::with_capacity(n_out);
        let mut phi_s = Vec::with_capacity(n_out);
        let mut next_out = 0.0f64;
        for (i, &t) in trace.times.iter().enumerate() {
            while t >= next_out && phase.len() < n_out {
                phase.push(trace.mean_phase_deg[i]);
                gamma.push(gammas[i]);
                phi_s.push(phis[i]);
                next_out += self.output_dt;
            }
        }

        Ok(RampLoopResult {
            phase_deg: TimeSeries::new(0.0, self.output_dt, phase),
            gamma_r: TimeSeries::new(0.0, self.output_dt, gamma),
            phi_s_deg: TimeSeries::new(0.0, self.output_dt, phi_s),
            events: trace.events,
            outcome: trace.outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::ControllerParams;
    use cil_physics::ramp::Curve;

    fn gentle_ramp() -> RampProgram {
        RampProgram {
            f_rev: Curve::linear(0.05, 700e3, 0.4, 800e3),
            v_hat: Curve::constant(16e3),
        }
    }

    fn lp() -> RampLoop {
        RampLoop::new(
            MachineParams::sis18(),
            IonSpecies::n14_7plus(),
            gentle_ramp(),
            ControllerParams::evaluation_default(),
        )
    }

    #[test]
    fn beam_survives_gentle_ramp_closed_loop() {
        let result = lp().run(0.45, true).unwrap();
        assert!(result.survived());
        // γ reached the flat-top value.
        let g_final = *result.gamma_r.values.last().unwrap();
        let g_target = cil_physics::relativity::gamma_from_revolution(800e3, 216.72);
        assert!(
            (g_final - g_target).abs() < 2e-4,
            "gamma {g_final} vs {g_target}"
        );
        // Synchronous phase went positive during the ramp and back to ~0.
        let max_phi = result
            .phi_s_deg
            .values
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!(max_phi > 0.1, "acceleration used a positive phi_s");
        assert!(result.phi_s_deg.values.last().unwrap().abs() < 0.05);
    }

    #[test]
    fn controller_damps_jump_during_ramp() {
        let mut looped = lp();
        // Keep the synchrotron frequency inside the controller's pass band:
        // at 16 kV the ramp bucket has fs ≈ 2.3 kHz, beyond the 1.4 kHz
        // design point, and the fixed filter's phase lag anti-damps (a real
        // LLRF retunes the filter along the ramp). 4.8 kV keeps fs ≈
        // 1.28 kHz, where the paper's parameters apply.
        looped.program = RampProgram {
            f_rev: Curve::linear(0.05, 700e3, 0.4, 800e3),
            v_hat: Curve::constant(4.8e3),
        };
        looped.jumps = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.1,
            path_latency_s: 0.0,
        };
        let closed = looped.run(0.2, true).unwrap();
        let open = looped.run(0.2, false).unwrap();
        assert!(closed.survived() && open.survived());
        // After the jump at 0.1 s: closed-loop oscillation dies down, open
        // keeps ringing. Compare tail windows.
        let tail = |r: &RampLoopResult| {
            let w = r.phase_deg.window(0.16, 0.2);
            w.peak_to_peak()
        };
        assert!(
            tail(&closed) < tail(&open) * 0.5,
            "closed {} vs open {}",
            tail(&closed),
            tail(&open)
        );
    }

    #[test]
    fn overdemanded_ramp_reports_loss() {
        let mut looped = lp();
        looped.program = RampProgram {
            f_rev: Curve::linear(0.0, 400e3, 0.01, 1.2e6),
            v_hat: Curve::constant(100.0),
        };
        let result = looped.run(0.02, true).unwrap();
        assert!(!result.survived());
    }

    #[test]
    fn bad_horizon_and_grid_are_typed_errors() {
        for t_end in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                lp().run(t_end, true),
                Err(CilError::InvalidConfig(_))
            ));
        }
        let mut looped = lp();
        looped.output_dt = 0.0;
        assert!(matches!(
            looped.run(0.1, true),
            Err(CilError::InvalidConfig(_))
        ));
        let mut looped = lp();
        looped.program.f_rev = Curve::constant(-700e3);
        assert!(matches!(
            looped.run(0.1, true),
            Err(CilError::InvalidConfig(_))
        ));
    }

    #[test]
    fn output_grid_is_uniform() {
        let result = lp().run(0.1, true).unwrap();
        assert!((result.phase_deg.dt - 5e-4).abs() < 1e-12);
        assert!(result.phase_deg.len() >= 195 && result.phase_deg.len() <= 200);
        assert_eq!(result.phase_deg.len(), result.gamma_r.len());
    }
}
