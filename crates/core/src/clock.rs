//! Clock domains of the simulator (Sections III-A/III-C) and the BuTiS
//! campus clock (Section V).
//!
//! The converter/framework side runs at the 250 MHz sample clock; the CGRA
//! has its own 111 MHz clock ("to meet timing criteria on our FPGA, we
//! cannot use the system clock of 250 MHz for our CGRA"). BuTiS provides the
//! facility-wide low-jitter reference ("accuracy of 100 picoseconds per
//! kilometre", jitter "in the low femtosecond range").

use serde::{Deserialize, Serialize};

/// A clock domain with a nominal frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    /// Nominal frequency, Hz.
    pub frequency: f64,
}

impl ClockDomain {
    /// The FMC151 / framework sample clock: 250 MHz.
    pub fn system() -> Self {
        Self { frequency: 250e6 }
    }

    /// The CGRA clock: 111 MHz.
    pub fn cgra() -> Self {
        Self { frequency: 111e6 }
    }

    /// Period in seconds.
    pub fn period(&self) -> f64 {
        1.0 / self.frequency
    }

    /// Convert a tick count to seconds.
    pub fn ticks_to_seconds(&self, ticks: u64) -> f64 {
        ticks as f64 * self.period()
    }

    /// Convert seconds to (fractional) ticks.
    pub fn seconds_to_ticks(&self, seconds: f64) -> f64 {
        seconds * self.frequency
    }

    /// Convert a tick count of `self` into fractional ticks of `other`.
    pub fn convert_ticks(&self, ticks: u64, other: &ClockDomain) -> f64 {
        self.ticks_to_seconds(ticks) * other.frequency
    }

    /// The revolution "clock": one tick per beam revolution. This is the
    /// domain the harness's event queue schedules on (one tick per measured
    /// trace row for turn-level engines).
    pub fn revolution(f_rev: f64) -> Self {
        Self { frequency: f_rev }
    }

    /// Convert a tick count of `self` into whole ticks of `other`, rounding
    /// *up* — the conservative direction for deadlines: an event converted
    /// across domains may fire one tick early, never late. Exact
    /// conversions (within one part in 2⁻³² of a tick, absorbing the float
    /// round-trip) stay exact.
    pub fn convert_ticks_ceil(&self, ticks: u64, other: &ClockDomain) -> u64 {
        let fractional = self.convert_ticks(ticks, other);
        let eps = 2f64.powi(-32);
        (fractional - eps).ceil().max(0.0) as u64
    }
}

/// The BuTiS-grade master clock: a time base with an optional Gaussian
/// cycle-to-cycle jitter (σ in seconds). With the default femtosecond-class
/// jitter the clock is effectively ideal for the 4 ns sample grid; ablations
/// crank this up to see when timing degrades.
#[derive(Debug, Clone)]
pub struct MasterClock {
    domain: ClockDomain,
    /// RMS edge jitter, seconds.
    pub jitter_rms: f64,
    tick: u64,
    rng_state: u64,
}

impl MasterClock {
    /// New master clock; `jitter_rms = 0` gives the ideal clock.
    pub fn new(domain: ClockDomain, jitter_rms: f64, seed: u64) -> Self {
        Self {
            domain,
            jitter_rms,
            tick: 0,
            rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    /// BuTiS-grade: 250 MHz with 50 fs RMS jitter.
    pub fn butis(seed: u64) -> Self {
        Self::new(ClockDomain::system(), 50e-15, seed)
    }

    /// Advance one cycle; returns the actual edge time in seconds.
    pub fn next_edge(&mut self) -> f64 {
        let nominal = self.domain.ticks_to_seconds(self.tick);
        self.tick += 1;
        if self.jitter_rms == 0.0 {
            return nominal;
        }
        nominal + self.gauss() * self.jitter_rms
    }

    /// Current tick index.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    // xorshift + Box–Muller; deliberately self-contained so clock behaviour
    // never depends on external RNG sequencing.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    fn gauss(&mut self) -> f64 {
        let u1 = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let u1 = (1.0 - u1).max(1e-300);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_frequencies() {
        assert_eq!(ClockDomain::system().frequency, 250e6);
        assert_eq!(ClockDomain::cgra().frequency, 111e6);
    }

    #[test]
    fn tick_second_roundtrip() {
        let d = ClockDomain::system();
        let t = d.seconds_to_ticks(1e-6);
        assert!((t - 250.0).abs() < 1e-9);
        assert!((d.ticks_to_seconds(250) - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn cross_domain_conversion() {
        // 111 CGRA ticks = 1 µs = 250 system ticks.
        let cgra = ClockDomain::cgra();
        let sys = ClockDomain::system();
        let t = cgra.convert_ticks(111, &sys);
        assert!((t - 250.0).abs() < 1e-9);
    }

    #[test]
    fn ceil_conversion_never_lands_late() {
        let cgra = ClockDomain::cgra();
        let sys = ClockDomain::system();
        // Exact: 111 CGRA ticks = 250 system ticks.
        assert_eq!(cgra.convert_ticks_ceil(111, &sys), 250);
        // Inexact: 1 CGRA tick = 250/111 ≈ 2.252 system ticks → 3.
        assert_eq!(cgra.convert_ticks_ceil(1, &sys), 3);
        assert_eq!(cgra.convert_ticks_ceil(0, &sys), 0);
        // A deadline converted up is never later than the original:
        // ceil ticks / f_other ≥ ticks / f_self.
        for ticks in [1u64, 7, 111, 1000, 123457] {
            let converted = cgra.convert_ticks_ceil(ticks, &sys);
            assert!(sys.ticks_to_seconds(converted) >= cgra.ticks_to_seconds(ticks) - 1e-15);
        }
    }

    #[test]
    fn revolution_domain_ticks_once_per_turn() {
        let rev = ClockDomain::revolution(500e3);
        assert!((rev.period() - 2e-6).abs() < 1e-18);
        // 0.05 s of jump-program interval = 25 000 revolutions.
        assert!((rev.seconds_to_ticks(0.05) - 25_000.0).abs() < 1e-6);
    }

    #[test]
    fn ideal_clock_edges_are_exact() {
        let mut clk = MasterClock::new(ClockDomain::system(), 0.0, 1);
        assert_eq!(clk.next_edge(), 0.0);
        assert!((clk.next_edge() - 4e-9).abs() < 1e-20);
    }

    #[test]
    fn jittered_clock_stays_near_nominal() {
        let mut clk = MasterClock::butis(42);
        let mut max_dev = 0.0f64;
        for i in 0..10_000u64 {
            let e = clk.next_edge();
            let nominal = i as f64 * 4e-9;
            max_dev = max_dev.max((e - nominal).abs());
        }
        // 50 fs RMS: even 6 sigma is < 1 ps, vastly below the 4 ns grid.
        assert!(max_dev < 1e-12, "max deviation {max_dev}");
        assert!(max_dev > 0.0, "jitter actually applied");
    }

    #[test]
    fn jitter_rms_is_calibrated() {
        let mut clk = MasterClock::new(ClockDomain::system(), 1e-12, 7);
        let n = 100_000;
        let mut sum_sq = 0.0;
        for i in 0..n as u64 {
            let dev = clk.next_edge() - i as f64 * 4e-9;
            sum_sq += dev * dev;
        }
        let rms = (sum_sq / n as f64).sqrt();
        assert!((rms - 1e-12).abs() / 1e-12 < 0.05, "rms = {rms}");
    }
}
