//! Closed-loop executives — "cavity in the loop".
//!
//! Two fidelities of the same experiment, both thin adapters over the
//! shared [`crate::harness::LoopHarness`] / [`crate::engine::BeamEngine`]
//! pair:
//!
//! * [`TurnLevelLoop`] — one step per revolution. The beam model runs as
//!   the plain two-particle map, through the *actual CGRA executor* fed by
//!   analytic signals, or as the multi-particle reference tracker
//!   (see [`EngineKind`]). Fast enough for the full 0.4 s Fig. 5 trace in
//!   milliseconds.
//! * [`SignalLevelLoop`] — every 250 MHz sample: DDS → ADC → ring buffers →
//!   detectors → CGRA → Gauss pulses → DAC → DSP phase detector →
//!   controller → gap DDS. The full Fig. 3 + Fig. 4 chain; ablation A6
//!   checks it against the turn-level loop.

use crate::control::BeamPhaseController;
use crate::engine::SignalLevelEngine;
use crate::error::Result;
use crate::fault::{LoopEvent, LoopOutcome, LoopSupervisor};
use crate::harness::LoopHarness;
use crate::scenario::MdeScenario;
use crate::telemetry::TelemetryRegistry;
use crate::trace::TimeSeries;

pub use crate::engine::EngineKind;

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct HilResult {
    /// Beam-vs-reference phase (degrees at the RF harmonic), one sample per
    /// revolution — the Fig. 5 trace.
    pub phase_deg: TimeSeries,
    /// Controller actuation (Hz gap-frequency trim), one sample per
    /// revolution.
    pub control_hz: TimeSeries,
    /// Times at which the jump program toggled, seconds.
    pub jump_times: Vec<f64>,
    /// Audit channel: fault activations, rejections, demotions, losses.
    pub events: Vec<LoopEvent>,
    /// How the run ended.
    pub outcome: LoopOutcome,
}

impl HilResult {
    /// The Fig. 5a display form: 5-sample moving average.
    pub fn display_trace(&self) -> TimeSeries {
        self.phase_deg.averaged(5)
    }
}

/// Turn-level closed-loop executive.
pub struct TurnLevelLoop {
    scenario: MdeScenario,
    engine: EngineKind,
    telemetry: Option<TelemetryRegistry>,
}

impl TurnLevelLoop {
    /// New loop for a scenario.
    pub fn new(scenario: MdeScenario, engine: EngineKind) -> Self {
        Self {
            scenario,
            engine,
            telemetry: None,
        }
    }

    /// Record run metrics into `registry` (builder style).
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = Some(registry.clone());
        self
    }

    /// Run the experiment for the scenario duration. `control_enabled`
    /// opens/closes the loop (Fig. 5 runs closed).
    pub fn run(&self, control_enabled: bool) -> Result<HilResult> {
        let mut engine = self.engine.build(&self.scenario)?;
        self.run_on(engine.as_mut(), control_enabled)
    }

    /// Like [`Self::run`] but on a caller-provided engine — the hook sweeps
    /// use to amortise engine construction across points via an
    /// [`EngineArena`](crate::sweep::EngineArena). The engine must be in
    /// its freshly-built state for this scenario (the arena restores it);
    /// the harness (controller, fault injector, jump program) is rebuilt
    /// per call, so only engine construction is shared.
    pub fn run_on(
        &self,
        engine: &mut dyn crate::engine::BeamEngine,
        control_enabled: bool,
    ) -> Result<HilResult> {
        let s = &self.scenario;
        let t_rev = 1.0 / s.f_rev;
        let mut harness = LoopHarness::for_scenario(s, control_enabled);
        if let Some(reg) = &self.telemetry {
            harness = harness.with_telemetry(reg);
        }
        let trace = harness.run(engine, s.duration_s);
        Ok(HilResult {
            phase_deg: TimeSeries::new(0.0, t_rev, trace.mean_phase_deg),
            control_hz: TimeSeries::new(0.0, t_rev, trace.control_hz),
            jump_times: trace.jump_times,
            events: trace.events,
            outcome: trace.outcome,
        })
    }

    /// Run the experiment under a [`LoopSupervisor`]: deadline watchdog,
    /// outlier rejection, actuation clamping and graceful engine
    /// degradation (see [`LoopHarness::run_supervised`]).
    pub fn run_supervised(
        &self,
        control_enabled: bool,
        supervisor: &mut LoopSupervisor,
    ) -> Result<HilResult> {
        let s = &self.scenario;
        let t_rev = 1.0 / s.f_rev;
        let mut harness = LoopHarness::for_scenario(s, control_enabled);
        if let Some(reg) = &self.telemetry {
            harness = harness.with_telemetry(reg);
        }
        let trace = harness.run_supervised(s, self.engine, s.duration_s, supervisor)?;
        Ok(HilResult {
            phase_deg: TimeSeries::new(0.0, t_rev, trace.mean_phase_deg),
            control_hz: TimeSeries::new(0.0, t_rev, trace.control_hz),
            jump_times: trace.jump_times,
            events: trace.events,
            outcome: trace.outcome,
        })
    }
}

/// Signal-level closed-loop executive: the full test bench of Fig. 4.
pub struct SignalLevelLoop {
    scenario: MdeScenario,
    telemetry: Option<TelemetryRegistry>,
}

impl SignalLevelLoop {
    /// New loop for a scenario.
    pub fn new(scenario: MdeScenario) -> Self {
        Self {
            scenario,
            telemetry: None,
        }
    }

    /// Record run metrics into `registry` (builder style).
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = Some(registry.clone());
        self
    }

    /// Run for `duration_s` seconds of bench time (may be shorter than the
    /// scenario duration — the signal-level loop processes 250 M samples
    /// per simulated second).
    pub fn run(&self, duration_s: f64, control_enabled: bool) -> Result<HilResult> {
        let s = &self.scenario;
        let mut engine = SignalLevelEngine::from_scenario(s)?;
        // The detector measures once per bunch passage, so the controller's
        // decimated rate derives from f_rev × bunches, not f_rev.
        let mut controller = BeamPhaseController::new(s.controller, s.f_rev * s.bunches as f64);
        controller.enabled = control_enabled;
        let mut harness = LoopHarness::new(controller, s.jumps, s.instrument_offset_deg);
        if let Some(reg) = &self.telemetry {
            harness = harness.with_telemetry(reg);
        }
        let trace = harness.run(&mut engine, duration_s);

        let t_rev = 1.0 / s.f_rev;
        let phase_events: Vec<(f64, f64)> = trace
            .times
            .iter()
            .copied()
            .zip(trace.mean_phase_deg)
            .collect();
        let control_events: Vec<(f64, f64)> =
            trace.times.iter().copied().zip(trace.control_hz).collect();
        Ok(HilResult {
            phase_deg: resample(&phase_events, t_rev, duration_s),
            control_hz: resample(&control_events, t_rev, duration_s),
            jump_times: trace.jump_times,
            events: trace.events,
            outcome: trace.outcome,
        })
    }
}

/// Convert irregular (time, value) events into a uniform series with
/// zero-order hold, one sample per `dt`.
fn resample(events: &[(f64, f64)], dt: f64, duration: f64) -> TimeSeries {
    let n = (duration / dt) as usize;
    let mut values = Vec::with_capacity(n);
    let mut idx = 0usize;
    let mut current = events.first().map_or(0.0, |e| e.1);
    for i in 0..n {
        let t = i as f64 * dt;
        while idx < events.len() && events[idx].0 <= t {
            current = events[idx].1;
            idx += 1;
        }
        values.push(current);
    }
    TimeSeries::new(0.0, dt, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::score_jump_response;

    fn fast_scenario() -> MdeScenario {
        // Shorter jump interval so short runs still contain jump events.
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.1;
        s.bunches = 1;
        s
    }

    #[test]
    fn turn_level_map_reproduces_fig5_shape() {
        let s = fast_scenario();
        let result = TurnLevelLoop::new(s.clone(), EngineKind::Map)
            .run(true)
            .unwrap();
        assert!(!result.jump_times.is_empty(), "at least one jump in 0.1 s");
        let t_jump = result.jump_times[0];
        let r = score_jump_response(
            &result.phase_deg,
            t_jump,
            t_jump + 0.045,
            s.jumps.amplitude_deg,
        );
        // First peak ≈ 2× the jump; the loop damps the oscillation.
        assert!(
            (r.first_peak_ratio - 2.0).abs() < 0.35,
            "first-peak ratio {}",
            r.first_peak_ratio
        );
        assert!(
            r.residual_ratio < 0.2,
            "damped, residual {}",
            r.residual_ratio
        );
        // A constant baseline offset is visible. It is close to, but not
        // exactly, the instrumentation offset: the controller's start-up
        // transient integrates into a permanent (physically arbitrary) RF
        // phase shift — the same class of constant offset the paper notes
        // in Fig. 5 and dismisses as irrelevant.
        assert!((r.baseline_deg - s.instrument_offset_deg).abs() < 8.0);
    }

    #[test]
    fn turn_level_cgra_matches_map_engine() {
        let mut s = fast_scenario();
        s.duration_s = 0.06;
        let a = TurnLevelLoop::new(s.clone(), EngineKind::Map)
            .run(true)
            .unwrap();
        let b = TurnLevelLoop::new(s, EngineKind::Cgra).run(true).unwrap();
        assert_eq!(a.phase_deg.len(), b.phase_deg.len());
        // The engines see slightly different sampled voltages (the CGRA
        // kernel does its own ΔT bookkeeping), but the traces must agree to
        // a fraction of a degree RMS.
        let mut err2 = 0.0;
        for (x, y) in a.phase_deg.values.iter().zip(&b.phase_deg.values) {
            err2 += (x - y) * (x - y);
        }
        let rms = (err2 / a.phase_deg.len() as f64).sqrt();
        assert!(rms < 0.8, "map vs CGRA rms {rms} deg");
    }

    #[test]
    fn open_loop_does_not_damp() {
        let mut s = fast_scenario();
        s.duration_s = 0.1;
        let result = TurnLevelLoop::new(s.clone(), EngineKind::Map)
            .run(false)
            .unwrap();
        let t_jump = result.jump_times[0];
        let r = score_jump_response(
            &result.phase_deg,
            t_jump,
            t_jump + 0.045,
            s.jumps.amplitude_deg,
        );
        assert!(
            r.residual_ratio > 0.7,
            "open loop rings, residual {}",
            r.residual_ratio
        );
    }

    #[test]
    fn display_trace_is_smoothed() {
        let s = fast_scenario();
        let result = TurnLevelLoop::new(s, EngineKind::Map).run(true).unwrap();
        let raw = &result.phase_deg;
        let disp = result.display_trace();
        assert_eq!(raw.len(), disp.len());
    }

    #[test]
    fn signal_level_loop_oscillates_and_damps() {
        // One real jump cycle at the paper's 0.05 s spacing: 65 ms of full
        // 250 MS/s simulation. Score on the paper's display form (5-sample
        // averaging) — the raw trace carries the ±4.6° quantisation of the
        // 4 ns pulse-trigger grid.
        let s = fast_scenario();
        let result = SignalLevelLoop::new(s).run(0.076, true).unwrap();
        assert!(!result.jump_times.is_empty());
        let t_jump = result.jump_times[0];
        let display = result.display_trace();
        let r = score_jump_response(&display, t_jump, t_jump + 0.025, 8.0);
        assert!(
            r.first_peak_ratio > 1.4 && r.first_peak_ratio < 2.6,
            "signal-level first-peak ratio {}",
            r.first_peak_ratio
        );
        // The signal-level loop damps more slowly than the ideal turn-level
        // loop: the pipelined kernel's two-turn-stale voltages cost ~80/s of
        // damping rate, and the 4 ns pulse-trigger grid leaves a ~0.3
        // quantisation floor. Within 25 ms the oscillation must still fall
        // well below the open-loop level (≈ 1.0).
        assert!(r.residual_ratio < 0.6, "residual {}", r.residual_ratio);
    }

    #[test]
    fn signal_level_matches_turn_level_open_loop() {
        // Ablation A6 (reduced): open-loop phase traces from both
        // fidelities agree on frequency and amplitude of the oscillation.
        let mut s = fast_scenario();
        s.jumps.interval_s = 4e-3;
        s.instrument_offset_deg = 0.0;
        let duration = 0.012;
        let sig = SignalLevelLoop::new(s.clone())
            .run(duration, false)
            .unwrap();
        let mut s_turn = s.clone();
        s_turn.duration_s = duration;
        let turn = TurnLevelLoop::new(s_turn, EngineKind::Map)
            .run(false)
            .unwrap();

        // Compare over the window after the first signal-level jump.
        let t0 = sig.jump_times[0].max(turn.jump_times[0]) + 1e-4;
        let w_sig = sig.phase_deg.window(t0, duration);
        let w_turn = turn.phase_deg.window(t0, duration);
        let (f_sig, a_sig) = w_sig.dominant_frequency(600.0, 3000.0);
        let (f_turn, a_turn) = w_turn.dominant_frequency(600.0, 3000.0);
        assert!((f_sig - f_turn).abs() < 100.0, "fs {f_sig} vs {f_turn}");
        assert!(
            (a_sig - a_turn).abs() / a_turn < 0.35,
            "amplitude {a_sig} vs {a_turn}"
        );
    }

    #[test]
    fn resample_zero_order_hold() {
        let events = vec![(0.1, 1.0), (0.3, 2.0)];
        let s = resample(&events, 0.1, 0.5);
        assert_eq!(s.values, vec![1.0, 1.0, 1.0, 2.0, 2.0]);
    }
}
