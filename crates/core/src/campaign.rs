//! Crash-safe campaign runner: resumable 10⁵-point sweeps with panic
//! isolation, retry/backoff and poison-point quarantine.
//!
//! The paper's closed-loop results come from sweeping many scenario
//! variants; the facilities behind the related work run these loops as
//! fleets. At 10⁵ points a sweep stops being a function call and becomes a
//! *campaign*: it will be killed (preemption, OOM, power), individual
//! points will misbehave (a pathological controller setting panics an
//! engine), and nobody wants to restart from zero or babysit the fleet.
//! This module layers three robustness contracts over
//! [`crate::sweep::parallel_sweep_with_merge`]:
//!
//! 1. **Durability** — points are grouped into fixed-size *shards*; each
//!    finished shard is appended to `campaign.log`, a framed write-ahead
//!    log reusing the checkpoint layer's CRC32/length framing. A killed
//!    campaign resumes from the WAL: recorded shards are never
//!    re-executed, a torn tail (the frame being written at the kill) is
//!    truncated away, and the final aggregate CSV is byte-identical to an
//!    uninterrupted run's.
//! 2. **Isolation** — every point executes under `catch_unwind`; a panic
//!    poisons only that point (the worker's [`EngineArena`] is cleared, so
//!    the next lease rebuilds from scratch) and the campaign completes
//!    around it.
//! 3. **Bounded retry + quarantine** — failed points are retried up to
//!    [`CampaignConfig::max_retries`] times with exponential backoff
//!    counted in *simulated ticks* (one tick = one point execution on that
//!    worker), never wall-clock, so replay is bit-identical. Points that
//!    exhaust retries are quarantined into `poisoned.csv` with the typed
//!    [`CilError`](crate::error::CilError) message or panic payload; a
//!    result row of the wrong arity is a harness bug, not transient, and
//!    quarantines immediately without retry.
//!
//! What is *not* retried: wrong result arity (see above) and campaign-level
//! failures (WAL I/O errors, incompatible point lists) — those surface as
//! [`CampaignError`], because retrying cannot fix a broken disk or a wrong
//! directory.
//!
//! Work distribution is dynamic: workers claim shards from a shared atomic
//! cursor (work stealing), so a shard full of slow or retried points does
//! not idle the rest of the fleet. Determinism is preserved because shards
//! are self-contained — a shard's records depend only on its own points
//! and the (deterministic) retry schedule, never on which worker ran it or
//! when. Aggregation is streaming: a shard commits one summary record per
//! point (a few f64 columns), not full traces, so a 10⁵-point campaign's
//! memory footprint is megabytes.

use crate::checkpoint::{frame_block, next_frame, CheckpointError, Dec, Enc};
use crate::error::Result as CilResult;
use crate::scenario::MdeScenario;
use crate::sweep::{panic_message, parallel_sweep_with_merge, EngineArena};
use crate::telemetry::TelemetryRegistry;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// `"CAMH"` — campaign WAL header frame.
const HEADER_MAGIC: u32 = 0x484D_4143;
/// `"CAMS"` — campaign WAL shard frame.
const SHARD_MAGIC: u32 = 0x534D_4143;
/// Campaign WAL format version.
const WAL_VERSION: u32 = 1;
/// WAL file name inside the campaign directory.
pub const CAMPAIGN_LOG_NAME: &str = "campaign.log";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Campaign-level failure: the campaign itself could not run or resume.
/// (Per-point failures never surface here — they are retried and
/// quarantined.)
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem failure on the WAL or the output CSVs.
    Io(std::io::Error),
    /// The WAL header exists but cannot be decoded.
    Wal(CheckpointError),
    /// The WAL was written by a different campaign: point count, point
    /// digests, shard size or result columns disagree with this one.
    Incompatible(&'static str),
    /// The configuration is rejected before any work starts.
    InvalidConfig(&'static str),
    /// A shared state lock was poisoned by a panicking worker thread. The
    /// WAL on disk is still valid (frames are CRC-framed and appended
    /// whole), so a rerun resumes from the committed prefix.
    Poisoned(&'static str),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "campaign I/O error: {e}"),
            Self::Wal(e) => write!(f, "campaign WAL error: {e}"),
            Self::Incompatible(msg) => {
                write!(f, "campaign.log belongs to a different campaign: {msg}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid campaign configuration: {msg}"),
            Self::Poisoned(msg) => write!(f, "campaign state lock poisoned: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CheckpointError> for CampaignError {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(io) => Self::Io(io),
            other => Self::Wal(other),
        }
    }
}

type R<T> = std::result::Result<T, CampaignError>;

// ---------------------------------------------------------------------------
// Points and configuration
// ---------------------------------------------------------------------------

/// A sweepable input with a stable identity. The digest names the point in
/// quarantine records and lets a resumed campaign verify the regenerated
/// point list is the one the WAL was written against.
pub trait CampaignPoint: Sync {
    /// Deterministic, platform-independent 64-bit identity of this point.
    fn digest(&self) -> u64;
}

impl CampaignPoint for MdeScenario {
    fn digest(&self) -> u64 {
        MdeScenario::digest(self)
    }
}

/// Handy for tests and synthetic benches: the value is its own identity.
impl CampaignPoint for u64 {
    fn digest(&self) -> u64 {
        *self
    }
}

/// How a campaign shards, retries and persists.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign directory: holds `campaign.log`, `aggregate.csv` and
    /// `poisoned.csv`. Created on first use.
    pub dir: PathBuf,
    /// Points per shard (the durability granule: a kill loses at most the
    /// in-flight shards). Default 256.
    pub shard_points: usize,
    /// Worker threads. Default: available parallelism.
    pub workers: usize,
    /// Retries allowed per point *after* its first attempt. Default 2.
    pub max_retries: u32,
    /// Backoff after the first failure, in simulated ticks (one tick = one
    /// point execution on the same worker). Doubles per failure. Default 1.
    pub backoff_base_ticks: u64,
    /// Backoff ceiling, ticks. Default 64.
    pub backoff_cap_ticks: u64,
    /// Sync the WAL to stable storage after every shard commit (and the
    /// output CSVs before their rename). Same trade-off as
    /// [`crate::checkpoint::CheckpointConfig::fsync`]; default `false`.
    pub fsync: bool,
    /// Names of the per-point result columns (`aggregate.csv` header). A
    /// point whose result row has a different length is quarantined
    /// immediately — that is a harness bug, not a transient failure.
    pub columns: Vec<String>,
}

impl CampaignConfig {
    /// Defaults in `dir` with the given result columns.
    pub fn new(dir: impl Into<PathBuf>, columns: &[&str]) -> Self {
        Self {
            dir: dir.into(),
            shard_points: 256,
            workers: std::thread::available_parallelism().map_or(1, |v| v.get()),
            max_retries: 2,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 64,
            fsync: false,
            columns: columns.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    fn validate(&self) -> R<()> {
        if self.shard_points == 0 {
            return Err(CampaignError::InvalidConfig("shard_points must be >= 1"));
        }
        if self.workers == 0 {
            return Err(CampaignError::InvalidConfig("workers must be >= 1"));
        }
        if self.columns.is_empty() {
            return Err(CampaignError::InvalidConfig(
                "columns must name at least one result column",
            ));
        }
        if self.columns.iter().any(|c| c.contains([',', '\n', '\r'])) {
            return Err(CampaignError::InvalidConfig(
                "column names must not contain commas or newlines",
            ));
        }
        if self.backoff_cap_ticks < self.backoff_base_ticks {
            return Err(CampaignError::InvalidConfig(
                "backoff_cap_ticks must be >= backoff_base_ticks",
            ));
        }
        Ok(())
    }

    /// Backoff before attempt `failures + 1`, given `failures` failed
    /// attempts so far: `base · 2^(failures−1)`, capped.
    fn backoff_ticks(&self, failures: u32) -> u64 {
        if failures == 0 {
            return 0;
        }
        let shift = failures - 1;
        let doubled = if shift >= 64 || self.backoff_base_ticks.leading_zeros() < shift {
            u64::MAX
        } else {
            self.backoff_base_ticks << shift
        };
        doubled.min(self.backoff_cap_ticks)
    }
}

// ---------------------------------------------------------------------------
// Outcomes and report
// ---------------------------------------------------------------------------

/// Terminal state of one point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointStatus {
    /// The point produced its result row (possibly after retries).
    Completed(Vec<f64>),
    /// The point exhausted its retries (or failed a non-retryable check);
    /// the string is the final error or panic message.
    Quarantined(String),
}

/// One point's record as committed to the WAL.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Index in the campaign's point list.
    pub index: usize,
    /// [`CampaignPoint::digest`] of the input.
    pub digest: u64,
    /// Executions performed (1 = first try succeeded).
    pub attempts: u32,
    /// Total simulated-tick backoff the point waited across its retries.
    pub backoff_ticks: u64,
    /// How the point ended.
    pub status: PointStatus,
}

/// What a finished campaign did.
#[derive(Debug)]
pub struct CampaignReport {
    /// Every point's outcome, in point order.
    pub outcomes: Vec<PointOutcome>,
    /// Points that completed.
    pub completed: usize,
    /// Points quarantined into `poisoned.csv`.
    pub quarantined: usize,
    /// Re-executions beyond each point's first attempt, summed. Counts
    /// only shards executed by *this* run — a resumed campaign does not
    /// re-count retries already absorbed into the WAL.
    pub retries: u64,
    /// Shards in the campaign.
    pub shards_total: usize,
    /// Shards recovered from the WAL instead of executed.
    pub shards_resumed: usize,
    /// Path of the aggregate results CSV.
    pub aggregate_csv: PathBuf,
    /// Path of the quarantine CSV.
    pub poisoned_csv: PathBuf,
}

// ---------------------------------------------------------------------------
// Worker-visible state
// ---------------------------------------------------------------------------

/// Per-worker state handed to the point function: a warm [`EngineArena`]
/// and a private [`TelemetryRegistry`] (absorbed into the campaign's root
/// registry when the worker finishes).
pub struct CampaignWorker {
    /// Engine cache — lease engines through this so identical engine
    /// configurations skip construction.
    pub arena: EngineArena,
    /// Worker-private metrics; record freely, no shared lock.
    pub telemetry: TelemetryRegistry,
    attempt: u32,
}

impl CampaignWorker {
    fn new() -> Self {
        Self {
            arena: EngineArena::new(),
            telemetry: TelemetryRegistry::new(),
            attempt: 1,
        }
    }

    /// Which attempt of the current point is executing (1-based). Lets the
    /// point function vary behaviour across retries (the retry tests lean
    /// on this).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }
}

// ---------------------------------------------------------------------------
// WAL encode / decode
// ---------------------------------------------------------------------------

/// Combined identity of the whole point list (FNV-1a over `(index,
/// digest)` pairs) — one u64 in the header instead of 10⁵ digests.
fn points_digest(digests: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut byte = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for (i, &d) in digests.iter().enumerate() {
        for b in (i as u64).to_le_bytes() {
            byte(b);
        }
        for b in d.to_le_bytes() {
            byte(b);
        }
    }
    h
}

fn encode_header(cfg: &CampaignConfig, n_points: usize, points_digest: u64) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(WAL_VERSION);
    e.u64(n_points as u64);
    e.u64(cfg.shard_points as u64);
    e.u64(points_digest);
    e.u32(cfg.max_retries);
    e.u64(cfg.backoff_base_ticks);
    e.u64(cfg.backoff_cap_ticks);
    e.usize(cfg.columns.len());
    for c in &cfg.columns {
        e.str(c);
    }
    frame_block(HEADER_MAGIC, &e.buf)
}

/// Check a decoded header against this campaign. Retry policy is *not*
/// identity — resuming with a different retry budget only affects shards
/// not yet recorded, which is exactly the knob an operator may want to
/// turn mid-campaign; the already-recorded shards keep their outcomes.
fn check_header(payload: &[u8], cfg: &CampaignConfig, n_points: usize, digest: u64) -> R<()> {
    let mut d = Dec::new(payload);
    let version = d.u32()?;
    if version != WAL_VERSION {
        return Err(CampaignError::Wal(CheckpointError::UnsupportedVersion(
            version,
        )));
    }
    if d.u64()? != n_points as u64 {
        return Err(CampaignError::Incompatible("point count differs"));
    }
    if d.u64()? != cfg.shard_points as u64 {
        return Err(CampaignError::Incompatible("shard size differs"));
    }
    if d.u64()? != digest {
        return Err(CampaignError::Incompatible("point digests differ"));
    }
    let _max_retries = d.u32()?;
    let _base = d.u64()?;
    let _cap = d.u64()?;
    let n_cols = d.len_capped(1)?;
    if n_cols != cfg.columns.len() {
        return Err(CampaignError::Incompatible("column count differs"));
    }
    for c in &cfg.columns {
        if d.str()? != *c {
            return Err(CampaignError::Incompatible("column names differ"));
        }
    }
    d.finish()?;
    Ok(())
}

fn encode_shard(shard_index: usize, records: &[PointOutcome]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(shard_index as u64);
    e.u32(records.len() as u32);
    for r in records {
        e.u64(r.index as u64);
        e.u64(r.digest);
        e.u32(r.attempts);
        e.u64(r.backoff_ticks);
        match &r.status {
            PointStatus::Completed(values) => {
                e.u8(0);
                e.f64s(values);
            }
            PointStatus::Quarantined(msg) => {
                e.u8(1);
                e.str(msg);
            }
        }
    }
    frame_block(SHARD_MAGIC, &e.buf)
}

fn decode_shard(payload: &[u8]) -> R<(usize, Vec<PointOutcome>)> {
    let mut d = Dec::new(payload);
    let shard_index = d.usize()?;
    let n = d.u32()? as usize;
    if n.saturating_mul(29) > d.remaining() {
        return Err(CheckpointError::Malformed("shard point count exceeds payload").into());
    }
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let index = d.usize()?;
        let digest = d.u64()?;
        let attempts = d.u32()?;
        let backoff_ticks = d.u64()?;
        let status = match d.u8()? {
            0 => PointStatus::Completed(d.f64s()?),
            1 => PointStatus::Quarantined(d.str()?),
            _ => return Err(CheckpointError::Malformed("point status tag out of range").into()),
        };
        records.push(PointOutcome {
            index,
            digest,
            attempts,
            backoff_ticks,
            status,
        });
    }
    d.finish()?;
    Ok((shard_index, records))
}

/// What scanning an existing `campaign.log` recovered.
struct ScannedWal {
    /// Fully committed shards, by shard index (duplicates keep the first
    /// occurrence — a shard is never re-emitted, so later duplicates could
    /// only come from a bug and the first is the one the CSVs saw).
    shards: BTreeMap<usize, Vec<PointOutcome>>,
    /// Byte offset of the first torn/invalid frame; the file is truncated
    /// here before appending resumes.
    valid_bytes: u64,
}

/// Scan header + shard frames. Any framing damage — torn tail from a kill
/// mid-append, CRC mismatch, foreign magic — ends the scan at the last
/// good frame rather than failing the campaign: everything before it is
/// intact (CRC-verified), everything after is discarded and re-executed.
fn scan_wal(bytes: &[u8], cfg: &CampaignConfig, n_points: usize, digest: u64) -> R<ScannedWal> {
    let (header, mut pos) = match next_frame(bytes, 0, HEADER_MAGIC) {
        Ok(Some(pair)) => pair,
        // Empty or torn-before-header: treat as a fresh log.
        Ok(None) | Err(_) => {
            return Ok(ScannedWal {
                shards: BTreeMap::new(),
                valid_bytes: 0,
            })
        }
    };
    // A *valid* header that names a different campaign is an error, not a
    // torn tail — silently clobbering someone else's WAL is how campaigns
    // lose a night of work.
    check_header(header, cfg, n_points, digest)?;

    let mut shards = BTreeMap::new();
    loop {
        match next_frame(bytes, pos, SHARD_MAGIC) {
            Ok(None) => break,
            Ok(Some((payload, next))) => match decode_shard(payload) {
                Ok((shard_index, records)) => {
                    shards.entry(shard_index).or_insert(records);
                    pos = next;
                }
                // Framing was intact but the payload is malformed —
                // truncate from here like a torn tail.
                Err(_) => break,
            },
            Err(_) => break,
        }
    }
    Ok(ScannedWal {
        shards,
        valid_bytes: pos as u64,
    })
}

// ---------------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------------

/// A durable sweep over a list of points. See the module docs for the
/// robustness contracts.
pub struct Campaign<'a, P: CampaignPoint> {
    points: &'a [P],
    cfg: CampaignConfig,
}

/// Shared commit state: one WAL appender guarded by a mutex. Workers hold
/// the lock only for the append itself (microseconds against seconds of
/// simulation per shard). The first I/O failure latches; later commits
/// become no-ops and the error surfaces when the campaign joins — same
/// latching discipline as the checkpoint session.
struct CommitState {
    log: File,
    error: Option<CampaignError>,
    shards_left: usize,
}

impl<'a, P: CampaignPoint> Campaign<'a, P> {
    /// Validate the configuration and bind the point list.
    pub fn new(points: &'a [P], cfg: CampaignConfig) -> R<Self> {
        cfg.validate()?;
        Ok(Self { points, cfg })
    }

    /// Shards in this campaign.
    pub fn shards_total(&self) -> usize {
        self.points.len().div_ceil(self.cfg.shard_points.max(1))
    }

    /// Run (or resume) the campaign with a throwaway telemetry registry.
    pub fn run<F>(&self, f: F) -> R<CampaignReport>
    where
        F: Fn(&mut CampaignWorker, &P) -> CilResult<Vec<f64>> + Sync,
    {
        self.run_with_telemetry(&TelemetryRegistry::new(), f)
    }

    /// Run (or resume) the campaign.
    ///
    /// `f` maps one point to one result row (`cfg.columns.len()` values).
    /// It may fail with a [`CilError`](crate::error::CilError) or panic;
    /// both are retried and eventually quarantined. On return, every point
    /// has a terminal outcome, `aggregate.csv` and `poisoned.csv` are in
    /// place (tmp+rename, so a kill during the final write leaves the old
    /// files), and `root` holds the campaign metrics.
    pub fn run_with_telemetry<F>(&self, root: &TelemetryRegistry, f: F) -> R<CampaignReport>
    where
        F: Fn(&mut CampaignWorker, &P) -> CilResult<Vec<f64>> + Sync,
    {
        let digests: Vec<u64> = self.points.iter().map(CampaignPoint::digest).collect();
        let identity = points_digest(&digests);
        fs::create_dir_all(&self.cfg.dir)?;
        let log_path = self.cfg.dir.join(CAMPAIGN_LOG_NAME);

        // Recover whatever a previous run committed.
        let existing = match fs::read(&log_path) {
            Ok(bytes) => scan_wal(&bytes, &self.cfg, self.points.len(), identity)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => ScannedWal {
                shards: BTreeMap::new(),
                valid_bytes: 0,
            },
            Err(e) => return Err(e.into()),
        };

        // Open for appending at the end of the valid prefix (discarding
        // any torn tail), writing the header if this is a fresh log.
        let mut log = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(&log_path)?;
        log.set_len(existing.valid_bytes)?;
        use std::io::Seek;
        log.seek(std::io::SeekFrom::End(0))?;
        if existing.valid_bytes == 0 {
            log.write_all(&encode_header(&self.cfg, self.points.len(), identity))?;
            if self.cfg.fsync {
                log.sync_data()?;
            }
        }

        let shards_total = self.shards_total();
        let shards_resumed = existing.shards.len().min(shards_total);
        let pending: Vec<usize> = (0..shards_total)
            .filter(|i| !existing.shards.contains_key(i))
            .collect();
        root.gauge("cil_campaign_queue_depth")
            .set(pending.len() as f64);

        let commit = Mutex::new(CommitState {
            log,
            error: None,
            shards_left: pending.len(),
        });
        let cursor = AtomicUsize::new(0);
        let executed: Mutex<BTreeMap<usize, Vec<PointOutcome>>> = Mutex::new(BTreeMap::new());

        // Work-stealing fleet: one sweep item per worker; each worker loops
        // claiming pending shards off the shared cursor until none remain.
        let worker_ids: Vec<usize> = (0..self.cfg.workers).collect();
        parallel_sweep_with_merge(
            &worker_ids,
            self.cfg.workers,
            CampaignWorker::new,
            |worker, _id| loop {
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&shard_index) = pending.get(slot) else {
                    return;
                };
                let records = self.execute_shard(shard_index, worker, &digests, &f);
                self.commit_shard(&commit, root, shard_index, &records, worker);
                match executed.lock() {
                    Ok(mut g) => {
                        g.insert(shard_index, records);
                    }
                    Err(p) => {
                        // Another worker panicked while holding the map;
                        // surface a typed error through the commit channel
                        // instead of compounding the panic.
                        drop(p);
                        let mut c = commit
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        c.error.get_or_insert(CampaignError::Poisoned(
                            "executed-shard map poisoned by a worker panic",
                        ));
                    }
                }
            },
            |worker| {
                worker.arena.sample_telemetry(&worker.telemetry);
                root.absorb(&worker.telemetry);
            },
        );

        let commit = match commit.into_inner() {
            Ok(c) => c,
            Err(p) => {
                let mut c = p.into_inner();
                c.error.get_or_insert(CampaignError::Poisoned(
                    "commit lock poisoned by a worker panic",
                ));
                c
            }
        };
        if let Some(e) = commit.error {
            return Err(e);
        }

        // Assemble outcomes in point order from resumed + executed shards.
        let executed = executed.into_inner().map_err(|_| {
            CampaignError::Poisoned("executed-shard map poisoned by a worker panic")
        })?;
        let mut outcomes: Vec<Option<PointOutcome>> =
            (0..self.points.len()).map(|_| None).collect();
        for records in existing.shards.values().chain(executed.values()) {
            for r in records {
                if r.index < outcomes.len() {
                    outcomes[r.index] = Some(r.clone());
                }
            }
        }
        let outcomes: Vec<PointOutcome> = outcomes
            .into_iter()
            .map(|o| {
                o.ok_or(CampaignError::Wal(CheckpointError::Malformed(
                    "a committed shard is missing points",
                )))
            })
            .collect::<R<_>>()?;

        let completed = outcomes
            .iter()
            .filter(|o| matches!(o.status, PointStatus::Completed(_)))
            .count();
        let quarantined = outcomes.len() - completed;
        let retries = executed
            .values()
            .flatten()
            .map(|r| u64::from(r.attempts.saturating_sub(1)))
            .sum();

        let aggregate_csv = self.write_aggregate_csv(&outcomes)?;
        let poisoned_csv = self.write_poisoned_csv(&outcomes)?;

        Ok(CampaignReport {
            outcomes,
            completed,
            quarantined,
            retries,
            shards_total,
            shards_resumed,
            aggregate_csv,
            poisoned_csv,
        })
    }

    /// Execute one shard to terminal outcomes. Deterministic: the schedule
    /// is a queue ordered by (ready tick, enqueue sequence) and ticks
    /// advance only on executions, so the same points and the same failure
    /// pattern replay the same attempts/backoff bit-for-bit regardless of
    /// worker or wall-clock.
    fn execute_shard<F>(
        &self,
        shard_index: usize,
        worker: &mut CampaignWorker,
        digests: &[u64],
        f: &F,
    ) -> Vec<PointOutcome>
    where
        F: Fn(&mut CampaignWorker, &P) -> CilResult<Vec<f64>> + Sync,
    {
        let lo = shard_index * self.cfg.shard_points;
        let hi = (lo + self.cfg.shard_points).min(self.points.len());

        struct Pending {
            index: usize,
            attempts: u32,
            backoff_total: u64,
            ready_at: u64,
            last_error: String,
        }
        let mut queue: Vec<Pending> = (lo..hi)
            .map(|index| Pending {
                index,
                attempts: 0,
                backoff_total: 0,
                ready_at: 0,
                last_error: String::new(),
            })
            .collect();
        let mut done: Vec<PointOutcome> = Vec::with_capacity(hi - lo);
        let mut tick = 0u64;

        while !queue.is_empty() {
            // Earliest-ready first; FIFO (stable position) on ties. The
            // queue is small (one shard), so a linear scan is fine.
            let Some(pos) = queue
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.ready_at, *i))
                .map(|(i, _)| i)
            else {
                break;
            };
            tick = tick.max(queue[pos].ready_at) + 1;
            let mut p = queue.remove(pos);
            p.attempts += 1;
            worker.attempt = p.attempts;

            let outcome = catch_unwind(AssertUnwindSafe(|| f(worker, &self.points[p.index])));
            worker.attempt = 1;
            let failure = match outcome {
                Ok(Ok(values)) => {
                    if values.len() == self.cfg.columns.len() {
                        worker
                            .telemetry
                            .counter("cil_campaign_points_completed_total")
                            .inc();
                        done.push(PointOutcome {
                            index: p.index,
                            digest: digests[p.index],
                            attempts: p.attempts,
                            backoff_ticks: p.backoff_total,
                            status: PointStatus::Completed(values),
                        });
                        continue;
                    }
                    // Wrong arity is a harness bug — deterministic, so a
                    // retry would only burn the budget. Quarantine now.
                    p.last_error = format!(
                        "result row has {} values, campaign declares {} columns",
                        values.len(),
                        self.cfg.columns.len()
                    );
                    None
                }
                Ok(Err(e)) => Some(format!("error: {e}")),
                Err(payload) => {
                    // The engine the panic unwound through is suspect;
                    // drop it so the next lease rebuilds.
                    worker.arena.clear();
                    Some(format!("panic: {}", panic_message(&payload)))
                }
            };

            match failure {
                Some(msg) if p.attempts <= self.cfg.max_retries => {
                    let backoff = self.cfg.backoff_ticks(p.attempts);
                    worker
                        .telemetry
                        .counter("cil_campaign_points_retried_total")
                        .inc();
                    p.last_error = msg;
                    p.backoff_total += backoff;
                    p.ready_at = tick + backoff;
                    queue.push(p);
                }
                failure => {
                    if let Some(msg) = failure {
                        p.last_error = msg;
                    }
                    worker
                        .telemetry
                        .counter("cil_campaign_points_quarantined_total")
                        .inc();
                    done.push(PointOutcome {
                        index: p.index,
                        digest: digests[p.index],
                        attempts: p.attempts,
                        backoff_ticks: p.backoff_total,
                        status: PointStatus::Quarantined(p.last_error),
                    });
                }
            }
        }

        done.sort_by_key(|o| o.index);
        done
    }

    /// Append one shard frame to the WAL under the commit lock. The frame
    /// is built outside the lock; the append is a single `write_all`, so a
    /// kill leaves either the whole frame (CRC-valid) or a torn tail the
    /// next resume truncates — a shard is durable exactly when its frame
    /// is, which is what makes the commit exactly-once.
    fn commit_shard(
        &self,
        commit: &Mutex<CommitState>,
        root: &TelemetryRegistry,
        shard_index: usize,
        records: &[PointOutcome],
        worker: &mut CampaignWorker,
    ) {
        let frame = encode_shard(shard_index, records);
        let started = Instant::now();
        let mut c = match commit.lock() {
            Ok(c) => c,
            Err(p) => {
                // A worker panicked while holding the log. The WAL append
                // below is a single whole-frame write, so the log itself is
                // not torn — but stop committing and report a typed error.
                let mut c = p.into_inner();
                c.error.get_or_insert(CampaignError::Poisoned(
                    "commit lock poisoned by a worker panic",
                ));
                return;
            }
        };
        if c.error.is_some() {
            return;
        }
        let res = c.log.write_all(&frame).and_then(|()| {
            if self.cfg.fsync {
                c.log.sync_data()
            } else {
                Ok(())
            }
        });
        match res {
            Ok(()) => {
                c.shards_left -= 1;
                root.gauge("cil_campaign_queue_depth")
                    .set(c.shards_left as f64);
                worker
                    .telemetry
                    .histogram("cil_campaign_shard_commit_wall_seconds")
                    .observe(started.elapsed().as_secs_f64());
            }
            Err(e) => c.error = Some(e.into()),
        }
    }

    /// `aggregate.csv`: one row per point in point order — index, digest,
    /// attempts, then the result columns (empty cells for quarantined
    /// points, whose rows live in `poisoned.csv`). Written tmp+rename like
    /// the snapshot files; byte-identical for a resumed and an
    /// uninterrupted campaign because outcomes are deterministic and the
    /// row order is the point order, not the commit order.
    fn write_aggregate_csv(&self, outcomes: &[PointOutcome]) -> R<PathBuf> {
        let mut csv = String::new();
        csv.push_str("index,digest,attempts");
        for c in &self.cfg.columns {
            csv.push(',');
            csv.push_str(c);
        }
        csv.push('\n');
        for o in outcomes {
            use std::fmt::Write as _;
            let _ = write!(csv, "{},{:016x},{}", o.index, o.digest, o.attempts);
            match &o.status {
                PointStatus::Completed(values) => {
                    for v in values {
                        let _ = write!(csv, ",{v:?}");
                    }
                }
                PointStatus::Quarantined(_) => {
                    for _ in &self.cfg.columns {
                        csv.push(',');
                    }
                }
            }
            csv.push('\n');
        }
        self.write_atomic("aggregate.csv", csv.as_bytes())
    }

    /// `poisoned.csv`: quarantined points only — index, digest, attempts,
    /// total backoff and the final error/panic message.
    fn write_poisoned_csv(&self, outcomes: &[PointOutcome]) -> R<PathBuf> {
        let mut csv = String::from("index,digest,attempts,backoff_ticks,error\n");
        for o in outcomes {
            if let PointStatus::Quarantined(msg) = &o.status {
                use std::fmt::Write as _;
                let _ = writeln!(
                    csv,
                    "{},{:016x},{},{},{}",
                    o.index,
                    o.digest,
                    o.attempts,
                    o.backoff_ticks,
                    csv_escape_field(msg)
                );
            }
        }
        self.write_atomic("poisoned.csv", csv.as_bytes())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> R<PathBuf> {
        let tmp = self.cfg.dir.join(format!(".{name}.tmp"));
        let path = self.cfg.dir.join(name);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            if self.cfg.fsync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// RFC 4180 escaping for one CSV field: the field is always quoted,
/// embedded quotes are doubled, and CR/LF are flattened to spaces so a
/// multi-line panic message stays on one CSV row. Used for the campaign
/// quarantine report and shared with the cil-bench CSV writer, which
/// quotes lazily but defers the escaping rules here.
pub fn csv_escape_field(field: &str) -> String {
    let flat = field.replace(['\n', '\r'], " ");
    format!("\"{}\"", flat.replace('"', "\"\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/campaign-unit-tests")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: PathBuf) -> CampaignConfig {
        let mut c = CampaignConfig::new(dir, &["value"]);
        c.shard_points = 4;
        c.workers = 2;
        c
    }

    #[test]
    fn completes_all_points() {
        let points: Vec<u64> = (0..23).collect();
        let campaign = Campaign::new(&points, cfg(test_dir("completes"))).unwrap();
        let report = campaign.run(|_w, &p| Ok(vec![p as f64 * 2.0])).unwrap();
        assert_eq!(report.completed, 23);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.shards_total, 6);
        assert_eq!(report.shards_resumed, 0);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.attempts, 1);
            assert_eq!(o.status, PointStatus::Completed(vec![i as f64 * 2.0]));
        }
    }

    #[test]
    fn panicking_point_is_quarantined_not_fatal() {
        let points: Vec<u64> = (0..8).collect();
        let mut c = cfg(test_dir("quarantine"));
        c.max_retries = 1;
        let campaign = Campaign::new(&points, c).unwrap();
        let report = campaign
            .run(|_w, &p| {
                if p == 5 {
                    panic!("engine blew up on {p}");
                }
                Ok(vec![p as f64])
            })
            .unwrap();
        assert_eq!(report.completed, 7);
        assert_eq!(report.quarantined, 1);
        let bad = &report.outcomes[5];
        assert_eq!(bad.attempts, 2, "one retry before quarantine");
        match &bad.status {
            PointStatus::Quarantined(msg) => assert!(msg.contains("engine blew up on 5")),
            other => panic!("expected quarantine, got {other:?}"),
        }
        let poisoned = fs::read_to_string(&report.poisoned_csv).unwrap();
        assert!(poisoned.contains("engine blew up on 5"));
    }

    #[test]
    fn hostile_panic_message_stays_one_escaped_csv_field() {
        // Panic payloads quote user code, so they can carry every CSV
        // metacharacter at once: delimiters, quotes, CR/LF, even a fake
        // extra row. The quarantine report must keep the whole message in
        // one RFC 4180-quoted field on one physical line.
        let hostile = "phase=\"NaN\", code=7,\n8,deadbeef,1,0,\"forged row\"\r\n";
        let points: Vec<u64> = (0..2).collect();
        let mut c = cfg(test_dir("hostile-panic"));
        c.max_retries = 0;
        c.workers = 1;
        let campaign = Campaign::new(&points, c).unwrap();
        let report = campaign
            .run(|_w, &p| {
                if p == 1 {
                    panic!("{hostile}");
                }
                Ok(vec![p as f64])
            })
            .unwrap();
        assert_eq!(report.quarantined, 1);

        let poisoned = fs::read_to_string(&report.poisoned_csv).unwrap();
        let lines: Vec<&str> = poisoned.lines().collect();
        assert_eq!(lines.len(), 2, "header + exactly one quarantined point");
        let row = lines[1];
        // Four metadata columns, then the escaped message field: always
        // quoted, embedded quotes doubled, CR/LF flattened to spaces.
        let field = row.splitn(5, ',').nth(4).unwrap();
        assert!(field.starts_with('"') && field.ends_with('"'));
        assert!(field.contains("\"\"NaN\"\""), "quotes are doubled: {field}");
        assert!(!field.contains('\n') && !field.contains('\r'));
        // Un-escaping recovers the panic message (newlines flattened).
        let unescaped = field[1..field.len() - 1].replace("\"\"", "\"");
        assert!(unescaped.contains("phase=\"NaN\", code=7, 8,deadbeef"));
    }

    #[test]
    fn retry_then_succeed_counts_attempts_and_backoff() {
        use std::sync::atomic::AtomicU32;
        let points: Vec<u64> = vec![42];
        let mut c = cfg(test_dir("retry"));
        c.max_retries = 3;
        c.workers = 1;
        let campaign = Campaign::new(&points, c).unwrap();
        let calls = AtomicU32::new(0);
        let report = campaign
            .run(|w, &p| {
                calls.fetch_add(1, Ordering::Relaxed);
                if w.attempt() < 3 {
                    Err(crate::error::CilError::InvalidConfig("transient".into()))
                } else {
                    Ok(vec![p as f64])
                }
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(report.retries, 2);
        let o = &report.outcomes[0];
        assert_eq!(o.attempts, 3);
        // backoff 1 after first failure, 2 after second (base 1, doubling).
        assert_eq!(o.backoff_ticks, 3);
        assert_eq!(o.status, PointStatus::Completed(vec![42.0]));
    }

    #[test]
    fn wrong_arity_quarantines_without_retry() {
        let points: Vec<u64> = vec![1];
        let campaign = Campaign::new(&points, cfg(test_dir("arity"))).unwrap();
        let report = campaign.run(|_w, &p| Ok(vec![p as f64, 0.0])).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.outcomes[0].attempts, 1, "no retry for arity bugs");
    }

    #[test]
    fn resume_skips_recorded_shards_and_matches_csv() {
        let points: Vec<u64> = (0..20).collect();
        let dir = test_dir("resume");
        let run = |d: PathBuf| {
            Campaign::new(&points, cfg(d))
                .unwrap()
                .run(|_w, &p| Ok(vec![(p as f64).sin()]))
                .unwrap()
        };
        let full = run(test_dir("resume-ref"));
        let first = run(dir.clone());
        assert_eq!(first.shards_resumed, 0);
        // Truncate the WAL to header + 2 shard frames to fake a kill,
        // plus a torn half-frame that resume must discard.
        let log_path = dir.join(CAMPAIGN_LOG_NAME);
        let bytes = fs::read(&log_path).unwrap();
        let (_, mut pos) = next_frame(&bytes, 0, HEADER_MAGIC).unwrap().unwrap();
        for _ in 0..2 {
            let (_, next) = next_frame(&bytes, pos, SHARD_MAGIC).unwrap().unwrap();
            pos = next;
        }
        let mut cut = bytes[..pos].to_vec();
        cut.extend_from_slice(&bytes[pos..pos + 7]); // torn tail
        fs::write(&log_path, &cut).unwrap();

        let resumed = Campaign::new(&points, cfg(dir.clone()))
            .unwrap()
            .run(|_w, &p| Ok(vec![(p as f64).sin()]))
            .unwrap();
        assert_eq!(resumed.shards_resumed, 2);
        assert_eq!(resumed.completed, 20);
        let a = fs::read(&full.aggregate_csv).unwrap();
        let b = fs::read(&resumed.aggregate_csv).unwrap();
        assert_eq!(a, b, "resumed aggregate CSV is byte-identical");
    }

    #[test]
    fn incompatible_wal_is_rejected() {
        let points: Vec<u64> = (0..8).collect();
        let dir = test_dir("incompatible");
        Campaign::new(&points, cfg(dir.clone()))
            .unwrap()
            .run(|_w, &p| Ok(vec![p as f64]))
            .unwrap();
        let other: Vec<u64> = (100..108).collect();
        let err = Campaign::new(&other, cfg(dir))
            .unwrap()
            .run(|_w, &p| Ok(vec![p as f64]))
            .unwrap_err();
        assert!(matches!(err, CampaignError::Incompatible(_)), "{err:?}");
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let mut c = CampaignConfig::new("unused", &["v"]);
        c.backoff_base_ticks = 2;
        c.backoff_cap_ticks = 16;
        assert_eq!(c.backoff_ticks(0), 0);
        assert_eq!(c.backoff_ticks(1), 2);
        assert_eq!(c.backoff_ticks(2), 4);
        assert_eq!(c.backoff_ticks(3), 8);
        assert_eq!(c.backoff_ticks(4), 16);
        assert_eq!(c.backoff_ticks(5), 16, "capped");
        assert_eq!(c.backoff_ticks(63), 16);
    }

    #[test]
    fn telemetry_counts_points() {
        let points: Vec<u64> = (0..10).collect();
        let mut c = cfg(test_dir("telemetry"));
        c.max_retries = 1;
        let campaign = Campaign::new(&points, c).unwrap();
        let root = TelemetryRegistry::new();
        campaign
            .run_with_telemetry(&root, |_w, &p| {
                if p == 3 {
                    Err(crate::error::CilError::InvalidConfig("always bad".into()))
                } else {
                    Ok(vec![p as f64])
                }
            })
            .unwrap();
        let snap = root.snapshot();
        assert_eq!(snap.counter("cil_campaign_points_completed_total"), Some(9));
        assert_eq!(snap.counter("cil_campaign_points_retried_total"), Some(1));
        assert_eq!(
            snap.counter("cil_campaign_points_quarantined_total"),
            Some(1)
        );
        assert_eq!(snap.gauge("cil_campaign_queue_depth"), Some(0.0));
        assert!(snap
            .histogram("cil_campaign_shard_commit_wall_seconds")
            .is_some_and(|h| h.count == 3));
    }
}
