//! Experiment descriptions.
//!
//! A scenario bundles every knob of an evaluation run — machine, ion,
//! operating point, jump program, controller settings, converter and CGRA
//! configuration — and derives the component configurations from it, so the
//! same scenario drives the turn-level loop, the signal-level loop and the
//! multi-particle reference consistently.

use crate::control::ControllerParams;
use crate::error::Result;
use crate::fault::FaultProgram;
use crate::framework::{FrameworkConfig, MonitorMode};
use crate::signalgen::PhaseJumpProgram;
use cil_cgra::grid::GridConfig;
use cil_cgra::kernels::KernelParams;
use cil_dsp::converter::{AdcModel, DacModel};
use cil_physics::machine::{MachineParams, OperatingPoint};
use cil_physics::synchrotron::SynchrotronCalc;
use cil_physics::IonSpecies;

/// The machine-development-experiment scenario of Section V (and variants).
#[derive(Debug, Clone)]
pub struct MdeScenario {
    /// Ring parameters.
    pub machine: MachineParams,
    /// Ion species.
    pub ion: IonSpecies,
    /// Revolution frequency of the reference signal, Hz.
    pub f_rev: f64,
    /// Target synchrotron frequency, Hz (sets the gap-voltage amplitude).
    pub fs_target: f64,
    /// The AWG phase-jump program.
    pub jumps: PhaseJumpProgram,
    /// Beam-phase controller settings.
    pub controller: ControllerParams,
    /// Bunches simulated (≤ harmonic number).
    pub bunches: usize,
    /// DDS amplitudes at the ADC inputs, volts.
    pub adc_amplitude: f64,
    /// Experiment duration, seconds.
    pub duration_s: f64,
    /// Pipelined CGRA kernel?
    pub pipelined: bool,
    /// CGRA grid.
    pub grid: GridConfig,
    /// Constant instrumentation phase offset (dead times / cable lengths),
    /// degrees — the offset the paper notes is irrelevant to the result.
    pub instrument_offset_deg: f64,
    /// RMS width of the generated beam pulse, seconds.
    pub pulse_sigma_s: f64,
    /// Additive ADC input noise, volts RMS (0 = clean front-end).
    pub adc_noise_rms: f64,
    /// Scheduled fault injection (empty = nothing ever goes wrong).
    pub faults: FaultProgram,
}

impl MdeScenario {
    /// The Nov 24 2023 MDE reproduction: SIS18, ¹⁴N⁷⁺, 800 kHz / h = 4
    /// (gap 3200 kHz), f_s = 1.28 kHz, 8° jumps every 0.05 s, controller at
    /// f_pass = 1.4 kHz / gain −5 / recursion 0.99.
    pub fn nov24_2023() -> Self {
        Self {
            machine: MachineParams::sis18(),
            ion: IonSpecies::n14_7plus(),
            f_rev: 800e3,
            fs_target: 1.28e3,
            jumps: PhaseJumpProgram::evaluation_default(),
            controller: ControllerParams::evaluation_default(),
            bunches: 4,
            adc_amplitude: 0.5,
            duration_s: 0.4,
            pipelined: true,
            grid: GridConfig::mesh_5x5(),
            instrument_offset_deg: 14.0,
            pulse_sigma_s: 20e-9,
            adc_noise_rms: 0.0,
            faults: FaultProgram::none(),
        }
    }

    /// Fig. 2 variant: harmonic number 2.
    pub fn harmonic_two_snapshot() -> Self {
        Self {
            machine: MachineParams::sis18_with_harmonic(2),
            bunches: 2,
            ..Self::nov24_2023()
        }
    }

    /// Harmonic number of the ring configuration.
    pub fn harmonic(&self) -> u32 {
        self.machine.harmonic_number
    }

    /// Gap-voltage amplitude (volts at the gap) realising `fs_target`.
    /// Errs when the scenario sits above transition (no stable bucket).
    pub fn v_hat(&self) -> Result<f64> {
        Ok(SynchrotronCalc::new(self.machine, self.ion)
            .voltage_for_fs(self.f_rev, self.fs_target)?)
    }

    /// The derived operating point.
    pub fn operating_point(&self) -> Result<OperatingPoint> {
        Ok(OperatingPoint::from_revolution_frequency(
            self.machine,
            self.ion,
            self.f_rev,
            self.v_hat()?,
        ))
    }

    /// Kernel generation parameters (scales map ADC volts → gap volts).
    pub fn kernel_params(&self) -> Result<KernelParams> {
        let op = self.operating_point()?;
        Ok(KernelParams {
            orbit_length_m: self.machine.orbit_length_m,
            momentum_compaction: self.machine.momentum_compaction,
            gamma_per_volt: self.ion.gamma_per_volt(),
            sample_rate: 250e6,
            scale_ref: self.v_hat()? / self.adc_amplitude,
            scale_gap: self.v_hat()? / self.adc_amplitude,
            gamma_r_init: op.gamma_r,
        })
    }

    /// Framework configuration.
    pub fn framework_config(&self) -> FrameworkConfig {
        FrameworkConfig {
            sample_rate: 250e6,
            adc: AdcModel {
                noise_rms: self.adc_noise_rms,
                ..AdcModel::fmc151()
            },
            dac: DacModel::fmc151(),
            buffer_depth: 8192,
            period_avg: 4,
            zc_threshold: (self.adc_noise_rms * 4.0).max(0.05),
            pulse_sigma_s: self.pulse_sigma_s,
            pulse_table: None,
            pulse_amplitude: 0.8,
            monitor_mode: MonitorMode::PhaseDifference,
            monitor_scale: 1e7,
            bunches: self.bunches,
            harmonic: self.harmonic(),
            grid: self.grid,
            pipelined: self.pipelined,
            interpolate: true,
            record_capacity: (self.duration_s * self.f_rev * 1.2) as usize + 1024,
        }
    }

    /// Number of revolutions in the experiment.
    pub fn revolutions(&self) -> usize {
        (self.duration_s * self.f_rev) as usize
    }

    /// Do two scenarios build identical turn-level engines
    /// ([`crate::engine::EngineKind::build`])? Compares every field that
    /// flows into engine construction — machine, ion, operating point,
    /// bunch count, converter amplitudes/noise, CGRA grid and pipelining,
    /// pulse shape and fault program — and ignores the harness-side knobs a
    /// sweep typically varies (controller settings, jump program, duration,
    /// instrument offset). Engine arenas use this to decide whether a
    /// built engine can be re-used for the next sweep point.
    /// Deterministic 64-bit digest of every scenario field, FNV-1a over the
    /// exact bit patterns (floats via `to_bits`, so `-0.0 ≠ 0.0` and any
    /// NaN payload is distinguished — the digest identifies the *input*, it
    /// does not define numeric equivalence).
    ///
    /// This is the stable identity of a sweep/campaign point: it names a
    /// point in a [`crate::sweep::SweepPanic`], keys retry/quarantine
    /// records in the campaign WAL, and lets a resumed campaign verify the
    /// regenerated point list matches the one the log was written against.
    /// Platform-independent (no `RandomState`, fixed field order) so a WAL
    /// written on one machine resumes on another.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.f64(self.machine.orbit_length_m);
        h.f64(self.machine.momentum_compaction);
        h.u64(u64::from(self.machine.harmonic_number));
        h.bytes(self.ion.name.as_bytes());
        h.u64(u64::from(self.ion.mass_number));
        h.u64(u64::from(self.ion.charge_number));
        h.f64(self.ion.rest_energy_ev);
        h.f64(self.f_rev);
        h.f64(self.fs_target);
        h.f64(self.jumps.amplitude_deg);
        h.f64(self.jumps.interval_s);
        h.f64(self.jumps.path_latency_s);
        h.f64(self.controller.f_pass);
        h.f64(self.controller.gain);
        h.f64(self.controller.recursion);
        h.u64(u64::from(self.controller.decimation));
        h.u64(self.controller.fir_taps as u64);
        h.f64(self.controller.max_freq_offset_hz);
        h.f64(self.controller.hz_per_deg_per_gain);
        h.u64(self.bunches as u64);
        h.f64(self.adc_amplitude);
        h.f64(self.duration_s);
        h.u64(u64::from(self.pipelined));
        h.u64(u64::from(self.grid.rows));
        h.u64(u64::from(self.grid.cols));
        h.u64(match self.grid.topology {
            cil_cgra::grid::Topology::Mesh => 0,
            cil_cgra::grid::Topology::MeshDiagonal => 1,
            cil_cgra::grid::Topology::Torus => 2,
        });
        h.u64(u64::from(self.grid.io_columns));
        h.f64(self.instrument_offset_deg);
        h.f64(self.pulse_sigma_s);
        h.f64(self.adc_noise_rms);
        h.u64(self.faults.seed);
        h.u64(self.faults.events.len() as u64);
        for ev in &self.faults.events {
            h.f64(ev.start_s);
            h.f64(ev.end_s);
            use crate::fault::FaultKind as K;
            match ev.kind {
                K::AdcSaturation => h.u64(0),
                K::AdcStuckCode { code } => {
                    h.u64(1);
                    h.u64(code as u32 as u64);
                }
                K::AdcBitFlip { bit } => {
                    h.u64(2);
                    h.u64(u64::from(bit));
                }
                K::DdsDropout => h.u64(3),
                K::DetectorOutlier {
                    probability,
                    amplitude_deg,
                } => {
                    h.u64(4);
                    h.f64(probability);
                    h.f64(amplitude_deg);
                }
                K::NanBurst { probability } => {
                    h.u64(5);
                    h.f64(probability);
                }
                K::BeamLoss => h.u64(6),
                K::DeadlineOverrun { factor } => {
                    h.u64(7);
                    h.f64(factor);
                }
                K::CavityDetune { drift_hz_per_s } => {
                    h.u64(8);
                    h.f64(drift_hz_per_s);
                }
                K::CavityQuench { collapse_s } => {
                    h.u64(9);
                    h.f64(collapse_s);
                }
                K::CavityTrip { recover_s } => {
                    h.u64(10);
                    h.f64(recover_s);
                }
            }
        }
        h.finish()
    }

    pub fn engine_config_eq(&self, other: &Self) -> bool {
        self.machine == other.machine
            && self.ion == other.ion
            && self.f_rev == other.f_rev
            && self.fs_target == other.fs_target
            && self.bunches == other.bunches
            && self.adc_amplitude == other.adc_amplitude
            && self.pipelined == other.pipelined
            && self.grid == other.grid
            && self.pulse_sigma_s == other.pulse_sigma_s
            && self.adc_noise_rms == other.adc_noise_rms
            && self.faults == other.faults
    }
}

/// FNV-1a, 64-bit — tiny, allocation-free, and identical on every platform
/// (unlike `DefaultHasher`, whose output is unspecified across releases).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_scenario_matches_paper_numbers() {
        let s = MdeScenario::nov24_2023();
        assert_eq!(s.f_rev, 800e3);
        assert_eq!(s.harmonic(), 4);
        assert_eq!(s.machine.rf_frequency(s.f_rev), 3.2e6);
        assert_eq!(s.jumps.amplitude_deg, 8.0);
        assert_eq!(s.jumps.interval_s, 0.05);
        assert_eq!(s.controller.f_pass, 1.4e3);
        assert_eq!(s.controller.gain, -5.0);
        assert_eq!(s.controller.recursion, 0.99);
        assert_eq!(s.ion.name, "14N7+");
    }

    #[test]
    fn v_hat_gives_target_fs() {
        let s = MdeScenario::nov24_2023();
        let fs = SynchrotronCalc::new(s.machine, s.ion)
            .fs_stationary(s.f_rev, s.v_hat().unwrap())
            .unwrap();
        assert!((fs - 1.28e3).abs() < 1e-6);
    }

    #[test]
    fn kernel_scales_invert_adc_attenuation() {
        // "Gap and reference voltage are scaled down on the beam side … to
        // fit within the acceptable ADC ranges"; the kernel multiplies back.
        let s = MdeScenario::nov24_2023();
        let k = s.kernel_params().unwrap();
        assert!((k.scale_gap * s.adc_amplitude - s.v_hat().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn harmonic_two_variant() {
        let s = MdeScenario::harmonic_two_snapshot();
        assert_eq!(s.harmonic(), 2);
        assert_eq!(s.machine.rf_frequency(s.f_rev), 1.6e6);
        assert_eq!(s.bunches, 2);
    }

    #[test]
    fn engine_config_eq_ignores_harness_knobs() {
        let a = MdeScenario::nov24_2023();
        let mut b = a.clone();
        b.controller.gain = -7.0;
        b.duration_s = 0.1;
        b.instrument_offset_deg = 0.0;
        b.jumps.amplitude_deg = 4.0;
        assert!(a.engine_config_eq(&b), "harness knobs must not split slots");
        b.fs_target = 1.0e3;
        assert!(!a.engine_config_eq(&b), "operating point is engine-facing");
    }

    #[test]
    fn digest_is_stable_and_field_sensitive() {
        let a = MdeScenario::nov24_2023();
        assert_eq!(a.digest(), a.clone().digest(), "digest is deterministic");
        let mut b = a.clone();
        b.controller.gain = -5.000001;
        assert_ne!(a.digest(), b.digest(), "harness knobs change the digest");
        let mut c = a.clone();
        c.faults = FaultProgram {
            seed: 1,
            events: vec![crate::fault::FaultEvent {
                start_s: 0.01,
                end_s: 0.02,
                kind: crate::fault::FaultKind::DdsDropout,
            }],
        };
        assert_ne!(a.digest(), c.digest(), "fault program changes the digest");
    }

    #[test]
    fn framework_config_sized_for_duration() {
        let s = MdeScenario::nov24_2023();
        let f = s.framework_config();
        assert!(f.record_capacity >= s.revolutions());
        assert_eq!(f.bunches, 4);
        assert_eq!(f.harmonic, 4);
    }
}
