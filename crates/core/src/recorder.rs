//! Binary trace format for DRAM recordings.
//!
//! "[The SpartanMC] allows to record the simulation into the DRAM memory of
//! the FPGA board, which can be read out from a computer via the serial
//! port" (Section III-B). This module defines that wire format: a compact
//! little-endian stream of [`RevolutionRecord`]s with a magic header and a
//! length-checked layout, plus streaming encode/decode built on `bytes`.

use crate::error::CilError;
use crate::framework::RevolutionRecord;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying a recording stream ("CIL" + version 1).
pub const MAGIC: [u8; 4] = *b"CIL\x01";

/// Encode a recording into the serial wire format.
///
/// Layout: magic, bunch count (u32), record count (u64), then per record:
/// crossing sample (u64), period seconds (f64), Δt per bunch (f64 × B).
/// All records must have the same bunch count — a mixed recording is a
/// [`CilError::Recording`] error, not a panic: the recorder sits on the
/// run path, and a malformed capture must surface as a value the caller
/// (or a supervisor) can react to.
pub fn encode(records: &[RevolutionRecord]) -> crate::error::Result<Bytes> {
    let bunches = records.first().map_or(0, |r| r.dt.len());
    let mut buf = BytesMut::with_capacity(16 + records.len() * (16 + 8 * bunches));
    buf.put_slice(&MAGIC);
    buf.put_u32_le(bunches as u32);
    buf.put_u64_le(records.len() as u64);
    for (i, r) in records.iter().enumerate() {
        if r.dt.len() != bunches {
            return Err(CilError::Recording(format!(
                "record {i} has {} bunches, stream declared {bunches}",
                r.dt.len()
            )));
        }
        buf.put_u64_le(r.crossing_sample);
        buf.put_f64_le(r.period_s);
        for &dt in &r.dt {
            buf.put_f64_le(dt);
        }
    }
    Ok(buf.freeze())
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Stream does not start with the magic bytes.
    BadMagic,
    /// Stream ended before the declared record count was read.
    Truncated,
    /// Declared sizes are implausible (corrupt header).
    Corrupt,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a CIL recording (bad magic)"),
            Self::Truncated => write!(f, "recording truncated"),
            Self::Corrupt => write!(f, "corrupt recording header"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a recording stream.
pub fn decode(mut data: Bytes) -> Result<Vec<RevolutionRecord>, DecodeError> {
    if data.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let bunches = data.get_u32_le() as usize;
    let count = data.get_u64_le() as usize;
    if bunches > 1 << 16 || count > 1 << 40 {
        return Err(DecodeError::Corrupt);
    }
    let record_size = 16 + 8 * bunches;
    if data.remaining() < count.saturating_mul(record_size) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let crossing_sample = data.get_u64_le();
        let period_s = data.get_f64_le();
        let mut dt = Vec::with_capacity(bunches);
        for _ in 0..bunches {
            dt.push(data.get_f64_le());
        }
        out.push(RevolutionRecord {
            crossing_sample,
            period_s,
            dt,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, bunches: usize) -> Vec<RevolutionRecord> {
        (0..n)
            .map(|i| RevolutionRecord {
                crossing_sample: i as u64 * 312,
                period_s: 1.25e-6 + i as f64 * 1e-12,
                dt: (0..bunches).map(|b| (i * b) as f64 * 1e-9).collect(),
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample(100, 4);
        let encoded = encode(&records).unwrap();
        let decoded = decode(encoded).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn empty_recording_roundtrips() {
        let decoded = decode(encode(&[]).unwrap()).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn detects_bad_magic() {
        let mut data = encode(&sample(3, 1)).unwrap().to_vec();
        data[0] = b'X';
        assert_eq!(decode(Bytes::from(data)), Err(DecodeError::BadMagic));
    }

    #[test]
    fn detects_truncation() {
        let data = encode(&sample(10, 2)).unwrap();
        let cut = data.slice(0..data.len() - 5);
        assert_eq!(decode(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn detects_corrupt_header() {
        let mut data = encode(&sample(1, 1)).unwrap().to_vec();
        // Blow up the bunch count field.
        data[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(Bytes::from(data)), Err(DecodeError::Corrupt));
    }

    #[test]
    fn inconsistent_bunch_count_is_a_typed_error() {
        let mut records = sample(3, 2);
        records[1].dt.push(0.0);
        let err = encode(&records).expect_err("mixed bunch counts must be rejected");
        assert!(matches!(err, CilError::Recording(_)));
        assert!(err.to_string().contains("record 1"));
    }

    #[test]
    fn size_is_compact() {
        // 0.4 s at 800 kHz with 4 bunches: 320k records x 48 B ≈ 15 MB —
        // fits the board DRAM with plenty of headroom.
        let records = sample(1000, 4);
        let encoded = encode(&records).unwrap();
        assert_eq!(encoded.len(), 16 + 1000 * (16 + 32));
    }
}
