//! Fault injection and loop supervision.
//!
//! The paper's rig exists to stress the beam-phase control system against
//! misbehaving hardware — glitching converters, muted DDS outputs, detector
//! outliers, missed real-time deadlines. This module is the simulation
//! substitute for that physical noise environment:
//!
//! * [`FaultProgram`] — a deterministic, seed-driven schedule of
//!   [`FaultEvent`]s that corrupt the signal chain at defined points (ADC
//!   codes, DDS output, detector rows, engine wall-clock, beam survival).
//!   Declared per-scenario in [`crate::scenario::MdeScenario`] and honoured
//!   by every executive.
//! * [`FaultInjector`] — the run-time state of a program inside one loop:
//!   draws the per-row corruption from its own [`StdRng`] so the same seed
//!   replays the same fault trace bit-for-bit.
//! * [`LoopSupervisor`] — wraps the harness step with a per-revolution
//!   deadline budget (wall-clock model fed by [`crate::jitter`]), outlier
//!   rejection with hold-last-good, actuation clamping with anti-windup,
//!   and a watchdog that demotes the engine fidelity
//!   ([`crate::engine::EngineKind::demote`]) instead of aborting the run.
//!
//! Everything notable that happens lands in [`LoopEvent`]s on the trace, so
//! a run is auditable after the fact. The `strict-faults` feature turns the
//! supervisor's silent recoveries into panics for test triage.

use crate::engine::EngineKind;
use crate::jitter::{Implementation, JitterModel};
use crate::scenario::MdeScenario;
use cil_dsp::converter::AdcFault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// ADC input stage driven to the rail (both channels).
    AdcSaturation,
    /// ADC output latched at a fixed code.
    AdcStuckCode {
        /// The stuck code (clamped to the converter range on application).
        code: i32,
    },
    /// One ADC data line toggling.
    AdcBitFlip {
        /// Bit index (wrapped to the converter resolution).
        bit: u32,
    },
    /// Gap-DDS output stage mutes (phase accumulator keeps running).
    DdsDropout,
    /// Phase-detector outlier spikes: each row element is displaced by
    /// ±`amplitude_deg` with `probability` per element.
    DetectorOutlier {
        /// Per-element corruption probability.
        probability: f64,
        /// Spike magnitude, degrees (sign drawn per spike).
        amplitude_deg: f64,
    },
    /// Engine output rows turn NaN with `probability` per element.
    NanBurst {
        /// Per-element corruption probability.
        probability: f64,
    },
    /// The beam is lost outright while the event is active.
    BeamLoss,
    /// The engine's modelled step wall-clock is stretched by `factor`
    /// (forces deadline overruns in the supervisor).
    DeadlineOverrun {
        /// Multiplier on the modelled step cost (1.0 = no effect).
        factor: f64,
    },
    /// RF cavity tune drifts while the event is active: the gap frequency
    /// walks away from the set value at `drift_hz_per_s`, and the
    /// accumulated detuning *holds* after the window closes (a drifted
    /// tuner does not spring back on its own).
    CavityDetune {
        /// Tune drift rate, Hz of gap-frequency error per second.
        drift_hz_per_s: f64,
    },
    /// Cavity quench: from `start_s` the effective gap voltage collapses
    /// exponentially to zero with time constant `collapse_s`. A quench does
    /// not recover — the collapse continues past `end_s` (set
    /// `end_s = f64::INFINITY` by convention; the window end is ignored).
    CavityQuench {
        /// Exponential collapse time constant, seconds.
        collapse_s: f64,
    },
    /// Cavity trip: the gap voltage is hard-off on `[start_s, end_s)`, then
    /// ramps linearly back to nominal over `recover_s` (the interlock
    /// clears and the amplifier is brought back up on a timed ramp).
    CavityTrip {
        /// Recovery ramp duration after `end_s`, seconds (≤ 0 = instant).
        recover_s: f64,
    },
}

impl FaultKind {
    /// True when this fault, at its configured amplitude, cannot change any
    /// observable — the injector skips it without drawing randomness, so a
    /// zero-amplitude program is bit-identical to a fault-free run.
    pub fn is_noop(&self) -> bool {
        match *self {
            Self::DetectorOutlier {
                probability,
                amplitude_deg,
            } => probability <= 0.0 || amplitude_deg == 0.0,
            Self::NanBurst { probability } => probability <= 0.0,
            Self::DeadlineOverrun { factor } => factor == 1.0,
            // A zero drift rate never moves the tune; an infinite collapse
            // time constant never sags the voltage. A trip is never a noop
            // (it zeroes the voltage for the whole window by definition).
            Self::CavityDetune { drift_hz_per_s } => drift_hz_per_s == 0.0,
            Self::CavityQuench { collapse_s } => collapse_s == f64::INFINITY,
            _ => false,
        }
    }

    /// True for the cavity-level (plant-side) faults, which act on the
    /// effective gap voltage / detuning rather than on the signal chain.
    pub fn is_cavity(&self) -> bool {
        matches!(
            self,
            Self::CavityDetune { .. } | Self::CavityQuench { .. } | Self::CavityTrip { .. }
        )
    }
}

/// One scheduled fault: `kind` is active on `[start_s, end_s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Activation time, seconds.
    pub start_s: f64,
    /// Deactivation time, seconds (exclusive).
    pub end_s: f64,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether the event is active at time `t`.
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }
}

/// Signal-chain faults in effect at one instant (engine-side sampling).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleFaults {
    /// ADC fault to apply to converted codes, if any.
    pub adc: Option<AdcFault>,
    /// Gap-DDS output dropout.
    pub dds_dropout: bool,
}

/// A deterministic schedule of fault events.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProgram {
    /// Seed for every random draw the injector makes (spike signs, per-row
    /// corruption). Same seed ⇒ same fault trace.
    pub seed: u64,
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

impl FaultProgram {
    /// The empty program: nothing ever goes wrong.
    pub fn none() -> Self {
        Self {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// Whether the program schedules any events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A detector-outlier storm on `[start_s, end_s)`: each measured row
    /// element is displaced by ±`amplitude_deg` with `probability`.
    pub fn detector_outlier_storm(
        start_s: f64,
        end_s: f64,
        probability: f64,
        amplitude_deg: f64,
        seed: u64,
    ) -> Self {
        Self {
            seed,
            events: vec![FaultEvent {
                start_s,
                end_s,
                kind: FaultKind::DetectorOutlier {
                    probability,
                    amplitude_deg,
                },
            }],
        }
    }

    /// A single cavity quench starting at `start_s` with collapse time
    /// constant `collapse_s` (the window never closes — a quench does not
    /// recover).
    pub fn cavity_quench(start_s: f64, collapse_s: f64, seed: u64) -> Self {
        Self {
            seed,
            events: vec![FaultEvent {
                start_s,
                end_s: f64::INFINITY,
                kind: FaultKind::CavityQuench { collapse_s },
            }],
        }
    }

    /// A single cavity trip on `[start_s, end_s)` with a `recover_s` linear
    /// recovery ramp.
    pub fn cavity_trip(start_s: f64, end_s: f64, recover_s: f64, seed: u64) -> Self {
        Self {
            seed,
            events: vec![FaultEvent {
                start_s,
                end_s,
                kind: FaultKind::CavityTrip { recover_s },
            }],
        }
    }

    /// A single cavity tune drift on `[start_s, end_s)` at `drift_hz_per_s`
    /// (the accumulated detuning holds after the window).
    pub fn cavity_detune(start_s: f64, end_s: f64, drift_hz_per_s: f64, seed: u64) -> Self {
        Self {
            seed,
            events: vec![FaultEvent {
                start_s,
                end_s,
                kind: FaultKind::CavityDetune { drift_hz_per_s },
            }],
        }
    }

    /// Whether the program schedules any non-noop cavity-level fault. The
    /// engines use this to skip the cavity plant entirely — a zero-amplitude
    /// cavity program must leave the run bit-identical to a fault-free one.
    pub fn has_cavity_faults(&self) -> bool {
        self.events
            .iter()
            .any(|ev| ev.kind.is_cavity() && !ev.kind.is_noop())
    }

    /// Signal-chain faults (ADC, DDS) in effect at time `t`. Deterministic —
    /// no randomness is involved in *whether* these apply, only the schedule.
    pub fn sample_faults_at(&self, t: f64) -> SampleFaults {
        let mut sf = SampleFaults::default();
        for ev in &self.events {
            if !ev.active_at(t) {
                continue;
            }
            match ev.kind {
                FaultKind::AdcSaturation => sf.adc = Some(AdcFault::Saturated),
                FaultKind::AdcStuckCode { code } => sf.adc = Some(AdcFault::StuckCode(code)),
                FaultKind::AdcBitFlip { bit } => sf.adc = Some(AdcFault::BitFlip(bit)),
                FaultKind::DdsDropout => sf.dds_dropout = true,
                _ => {}
            }
        }
        sf
    }
}

/// Cavity plant condition at one instant, as sampled by an engine step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CavitySample {
    /// Effective gap-voltage scale (scheduled fault scale × commanded
    /// boost); 1.0 = nominal.
    pub scale: f64,
    /// Accumulated detune phase offset at the gap, radians.
    pub phase_rad: f64,
    /// Instantaneous gap-frequency detuning, Hz (signal-level engines apply
    /// this directly on the DDS instead of the integrated phase).
    pub detune_hz: f64,
}

/// The plant-side fault hook: the time-varying effective gap voltage and
/// detuning every engine fidelity samples each step, so the map, CGRA
/// (plan and walk), reference tracker and full signal chain all see the
/// *same* degraded cavity.
///
/// Built from the scenario's [`FaultProgram`] at engine construction; only
/// non-noop cavity events are kept, so a zero-amplitude cavity program
/// yields an idle plant and the engine takes its original code path —
/// bit-identical to a fault-free run by construction. The plant draws no
/// randomness: the voltage scale and detuning are pure functions of time,
/// and only the integrated detune phase (plus the supervisor-commanded
/// boost) is dynamic state, captured in [`CavityPlantState`].
#[derive(Debug, Clone, PartialEq)]
pub struct CavityPlant {
    events: Vec<FaultEvent>,
    /// Supervisor-commanded voltage boost (VoltageRematch); 1.0 = none.
    boost: f64,
    /// Integrated detune phase offset, radians.
    phase_rad: f64,
}

impl CavityPlant {
    /// Plant for the cavity-level events of `program` (noop events are
    /// dropped without touching the injector's RNG stream).
    pub fn from_program(program: &FaultProgram) -> Self {
        Self {
            events: program
                .events
                .iter()
                .filter(|ev| ev.kind.is_cavity() && !ev.kind.is_noop())
                .copied()
                .collect(),
            boost: 1.0,
            phase_rad: 0.0,
        }
    }

    /// An always-nominal plant.
    pub fn none() -> Self {
        Self::from_program(&FaultProgram::none())
    }

    /// True when the plant can never deviate from nominal: no scheduled
    /// cavity events *and* no commanded boost. Engines skip the cavity path
    /// entirely while idle, which is what makes a zero-amplitude program
    /// bit-identical to a fault-free run.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty() && self.boost == 1.0
    }

    /// Whether any cavity event is scheduled (idle or not).
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Scheduled (un-boosted) voltage scale at time `t`: the product over
    /// all quench/trip events of their individual collapse/recovery
    /// factors. 1.0 = nominal.
    pub fn fault_scale_at(&self, t: f64) -> f64 {
        let mut scale = 1.0;
        for ev in &self.events {
            match ev.kind {
                // A quench never recovers: the collapse continues past
                // the window end.
                FaultKind::CavityQuench { collapse_s } if t >= ev.start_s => {
                    scale *= (-(t - ev.start_s) / collapse_s).exp();
                }
                FaultKind::CavityTrip { recover_s } => {
                    if ev.active_at(t) {
                        scale = 0.0;
                    } else if t >= ev.end_s && recover_s > 0.0 && t < ev.end_s + recover_s {
                        scale *= (t - ev.end_s) / recover_s;
                    }
                }
                _ => {}
            }
        }
        scale
    }

    /// Instantaneous gap-frequency detuning at time `t`, Hz: drift-rate ×
    /// elapsed active time per detune event, holding the accumulated value
    /// after each window closes.
    pub fn detune_hz_at(&self, t: f64) -> f64 {
        let mut detune = 0.0;
        for ev in &self.events {
            if let FaultKind::CavityDetune { drift_hz_per_s } = ev.kind {
                if t >= ev.start_s {
                    detune += drift_hz_per_s * (t.min(ev.end_s) - ev.start_s);
                }
            }
        }
        detune
    }

    /// Effective voltage scale (fault scale × commanded boost) at `t` —
    /// the supervisor's audit channel for sag detection.
    pub fn effective_scale_at(&self, t: f64) -> f64 {
        self.fault_scale_at(t) * self.boost
    }

    /// Sample the plant for one engine step starting at `t` and spanning
    /// `dt` seconds, integrating the detune phase. Turn-level engines add
    /// `phase_rad` to the gap phase and multiply the gap voltage by
    /// `scale`; the signal-level engine applies `detune_hz` on the DDS
    /// (whose phase accumulator does the integration for real).
    pub fn advance(&mut self, t: f64, dt: f64) -> CavitySample {
        let detune_hz = self.detune_hz_at(t);
        self.phase_rad += std::f64::consts::TAU * detune_hz * dt;
        CavitySample {
            scale: self.effective_scale_at(t),
            phase_rad: self.phase_rad,
            detune_hz,
        }
    }

    /// Supervisor-commanded voltage boost in force.
    pub fn boost(&self) -> f64 {
        self.boost
    }

    /// Command a voltage boost (VoltageRematch). 1.0 restores nominal.
    pub fn command_boost(&mut self, boost: f64) {
        assert!(boost.is_finite() && boost > 0.0);
        self.boost = boost;
    }

    /// Snapshot the dynamic state (boost command, integrated detune phase).
    /// The event schedule is configuration and is rebuilt from the
    /// scenario.
    pub fn state(&self) -> CavityPlantState {
        CavityPlantState {
            boost: self.boost,
            phase_rad: self.phase_rad,
        }
    }

    /// Restore a state captured by [`Self::state`].
    pub fn restore(&mut self, state: &CavityPlantState) {
        self.boost = state.boost;
        self.phase_rad = state.phase_rad;
    }
}

/// Checkpointable state of a [`CavityPlant`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CavityPlantState {
    /// Supervisor-commanded voltage boost.
    pub boost: f64,
    /// Integrated detune phase offset, radians.
    pub phase_rad: f64,
}

impl Default for CavityPlantState {
    fn default() -> Self {
        Self {
            boost: 1.0,
            phase_rad: 0.0,
        }
    }
}

/// Why a run lost the beam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// A scheduled [`FaultKind::BeamLoss`] event fired.
    Injected,
    /// The engine produced a non-finite phase.
    NonFinitePhase,
    /// The ramp over-demanded the bucket (voltage below the required one).
    BucketOverdemand,
    /// The phase left ±180° — outside the bucket.
    OutOfBucket,
    /// The supervisor's watchdog gave up (bad-step streak with no demotion
    /// target left).
    Watchdog,
    /// A cavity-level fault (quench, trip, tune drift) degraded the plant
    /// until the beam left the shrunken bucket.
    CavityFault,
}

impl std::fmt::Display for LossCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Injected => write!(f, "injected beam-loss fault"),
            Self::NonFinitePhase => write!(f, "non-finite phase output"),
            Self::BucketOverdemand => write!(f, "bucket over-demanded"),
            Self::OutOfBucket => write!(f, "phase left the bucket"),
            Self::Watchdog => write!(f, "supervisor watchdog exhausted"),
            Self::CavityFault => write!(f, "cavity fault collapsed the bucket"),
        }
    }
}

/// How a closed-loop run ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopOutcome {
    /// The loop ran to its scheduled end time.
    Survived,
    /// The beam was lost.
    Lost {
        /// Row index at which the loss was detected.
        turn: usize,
        /// Simulated time of the loss, seconds.
        time_s: f64,
        /// Why.
        cause: LossCause,
    },
}

impl LoopOutcome {
    /// True when the run reached its scheduled end.
    pub fn survived(&self) -> bool {
        matches!(self, Self::Survived)
    }
}

/// One notable thing that happened during a supervised (or fault-injected)
/// run — the audit channel on [`crate::harness::LoopTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopEvent {
    /// A scheduled fault became active (logged once per event).
    FaultActive {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// The fault.
        kind: FaultKind,
    },
    /// At least one element of this row was corrupted by the injector.
    RowCorrupted {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
    },
    /// The supervisor rejected a measured phase and held the last good one.
    OutlierRejected {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// The rejected measurement, degrees.
        measured_deg: f64,
        /// The value fed to the controller instead, degrees.
        held_deg: f64,
    },
    /// The supervisor clamped the controller actuation (anti-windup held
    /// the filter state back).
    ActuationClamped {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// Unclamped controller output, Hz.
        raw_hz: f64,
        /// The limit applied, Hz.
        limit_hz: f64,
    },
    /// The modelled step wall-clock exceeded the per-revolution budget.
    DeadlineOverrun {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// The budget, seconds.
        budget_s: f64,
        /// The modelled step cost, seconds.
        modeled_s: f64,
    },
    /// The supervisor demoted the engine fidelity mid-run.
    EngineDemoted {
        /// Row index at which the demotion took effect.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// Fidelity before.
        from: EngineKind,
        /// Fidelity after.
        to: EngineKind,
    },
    /// The beam was lost.
    BeamLost {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// Why.
        cause: LossCause,
    },
    /// A checkpoint file was rejected during recovery (corrupted, truncated
    /// or incompatible) and recovery fell back to an older snapshot.
    CheckpointRejected {
        /// Row index recovery resumed from (the fallback snapshot's turn).
        turn: usize,
        /// Simulated time of the fallback snapshot, seconds.
        time_s: f64,
    },
    /// The supervisor's voltage-sag estimator detected a degraded cavity on
    /// the audit channel (logged once per sag episode).
    CavitySagDetected {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// Effective voltage scale observed (fault × boost).
        voltage_scale: f64,
    },
    /// The compensation policy engaged (logged once per sag episode).
    CompensationEngaged {
        /// Row index.
        turn: usize,
        /// Simulated time, seconds.
        time_s: f64,
        /// Voltage boost commanded at engagement (1.0 for gain-only
        /// policies).
        boost: f64,
        /// Controller gain multiplier commanded at engagement (1.0 for
        /// voltage-only policies).
        gain_scale: f64,
    },
}

/// Run-time state of a [`FaultProgram`] inside one loop execution.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The schedule being executed.
    pub program: FaultProgram,
    rng: StdRng,
    /// Per-event "already logged as active" latch.
    activated: Vec<bool>,
    /// Rows in which at least one element was corrupted.
    corrupted_rows: usize,
}

impl FaultInjector {
    /// Injector executing `program` (randomness derived from its seed).
    pub fn new(program: FaultProgram) -> Self {
        let rng = StdRng::seed_from_u64(program.seed);
        let activated = vec![false; program.events.len()];
        Self {
            program,
            rng,
            activated,
            corrupted_rows: 0,
        }
    }

    /// Injector of the empty program.
    pub fn none() -> Self {
        Self::new(FaultProgram::none())
    }

    /// Number of rows this injector corrupted so far.
    pub fn corrupted_rows(&self) -> usize {
        self.corrupted_rows
    }

    /// Apply row-level faults (detector outliers, NaN bursts) to a measured
    /// phase row at time `t`, appending audit events. Noop-amplitude faults
    /// are skipped without drawing randomness, so a zero-amplitude program
    /// leaves the run bit-identical to a fault-free one.
    pub fn apply_row(
        &mut self,
        turn: usize,
        t: f64,
        phase: &mut [f64],
        events: &mut Vec<LoopEvent>,
    ) {
        if self.program.events.is_empty() {
            return;
        }
        let mut corrupted = false;
        for (i, ev) in self.program.events.iter().enumerate() {
            if !ev.active_at(t) || ev.kind.is_noop() {
                continue;
            }
            if !self.activated[i] {
                self.activated[i] = true;
                events.push(LoopEvent::FaultActive {
                    turn,
                    time_s: t,
                    kind: ev.kind,
                });
            }
            match ev.kind {
                FaultKind::DetectorOutlier {
                    probability,
                    amplitude_deg,
                } => {
                    for p in phase.iter_mut() {
                        if self.rng.gen::<f64>() < probability {
                            let sign = if self.rng.gen::<f64>() < 0.5 {
                                -1.0
                            } else {
                                1.0
                            };
                            *p += sign * amplitude_deg;
                            corrupted = true;
                        }
                    }
                }
                FaultKind::NanBurst { probability } => {
                    for p in phase.iter_mut() {
                        if self.rng.gen::<f64>() < probability {
                            *p = f64::NAN;
                            corrupted = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if corrupted {
            self.corrupted_rows += 1;
            events.push(LoopEvent::RowCorrupted { turn, time_s: t });
        }
    }

    /// Whether a scheduled beam-loss fault is active at `t`.
    pub fn forced_loss_at(&self, t: f64) -> bool {
        self.program
            .events
            .iter()
            .any(|ev| ev.active_at(t) && ev.kind == FaultKind::BeamLoss)
    }

    /// Combined wall-clock stretch factor of all active deadline-overrun
    /// faults at `t` (1.0 when none).
    pub fn overrun_factor_at(&self, t: f64) -> f64 {
        let mut factor = 1.0;
        for ev in &self.program.events {
            if let FaultKind::DeadlineOverrun { factor: f } = ev.kind {
                if ev.active_at(t) {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// Snapshot the injector's run-time state (RNG stream cursor, activation
    /// latches, corruption counter). The [`FaultProgram`] itself is
    /// configuration and is rebuilt from the scenario on restore.
    pub fn state(&self) -> FaultInjectorState {
        FaultInjectorState {
            rng: self.rng.state(),
            activated: self.activated.clone(),
            corrupted_rows: self.corrupted_rows,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the activation-latch length does not match this injector's
    /// program.
    pub fn restore(&mut self, state: &FaultInjectorState) -> bool {
        if state.activated.len() != self.activated.len() {
            return false;
        }
        self.rng = StdRng::from_state(state.rng);
        self.activated = state.activated.clone();
        self.corrupted_rows = state.corrupted_rows;
        true
    }
}

/// Checkpointable state of a [`FaultInjector`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjectorState {
    /// Raw RNG state (the injector's stream cursor).
    pub rng: u64,
    /// Per-event "already logged as active" latches.
    pub activated: Vec<bool>,
    /// Rows corrupted so far.
    pub corrupted_rows: usize,
}

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Per-revolution wall-clock budget, seconds (the hard real-time
    /// requirement: the step must finish within one revolution).
    pub deadline_s: f64,
    /// Reject a measurement when it departs from the last good one by more
    /// than this, degrees.
    pub outlier_threshold_deg: f64,
    /// Consecutive bad steps (overrun or rejected row) before the watchdog
    /// demotes the engine.
    pub max_consecutive_bad: u32,
    /// Actuation clamp applied on top of the controller's own saturation,
    /// Hz.
    pub max_actuation_hz: f64,
    /// Allow mid-run engine demotion (false = watchdog loss instead).
    pub allow_demotion: bool,
    /// Seed of the wall-clock jitter model draws.
    pub seed: u64,
    /// Use the measured warmup-step calibration (when available for the
    /// running fidelity) as the nominal step cost instead of the hard-coded
    /// per-fidelity figure. Defaults to `false`: measured wall-clock in the
    /// deadline model would make supervised runs non-replayable, so the
    /// calibration is recorded and exported but only *applied* on request.
    pub use_measured_step: bool,
    /// RF-plant compensation policy driven by the cavity degradation
    /// ladder (detect → compensate → demote → declare loss).
    pub compensation: crate::control::CompensationPolicy,
    /// Effective voltage scale below which the sag estimator declares a
    /// degraded cavity and the ladder engages.
    pub sag_threshold: f64,
}

impl SupervisorConfig {
    /// Policy for a scenario: deadline = one revolution period, outlier
    /// gate at 45° (half the linear bucket), watchdog after 8 bad steps.
    pub fn for_scenario(s: &MdeScenario) -> Self {
        Self {
            deadline_s: 1.0 / s.f_rev,
            outlier_threshold_deg: 45.0,
            max_consecutive_bad: 8,
            max_actuation_hz: s.controller.max_freq_offset_hz,
            allow_demotion: true,
            seed: 0x5AFE,
            use_measured_step: false,
            compensation: crate::control::CompensationPolicy::None,
            sag_threshold: 0.9,
        }
    }
}

/// Measured per-step wall-clock for one engine fidelity, taken from warmup
/// steps on a scratch engine at harness startup (satellite fix for the
/// hard-coded per-fidelity step model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCalibration {
    /// Fidelity the measurement was taken at.
    pub kind: EngineKind,
    /// Median measured step wall-clock, seconds.
    pub step_seconds: f64,
}

/// Admission verdict for one measured row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission {
    /// The value to feed the controller, degrees.
    pub value_deg: f64,
    /// True when the raw measurement was rejected and `value_deg` is the
    /// held last-good value.
    pub rejected: bool,
}

/// The loop supervisor: deadline accounting, outlier gate, watchdog.
#[derive(Debug, Clone)]
pub struct LoopSupervisor {
    /// Policy in force.
    pub config: SupervisorConfig,
    rng: StdRng,
    last_good: Option<f64>,
    bad_streak: u32,
    calibration: Option<StepCalibration>,
    /// Commanded voltage boost (VoltageRematch ladder state); 1.0 = none.
    boost: f64,
    /// Commanded controller gain multiplier (GainRescale ladder state).
    gain_scale: f64,
    /// Sag-episode latch: a degraded cavity is logged once per episode.
    sag_latched: bool,
}

impl LoopSupervisor {
    /// Supervisor with the given policy.
    pub fn new(config: SupervisorConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            last_good: None,
            bad_streak: 0,
            calibration: None,
            boost: 1.0,
            gain_scale: 1.0,
            sag_latched: false,
        }
    }

    /// Supervisor with the scenario's default policy.
    pub fn for_scenario(s: &MdeScenario) -> Self {
        Self::new(SupervisorConfig::for_scenario(s))
    }

    /// Model the wall-clock cost of one engine step: a nominal per-fidelity
    /// compute time plus a draw from the implementation's jitter model,
    /// stretched by any active deadline-overrun fault.
    ///
    /// The nominal costs encode the paper's motivation: the CGRA pipeline
    /// fits the 1.25 µs revolution budget deterministically, the analytic
    /// map is far below it, and a multi-particle tracker is inherently
    /// above it at realistic ensemble sizes — so RefTrack demotes by
    /// design under supervision.
    /// With [`SupervisorConfig::use_measured_step`] set and a
    /// [`StepCalibration`] recorded for the running fidelity, the measured
    /// median replaces the hard-coded nominal (jitter and overrun faults
    /// still apply on top).
    pub fn model_step_seconds(&mut self, kind: EngineKind, overrun_factor: f64) -> f64 {
        let (mut nominal, imp) = match kind {
            EngineKind::Cgra => (1.0e-6, Implementation::CgraFpga),
            EngineKind::Map => (5.0e-8, Implementation::RealtimeSoftware),
            EngineKind::RefTrack { particles, .. } => {
                (particles as f64 * 3.0e-9, Implementation::RealtimeSoftware)
            }
        };
        if self.config.use_measured_step {
            if let Some(cal) = self.calibration {
                if cal.kind == kind {
                    nominal = cal.step_seconds;
                }
            }
        }
        let jitter = JitterModel::for_implementation(imp).sample(&mut self.rng);
        ((nominal + jitter) * overrun_factor).max(0.0)
    }

    /// Warmup-step calibration recorded by the harness, if any.
    pub fn calibration(&self) -> Option<StepCalibration> {
        self.calibration
    }

    /// Record a warmup-step calibration (done by
    /// [`crate::harness::LoopHarness::run_supervised`] at startup).
    pub fn set_calibration(&mut self, calibration: StepCalibration) {
        self.calibration = Some(calibration);
    }

    /// Gate one measured row: accept it (updating the hold value) or reject
    /// it as an outlier / non-finite and hold the last good value.
    pub fn admit(&mut self, measured_deg: f64) -> Admission {
        let held = self.last_good.unwrap_or(0.0);
        let bad = !measured_deg.is_finite()
            || (self.last_good.is_some()
                && (measured_deg - held).abs() > self.config.outlier_threshold_deg);
        if bad {
            if cfg!(feature = "strict-faults") {
                panic!("strict-faults: rejected measurement {measured_deg} deg (held {held})");
            }
            Admission {
                value_deg: held,
                rejected: true,
            }
        } else {
            self.last_good = Some(measured_deg);
            Admission {
                value_deg: measured_deg,
                rejected: false,
            }
        }
    }

    /// One tick of the cavity degradation ladder, run once per decimated
    /// actuation: observe the *effective* voltage scale (fault × boost) on
    /// the audit channel, latch sag episodes, and update the commanded
    /// compensation per the configured [`crate::control::CompensationPolicy`].
    ///
    /// Returns `Some((boost, gain_scale))` when either command changed, to
    /// be pushed to the engine's cavity plant and the controller; `None`
    /// when nothing moved (the common healthy-plant case, which leaves a
    /// cavity-free supervised run bit-identical to before). Draws no
    /// randomness — the ladder is a pure function of the observed scale.
    pub fn observe_cavity(
        &mut self,
        turn: usize,
        time_s: f64,
        effective_scale: f64,
        events: &mut Vec<LoopEvent>,
    ) -> Option<(f64, f64)> {
        use crate::control::CompensationPolicy as P;
        let sagged = effective_scale < self.config.sag_threshold;
        let engaged_now = sagged && !self.sag_latched;
        if engaged_now {
            self.sag_latched = true;
            events.push(LoopEvent::CavitySagDetected {
                turn,
                time_s,
                voltage_scale: effective_scale,
            });
        } else if !sagged && self.sag_latched && self.boost == 1.0 && self.gain_scale == 1.0 {
            // The plant is healthy again without help: the episode is over
            // and a later sag is a new one.
            self.sag_latched = false;
        }
        let (old_boost, old_gain) = (self.boost, self.gain_scale);
        match self.config.compensation {
            P::None => {}
            P::GainRescale { max_gain_scale } => {
                // Retune the loop gain to the surviving voltage: fs — and
                // with it the plant gain — scales with sqrt(V).
                let desired = if effective_scale > 0.0 {
                    (1.0 / effective_scale.sqrt()).clamp(1.0, max_gain_scale)
                } else {
                    max_gain_scale
                };
                self.gain_scale = desired;
            }
            P::VoltageRematch {
                slew_per_update,
                max_boost,
            } => {
                // Ideal boost inverts the fault scale; we only observe the
                // effective (already boosted) scale, so the target is
                // boost/effective — which goes to 1.0 once the fault clears,
                // walking the command back down (anti-windup).
                let target = if effective_scale > 0.0 {
                    self.boost / effective_scale
                } else {
                    max_boost
                };
                let delta = (target - self.boost).clamp(-slew_per_update, slew_per_update);
                self.boost = (self.boost + delta).clamp(1.0, max_boost);
            }
        }
        let changed = self.boost != old_boost || self.gain_scale != old_gain;
        if engaged_now && !matches!(self.config.compensation, P::None) {
            events.push(LoopEvent::CompensationEngaged {
                turn,
                time_s,
                boost: self.boost,
                gain_scale: self.gain_scale,
            });
        }
        changed.then_some((self.boost, self.gain_scale))
    }

    /// Commanded voltage boost in force (re-applied to a rebuilt engine
    /// after a mid-run fidelity demotion).
    pub fn commanded_boost(&self) -> f64 {
        self.boost
    }

    /// Commanded controller gain multiplier in force.
    pub fn commanded_gain_scale(&self) -> f64 {
        self.gain_scale
    }

    /// Feed the watchdog one step verdict; returns true when the
    /// consecutive-bad budget is exhausted (caller demotes or gives up).
    pub fn note_step(&mut self, bad: bool) -> bool {
        if bad {
            self.bad_streak += 1;
        } else {
            self.bad_streak = 0;
        }
        self.bad_streak >= self.config.max_consecutive_bad
    }

    /// Reset the watchdog streak (after a demotion took effect).
    pub fn reset_watchdog(&mut self) {
        self.bad_streak = 0;
    }

    /// Current consecutive-bad count.
    pub fn bad_streak(&self) -> u32 {
        self.bad_streak
    }

    /// Snapshot the supervisor's run-time state (jitter RNG cursor,
    /// hold-last-good value, watchdog streak, warmup calibration). The
    /// [`SupervisorConfig`] is configuration and is rebuilt on restore.
    pub fn state(&self) -> SupervisorState {
        SupervisorState {
            rng: self.rng.state(),
            last_good: self.last_good,
            bad_streak: self.bad_streak,
            calibration: self.calibration,
            boost: self.boost,
            gain_scale: self.gain_scale,
            sag_latched: self.sag_latched,
        }
    }

    /// Restore a state captured by [`Self::state`].
    pub fn restore(&mut self, state: &SupervisorState) {
        self.rng = StdRng::from_state(state.rng);
        self.last_good = state.last_good;
        self.bad_streak = state.bad_streak;
        self.calibration = state.calibration;
        self.boost = state.boost;
        self.gain_scale = state.gain_scale;
        self.sag_latched = state.sag_latched;
    }
}

/// Checkpointable state of a [`LoopSupervisor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorState {
    /// Raw RNG state (the jitter-model stream cursor).
    pub rng: u64,
    /// Hold-last-good measurement, degrees.
    pub last_good: Option<f64>,
    /// Consecutive-bad watchdog streak.
    pub bad_streak: u32,
    /// Warmup-step calibration, if one was recorded.
    pub calibration: Option<StepCalibration>,
    /// Commanded voltage boost (cavity compensation ladder).
    pub boost: f64,
    /// Commanded controller gain multiplier.
    pub gain_scale: f64,
    /// Sag-episode latch.
    pub sag_latched: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_program_injects_nothing() {
        let mut inj = FaultInjector::none();
        let mut row = [1.0, 2.0];
        let mut events = Vec::new();
        inj.apply_row(0, 0.0, &mut row, &mut events);
        assert_eq!(row, [1.0, 2.0]);
        assert!(events.is_empty());
        assert!(!inj.forced_loss_at(0.0));
        assert_eq!(inj.overrun_factor_at(0.0), 1.0);
    }

    #[test]
    fn zero_amplitude_faults_draw_no_randomness() {
        // Two injectors with the same seed, one loaded with noop events:
        // their RNG streams must stay aligned, proven by identical draws
        // from a live outlier event afterwards.
        let noop = FaultProgram {
            seed: 7,
            events: vec![
                FaultEvent {
                    start_s: 0.0,
                    end_s: 1.0,
                    kind: FaultKind::DetectorOutlier {
                        probability: 0.5,
                        amplitude_deg: 0.0,
                    },
                },
                FaultEvent {
                    start_s: 0.0,
                    end_s: 1.0,
                    kind: FaultKind::NanBurst { probability: 0.0 },
                },
            ],
        };
        let mut a = FaultInjector::new(noop);
        let mut b = FaultInjector::new(FaultProgram {
            seed: 7,
            events: Vec::new(),
        });
        let mut row_a = [3.0];
        let mut row_b = [3.0];
        let mut ev = Vec::new();
        for turn in 0..100 {
            a.apply_row(turn, turn as f64 * 1e-3, &mut row_a, &mut ev);
            b.apply_row(turn, turn as f64 * 1e-3, &mut row_b, &mut ev);
            assert_eq!(row_a[0].to_bits(), row_b[0].to_bits());
        }
        assert!(ev.is_empty());
        assert_eq!(a.corrupted_rows(), 0);
    }

    #[test]
    fn outlier_storm_corrupts_and_logs() {
        let program = FaultProgram::detector_outlier_storm(0.0, 1.0, 1.0, 90.0, 3);
        let mut inj = FaultInjector::new(program);
        let mut row = [0.0];
        let mut events = Vec::new();
        inj.apply_row(0, 0.5, &mut row, &mut events);
        assert_eq!(row[0].abs(), 90.0);
        assert!(matches!(events[0], LoopEvent::FaultActive { .. }));
        assert!(matches!(events[1], LoopEvent::RowCorrupted { turn: 0, .. }));
        assert_eq!(inj.corrupted_rows(), 1);
    }

    #[test]
    fn injector_replay_is_deterministic() {
        let program = FaultProgram::detector_outlier_storm(0.0, 1.0, 0.3, 45.0, 99);
        let run = || {
            let mut inj = FaultInjector::new(program.clone());
            let mut events = Vec::new();
            let mut rows = Vec::new();
            for turn in 0..500 {
                let mut row = [1.0, -1.0, 0.5];
                inj.apply_row(turn, turn as f64 * 1e-4, &mut row, &mut events);
                rows.push(row);
            }
            (rows, events)
        };
        let (rows_a, ev_a) = run();
        let (rows_b, ev_b) = run();
        assert_eq!(rows_a, rows_b);
        assert_eq!(ev_a, ev_b);
        assert!(!ev_a.is_empty());
    }

    #[test]
    fn sample_faults_follow_the_schedule() {
        let program = FaultProgram {
            seed: 0,
            events: vec![
                FaultEvent {
                    start_s: 1.0,
                    end_s: 2.0,
                    kind: FaultKind::AdcSaturation,
                },
                FaultEvent {
                    start_s: 1.5,
                    end_s: 3.0,
                    kind: FaultKind::DdsDropout,
                },
            ],
        };
        assert_eq!(program.sample_faults_at(0.5), SampleFaults::default());
        assert_eq!(program.sample_faults_at(1.2).adc, Some(AdcFault::Saturated));
        assert!(!program.sample_faults_at(1.2).dds_dropout);
        assert!(program.sample_faults_at(1.7).dds_dropout);
        assert_eq!(program.sample_faults_at(2.5).adc, None);
    }

    #[cfg(not(feature = "strict-faults"))]
    #[test]
    fn admission_gate_holds_last_good() {
        let s = MdeScenario::nov24_2023();
        let mut sup = LoopSupervisor::for_scenario(&s);
        // First value is always admitted (nothing to compare against).
        assert!(!sup.admit(300.0).rejected);
        // A jump beyond the threshold is rejected, holding 300.
        let a = sup.admit(0.0);
        assert!(a.rejected);
        assert_eq!(a.value_deg, 300.0);
        // NaN is rejected too.
        assert!(sup.admit(f64::NAN).rejected);
        // A value near the held one is admitted again.
        assert!(!sup.admit(290.0).rejected);
    }

    #[test]
    fn watchdog_counts_consecutive_bad_steps() {
        let s = MdeScenario::nov24_2023();
        let mut sup = LoopSupervisor::for_scenario(&s);
        for _ in 0..7 {
            assert!(!sup.note_step(true));
        }
        // A good step resets the streak.
        assert!(!sup.note_step(false));
        for i in 0..8 {
            let fired = sup.note_step(true);
            assert_eq!(fired, i == 7, "fires exactly at the 8th bad step");
        }
        sup.reset_watchdog();
        assert_eq!(sup.bad_streak(), 0);
    }

    #[test]
    fn cavity_plant_quench_trip_detune_semantics() {
        // Quench: exponential collapse from start, never recovering.
        let q = CavityPlant::from_program(&FaultProgram::cavity_quench(1.0, 0.5, 0));
        assert_eq!(q.fault_scale_at(0.5), 1.0);
        assert!((q.fault_scale_at(1.5) - (-1.0f64).exp()).abs() < 1e-12);
        assert!(q.fault_scale_at(10.0) < 1e-7, "a quench never recovers");
        // Trip: hard off on the window, then a linear recovery ramp.
        let t = CavityPlant::from_program(&FaultProgram::cavity_trip(1.0, 2.0, 0.5, 0));
        assert_eq!(t.fault_scale_at(0.9), 1.0);
        assert_eq!(t.fault_scale_at(1.5), 0.0);
        assert!((t.fault_scale_at(2.25) - 0.5).abs() < 1e-12);
        assert_eq!(t.fault_scale_at(3.0), 1.0);
        // Detune: drift while active, holding the accumulated value after.
        let d = CavityPlant::from_program(&FaultProgram::cavity_detune(1.0, 2.0, 50.0, 0));
        assert_eq!(d.detune_hz_at(0.5), 0.0);
        assert!((d.detune_hz_at(1.5) - 25.0).abs() < 1e-12);
        assert!((d.detune_hz_at(5.0) - 50.0).abs() < 1e-12, "drift holds");
        assert_eq!(d.fault_scale_at(1.5), 1.0, "detune does not sag voltage");
    }

    #[test]
    fn noop_cavity_events_yield_an_idle_plant() {
        let program = FaultProgram {
            seed: 1,
            events: vec![
                FaultEvent {
                    start_s: 0.0,
                    end_s: 1.0,
                    kind: FaultKind::CavityDetune {
                        drift_hz_per_s: 0.0,
                    },
                },
                FaultEvent {
                    start_s: 0.0,
                    end_s: f64::INFINITY,
                    kind: FaultKind::CavityQuench {
                        collapse_s: f64::INFINITY,
                    },
                },
            ],
        };
        assert!(!program.has_cavity_faults());
        let plant = CavityPlant::from_program(&program);
        assert!(plant.is_idle());
        // A trip is never a noop.
        assert!(FaultProgram::cavity_trip(0.0, 1.0, 0.1, 0).has_cavity_faults());
    }

    #[test]
    fn voltage_rematch_slews_up_and_walks_back_down() {
        let s = MdeScenario::nov24_2023();
        let mut cfg = SupervisorConfig::for_scenario(&s);
        cfg.compensation = crate::control::CompensationPolicy::VoltageRematch {
            slew_per_update: 0.1,
            max_boost: 3.0,
        };
        let mut sup = LoopSupervisor::new(cfg);
        let mut events = Vec::new();
        // Healthy plant: nothing moves, nothing is logged.
        assert!(sup.observe_cavity(0, 0.0, 1.0, &mut events).is_none());
        assert!(events.is_empty());
        // Sag to half voltage: the first tick latches the episode, logs
        // detection + engagement, and slews the boost by one step.
        let mut fault_scale = 0.5;
        let cmd = sup
            .observe_cavity(1, 1.0, fault_scale * sup.commanded_boost(), &mut events)
            .expect("boost must move");
        assert!((cmd.0 - 1.1).abs() < 1e-12, "one slew step, got {}", cmd.0);
        assert!(matches!(events[0], LoopEvent::CavitySagDetected { .. }));
        assert!(matches!(events[1], LoopEvent::CompensationEngaged { .. }));
        // Keep observing: the boost converges to 1/scale = 2 and stops.
        for turn in 2..40 {
            sup.observe_cavity(
                turn,
                turn as f64,
                fault_scale * sup.commanded_boost(),
                &mut events,
            );
        }
        assert!((sup.commanded_boost() - 2.0).abs() < 1e-9);
        // Fault clears: the effective scale is now boosted above nominal,
        // and the command walks back down to exactly 1.0 (anti-windup).
        fault_scale = 1.0;
        for turn in 40..80 {
            sup.observe_cavity(
                turn,
                turn as f64,
                fault_scale * sup.commanded_boost(),
                &mut events,
            );
        }
        assert_eq!(sup.commanded_boost(), 1.0);
        // Only one episode was logged.
        let sags = events
            .iter()
            .filter(|e| matches!(e, LoopEvent::CavitySagDetected { .. }))
            .count();
        assert_eq!(sags, 1);
    }

    #[test]
    fn gain_rescale_tracks_sqrt_of_surviving_voltage() {
        let s = MdeScenario::nov24_2023();
        let mut cfg = SupervisorConfig::for_scenario(&s);
        cfg.compensation = crate::control::CompensationPolicy::gain_rescale();
        let mut sup = LoopSupervisor::new(cfg);
        let mut events = Vec::new();
        let cmd = sup.observe_cavity(0, 0.0, 0.25, &mut events).unwrap();
        assert!((cmd.1 - 2.0).abs() < 1e-12, "1/sqrt(0.25) = 2");
        // Collapse to zero hits the cap instead of inf.
        let cmd = sup.observe_cavity(1, 1.0, 0.0, &mut events).unwrap();
        assert_eq!(cmd.1, 4.0);
        assert_eq!(sup.commanded_boost(), 1.0, "gain-only policy");
    }

    #[test]
    fn step_cost_model_orders_fidelities() {
        let s = MdeScenario::nov24_2023();
        let mut sup = LoopSupervisor::for_scenario(&s);
        let budget = 1.0 / s.f_rev;
        // CGRA fits the budget deterministically; the big tracker never does.
        for _ in 0..1000 {
            assert!(sup.model_step_seconds(EngineKind::Cgra, 1.0) < budget);
            assert!(
                sup.model_step_seconds(
                    EngineKind::RefTrack {
                        particles: 1500,
                        seed: 0
                    },
                    1.0
                ) > budget
            );
        }
        // A 3x overrun fault pushes the CGRA over.
        assert!(sup.model_step_seconds(EngineKind::Cgra, 3.0) > budget);
    }
}
