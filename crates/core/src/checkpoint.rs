//! Versioned, CRC-checksummed binary checkpoints of the complete
//! closed-loop state.
//!
//! A loop service that dies mid-ramp must come back *bit-identical*: the
//! resumed run has to reproduce the same trace rows, the same audit events
//! and the same deterministic telemetry as an uninterrupted one, or every
//! replay-based analysis downstream silently diverges. This module provides
//! the snapshot format and the write-ahead trace log that make that
//! possible.
//!
//! # On-disk layout
//!
//! A checkpoint directory holds two kinds of files:
//!
//! * `trace.log` — an append-only write-ahead log of *delta blocks*. Once
//!   per checkpoint cadence the rows, audit events and jump edges produced
//!   since the previous checkpoint are appended as one framed block. The
//!   log is never rewritten, so total trace I/O over a run is O(rows), not
//!   O(rows²) as embedding the full partial trace in every snapshot would
//!   be.
//! * `ckpt_<turn>.cil` — small rolling state snapshots. Each records the
//!   complete mutable loop state (engine, controller, fault injector,
//!   supervisor, telemetry counters) plus a *consistent cut* into the
//!   trace log: the row/event/jump totals and the byte length of
//!   `trace.log` at the instant the snapshot was taken.
//!
//! Snapshots are written atomically (temp file + rename) and framed with a
//! magic, a version, an explicit payload length and a CRC-32, so a torn or
//! corrupted file is *detected*, never silently applied. Recovery walks
//! snapshots newest-first, rejects bad ones (auditing each rejection as
//! [`LoopEvent::CheckpointRejected`]) and falls back to the next older
//! good one; the trace log is truncated to the chosen snapshot's cut, which
//! also discards any torn tail block.
//!
//! What is *not* captured: configuration. Scenario, fault program, kernel
//! programs, filter taps, LUTs and the [`crate::engine::CompiledKernelCache`]
//! are all rebuilt from the scenario on resume — the checkpoint carries
//! only state that evolves at run time.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::control::ControllerState;
use crate::engine::{
    CgraEngineState, EngineKind, EngineState, MapEngineState, RampEngineState, RefTrackEngineState,
    SignalLevelEngineState, TurnStateSnapshot,
};
use crate::fault::{
    CavityPlantState, FaultInjectorState, FaultKind, LoopEvent, LossCause, StepCalibration,
    SupervisorState,
};
use crate::framework::FrameworkState;
use crate::harness::LoopTrace;
use crate::signalgen::SignalBenchState;
use crate::telemetry::HistogramSnapshot;
use cil_cgra::ExecutorState;
use cil_dsp::converter::AdcFault;
use cil_dsp::dds::DdsState;
use cil_dsp::fir::FirState;
use cil_dsp::gauss::GaussPulseState;
use cil_dsp::period::PeriodDetectorState;
use cil_dsp::phase_detector::PhaseDetectorState;
use cil_dsp::ring_buffer::RingBufferState;
use cil_dsp::zero_crossing::ZeroCrossingState;

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CILCKPT\0";
/// Current snapshot format version. Version 2 added the cavity plant
/// (fault scale/detune phase, compensation boost), the controller gain
/// scale and the supervisor compensation ladder to the payload.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Trace-log block magic ("TRCB").
const BLOCK_MAGIC: u32 = 0x5452_4342;
/// Name of the write-ahead trace log inside a checkpoint directory.
pub const TRACE_LOG_NAME: &str = "trace.log";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — no external dependency.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Error type
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be written, decoded or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure while reading or writing checkpoint files.
    Io(std::io::Error),
    /// The file is shorter than the fixed header.
    TooShort,
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The file's format version is not one this build can decode.
    UnsupportedVersion(u32),
    /// The declared payload length disagrees with the file size (torn
    /// write).
    LengthMismatch,
    /// The payload checksum does not match (bit rot or torn write).
    CrcMismatch,
    /// The payload is structurally invalid.
    Malformed(&'static str),
    /// The snapshot decoded but cannot be applied to this run
    /// configuration.
    Incompatible(&'static str),
    /// No usable checkpoint was found in the directory.
    NoCheckpoint,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O failure: {e}"),
            Self::TooShort => write!(f, "file shorter than the checkpoint header"),
            Self::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            Self::LengthMismatch => write!(f, "declared payload length disagrees with file size"),
            Self::CrcMismatch => write!(f, "payload CRC mismatch"),
            Self::Malformed(what) => write!(f, "malformed checkpoint payload: {what}"),
            Self::Incompatible(what) => write!(f, "checkpoint incompatible with this run: {what}"),
            Self::NoCheckpoint => write!(f, "no usable checkpoint found"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

type R<T> = std::result::Result<T, CheckpointError>;

// ---------------------------------------------------------------------------
// Little-endian encoder / decoder (shared with the campaign WAL)
// ---------------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
    pub(crate) fn opt<T>(&mut self, v: &Option<T>, mut enc: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                enc(self, inner);
            }
        }
    }
    pub(crate) fn f64s(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.f64(x);
        }
    }
    pub(crate) fn u64s(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }
    pub(crate) fn bools(&mut self, v: &[bool]) {
        self.usize(v.len());
        for &x in v {
            self.bool(x);
        }
    }
}

pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
    pub(crate) fn bytes(&mut self, n: usize) -> R<&'a [u8]> {
        if self.remaining() < n {
            return Err(CheckpointError::Malformed("unexpected end of payload"));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> R<u8> {
        Ok(self.bytes(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> R<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> R<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> R<i64> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    pub(crate) fn f64(&mut self) -> R<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn bool(&mut self) -> R<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CheckpointError::Malformed("boolean byte out of range")),
        }
    }
    pub(crate) fn usize(&mut self) -> R<usize> {
        usize::try_from(self.u64()?)
            .map_err(|_| CheckpointError::Malformed("length exceeds platform usize"))
    }
    /// Decode a collection length, capped against the bytes actually left
    /// in the payload so a corrupted length can never trigger a huge
    /// allocation.
    pub(crate) fn len_capped(&mut self, elem_bytes: usize) -> R<usize> {
        let n = self.usize()?;
        if n.saturating_mul(elem_bytes.max(1)) > self.remaining() {
            return Err(CheckpointError::Malformed(
                "collection length exceeds payload",
            ));
        }
        Ok(n)
    }
    pub(crate) fn str(&mut self) -> R<String> {
        let n = self.len_capped(1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("string is not valid UTF-8"))
    }
    pub(crate) fn opt<T>(&mut self, mut dec: impl FnMut(&mut Self) -> R<T>) -> R<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(dec(self)?)),
            _ => Err(CheckpointError::Malformed("option tag out of range")),
        }
    }
    pub(crate) fn f64s(&mut self) -> R<Vec<f64>> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.f64()).collect()
    }
    pub(crate) fn u64s(&mut self) -> R<Vec<u64>> {
        let n = self.len_capped(8)?;
        (0..n).map(|_| self.u64()).collect()
    }
    pub(crate) fn bools(&mut self) -> R<Vec<bool>> {
        let n = self.len_capped(1)?;
        (0..n).map(|_| self.bool()).collect()
    }
    pub(crate) fn finish(&self) -> R<()> {
        if self.remaining() != 0 {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Generic log framing (shared by the trace log and the campaign WAL)
// ---------------------------------------------------------------------------

/// Frame a payload for an append-only log:
/// `magic (u32 LE) + payload length (u64 LE) + payload + CRC-32 (u32 LE)`.
/// The same framing protects `trace.log` delta blocks and
/// [`crate::campaign`]'s `campaign.log` shard commits.
pub(crate) fn frame_block(magic: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32(payload);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Read the framed block starting at `pos`. Returns `Ok(None)` exactly at
/// end-of-input, `Ok(Some((payload, next_pos)))` for a well-formed block,
/// and a typed error for anything torn, truncated or corrupted — the caller
/// decides whether that is fatal (trace-log recovery) or the torn tail of
/// an append-only WAL to truncate past (campaign resume).
pub(crate) fn next_frame(bytes: &[u8], pos: usize, magic: u32) -> R<Option<(&[u8], usize)>> {
    if pos >= bytes.len() {
        return Ok(None);
    }
    if bytes.len() - pos < 12 {
        return Err(CheckpointError::TooShort);
    }
    let got = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
    if got != magic {
        return Err(CheckpointError::BadMagic);
    }
    let payload_len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
    let payload_len = usize::try_from(payload_len).map_err(|_| CheckpointError::LengthMismatch)?;
    let body_start = pos + 12;
    let body_end = body_start
        .checked_add(payload_len)
        .ok_or(CheckpointError::LengthMismatch)?;
    if body_end.checked_add(4).is_none_or(|end| end > bytes.len()) {
        return Err(CheckpointError::LengthMismatch);
    }
    let payload = &bytes[body_start..body_end];
    let crc = u32::from_le_bytes(bytes[body_end..body_end + 4].try_into().unwrap());
    if crc32(payload) != crc {
        return Err(CheckpointError::CrcMismatch);
    }
    Ok(Some((payload, body_end + 4)))
}

// ---------------------------------------------------------------------------
// Per-type codecs
// ---------------------------------------------------------------------------

fn enc_engine_kind(e: &mut Enc, k: &EngineKind) {
    match *k {
        EngineKind::Map => e.u8(0),
        EngineKind::Cgra => e.u8(1),
        EngineKind::RefTrack { particles, seed } => {
            e.u8(2);
            e.usize(particles);
            e.u64(seed);
        }
    }
}

fn dec_engine_kind(d: &mut Dec) -> R<EngineKind> {
    Ok(match d.u8()? {
        0 => EngineKind::Map,
        1 => EngineKind::Cgra,
        2 => EngineKind::RefTrack {
            particles: d.usize()?,
            seed: d.u64()?,
        },
        _ => return Err(CheckpointError::Malformed("engine kind tag out of range")),
    })
}

fn enc_cavity(e: &mut Enc, c: &CavityPlantState) {
    e.f64(c.boost);
    e.f64(c.phase_rad);
}

fn dec_cavity(d: &mut Dec) -> R<CavityPlantState> {
    Ok(CavityPlantState {
        boost: d.f64()?,
        phase_rad: d.f64()?,
    })
}

fn enc_turn(e: &mut Enc, t: &TurnStateSnapshot) {
    e.f64(t.time);
    e.f64(t.ctrl_phase_rad);
    e.f64(t.applied_jump_deg);
    enc_cavity(e, &t.cavity);
}

fn dec_turn(d: &mut Dec) -> R<TurnStateSnapshot> {
    Ok(TurnStateSnapshot {
        time: d.f64()?,
        ctrl_phase_rad: d.f64()?,
        applied_jump_deg: d.f64()?,
        cavity: dec_cavity(d)?,
    })
}

fn enc_executor(e: &mut Enc, s: &ExecutorState) {
    e.f64s(&s.regs);
    e.u64(s.iterations);
}

fn dec_executor(d: &mut Dec) -> R<ExecutorState> {
    Ok(ExecutorState {
        regs: d.f64s()?,
        iterations: d.u64()?,
    })
}

fn enc_dds(e: &mut Enc, s: &DdsState) {
    e.u64(s.acc);
    e.u64(s.increment);
    e.f64(s.amplitude);
    e.bool(s.dropout);
}

fn dec_dds(d: &mut Dec) -> R<DdsState> {
    Ok(DdsState {
        acc: d.u64()?,
        increment: d.u64()?,
        amplitude: d.f64()?,
        dropout: d.bool()?,
    })
}

fn enc_ring(e: &mut Enc, s: &RingBufferState) {
    e.f64s(&s.data);
    e.usize(s.head);
    e.u64(s.written);
}

fn dec_ring(d: &mut Dec) -> R<RingBufferState> {
    Ok(RingBufferState {
        data: d.f64s()?,
        head: d.usize()?,
        written: d.u64()?,
    })
}

fn enc_zcd(e: &mut Enc, s: &ZeroCrossingState) {
    e.f64(s.last_sample);
    e.u64(s.sample_index);
    e.opt(&s.last_crossing, |e, &v| e.u64(v));
    e.f64(s.last_crossing_frac);
    e.bool(s.armed);
    e.u64(s.crossings_seen);
}

fn dec_zcd(d: &mut Dec) -> R<ZeroCrossingState> {
    Ok(ZeroCrossingState {
        last_sample: d.f64()?,
        sample_index: d.u64()?,
        last_crossing: d.opt(Dec::u64)?,
        last_crossing_frac: d.f64()?,
        armed: d.bool()?,
        crossings_seen: d.u64()?,
    })
}

fn enc_period(e: &mut Enc, s: &PeriodDetectorState) {
    enc_zcd(e, &s.zcd);
    e.f64s(&s.history);
    e.usize(s.cursor);
    e.usize(s.filled);
    e.opt(&s.last_crossing, |e, &v| e.f64(v));
}

fn dec_period(d: &mut Dec) -> R<PeriodDetectorState> {
    Ok(PeriodDetectorState {
        zcd: dec_zcd(d)?,
        history: d.f64s()?,
        cursor: d.usize()?,
        filled: d.usize()?,
        last_crossing: d.opt(Dec::f64)?,
    })
}

fn enc_gauss(e: &mut Enc, s: &GaussPulseState) {
    e.opt(&s.playing, |e, &v| e.usize(v));
    e.u64s(&s.armed_at);
    e.u64(s.now);
    e.f64(s.amplitude);
}

fn dec_gauss(d: &mut Dec) -> R<GaussPulseState> {
    Ok(GaussPulseState {
        playing: d.opt(Dec::usize)?,
        armed_at: d.u64s()?,
        now: d.u64()?,
        amplitude: d.f64()?,
    })
}

fn enc_fir(e: &mut Enc, s: &FirState) {
    e.f64s(&s.delay);
    e.usize(s.cursor);
}

fn dec_fir(d: &mut Dec) -> R<FirState> {
    Ok(FirState {
        delay: d.f64s()?,
        cursor: d.usize()?,
    })
}

fn enc_phase_detector(e: &mut Enc, s: &PhaseDetectorState) {
    enc_zcd(e, &s.zcd);
    e.f64(s.period_samples);
    e.bool(s.in_pulse);
    e.f64(s.acc_weight);
    e.f64(s.acc_moment);
    e.u64(s.pulse_start);
    e.u64(s.sample_index);
    e.opt(&s.last_ref_crossing, |e, &v| e.f64(v));
    e.u64(s.dropped);
    e.bool(s.resync);
    e.bool(s.suppress_pulse);
}

fn dec_phase_detector(d: &mut Dec) -> R<PhaseDetectorState> {
    Ok(PhaseDetectorState {
        zcd: dec_zcd(d)?,
        period_samples: d.f64()?,
        in_pulse: d.bool()?,
        acc_weight: d.f64()?,
        acc_moment: d.f64()?,
        pulse_start: d.u64()?,
        sample_index: d.u64()?,
        last_ref_crossing: d.opt(Dec::f64)?,
        dropped: d.u64()?,
        resync: d.bool()?,
        suppress_pulse: d.bool()?,
    })
}

fn enc_adc_fault(e: &mut Enc, f: &AdcFault) {
    match *f {
        AdcFault::Saturated => e.u8(0),
        AdcFault::StuckCode(code) => {
            e.u8(1);
            e.i64(i64::from(code));
        }
        AdcFault::BitFlip(bit) => {
            e.u8(2);
            e.u32(bit);
        }
    }
}

fn dec_adc_fault(d: &mut Dec) -> R<AdcFault> {
    Ok(match d.u8()? {
        0 => AdcFault::Saturated,
        1 => {
            let code = d.i64()?;
            AdcFault::StuckCode(
                i32::try_from(code)
                    .map_err(|_| CheckpointError::Malformed("stuck code exceeds i32"))?,
            )
        }
        2 => AdcFault::BitFlip(d.u32()?),
        _ => return Err(CheckpointError::Malformed("ADC fault tag out of range")),
    })
}

fn enc_bench(e: &mut Enc, s: &SignalBenchState) {
    enc_dds(e, &s.reference);
    enc_dds(e, &s.gap);
    e.u64(s.sample);
    e.f64(s.applied_jump_deg);
    e.f64(s.ctrl_freq_offset);
    e.f64(s.cavity_scale);
    e.f64(s.cavity_detune_hz);
}

fn dec_bench(d: &mut Dec) -> R<SignalBenchState> {
    Ok(SignalBenchState {
        reference: dec_dds(d)?,
        gap: dec_dds(d)?,
        sample: d.u64()?,
        applied_jump_deg: d.f64()?,
        ctrl_freq_offset: d.f64()?,
        cavity_scale: d.f64()?,
        cavity_detune_hz: d.f64()?,
    })
}

fn enc_framework(e: &mut Enc, s: &FrameworkState) {
    enc_executor(e, &s.executor);
    enc_ring(e, &s.ref_buffer);
    enc_ring(e, &s.gap_buffer);
    enc_period(e, &s.period);
    e.usize(s.pulses.len());
    for p in &s.pulses {
        enc_gauss(e, p);
    }
    e.u64(s.sample);
    e.opt(&s.last_crossing_sample, |e, &v| e.u64(v));
    e.opt(&s.prev_crossing_sample, |e, &v| e.u64(v));
    e.f64s(&s.last_dt);
    e.f64(s.monitor_value);
    e.bool(s.warmed_up);
    e.bool(s.recording);
    e.u64(s.revolutions);
    e.u64(s.adc_rng);
    e.opt(&s.adc_fault, enc_adc_fault);
}

fn dec_framework(d: &mut Dec) -> R<FrameworkState> {
    let executor = dec_executor(d)?;
    let ref_buffer = dec_ring(d)?;
    let gap_buffer = dec_ring(d)?;
    let period = dec_period(d)?;
    let n_pulses = d.len_capped(8)?;
    let pulses = (0..n_pulses).map(|_| dec_gauss(d)).collect::<R<Vec<_>>>()?;
    Ok(FrameworkState {
        executor,
        ref_buffer,
        gap_buffer,
        period,
        pulses,
        sample: d.u64()?,
        last_crossing_sample: d.opt(Dec::u64)?,
        prev_crossing_sample: d.opt(Dec::u64)?,
        last_dt: d.f64s()?,
        monitor_value: d.f64()?,
        warmed_up: d.bool()?,
        recording: d.bool()?,
        revolutions: d.u64()?,
        adc_rng: d.u64()?,
        adc_fault: d.opt(dec_adc_fault)?,
    })
}

fn enc_engine_state(e: &mut Enc, s: &EngineState) {
    match s {
        EngineState::Map(m) => {
            e.u8(0);
            e.f64(m.gamma_r);
            e.f64(m.dgamma);
            e.f64(m.dt);
            enc_turn(e, &m.turn);
        }
        EngineState::Cgra(c) => {
            e.u8(1);
            enc_executor(e, &c.executor);
            e.f64(c.gap_phase_rad);
            e.bool(c.gap_dropout);
            e.f64s(&c.dt_out);
            enc_turn(e, &c.turn);
        }
        EngineState::RefTrack(r) => {
            e.u8(2);
            e.f64s(&r.dt);
            e.f64s(&r.dgamma);
            e.u64(r.tracker_turn);
            enc_turn(e, &r.turn);
        }
        EngineState::Ramp(r) => {
            e.u8(3);
            e.f64(r.gamma_r);
            e.f64(r.dgamma);
            e.f64(r.dt);
            e.f64(r.time);
            e.u64(r.tracker_turn);
            e.f64(r.ctrl_phase_rad);
            e.f64(r.applied_jump_deg);
            e.f64(r.last_f_rev);
            e.f64(r.last_gamma_r);
            e.f64(r.last_phi_s_deg);
        }
        EngineState::SignalLevel(s) => {
            e.u8(4);
            enc_bench(e, &s.bench);
            enc_framework(e, &s.fw);
            enc_phase_detector(e, &s.detector);
            e.f64(s.period_samples);
            e.u64(s.sample);
            e.u64(s.period_admitted);
            e.u64(s.period_rejected);
            enc_cavity(e, &s.cavity);
        }
    }
}

fn dec_engine_state(d: &mut Dec) -> R<EngineState> {
    Ok(match d.u8()? {
        0 => EngineState::Map(MapEngineState {
            gamma_r: d.f64()?,
            dgamma: d.f64()?,
            dt: d.f64()?,
            turn: dec_turn(d)?,
        }),
        1 => EngineState::Cgra(CgraEngineState {
            executor: dec_executor(d)?,
            gap_phase_rad: d.f64()?,
            gap_dropout: d.bool()?,
            dt_out: d.f64s()?,
            turn: dec_turn(d)?,
        }),
        2 => EngineState::RefTrack(RefTrackEngineState {
            dt: d.f64s()?,
            dgamma: d.f64s()?,
            tracker_turn: d.u64()?,
            turn: dec_turn(d)?,
        }),
        3 => EngineState::Ramp(RampEngineState {
            gamma_r: d.f64()?,
            dgamma: d.f64()?,
            dt: d.f64()?,
            time: d.f64()?,
            tracker_turn: d.u64()?,
            ctrl_phase_rad: d.f64()?,
            applied_jump_deg: d.f64()?,
            last_f_rev: d.f64()?,
            last_gamma_r: d.f64()?,
            last_phi_s_deg: d.f64()?,
        }),
        4 => EngineState::SignalLevel(Box::new(SignalLevelEngineState {
            bench: dec_bench(d)?,
            fw: dec_framework(d)?,
            detector: dec_phase_detector(d)?,
            period_samples: d.f64()?,
            sample: d.u64()?,
            period_admitted: d.u64()?,
            period_rejected: d.u64()?,
            cavity: dec_cavity(d)?,
        })),
        _ => return Err(CheckpointError::Malformed("engine state tag out of range")),
    })
}

fn enc_controller(e: &mut Enc, s: &ControllerState) {
    e.f64(s.dc_x1);
    e.f64(s.dc_y1);
    enc_fir(e, &s.fir);
    e.f64(s.acc);
    e.u32(s.acc_n);
    e.f64(s.last_output);
    e.bool(s.enabled);
    e.f64(s.gain_scale);
}

fn dec_controller(d: &mut Dec) -> R<ControllerState> {
    Ok(ControllerState {
        dc_x1: d.f64()?,
        dc_y1: d.f64()?,
        fir: dec_fir(d)?,
        acc: d.f64()?,
        acc_n: d.u32()?,
        last_output: d.f64()?,
        enabled: d.bool()?,
        gain_scale: d.f64()?,
    })
}

fn enc_injector(e: &mut Enc, s: &FaultInjectorState) {
    e.u64(s.rng);
    e.bools(&s.activated);
    e.usize(s.corrupted_rows);
}

fn dec_injector(d: &mut Dec) -> R<FaultInjectorState> {
    Ok(FaultInjectorState {
        rng: d.u64()?,
        activated: d.bools()?,
        corrupted_rows: d.usize()?,
    })
}

fn enc_supervisor(e: &mut Enc, s: &SupervisorState) {
    e.u64(s.rng);
    e.opt(&s.last_good, |e, &v| e.f64(v));
    e.u32(s.bad_streak);
    e.opt(&s.calibration, |e, c| {
        enc_engine_kind(e, &c.kind);
        e.f64(c.step_seconds);
    });
    e.f64(s.boost);
    e.f64(s.gain_scale);
    e.bool(s.sag_latched);
}

fn dec_supervisor(d: &mut Dec) -> R<SupervisorState> {
    Ok(SupervisorState {
        rng: d.u64()?,
        last_good: d.opt(Dec::f64)?,
        bad_streak: d.u32()?,
        calibration: d.opt(|d| {
            Ok(StepCalibration {
                kind: dec_engine_kind(d)?,
                step_seconds: d.f64()?,
            })
        })?,
        boost: d.f64()?,
        gain_scale: d.f64()?,
        sag_latched: d.bool()?,
    })
}

fn enc_histogram(e: &mut Enc, s: &HistogramSnapshot) {
    e.u64s(&s.buckets);
    e.u64(s.count);
    e.f64(s.sum);
}

fn dec_histogram(d: &mut Dec) -> R<HistogramSnapshot> {
    Ok(HistogramSnapshot {
        buckets: d.u64s()?,
        count: d.u64()?,
        sum: d.f64()?,
    })
}

fn enc_fault_kind(e: &mut Enc, k: &FaultKind) {
    match *k {
        FaultKind::AdcSaturation => e.u8(0),
        FaultKind::AdcStuckCode { code } => {
            e.u8(1);
            e.i64(i64::from(code));
        }
        FaultKind::AdcBitFlip { bit } => {
            e.u8(2);
            e.u32(bit);
        }
        FaultKind::DdsDropout => e.u8(3),
        FaultKind::DetectorOutlier {
            probability,
            amplitude_deg,
        } => {
            e.u8(4);
            e.f64(probability);
            e.f64(amplitude_deg);
        }
        FaultKind::NanBurst { probability } => {
            e.u8(5);
            e.f64(probability);
        }
        FaultKind::BeamLoss => e.u8(6),
        FaultKind::DeadlineOverrun { factor } => {
            e.u8(7);
            e.f64(factor);
        }
        FaultKind::CavityDetune { drift_hz_per_s } => {
            e.u8(8);
            e.f64(drift_hz_per_s);
        }
        FaultKind::CavityQuench { collapse_s } => {
            e.u8(9);
            e.f64(collapse_s);
        }
        FaultKind::CavityTrip { recover_s } => {
            e.u8(10);
            e.f64(recover_s);
        }
    }
}

fn dec_fault_kind(d: &mut Dec) -> R<FaultKind> {
    Ok(match d.u8()? {
        0 => FaultKind::AdcSaturation,
        1 => {
            let code = d.i64()?;
            FaultKind::AdcStuckCode {
                code: i32::try_from(code)
                    .map_err(|_| CheckpointError::Malformed("stuck code exceeds i32"))?,
            }
        }
        2 => FaultKind::AdcBitFlip { bit: d.u32()? },
        3 => FaultKind::DdsDropout,
        4 => FaultKind::DetectorOutlier {
            probability: d.f64()?,
            amplitude_deg: d.f64()?,
        },
        5 => FaultKind::NanBurst {
            probability: d.f64()?,
        },
        6 => FaultKind::BeamLoss,
        7 => FaultKind::DeadlineOverrun { factor: d.f64()? },
        8 => FaultKind::CavityDetune {
            drift_hz_per_s: d.f64()?,
        },
        9 => FaultKind::CavityQuench {
            collapse_s: d.f64()?,
        },
        10 => FaultKind::CavityTrip {
            recover_s: d.f64()?,
        },
        _ => return Err(CheckpointError::Malformed("fault kind tag out of range")),
    })
}

fn enc_loss_cause(e: &mut Enc, c: &LossCause) {
    e.u8(match c {
        LossCause::Injected => 0,
        LossCause::NonFinitePhase => 1,
        LossCause::BucketOverdemand => 2,
        LossCause::OutOfBucket => 3,
        LossCause::Watchdog => 4,
        LossCause::CavityFault => 5,
    });
}

fn dec_loss_cause(d: &mut Dec) -> R<LossCause> {
    Ok(match d.u8()? {
        0 => LossCause::Injected,
        1 => LossCause::NonFinitePhase,
        2 => LossCause::BucketOverdemand,
        3 => LossCause::OutOfBucket,
        4 => LossCause::Watchdog,
        5 => LossCause::CavityFault,
        _ => return Err(CheckpointError::Malformed("loss cause tag out of range")),
    })
}

fn enc_event(e: &mut Enc, ev: &LoopEvent) {
    match *ev {
        LoopEvent::FaultActive { turn, time_s, kind } => {
            e.u8(0);
            e.usize(turn);
            e.f64(time_s);
            enc_fault_kind(e, &kind);
        }
        LoopEvent::RowCorrupted { turn, time_s } => {
            e.u8(1);
            e.usize(turn);
            e.f64(time_s);
        }
        LoopEvent::OutlierRejected {
            turn,
            time_s,
            measured_deg,
            held_deg,
        } => {
            e.u8(2);
            e.usize(turn);
            e.f64(time_s);
            e.f64(measured_deg);
            e.f64(held_deg);
        }
        LoopEvent::ActuationClamped {
            turn,
            time_s,
            raw_hz,
            limit_hz,
        } => {
            e.u8(3);
            e.usize(turn);
            e.f64(time_s);
            e.f64(raw_hz);
            e.f64(limit_hz);
        }
        LoopEvent::DeadlineOverrun {
            turn,
            time_s,
            budget_s,
            modeled_s,
        } => {
            e.u8(4);
            e.usize(turn);
            e.f64(time_s);
            e.f64(budget_s);
            e.f64(modeled_s);
        }
        LoopEvent::EngineDemoted {
            turn,
            time_s,
            from,
            to,
        } => {
            e.u8(5);
            e.usize(turn);
            e.f64(time_s);
            enc_engine_kind(e, &from);
            enc_engine_kind(e, &to);
        }
        LoopEvent::BeamLost {
            turn,
            time_s,
            cause,
        } => {
            e.u8(6);
            e.usize(turn);
            e.f64(time_s);
            enc_loss_cause(e, &cause);
        }
        LoopEvent::CheckpointRejected { turn, time_s } => {
            e.u8(7);
            e.usize(turn);
            e.f64(time_s);
        }
        LoopEvent::CavitySagDetected {
            turn,
            time_s,
            voltage_scale,
        } => {
            e.u8(8);
            e.usize(turn);
            e.f64(time_s);
            e.f64(voltage_scale);
        }
        LoopEvent::CompensationEngaged {
            turn,
            time_s,
            boost,
            gain_scale,
        } => {
            e.u8(9);
            e.usize(turn);
            e.f64(time_s);
            e.f64(boost);
            e.f64(gain_scale);
        }
    }
}

fn dec_event(d: &mut Dec) -> R<LoopEvent> {
    Ok(match d.u8()? {
        0 => LoopEvent::FaultActive {
            turn: d.usize()?,
            time_s: d.f64()?,
            kind: dec_fault_kind(d)?,
        },
        1 => LoopEvent::RowCorrupted {
            turn: d.usize()?,
            time_s: d.f64()?,
        },
        2 => LoopEvent::OutlierRejected {
            turn: d.usize()?,
            time_s: d.f64()?,
            measured_deg: d.f64()?,
            held_deg: d.f64()?,
        },
        3 => LoopEvent::ActuationClamped {
            turn: d.usize()?,
            time_s: d.f64()?,
            raw_hz: d.f64()?,
            limit_hz: d.f64()?,
        },
        4 => LoopEvent::DeadlineOverrun {
            turn: d.usize()?,
            time_s: d.f64()?,
            budget_s: d.f64()?,
            modeled_s: d.f64()?,
        },
        5 => LoopEvent::EngineDemoted {
            turn: d.usize()?,
            time_s: d.f64()?,
            from: dec_engine_kind(d)?,
            to: dec_engine_kind(d)?,
        },
        6 => LoopEvent::BeamLost {
            turn: d.usize()?,
            time_s: d.f64()?,
            cause: dec_loss_cause(d)?,
        },
        7 => LoopEvent::CheckpointRejected {
            turn: d.usize()?,
            time_s: d.f64()?,
        },
        8 => LoopEvent::CavitySagDetected {
            turn: d.usize()?,
            time_s: d.f64()?,
            voltage_scale: d.f64()?,
        },
        9 => LoopEvent::CompensationEngaged {
            turn: d.usize()?,
            time_s: d.f64()?,
            boost: d.f64()?,
            gain_scale: d.f64()?,
        },
        _ => return Err(CheckpointError::Malformed("event tag out of range")),
    })
}

// ---------------------------------------------------------------------------
// The snapshot itself
// ---------------------------------------------------------------------------

/// Deterministic telemetry carried across a resume: the counters and
/// histograms the loop accumulates *mid-run* (everything else is derived
/// from the trace at run end, or is wall-clock and excluded from
/// determinism comparisons anyway).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryCheckpoint {
    /// Idle (non-measuring) engine steps so far.
    pub idle_steps: u64,
    /// Modelled step wall-clock histogram (supervised runs).
    pub step_modeled: HistogramSnapshot,
    /// Deadline headroom histogram (supervised runs).
    pub deadline_headroom: HistogramSnapshot,
}

/// The complete mutable state of one closed-loop run at a row boundary.
///
/// Everything needed to continue the loop bit-identically, *except*
/// configuration (scenario, fault program, kernel programs), which is
/// rebuilt on resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Row index (trace rows emitted so far) at the cut.
    pub turn: u64,
    /// Engine time at the cut, seconds.
    pub time_s: f64,
    /// True when written by a supervised run.
    pub supervised: bool,
    /// The engine fidelity *currently running* (after any demotions).
    pub kind: EngineKind,
    /// Bunch count of the trace rows.
    pub bunches: u32,
    /// Full engine state.
    pub engine: EngineState,
    /// Controller + DC-blocker + FIR + decimation state.
    pub controller: ControllerState,
    /// Fault injector RNG cursor and activation latches.
    pub injector: FaultInjectorState,
    /// Supervisor state (supervised runs only).
    pub supervisor: Option<SupervisorState>,
    /// Supervised-loop accumulated control phase mirror, radians.
    pub ctrl_phase_rad: f64,
    /// Last applied jump offset seen by the edge detector, degrees.
    pub last_jump_deg: f64,
    /// Trace rows covered by the log cut.
    pub rows: u64,
    /// Audit events covered by the log cut.
    pub events: u64,
    /// Jump edges covered by the log cut.
    pub jumps: u64,
    /// Byte length of `trace.log` at the cut.
    pub log_bytes: u64,
    /// Mid-run deterministic telemetry, when telemetry is attached.
    pub telemetry: Option<TelemetryCheckpoint>,
}

/// Encode a snapshot into the framed on-disk representation
/// (magic + version + length + payload + CRC-32).
pub fn encode_snapshot(ck: &Checkpoint) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(ck.turn);
    e.f64(ck.time_s);
    e.bool(ck.supervised);
    enc_engine_kind(&mut e, &ck.kind);
    e.u32(ck.bunches);
    enc_engine_state(&mut e, &ck.engine);
    enc_controller(&mut e, &ck.controller);
    enc_injector(&mut e, &ck.injector);
    e.opt(&ck.supervisor.clone(), enc_supervisor);
    e.f64(ck.ctrl_phase_rad);
    e.f64(ck.last_jump_deg);
    e.u64(ck.rows);
    e.u64(ck.events);
    e.u64(ck.jumps);
    e.u64(ck.log_bytes);
    e.opt(&ck.telemetry.clone(), |e, t| {
        e.u64(t.idle_steps);
        enc_histogram(e, &t.step_modeled);
        enc_histogram(e, &t.deadline_headroom);
    });
    let payload = e.buf;

    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a framed snapshot. Every failure mode of a torn, truncated,
/// bit-rotted or hostile file maps to a typed [`CheckpointError`]; this
/// function never panics on arbitrary input.
pub fn decode_snapshot(data: &[u8]) -> R<Checkpoint> {
    const HEADER: usize = 8 + 4 + 8;
    if data.len() < HEADER + 4 {
        return Err(CheckpointError::TooShort);
    }
    if data[..8] != SNAPSHOT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let payload_len = u64::from_le_bytes(data[12..20].try_into().unwrap());
    let expected = (HEADER as u64)
        .checked_add(payload_len)
        .and_then(|v| v.checked_add(4));
    if expected != Some(data.len() as u64) {
        return Err(CheckpointError::LengthMismatch);
    }
    let payload = &data[HEADER..HEADER + payload_len as usize];
    let crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(payload) != crc {
        return Err(CheckpointError::CrcMismatch);
    }

    let mut d = Dec::new(payload);
    let ck = Checkpoint {
        turn: d.u64()?,
        time_s: d.f64()?,
        supervised: d.bool()?,
        kind: dec_engine_kind(&mut d)?,
        bunches: d.u32()?,
        engine: dec_engine_state(&mut d)?,
        controller: dec_controller(&mut d)?,
        injector: dec_injector(&mut d)?,
        supervisor: d.opt(dec_supervisor)?,
        ctrl_phase_rad: d.f64()?,
        last_jump_deg: d.f64()?,
        rows: d.u64()?,
        events: d.u64()?,
        jumps: d.u64()?,
        log_bytes: d.u64()?,
        telemetry: d.opt(|d| {
            Ok(TelemetryCheckpoint {
                idle_steps: d.u64()?,
                step_modeled: dec_histogram(d)?,
                deadline_headroom: dec_histogram(d)?,
            })
        })?,
    };
    d.finish()?;
    Ok(ck)
}

// ---------------------------------------------------------------------------
// Trace-log delta blocks
// ---------------------------------------------------------------------------

pub(crate) fn encode_trace_block(
    trace: &LoopTrace,
    rows_from: usize,
    events_from: usize,
    jumps_from: usize,
) -> Vec<u8> {
    let bunches = trace.bunch_phase_deg.len();
    let rows_to = trace.times.len();
    let mut e = Enc::default();
    e.u32(bunches as u32);
    e.u32((rows_to - rows_from) as u32);
    for row in rows_from..rows_to {
        e.f64(trace.times[row]);
        for b in 0..bunches {
            e.f64(trace.bunch_phase_deg[b][row]);
        }
        e.f64(trace.mean_phase_deg[row]);
        e.f64(trace.control_hz[row]);
    }
    e.u32((trace.events.len() - events_from) as u32);
    for ev in &trace.events[events_from..] {
        enc_event(&mut e, ev);
    }
    e.u32((trace.jump_times.len() - jumps_from) as u32);
    for &t in &trace.jump_times[jumps_from..] {
        e.f64(t);
    }
    frame_block(BLOCK_MAGIC, &e.buf)
}

/// Trace prefix reconstructed from the write-ahead log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecodedTrace {
    /// Row times, seconds.
    pub times: Vec<f64>,
    /// Per-bunch phase series, `[bunch][row]`.
    pub bunch_phase_deg: Vec<Vec<f64>>,
    /// Pickup-average series.
    pub mean_phase_deg: Vec<f64>,
    /// Actuation series, Hz.
    pub control_hz: Vec<f64>,
    /// Jump-edge times.
    pub jump_times: Vec<f64>,
    /// Audit events.
    pub events: Vec<LoopEvent>,
}

/// Decode the framed delta blocks in a trace-log prefix. Used by recovery
/// (and directly by the fuzz tests).
pub fn decode_trace_log(bytes: &[u8]) -> R<DecodedTrace> {
    let mut out = DecodedTrace::default();
    let mut pos = 0usize;
    while let Some((payload, next)) = next_frame(bytes, pos, BLOCK_MAGIC)? {
        decode_trace_block(payload, &mut out)?;
        pos = next;
    }
    Ok(out)
}

fn decode_trace_block(payload: &[u8], out: &mut DecodedTrace) -> R<()> {
    let mut d = Dec::new(payload);
    let bunches = d.u32()? as usize;
    if out.bunch_phase_deg.is_empty() {
        out.bunch_phase_deg = vec![Vec::new(); bunches];
    } else if out.bunch_phase_deg.len() != bunches {
        return Err(CheckpointError::Malformed(
            "bunch count changed across blocks",
        ));
    }
    let n_rows = d.u32()? as usize;
    let row_bytes = 8usize.saturating_mul(bunches + 3);
    if n_rows.saturating_mul(row_bytes) > d.remaining() {
        return Err(CheckpointError::Malformed("row count exceeds payload"));
    }
    for _ in 0..n_rows {
        out.times.push(d.f64()?);
        for series in out.bunch_phase_deg.iter_mut() {
            series.push(d.f64()?);
        }
        out.mean_phase_deg.push(d.f64()?);
        out.control_hz.push(d.f64()?);
    }
    let n_events = d.u32()? as usize;
    if n_events.saturating_mul(9) > d.remaining() {
        return Err(CheckpointError::Malformed("event count exceeds payload"));
    }
    for _ in 0..n_events {
        out.events.push(dec_event(&mut d)?);
    }
    let n_jumps = d.u32()? as usize;
    if n_jumps.saturating_mul(8) > d.remaining() {
        return Err(CheckpointError::Malformed("jump count exceeds payload"));
    }
    for _ in 0..n_jumps {
        out.jump_times.push(d.f64()?);
    }
    d.finish()
}

// ---------------------------------------------------------------------------
// File-level helpers
// ---------------------------------------------------------------------------

/// Write a snapshot atomically: temp file in the same directory, then
/// rename over the final name. A crash mid-write leaves either the old
/// file set or a stray temp file — never a half-written `ckpt_*.cil`.
pub fn write_snapshot_file(dir: &Path, ck: &Checkpoint) -> R<PathBuf> {
    write_snapshot_file_opts(dir, ck, false)
}

/// [`write_snapshot_file`] with an explicit durability choice: when `fsync`
/// is set the temp file is synced to stable storage *before* the rename, so
/// the rename can never promote data the disk has not yet seen.
pub fn write_snapshot_file_opts(dir: &Path, ck: &Checkpoint, fsync: bool) -> R<PathBuf> {
    let bytes = encode_snapshot(ck);
    let tmp = dir.join(".ckpt.tmp");
    let path = dir.join(format!("ckpt_{:010}.cil", ck.turn));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        if fsync {
            f.sync_all()?;
        }
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Read and decode one snapshot file.
pub fn read_snapshot_file(path: &Path) -> R<Checkpoint> {
    let bytes = fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Turn indices of the snapshots present in a checkpoint directory,
/// ascending. Files that do not match the `ckpt_<turn>.cil` pattern are
/// ignored.
pub fn snapshot_turns(dir: &Path) -> R<Vec<u64>> {
    let mut turns = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix("ckpt_")
            .and_then(|s| s.strip_suffix(".cil"))
        {
            if let Ok(turn) = stem.parse::<u64>() {
                turns.push(turn);
            }
        }
    }
    turns.sort_unstable();
    Ok(turns)
}

fn snapshot_path(dir: &Path, turn: u64) -> PathBuf {
    dir.join(format!("ckpt_{turn:010}.cil"))
}

// ---------------------------------------------------------------------------
// Checkpoint configuration + live session
// ---------------------------------------------------------------------------

/// Where and how often the harness checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Directory for `trace.log` and the rolling snapshots (created on
    /// first use).
    pub dir: PathBuf,
    /// Snapshot cadence, trace rows. Default 256.
    pub every_turns: usize,
    /// Snapshots retained on disk. Default 2 — keeping at least two means
    /// a corrupted newest snapshot still leaves a good fallback.
    pub keep: usize,
    /// Sync file contents to stable storage before the snapshot rename and
    /// after every WAL append. Default `false`: without fsync a crash of the
    /// *process* (panic, SIGKILL) still leaves a consistent directory because
    /// all writes are atomic-rename or CRC-framed appends, but a crash of the
    /// *machine* may lose recently buffered blocks. Benches keep the default;
    /// chaos tests that assert durability under real kill opt in.
    pub fsync: bool,
}

impl CheckpointConfig {
    /// Default cadence (256 rows) and retention (2 snapshots) in `dir`,
    /// fsync off.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_turns: 256,
            keep: 2,
            fsync: false,
        }
    }

    /// Reject misconfiguration as a typed error instead of silently
    /// clamping: a cadence of 0 rows or a retention of 0 snapshots is
    /// meaningless (the session-level `.max(1)` clamps remain as a last
    /// line of defence for states decoded from disk). Called by every
    /// harness entry point that honours a checkpoint configuration.
    pub fn validate(&self) -> Result<(), crate::error::CilError> {
        if self.every_turns == 0 {
            return Err(crate::error::CilError::InvalidConfig(
                "checkpoint cadence (every_turns) must be >= 1 row".into(),
            ));
        }
        if self.keep == 0 {
            return Err(crate::error::CilError::InvalidConfig(
                "checkpoint retention (keep) must be >= 1 snapshot".into(),
            ));
        }
        Ok(())
    }
}

/// What [`CheckpointSession::resume`] recovered from disk.
pub(crate) struct ResumedState {
    /// The live session, positioned to continue appending.
    pub session: CheckpointSession,
    /// The chosen (newest good) snapshot.
    pub checkpoint: Checkpoint,
    /// Trace prefix covered by the snapshot's cut.
    pub trace: DecodedTrace,
    /// Snapshots newer than the chosen one that were rejected as
    /// corrupted/truncated/incompatible-with-their-log.
    pub rejected: usize,
}

/// Live checkpoint writer for one run.
pub(crate) struct CheckpointSession {
    dir: PathBuf,
    every_turns: usize,
    keep: usize,
    fsync: bool,
    log: File,
    log_bytes: u64,
    rows_flushed: usize,
    events_flushed: usize,
    jumps_flushed: usize,
    /// Turns of snapshots currently on disk, ascending.
    snapshots: Vec<u64>,
    /// First write failure; checkpointing is disabled once set and the
    /// error is surfaced after the loop completes.
    pub(crate) error: Option<CheckpointError>,
}

impl CheckpointSession {
    /// Start a fresh session: create the directory, delete stale
    /// snapshots, truncate the trace log.
    pub(crate) fn begin(cfg: &CheckpointConfig) -> R<Self> {
        fs::create_dir_all(&cfg.dir)?;
        for turn in snapshot_turns(&cfg.dir)? {
            let _ = fs::remove_file(snapshot_path(&cfg.dir, turn));
        }
        let _ = fs::remove_file(cfg.dir.join(".ckpt.tmp"));
        let log = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(cfg.dir.join(TRACE_LOG_NAME))?;
        Ok(Self {
            dir: cfg.dir.clone(),
            every_turns: cfg.every_turns.max(1),
            keep: cfg.keep.max(1),
            fsync: cfg.fsync,
            log,
            log_bytes: 0,
            rows_flushed: 0,
            events_flushed: 0,
            jumps_flushed: 0,
            snapshots: Vec::new(),
            error: None,
        })
    }

    /// Recover from the newest usable snapshot in `cfg.dir`.
    ///
    /// Snapshots are tried newest-first. One that fails to decode, or
    /// whose trace-log cut cannot be satisfied (log shorter than the cut,
    /// or the prefix fails CRC / structural validation, or the decoded
    /// prefix disagrees with the snapshot's row/event/jump totals), is
    /// rejected and the next older one is tried. The trace log is then
    /// truncated to the chosen cut, discarding any torn tail.
    pub(crate) fn resume(cfg: &CheckpointConfig) -> R<ResumedState> {
        let turns = snapshot_turns(&cfg.dir)?;
        if turns.is_empty() {
            return Err(CheckpointError::NoCheckpoint);
        }
        let log_path = cfg.dir.join(TRACE_LOG_NAME);
        let log_all = fs::read(&log_path)?;

        let mut rejected = 0usize;
        let mut chosen: Option<(Checkpoint, DecodedTrace)> = None;
        for &turn in turns.iter().rev() {
            match Self::try_load(&cfg.dir, turn, &log_all) {
                Ok(pair) => {
                    chosen = Some(pair);
                    break;
                }
                Err(_) => rejected += 1,
            }
        }
        let Some((checkpoint, trace)) = chosen else {
            return Err(CheckpointError::NoCheckpoint);
        };

        // Truncate the log to the chosen cut and position for appending.
        let mut log = OpenOptions::new().write(true).open(&log_path)?;
        log.set_len(checkpoint.log_bytes)?;
        log.seek(SeekFrom::End(0))?;

        // Drop snapshots newer than the chosen one: they are corrupt, and
        // leaving them around would shadow the good one on the next
        // resume.
        let mut kept = Vec::new();
        for &turn in &turns {
            if turn > checkpoint.turn {
                let _ = fs::remove_file(snapshot_path(&cfg.dir, turn));
            } else {
                kept.push(turn);
            }
        }

        let session = Self {
            dir: cfg.dir.clone(),
            every_turns: cfg.every_turns.max(1),
            keep: cfg.keep.max(1),
            fsync: cfg.fsync,
            log,
            log_bytes: checkpoint.log_bytes,
            rows_flushed: checkpoint.rows as usize,
            events_flushed: checkpoint.events as usize,
            jumps_flushed: checkpoint.jumps as usize,
            snapshots: kept,
            error: None,
        };
        Ok(ResumedState {
            session,
            checkpoint,
            trace,
            rejected,
        })
    }

    fn try_load(dir: &Path, turn: u64, log_all: &[u8]) -> R<(Checkpoint, DecodedTrace)> {
        let ck = read_snapshot_file(&snapshot_path(dir, turn))?;
        let cut = usize::try_from(ck.log_bytes).map_err(|_| CheckpointError::LengthMismatch)?;
        if cut > log_all.len() {
            return Err(CheckpointError::LengthMismatch);
        }
        let trace = decode_trace_log(&log_all[..cut])?;
        if trace.times.len() as u64 != ck.rows
            || trace.events.len() as u64 != ck.events
            || trace.jump_times.len() as u64 != ck.jumps
        {
            return Err(CheckpointError::Malformed(
                "log prefix disagrees with snapshot cut",
            ));
        }
        Ok((ck, trace))
    }

    /// Measured rows the loop may still record, from a trace currently
    /// `rows` long, before a checkpoint falls due. The harness arms its
    /// checkpoint event this many rows ahead, and the event queue's horizon
    /// caps engine step blocks so the event can only fire on a block's last
    /// row — the engine is then exactly at the row being snapshotted.
    /// `usize::MAX` once checkpointing is disabled by a latched error.
    pub(crate) fn rows_until_due(&self, rows: usize) -> usize {
        if self.error.is_some() {
            return usize::MAX;
        }
        let floor = rows.max(self.rows_flushed);
        (floor / self.every_turns + 1) * self.every_turns - rows
    }

    /// Append the trace delta and write a rolling snapshot. `make` builds
    /// the state snapshot; the session fills in the log-cut counters.
    /// Errors are latched into `self.error` (checkpointing stops; the loop
    /// itself continues and the error surfaces after the run).
    pub(crate) fn checkpoint(&mut self, trace: &LoopTrace, make: impl FnOnce() -> Checkpoint) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.checkpoint_inner(trace, make) {
            self.error = Some(e);
        }
    }

    fn checkpoint_inner(&mut self, trace: &LoopTrace, make: impl FnOnce() -> Checkpoint) -> R<()> {
        let block = encode_trace_block(
            trace,
            self.rows_flushed,
            self.events_flushed,
            self.jumps_flushed,
        );
        self.log.write_all(&block)?;
        if self.fsync {
            self.log.sync_data()?;
        }
        self.log_bytes += block.len() as u64;
        self.rows_flushed = trace.times.len();
        self.events_flushed = trace.events.len();
        self.jumps_flushed = trace.jump_times.len();

        let mut ck = make();
        ck.turn = self.rows_flushed as u64;
        ck.rows = self.rows_flushed as u64;
        ck.events = self.events_flushed as u64;
        ck.jumps = self.jumps_flushed as u64;
        ck.log_bytes = self.log_bytes;
        write_snapshot_file_opts(&self.dir, &ck, self.fsync)?;
        self.snapshots.push(ck.turn);

        while self.snapshots.len() > self.keep {
            let old = self.snapshots.remove(0);
            let _ = fs::remove_file(snapshot_path(&self.dir, old));
        }
        Ok(())
    }

    /// Surface any latched write failure at the end of the run.
    pub(crate) fn into_result(self) -> R<()> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            turn: 512,
            time_s: 6.4e-4,
            supervised: true,
            kind: EngineKind::RefTrack {
                particles: 64,
                seed: 9,
            },
            bunches: 2,
            engine: EngineState::RefTrack(RefTrackEngineState {
                dt: vec![1e-9, -2e-9],
                dgamma: vec![1e-6, -1e-6],
                tracker_turn: 512,
                turn: TurnStateSnapshot {
                    time: 6.4e-4,
                    ctrl_phase_rad: 0.25,
                    applied_jump_deg: 8.0,
                    cavity: CavityPlantState {
                        boost: 1.5,
                        phase_rad: 0.01,
                    },
                },
            }),
            controller: ControllerState {
                dc_x1: 0.5,
                dc_y1: -0.25,
                fir: FirState {
                    delay: vec![0.0, 1.0, 2.0],
                    cursor: 1,
                },
                acc: 1.5,
                acc_n: 3,
                last_output: -120.0,
                enabled: true,
                gain_scale: 1.25,
            },
            injector: FaultInjectorState {
                rng: 0xDEAD_BEEF,
                activated: vec![true, false],
                corrupted_rows: 7,
            },
            supervisor: Some(SupervisorState {
                rng: 42,
                last_good: Some(1.25),
                bad_streak: 2,
                calibration: Some(StepCalibration {
                    kind: EngineKind::Cgra,
                    step_seconds: 3.2e-6,
                }),
                boost: 1.5,
                gain_scale: 1.0,
                sag_latched: true,
            }),
            ctrl_phase_rad: 0.25,
            last_jump_deg: 8.0,
            rows: 512,
            events: 3,
            jumps: 1,
            log_bytes: 9000,
            telemetry: Some(TelemetryCheckpoint {
                idle_steps: 11,
                step_modeled: HistogramSnapshot {
                    buckets: vec![0; crate::telemetry::HISTOGRAM_BUCKETS],
                    count: 0,
                    sum: 0.0,
                },
                deadline_headroom: HistogramSnapshot {
                    buckets: vec![1; crate::telemetry::HISTOGRAM_BUCKETS],
                    count: 64,
                    sum: 0.125,
                },
            }),
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let ck = sample_checkpoint();
        let bytes = encode_snapshot(&ck);
        let back = decode_snapshot(&bytes).expect("roundtrip");
        assert_eq!(back, ck);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let bytes = encode_snapshot(&sample_checkpoint());
        for cut in [0, 7, 19, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::TooShort | CheckpointError::LengthMismatch
                ),
                "cut {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_crc() {
        let mut bytes = encode_snapshot(&sample_checkpoint());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&bytes).unwrap_err(),
            CheckpointError::CrcMismatch
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = encode_snapshot(&sample_checkpoint());
        bytes[8] = 0xFE;
        assert!(matches!(
            decode_snapshot(&bytes).unwrap_err(),
            CheckpointError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn trace_block_roundtrips() {
        let trace = LoopTrace {
            times: vec![0.0, 1.0, 2.0],
            bunch_phase_deg: vec![vec![0.1, 0.2, 0.3], vec![-0.1, -0.2, -0.3]],
            mean_phase_deg: vec![0.0, 0.0, 0.0],
            control_hz: vec![5.0, -5.0, 0.0],
            jump_times: vec![0.5],
            events: vec![LoopEvent::RowCorrupted {
                turn: 1,
                time_s: 1.0,
            }],
            outcome: crate::fault::LoopOutcome::Survived,
        };
        let mut log = encode_trace_block(&trace, 0, 0, 0);
        // Second delta: nothing new — an empty block must decode cleanly.
        log.extend_from_slice(&encode_trace_block(&trace, 3, 1, 1));
        let back = decode_trace_log(&log).expect("decode");
        assert_eq!(back.times, trace.times);
        assert_eq!(back.bunch_phase_deg, trace.bunch_phase_deg);
        assert_eq!(back.events, trace.events);
        assert_eq!(back.jump_times, trace.jump_times);
    }

    #[test]
    fn huge_declared_length_does_not_allocate() {
        // A payload declaring a 2^60-element vector must fail cleanly,
        // not attempt the allocation.
        let mut e = Enc::default();
        e.u64(1u64 << 60);
        let mut d = Dec::new(&e.buf);
        assert!(d.f64s().is_err());
    }
}
