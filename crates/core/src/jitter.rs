//! Output-timing jitter models (the Section I motivation).
//!
//! "After several investigations, we decided that a pure software based
//! solution … is not feasible. In principle it could be fast enough, but
//! the time jitter induced by the microarchitecture and the interfacing to
//! the sensors was too high."
//!
//! We model the distribution of the *output-pulse timing error* for three
//! implementations of the same per-revolution computation:
//!
//! * CGRA/FPGA path: fully deterministic pipeline; the only error is the
//!   quantisation of the trigger instant to the 250 MHz sample grid
//!   (uniform within ±2 ns).
//! * Real-time-tuned software (kernel-bypass, pinned cores): Gaussian
//!   microarchitectural noise (caches, DRAM, SMIs) of a few hundred ns.
//! * General-purpose OS loop: the same plus a heavy scheduling tail
//!   (log-normal, tens of µs) — occasional timer/softirq preemption.
//!
//! The distributions are synthetic but parameterised on published
//! cyclictest-class figures; the *comparison* (deterministic grid-bounded
//! vs unbounded-tail) is the paper's point, and the experiment M1 scores it
//! against the 0.7 µs revolution budget.

use rand::Rng;

/// An implementation whose output timing we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Implementation {
    /// The CGRA-based simulator (the paper's system).
    CgraFpga,
    /// A tuned real-time software loop (PREEMPT_RT-class).
    RealtimeSoftware,
    /// A general-purpose OS userspace loop.
    GeneralPurposeSoftware,
}

/// Jitter model parameters for one implementation.
#[derive(Debug, Clone, Copy)]
pub struct JitterModel {
    /// Which implementation this models.
    pub implementation: Implementation,
    /// Half-width of the uniform quantisation component, seconds.
    pub quantisation_half_width: f64,
    /// RMS of the Gaussian noise component, seconds.
    pub gaussian_rms: f64,
    /// Log-normal tail: probability per event that a scheduling stall hits.
    pub tail_probability: f64,
    /// Median of the stall magnitude, seconds.
    pub tail_median: f64,
    /// Log-normal sigma (in ln-space) of the stall magnitude.
    pub tail_sigma: f64,
}

impl JitterModel {
    /// Model for an implementation.
    pub fn for_implementation(imp: Implementation) -> Self {
        match imp {
            Implementation::CgraFpga => Self {
                implementation: imp,
                // ±half a 250 MHz sample: the trigger rounds to the grid.
                quantisation_half_width: 2e-9,
                gaussian_rms: 0.0,
                tail_probability: 0.0,
                tail_median: 0.0,
                tail_sigma: 0.0,
            },
            Implementation::RealtimeSoftware => Self {
                implementation: imp,
                quantisation_half_width: 0.0,
                gaussian_rms: 300e-9,
                tail_probability: 1e-4,
                tail_median: 5e-6,
                tail_sigma: 0.5,
            },
            Implementation::GeneralPurposeSoftware => Self {
                implementation: imp,
                quantisation_half_width: 0.0,
                gaussian_rms: 1.5e-6,
                tail_probability: 5e-3,
                tail_median: 30e-6,
                tail_sigma: 1.0,
            },
        }
    }

    /// Draw one output-timing error (seconds, absolute value is the lateness
    /// magnitude; quantisation can be early or late).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let mut e = 0.0;
        if self.quantisation_half_width > 0.0 {
            e += rng.gen_range(-self.quantisation_half_width..self.quantisation_half_width);
        }
        if self.gaussian_rms > 0.0 {
            e += gauss(rng) * self.gaussian_rms;
        }
        if self.tail_probability > 0.0 && rng.gen::<f64>() < self.tail_probability {
            // Log-normal stall, always late.
            let z = gauss(rng);
            e += self.tail_median * (self.tail_sigma * z).exp();
        }
        e
    }

    /// Summarise `n` draws: (rms, p999 |error|, worst |error|).
    pub fn summarize<R: Rng>(&self, n: usize, rng: &mut R) -> JitterSummary {
        assert!(n >= 1000);
        let mut errs: Vec<f64> = (0..n).map(|_| self.sample(rng).abs()).collect();
        errs.sort_by(|a, b| a.total_cmp(b));
        let rms = (errs.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        JitterSummary {
            implementation: self.implementation,
            rms,
            p999: errs[(n as f64 * 0.999) as usize],
            worst: errs[n - 1],
        }
    }
}

/// Jitter statistics of one implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterSummary {
    /// Which implementation.
    pub implementation: Implementation,
    /// RMS timing error, seconds.
    pub rms: f64,
    /// 99.9th percentile |error|.
    pub p999: f64,
    /// Worst observed |error|.
    pub worst: f64,
}

impl JitterSummary {
    /// Hard-real-time verdict against a deadline budget: the worst-case
    /// error must stay below `budget` (e.g. a fraction of T_R ≈ 0.7 µs).
    pub fn meets_budget(&self, budget: f64) -> bool {
        self.worst < budget
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn summary(imp: Implementation) -> JitterSummary {
        let mut rng = StdRng::seed_from_u64(1234);
        JitterModel::for_implementation(imp).summarize(200_000, &mut rng)
    }

    #[test]
    fn cgra_jitter_bounded_by_sample_grid() {
        let s = summary(Implementation::CgraFpga);
        assert!(s.worst <= 2e-9, "worst {}", s.worst);
        // Uniform ±2 ns → RMS = 2/√3 ns.
        assert!(
            (s.rms - 2e-9 / 3.0f64.sqrt()).abs() < 0.1e-9,
            "rms {}",
            s.rms
        );
    }

    #[test]
    fn software_has_heavy_tail() {
        let s = summary(Implementation::GeneralPurposeSoftware);
        assert!(s.p999 > 10e-6, "p999 {}", s.p999);
        assert!(s.worst > s.rms * 5.0, "tail dominates worst case");
    }

    #[test]
    fn ordering_matches_motivation() {
        let cgra = summary(Implementation::CgraFpga);
        let rt = summary(Implementation::RealtimeSoftware);
        let gp = summary(Implementation::GeneralPurposeSoftware);
        assert!(cgra.rms < rt.rms && rt.rms < gp.rms);
        assert!(cgra.worst < rt.worst && rt.worst < gp.worst);
    }

    #[test]
    fn only_cgra_meets_sub_revolution_budget() {
        // Budget: 1% of the minimum revolution time (0.7 µs) = 7 ns.
        let budget = 7e-9;
        assert!(summary(Implementation::CgraFpga).meets_budget(budget));
        assert!(!summary(Implementation::RealtimeSoftware).meets_budget(budget));
        assert!(!summary(Implementation::GeneralPurposeSoftware).meets_budget(budget));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = JitterModel::for_implementation(Implementation::GeneralPurposeSoftware);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
