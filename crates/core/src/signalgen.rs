//! Signal generation side of the test bench (Fig. 4).
//!
//! Three synchronised DDS modules generate the RF signals; the phase jump is
//! injected into the gap DDS through an AWG → CEL (optical) path with a
//! fixed latency; the beam-phase controller additionally trims the gap DDS
//! frequency. This module bundles those sources into a [`SignalBench`]
//! producing one (reference, gap) voltage pair per system-clock sample.

use cil_dsp::dds::Dds;
use serde::{Deserialize, Serialize};

/// The phase-jump program of the evaluation: the AWG toggles a phase offset
/// on and off at a fixed interval ("The phase jump was toggled every
/// twentieth of a second", amplitude 8°).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseJumpProgram {
    /// Jump amplitude, degrees (8° in the test setup, 10° in the MDE).
    pub amplitude_deg: f64,
    /// Toggle interval, seconds (0.05 s).
    pub interval_s: f64,
    /// CEL/optical-path latency between command and effect, seconds.
    pub path_latency_s: f64,
}

impl PhaseJumpProgram {
    /// The evaluation's program: 8° every 0.05 s, ~200 ns optical path.
    pub fn evaluation_default() -> Self {
        Self {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: 200e-9,
        }
    }

    /// Phase offset (degrees) in effect at time `t` (seconds).
    pub fn offset_deg_at(&self, t: f64) -> f64 {
        let t_eff = t - self.path_latency_s;
        if t_eff < 0.0 {
            return 0.0;
        }
        let phase_idx = (t_eff / self.interval_s) as u64;
        if phase_idx % 2 == 1 {
            self.amplitude_deg
        } else {
            0.0
        }
    }

    /// Time of the next toggle edge strictly after `t`.
    pub fn next_toggle_after(&self, t: f64) -> f64 {
        let t_eff = (t - self.path_latency_s).max(0.0);
        let idx = (t_eff / self.interval_s).floor() + 1.0;
        idx * self.interval_s + self.path_latency_s
    }
}

/// The synchronised signal bench: reference DDS at f_rev, gap DDS at
/// h·f_rev, a jump program and a controller-driven frequency trim.
#[derive(Debug, Clone)]
pub struct SignalBench {
    /// Reference DDS (undisturbed, "follows the revolution frequency set
    /// values in an undisturbed way").
    pub reference: Dds,
    /// Gap DDS (receives jumps and control action).
    pub gap: Dds,
    /// The AWG jump program.
    pub jumps: PhaseJumpProgram,
    /// Harmonic number h.
    pub harmonic: u32,
    sample_rate: f64,
    sample: u64,
    /// Currently applied jump offset (deg) so that toggles are edges.
    applied_jump_deg: f64,
    /// Controller frequency trim currently applied to the gap DDS, Hz.
    ctrl_freq_offset: f64,
    base_gap_freq: f64,
    base_gap_amp: f64,
    /// Cavity voltage scale in force (fault collapse × compensation boost).
    cavity_scale: f64,
    /// Cavity detune currently shifting the gap DDS, Hz.
    cavity_detune_hz: f64,
}

impl SignalBench {
    /// New bench at revolution frequency `f_rev`, harmonic `h`, given DDS
    /// amplitudes (volts at the ADC inputs).
    pub fn new(
        sample_rate: f64,
        f_rev: f64,
        harmonic: u32,
        amp_ref: f64,
        amp_gap: f64,
        jumps: PhaseJumpProgram,
    ) -> Self {
        let mut reference = Dds::standard(sample_rate);
        reference.set_frequency(f_rev);
        reference.set_amplitude(amp_ref);
        let mut gap = Dds::standard(sample_rate);
        let f_gap = f_rev * f64::from(harmonic);
        gap.set_frequency(f_gap);
        gap.set_amplitude(amp_gap);
        // Synchronised reset (the mini control system of Fig. 4).
        reference.sync_reset();
        gap.sync_reset();
        Self {
            reference,
            gap,
            jumps,
            harmonic,
            sample_rate,
            sample: 0,
            applied_jump_deg: 0.0,
            ctrl_freq_offset: 0.0,
            base_gap_freq: f_gap,
            base_gap_amp: amp_gap,
            cavity_scale: 1.0,
            cavity_detune_hz: 0.0,
        }
    }

    /// Apply a controller frequency trim (Hz at the gap/RF frequency).
    pub fn set_control_frequency_offset(&mut self, df: f64) {
        if df != self.ctrl_freq_offset {
            self.ctrl_freq_offset = df;
            self.apply_gap_frequency();
        }
    }

    /// Currently applied controller trim, Hz.
    pub fn control_frequency_offset(&self) -> f64 {
        self.ctrl_freq_offset
    }

    /// Cavity plant command: scale the gap amplitude (fault collapse ×
    /// compensation boost) and detune the gap DDS. Edge-applied so an
    /// unchanged command leaves the DDS untouched; a healthy plant
    /// (`scale = 1`, `detune = 0`) never perturbs the fault-free signal.
    pub fn set_cavity(&mut self, scale: f64, detune_hz: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "cavity scale {scale}");
        assert!(detune_hz.is_finite(), "cavity detune {detune_hz}");
        if scale != self.cavity_scale {
            self.cavity_scale = scale;
            self.gap.set_amplitude(self.base_gap_amp * scale);
        }
        if detune_hz != self.cavity_detune_hz {
            self.cavity_detune_hz = detune_hz;
            self.apply_gap_frequency();
        }
    }

    fn apply_gap_frequency(&mut self) {
        self.gap.set_frequency(
            (self.base_gap_freq + self.ctrl_freq_offset + self.cavity_detune_hz).max(0.0),
        );
    }

    /// Produce the next (reference, gap) sample pair.
    pub fn tick(&mut self) -> (f64, f64) {
        let t = self.sample as f64 / self.sample_rate;
        self.sample += 1;
        // Edge-apply jump program changes.
        let want = self.jumps.offset_deg_at(t);
        if want != self.applied_jump_deg {
            self.gap.jump_phase_deg(want - self.applied_jump_deg);
            self.applied_jump_deg = want;
        }
        (self.reference.tick(), self.gap.tick())
    }

    /// Current bench time, seconds.
    pub fn time(&self) -> f64 {
        self.sample as f64 / self.sample_rate
    }

    /// Currently applied jump offset (degrees).
    pub fn applied_jump_deg(&self) -> f64 {
        self.applied_jump_deg
    }

    /// Snapshot the bench's dynamic state (DDS phase accumulators, sample
    /// clock, edge-applied jump offset, controller trim). The jump program,
    /// harmonic and amplitudes are configuration and are rebuilt.
    pub fn state(&self) -> SignalBenchState {
        SignalBenchState {
            reference: self.reference.state(),
            gap: self.gap.state(),
            sample: self.sample,
            applied_jump_deg: self.applied_jump_deg,
            ctrl_freq_offset: self.ctrl_freq_offset,
            cavity_scale: self.cavity_scale,
            cavity_detune_hz: self.cavity_detune_hz,
        }
    }

    /// Restore a state captured by [`Self::state`]. Writes the DDS states
    /// directly (including the gap increment, which already carries the
    /// controller trim), so `ctrl_freq_offset` is set without re-deriving
    /// the gap frequency.
    pub fn restore(&mut self, state: &SignalBenchState) {
        self.reference.restore(&state.reference);
        self.gap.restore(&state.gap);
        self.sample = state.sample;
        self.applied_jump_deg = state.applied_jump_deg;
        self.ctrl_freq_offset = state.ctrl_freq_offset;
        self.cavity_scale = state.cavity_scale;
        self.cavity_detune_hz = state.cavity_detune_hz;
    }
}

/// Checkpointable state of a [`SignalBench`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalBenchState {
    /// Reference DDS state.
    pub reference: cil_dsp::dds::DdsState,
    /// Gap DDS state (its increment carries the controller trim).
    pub gap: cil_dsp::dds::DdsState,
    /// Sample clock.
    pub sample: u64,
    /// Edge-applied jump offset, degrees.
    pub applied_jump_deg: f64,
    /// Controller frequency trim in force, Hz.
    pub ctrl_freq_offset: f64,
    /// Cavity voltage scale in force (1.0 = healthy plant).
    pub cavity_scale: f64,
    /// Cavity detune in force, Hz (0.0 = on tune).
    pub cavity_detune_hz: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_program_toggles_every_interval() {
        let p = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: 0.0,
        };
        assert_eq!(p.offset_deg_at(0.01), 0.0);
        assert_eq!(p.offset_deg_at(0.06), 8.0);
        assert_eq!(p.offset_deg_at(0.11), 0.0);
        assert_eq!(p.offset_deg_at(0.16), 8.0);
    }

    #[test]
    fn path_latency_delays_effect() {
        let p = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: 1e-3,
        };
        assert_eq!(p.offset_deg_at(0.0505), 0.0, "before optical path delivers");
        assert_eq!(p.offset_deg_at(0.052), 8.0);
    }

    #[test]
    fn next_toggle_is_strictly_future() {
        let p = PhaseJumpProgram::evaluation_default();
        let t = p.next_toggle_after(0.0);
        assert!(t > 0.0 && t <= 0.051);
        let t2 = p.next_toggle_after(t);
        assert!((t2 - t - 0.05).abs() < 1e-9);
    }

    #[test]
    fn bench_produces_harmonic_pair() {
        let mut bench = SignalBench::new(
            250e6,
            800e3,
            4,
            0.5,
            0.5,
            PhaseJumpProgram {
                amplitude_deg: 0.0,
                interval_s: 1.0,
                path_latency_s: 0.0,
            },
        );
        // Count zero crossings over 1 ms.
        let (mut cr, mut cg) = (0, 0);
        let (mut lr, mut lg) = bench.tick();
        for _ in 0..250_000 {
            let (r, g) = bench.tick();
            if lr < 0.0 && r >= 0.0 {
                cr += 1;
            }
            if lg < 0.0 && g >= 0.0 {
                cg += 1;
            }
            lr = r;
            lg = g;
        }
        assert!((cr as i64 - 800).abs() <= 1, "ref crossings {cr}");
        assert!((cg as i64 - 3200).abs() <= 1, "gap crossings {cg}");
    }

    #[test]
    fn jump_applies_once_per_toggle() {
        let mut bench = SignalBench::new(
            250e6,
            800e3,
            4,
            1.0,
            1.0,
            PhaseJumpProgram {
                amplitude_deg: 8.0,
                interval_s: 1e-4,
                path_latency_s: 0.0,
            },
        );
        // Cross two toggle boundaries; applied offset alternates 0/8.
        let mut seen = Vec::new();
        for _ in 0..(250e6_f64 * 2.5e-4) as usize {
            bench.tick();
            if seen.last() != Some(&bench.applied_jump_deg()) {
                seen.push(bench.applied_jump_deg());
            }
        }
        assert_eq!(seen, vec![0.0, 8.0, 0.0]);
    }

    #[test]
    fn control_offset_changes_gap_frequency() {
        let mut bench = SignalBench::new(
            250e6,
            800e3,
            4,
            1.0,
            1.0,
            PhaseJumpProgram {
                amplitude_deg: 0.0,
                interval_s: 1.0,
                path_latency_s: 0.0,
            },
        );
        bench.set_control_frequency_offset(1e3);
        // 3.201 MHz over 1 ms -> 3201 crossings.
        let (mut c, mut last) = (0, bench.tick().1);
        for _ in 0..250_000 {
            let (_, g) = bench.tick();
            if last < 0.0 && g >= 0.0 {
                c += 1;
            }
            last = g;
        }
        assert!((c as i64 - 3201).abs() <= 1, "crossings {c}");
    }
}
