//! Beam-model engines behind one step-per-measurement interface.
//!
//! Every closed-loop executive used to carry its own copy of the loop
//! plumbing around a hand-wired beam model. [`BeamEngine`] factors the model
//! out: an engine owns the beam state and the actuation bookkeeping, and
//! exposes exactly what the harness ([`crate::harness::LoopHarness`]) needs —
//! advance to the next phase measurement, report per-bunch phase, accept a
//! controller actuation. Four fidelities implement it:
//!
//! * [`MapEngine`] — the two-particle map, one step per revolution;
//! * [`CgraEngine`] — the compiled kernel on the cycle-accurate CGRA
//!   executor fed by analytic signals (any bunch count), with schedules
//!   served from the process-wide [`cil_cgra::cache`];
//! * [`RefTrackEngine`] — the multi-particle reference tracker;
//! * [`SignalLevelEngine`] — the full 250 MS/s bench → framework → phase
//!   detector chain, one `step` per detector event;
//!
//! plus [`RampEngine`], the acceleration-ramp variant of the map.

use crate::error::{CilError, Result};
use crate::fault::{CavityPlant, CavityPlantState, FaultProgram, LossCause};
use crate::scenario::MdeScenario;
use crate::signalgen::{PhaseJumpProgram, SignalBench};
use cil_cgra::cache::CompiledKernel;
use cil_cgra::exec::{CgraExecutor, SensorBus};
use cil_cgra::kernels::{ACT_DT_BASE, PORT_GAP_BUF, PORT_PERIOD, PORT_REF_BUF};
use cil_dsp::phase_detector::PhaseDetector;
use cil_physics::constants::TWO_PI;
use cil_physics::machine::MachineParams;
use cil_physics::ramp::{RampProgram, RampTracker};
use cil_physics::tracking::TwoParticleMap;
use cil_physics::IonSpecies;
use cil_reftrack::ensemble::Ensemble;
use cil_reftrack::tracker::{MultiParticleTracker, TrackerConfig};
use std::sync::Arc;

/// Outcome of one engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStep {
    /// A phase measurement is available in `phase_out`.
    Measured,
    /// Time advanced but no measurement yet (signal-level warm-up).
    Idle,
    /// The beam was lost for the given reason; the run should stop (or the
    /// supervisor should degrade).
    Lost(LossCause),
}

/// One recorded engine step inside a [`StepBlock`].
#[derive(Debug, Clone, Copy)]
pub struct BlockStep {
    /// Engine time before the step, seconds — where the harness stamps jump
    /// edges (the engine evaluates the jump program for a step at its
    /// pre-step time).
    pub t_pre: f64,
    /// Engine time after the step, seconds — the measurement timestamp.
    pub t_post: f64,
    /// Jump-program offset applied during the step, degrees.
    pub jump_deg: f64,
    /// What the step produced. Each `Measured` step owns the next
    /// `bunches` phases of [`StepBlock::phase_row_mut`], in step order.
    pub result: EngineStep,
}

/// Reusable recording buffer for [`BeamEngine::step_block`]: per-step
/// bookkeeping plus row-major phase storage for the measured steps. Allocate
/// once, reuse across blocks — after the first few blocks the hot loop
/// never allocates.
#[derive(Debug, Default)]
pub struct StepBlock {
    steps: Vec<BlockStep>,
    phases: Vec<f64>,
    bunches: usize,
}

impl StepBlock {
    /// Empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset for a new block of up to `max_rows` measured rows.
    fn begin(&mut self, bunches: usize, max_rows: usize) {
        self.steps.clear();
        self.phases.clear();
        self.bunches = bunches.max(1);
        self.steps.reserve(max_rows);
        self.phases.reserve(max_rows * self.bunches);
    }

    /// Every step taken, in order (idle and lost steps included).
    pub fn steps(&self) -> &[BlockStep] {
        &self.steps
    }

    /// Measured rows recorded.
    pub fn rows(&self) -> usize {
        self.phases.len() / self.bunches
    }

    /// Phase row of the `row`-th *measured* step, mutable so the harness
    /// can apply fault corruption in place before recording.
    pub fn phase_row_mut(&mut self, row: usize) -> &mut [f64] {
        let start = row * self.bunches;
        &mut self.phases[start..start + self.bunches]
    }
}

/// A beam model the [`crate::harness::LoopHarness`] can close the loop
/// around.
///
/// `step` advances the model to its next measurement opportunity — one
/// revolution for the turn-level engines, the next phase-detector event for
/// the signal-level engine — evaluating `jumps` at the model's own time
/// base (the signal engine applies them at sample resolution internally).
/// Phases are *raw* model output in degrees at the RF harmonic; the harness
/// adds the instrumentation offset.
pub trait BeamEngine {
    /// Number of simulated bunches (= length `step` expects of `phase_out`).
    fn bunches(&self) -> usize;

    /// Elapsed simulated time, seconds.
    fn time(&self) -> f64;

    /// Advance to the next measurement opportunity, writing per-bunch phase
    /// (degrees at the RF harmonic) into `phase_out` when it returns
    /// [`EngineStep::Measured`].
    fn step(&mut self, jumps: &PhaseJumpProgram, phase_out: &mut [f64]) -> EngineStep;

    /// Advance up to `max_rows` *measured* rows (idle steps ride along, a
    /// loss or reaching `duration_s` ends the block early), recording every
    /// step's times, applied jump offset and — for measured steps — phases
    /// into `block`.
    ///
    /// Observationally equivalent to calling [`Self::step`] in a loop: the
    /// default implementation *is* that loop, so the engine's state after a
    /// block of `n` rows is bit-identical to `n` per-turn steps. The point
    /// is amortisation — the harness pays one dynamic dispatch and one
    /// round of per-row bookkeeping per block instead of per revolution,
    /// and the inner `step` calls devirtualise inside each concrete
    /// engine's monomorphised default body.
    fn step_block(
        &mut self,
        jumps: &PhaseJumpProgram,
        duration_s: f64,
        max_rows: usize,
        block: &mut StepBlock,
    ) {
        block.begin(self.bunches(), max_rows);
        let bunches = block.bunches;
        let mut rows = 0;
        while rows < max_rows && self.time() < duration_s {
            let t_pre = self.time();
            let start = block.phases.len();
            block.phases.resize(start + bunches, 0.0);
            let result = self.step(jumps, &mut block.phases[start..]);
            block.steps.push(BlockStep {
                t_pre,
                t_post: self.time(),
                jump_deg: self.applied_jump_deg(),
                result,
            });
            match result {
                EngineStep::Measured => rows += 1,
                EngineStep::Idle => block.phases.truncate(start),
                EngineStep::Lost(_) => {
                    block.phases.truncate(start);
                    return;
                }
            }
        }
    }

    /// Apply one controller output `u_hz` (gap-frequency trim, Hz) that is
    /// held for `decimation` measurements.
    fn apply_control(&mut self, u_hz: f64, decimation: u32);

    /// Jump-program offset currently applied to the gap, degrees — the
    /// harness watches this edge to record jump times.
    fn applied_jump_deg(&self) -> f64;

    /// Seed the engine's clock and accumulated control phase — used when a
    /// supervisor swaps a freshly built engine in mid-run so the loop's
    /// time base and actuation history carry over. The beam's oscillation
    /// state restarts matched (on-reference); engines without a turn-level
    /// state (the signal-level chain) ignore this.
    fn seed_state(&mut self, time_s: f64, ctrl_phase_rad: f64) {
        let _ = (time_s, ctrl_phase_rad);
    }

    /// Effective cavity voltage scale currently in force (scheduled fault
    /// scale × commanded boost) — the supervisor's audit channel for the
    /// voltage-sag estimator. 1.0 for engines without a cavity plant.
    fn cavity_voltage_scale(&self) -> f64 {
        1.0
    }

    /// Command the plant-side voltage boost (the VoltageRematch path: the
    /// supervisor raises the reference amplitude toward the pre-fault
    /// bucket area). 1.0 restores nominal. Engines without a cavity plant
    /// ignore it.
    fn command_voltage(&mut self, _boost: f64) {}

    /// Snapshot of the cavity plant's dynamic state (commanded boost,
    /// integrated detune phase).
    fn cavity_state(&self) -> CavityPlantState {
        CavityPlantState::default()
    }

    /// Restore a cavity plant state — used when the supervisor swaps a
    /// freshly built engine in mid-run, so the accumulated detune phase and
    /// the commanded boost survive the fidelity demotion.
    fn restore_cavity(&mut self, _state: &CavityPlantState) {}

    /// Export engine-internal statistics into `telemetry` (called by the
    /// harness when a run finishes). Default: nothing to report. Engines
    /// with internal DSP state (the signal-level chain) override this to
    /// publish detector drop counts, period-guard admissions and ring-buffer
    /// occupancy without the DSP crates ever depending on the registry.
    fn sample_telemetry(&self, telemetry: &crate::telemetry::TelemetryRegistry) {
        let _ = telemetry;
    }

    /// Capture the engine's *complete* dynamic state for checkpointing.
    /// Static configuration (machine parameters, compiled kernels, LUTs,
    /// filter taps) is not captured — a restore rebuilds the engine from the
    /// scenario first and then patches the dynamic fields back in.
    fn save_state(&self) -> EngineState;

    /// Restore a state captured by [`Self::save_state`] onto an engine that
    /// was freshly built from the *same scenario and kind*. Returns `false`
    /// when the state belongs to a different engine kind or its shapes
    /// (bunch count, ensemble size, buffer depth, …) do not match.
    fn restore_state(&mut self, state: &EngineState) -> bool;
}

/// Checkpointable state of any [`BeamEngine`] — the variant identifies the
/// engine fidelity it was captured from, and restores reject a mismatch.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineState {
    /// [`MapEngine`] state.
    Map(MapEngineState),
    /// [`CgraEngine`] state.
    Cgra(CgraEngineState),
    /// [`RefTrackEngine`] state.
    RefTrack(RefTrackEngineState),
    /// [`RampEngine`] state.
    Ramp(RampEngineState),
    /// [`SignalLevelEngine`] state.
    SignalLevel(Box<SignalLevelEngineState>),
}

/// Shared turn-level bookkeeping captured with every turn-level engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TurnStateSnapshot {
    /// Elapsed simulated time, seconds.
    pub time: f64,
    /// Accumulated control phase, radians.
    pub ctrl_phase_rad: f64,
    /// Jump offset in force, degrees.
    pub applied_jump_deg: f64,
    /// Cavity plant dynamic state (boost command, integrated detune phase).
    pub cavity: CavityPlantState,
}

/// Checkpointable state of a [`MapEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapEngineState {
    /// Reference-particle Lorentz factor γ_R.
    pub gamma_r: f64,
    /// Macro-particle energy deviation Δγ.
    pub dgamma: f64,
    /// Macro-particle arrival-time deviation Δt, seconds.
    pub dt: f64,
    /// Turn-level bookkeeping.
    pub turn: TurnStateSnapshot,
}

/// Checkpointable state of a [`CgraEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct CgraEngineState {
    /// CGRA register file + iteration counter.
    pub executor: cil_cgra::ExecutorState,
    /// Gap-phase offset currently presented on the analytic bus, radians.
    pub gap_phase_rad: f64,
    /// Injected gap dropout in force.
    pub gap_dropout: bool,
    /// Last Δt written per bunch, seconds.
    pub dt_out: Vec<f64>,
    /// Turn-level bookkeeping.
    pub turn: TurnStateSnapshot,
}

/// Checkpointable state of a [`RefTrackEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct RefTrackEngineState {
    /// Ensemble arrival-time deviations, seconds.
    pub dt: Vec<f64>,
    /// Ensemble energy deviations Δγ.
    pub dgamma: Vec<f64>,
    /// Completed tracker revolutions.
    pub tracker_turn: u64,
    /// Turn-level bookkeeping.
    pub turn: TurnStateSnapshot,
}

/// Checkpointable state of a [`RampEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampEngineState {
    /// Reference-particle Lorentz factor γ_R.
    pub gamma_r: f64,
    /// Macro-particle energy deviation Δγ.
    pub dgamma: f64,
    /// Macro-particle arrival-time deviation Δt, seconds.
    pub dt: f64,
    /// Elapsed machine time, seconds.
    pub time: f64,
    /// Completed revolutions.
    pub tracker_turn: u64,
    /// Accumulated control phase, radians.
    pub ctrl_phase_rad: f64,
    /// Jump offset in force, degrees.
    pub applied_jump_deg: f64,
    /// Revolution frequency after the latest step, Hz.
    pub last_f_rev: f64,
    /// Reference γ after the latest step.
    pub last_gamma_r: f64,
    /// Synchronous phase of the latest step, degrees.
    pub last_phi_s_deg: f64,
}

/// Checkpointable state of a [`SignalLevelEngine`] — the deep end: bench,
/// framework and detector internals in full.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalLevelEngineState {
    /// DDS bench state.
    pub bench: crate::signalgen::SignalBenchState,
    /// Framework state (CGRA, ring buffers, detectors, pulses, ADC RNG).
    pub fw: crate::framework::FrameworkState,
    /// Beam-phase detector state.
    pub detector: cil_dsp::phase_detector::PhaseDetectorState,
    /// Detector period setting, samples.
    pub period_samples: f64,
    /// Engine sample clock.
    pub sample: u64,
    /// Period-guard admissions.
    pub period_admitted: u64,
    /// Period-guard rejections.
    pub period_rejected: u64,
    /// Cavity plant dynamic state.
    pub cavity: CavityPlantState,
}

/// Which beam-model engine a turn-level executive uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The two-particle map evaluated directly (fastest).
    Map,
    /// The compiled kernel on the cycle-accurate CGRA executor, fed by
    /// analytic signals — the cavity-in-the-loop path without converter
    /// effects.
    Cgra,
    /// The multi-particle reference tracker (slowest, highest fidelity).
    RefTrack {
        /// Macro particles in the matched ensemble.
        particles: usize,
        /// Ensemble sampling seed.
        seed: u64,
    },
}

impl EngineKind {
    /// Build the engine for a scenario (single bunch, launched
    /// on-reference).
    pub fn build(&self, scenario: &MdeScenario) -> Result<Box<dyn BeamEngine>> {
        Ok(match *self {
            EngineKind::Map => Box::new(MapEngine::from_scenario(scenario)?),
            EngineKind::Cgra => Box::new(CgraEngine::from_scenario(scenario, 1, &[])?),
            EngineKind::RefTrack { particles, seed } => Box::new(RefTrackEngine::from_scenario(
                scenario, particles, seed, 15e-9, 0.0,
            )?),
        })
    }

    /// The graceful-degradation ladder: the fidelity to fall back to when
    /// this engine cannot hold its deadline (or produces garbage). The
    /// analytic map is the floor — nothing is cheaper while still closing
    /// the loop.
    pub fn demote(&self) -> Option<EngineKind> {
        match *self {
            EngineKind::Cgra | EngineKind::RefTrack { .. } => Some(EngineKind::Map),
            EngineKind::Map => None,
        }
    }

    /// Stable label for metric names (`fidelity="..."`).
    pub fn fidelity_label(&self) -> &'static str {
        match *self {
            EngineKind::Map => "map",
            EngineKind::Cgra => "cgra",
            EngineKind::RefTrack { .. } => "reftrack",
        }
    }
}

/// Shared turn-level actuation state: the accumulated control phase and the
/// current jump evaluation.
#[derive(Debug, Clone, Copy, Default)]
struct TurnState {
    time: f64,
    ctrl_phase_rad: f64,
    applied_jump_deg: f64,
}

impl TurnState {
    /// Evaluate the jump program at the current turn and return the total
    /// gap-phase offset (jump + accumulated control), radians.
    fn gap_phase_rad(&mut self, jumps: &PhaseJumpProgram) -> f64 {
        self.applied_jump_deg = jumps.offset_deg_at(self.time);
        self.applied_jump_deg.to_radians() + self.ctrl_phase_rad
    }

    fn snapshot(&self, cavity: CavityPlantState) -> TurnStateSnapshot {
        TurnStateSnapshot {
            time: self.time,
            ctrl_phase_rad: self.ctrl_phase_rad,
            applied_jump_deg: self.applied_jump_deg,
            cavity,
        }
    }

    fn restore(&mut self, s: &TurnStateSnapshot) {
        self.time = s.time;
        self.ctrl_phase_rad = s.ctrl_phase_rad;
        self.applied_jump_deg = s.applied_jump_deg;
    }
}

/// The two-particle map as a [`BeamEngine`].
pub struct MapEngine {
    map: TwoParticleMap,
    v_hat: f64,
    f_rf: f64,
    t_rev: f64,
    state: TurnState,
    plant: CavityPlant,
}

impl MapEngine {
    /// Engine at the scenario's operating point.
    pub fn from_scenario(s: &MdeScenario) -> Result<Self> {
        let op = s.operating_point()?;
        Ok(Self {
            map: TwoParticleMap::at_operating_point(&op),
            v_hat: op.v_gap_volts,
            f_rf: op.f_rf(),
            t_rev: 1.0 / s.f_rev,
            state: TurnState::default(),
            plant: CavityPlant::from_program(&s.faults),
        })
    }
}

impl BeamEngine for MapEngine {
    fn bunches(&self) -> usize {
        1
    }

    fn time(&self) -> f64 {
        self.state.time
    }

    fn step(&mut self, jumps: &PhaseJumpProgram, phase_out: &mut [f64]) -> EngineStep {
        let gap_phase = self.state.gap_phase_rad(jumps);
        if self.plant.is_idle() {
            // The original code path, untouched: a fault-free (or
            // zero-amplitude) run stays bit-identical.
            let dt = self.map.step_stationary(self.v_hat, gap_phase);
            phase_out[0] = dt * self.f_rf * 360.0;
            self.state.time += self.t_rev;
            return EngineStep::Measured;
        }
        let c = self.plant.advance(self.state.time, self.t_rev);
        let dt = self
            .map
            .step_stationary(self.v_hat * c.scale, gap_phase + c.phase_rad);
        let deg = dt * self.f_rf * 360.0;
        phase_out[0] = deg;
        self.state.time += self.t_rev;
        if !deg.is_finite() {
            return EngineStep::Lost(LossCause::NonFinitePhase);
        }
        if deg.abs() > 180.0 {
            // The degraded plant shrank the bucket until the beam left it.
            return EngineStep::Lost(LossCause::CavityFault);
        }
        EngineStep::Measured
    }

    fn apply_control(&mut self, u_hz: f64, decimation: u32) {
        self.state.ctrl_phase_rad += TWO_PI * u_hz * self.t_rev * f64::from(decimation);
    }

    fn applied_jump_deg(&self) -> f64 {
        self.state.applied_jump_deg
    }

    fn seed_state(&mut self, time_s: f64, ctrl_phase_rad: f64) {
        self.state.time = time_s;
        self.state.ctrl_phase_rad = ctrl_phase_rad;
    }

    fn cavity_voltage_scale(&self) -> f64 {
        self.plant.effective_scale_at(self.state.time)
    }

    fn command_voltage(&mut self, boost: f64) {
        self.plant.command_boost(boost);
    }

    fn cavity_state(&self) -> CavityPlantState {
        self.plant.state()
    }

    fn restore_cavity(&mut self, state: &CavityPlantState) {
        self.plant.restore(state);
    }

    fn save_state(&self) -> EngineState {
        EngineState::Map(MapEngineState {
            gamma_r: self.map.reference.gamma,
            dgamma: self.map.particle.dgamma,
            dt: self.map.particle.dt,
            turn: self.state.snapshot(self.plant.state()),
        })
    }

    fn restore_state(&mut self, state: &EngineState) -> bool {
        let EngineState::Map(s) = state else {
            return false;
        };
        self.map.reference.gamma = s.gamma_r;
        self.map.particle.dgamma = s.dgamma;
        self.map.particle.dt = s.dt;
        self.state.restore(&s.turn);
        self.plant.restore(&s.turn.cavity);
        true
    }
}

/// Analytic SensorBus for the turn-level CGRA engines: serves ideal DDS
/// waveforms (no ADC/quantisation) with the current gap-phase offset.
struct AnalyticBus {
    f_rev: f64,
    f_rf: f64,
    sample_rate: f64,
    /// ADC-side amplitudes (the kernel multiplies by its scale factors).
    amp: f64,
    /// Gap-channel amplitude: `amp` scaled by the cavity plant's effective
    /// voltage scale (equal to `amp` while the plant is nominal).
    gap_amp: f64,
    gap_phase_rad: f64,
    /// Injected gap-DDS dropout: the gap port reads 0 V while set.
    gap_dropout: bool,
    dt_out: Vec<f64>,
}

impl SensorBus for AnalyticBus {
    fn read(&mut self, port: u16, addr: f64) -> f64 {
        let t = addr / self.sample_rate; // seconds relative to the crossing
        match port {
            PORT_PERIOD => 1.0 / self.f_rev,
            PORT_REF_BUF => self.amp * (TWO_PI * self.f_rev * t).sin(),
            PORT_GAP_BUF if self.gap_dropout => 0.0,
            PORT_GAP_BUF => self.gap_amp * (TWO_PI * self.f_rf * t + self.gap_phase_rad).sin(),
            _ => 0.0,
        }
    }
    fn write(&mut self, port: u16, value: f64) {
        let b = (port - ACT_DT_BASE) as usize;
        if b < self.dt_out.len() {
            self.dt_out[b] = value;
        }
    }
}

/// The compiled beam kernel on the cycle-accurate CGRA executor, fed by
/// analytic signals — one Δt actuator per bunch.
pub struct CgraEngine {
    compiled: Arc<CompiledKernel>,
    executor: CgraExecutor,
    bus: AnalyticBus,
    bunches: usize,
    f_rf: f64,
    t_rev: f64,
    state: TurnState,
    faults: FaultProgram,
    plant: CavityPlant,
    /// Caller-owned output scratch for the executor's allocation-free path.
    out_scratch: Vec<(u16, f64)>,
    /// Replay the legacy node-walk instead of the micro-op plan (benchmark
    /// baseline; bit-identical, slower).
    nodewalk: bool,
}

impl CgraEngine {
    /// Engine for a scenario with `bunches` bunches; bunch `b` launches
    /// displaced by `initial_offsets_deg[b]` (missing entries → 0°). The
    /// kernel schedule comes from the process-wide compile cache.
    pub fn from_scenario(
        s: &MdeScenario,
        bunches: usize,
        initial_offsets_deg: &[f64],
    ) -> Result<Self> {
        let op = s.operating_point()?;
        let f_rf = op.f_rf();
        let compiled = cil_cgra::cache::global().get_or_compile(
            &s.kernel_params()?,
            bunches,
            s.pipelined,
            true,
            s.grid,
        );
        let mut executor = compiled.executor();
        let mut displacements = Vec::new();
        for (b, &deg) in initial_offsets_deg.iter().enumerate().take(bunches) {
            let name = format!("dt_{b}");
            let reg = compiled
                .static_reg(&name)
                .ok_or(CilError::MissingKernelRegister(name))?;
            displacements.push((reg, deg / 360.0 / f_rf));
        }
        for &(reg, dt) in &displacements {
            executor.set_reg(reg, dt);
        }
        let mut bus = AnalyticBus {
            f_rev: s.f_rev,
            f_rf,
            sample_rate: 250e6,
            amp: s.adc_amplitude,
            gap_amp: s.adc_amplitude,
            gap_phase_rad: 0.0,
            gap_dropout: false,
            dt_out: vec![0.0; bunches],
        };
        if s.pipelined {
            // Warm the stage bridges, then restore inits + displacements. A
            // kernel that cannot complete its warmup iteration is a
            // configuration error the caller can act on (the supervisor
            // demotes through the fidelity ladder) — not a panic.
            let mut restore = compiled.kernel.kernel.reg_inits.clone();
            restore.extend_from_slice(&displacements);
            executor
                .try_warmup(&mut bus, &[], &restore)
                .map_err(|e| CilError::InvalidConfig(format!("CGRA kernel warmup failed: {e}")))?;
        }
        let output_count = compiled.plan.output_count();
        Ok(Self {
            compiled,
            executor,
            bus,
            bunches,
            f_rf,
            t_rev: 1.0 / s.f_rev,
            state: TurnState::default(),
            faults: s.faults.clone(),
            plant: CavityPlant::from_program(&s.faults),
            out_scratch: Vec::with_capacity(output_count),
            nodewalk: false,
        })
    }

    /// The cached compilation artifact this engine runs.
    pub fn compiled(&self) -> &CompiledKernel {
        &self.compiled
    }

    /// Switch between the pre-decoded micro-op plan (default) and the
    /// legacy per-node walk of the DFG. The two are bit-identical; the walk
    /// exists as the differential oracle and benchmark baseline.
    pub fn set_nodewalk(&mut self, nodewalk: bool) {
        self.nodewalk = nodewalk;
    }
}

impl BeamEngine for CgraEngine {
    fn bunches(&self) -> usize {
        self.bunches
    }

    fn time(&self) -> f64 {
        self.state.time
    }

    fn step(&mut self, jumps: &PhaseJumpProgram, phase_out: &mut [f64]) -> EngineStep {
        self.bus.gap_phase_rad = self.state.gap_phase_rad(jumps);
        if !self.faults.is_empty() {
            self.bus.gap_dropout = self.faults.sample_faults_at(self.state.time).dds_dropout;
        }
        let cavity_active = !self.plant.is_idle();
        if cavity_active {
            // The degraded cavity enters through the bus: the kernel's
            // simulated beam feels the scaled gap voltage and the
            // accumulated detune phase like every other fidelity.
            let c = self.plant.advance(self.state.time, self.t_rev);
            self.bus.gap_amp = self.bus.amp * c.scale;
            self.bus.gap_phase_rad += c.phase_rad;
        }
        let run = if self.nodewalk {
            self.executor
                .try_run_iteration_nodewalk(&mut self.bus, &[])
                .map(|_| ())
        } else {
            self.executor
                .try_run_iteration_into(&mut self.bus, &[], &mut self.out_scratch)
        };
        if run.is_err() {
            return EngineStep::Lost(LossCause::NonFinitePhase);
        }
        for (out, &dt) in phase_out.iter_mut().zip(&self.bus.dt_out) {
            *out = dt * self.f_rf * 360.0;
        }
        self.state.time += self.t_rev;
        if phase_out.iter().any(|p| !p.is_finite()) {
            return EngineStep::Lost(LossCause::NonFinitePhase);
        }
        if cavity_active && phase_out.iter().any(|p| p.abs() > 180.0) {
            return EngineStep::Lost(LossCause::CavityFault);
        }
        EngineStep::Measured
    }

    fn apply_control(&mut self, u_hz: f64, decimation: u32) {
        self.state.ctrl_phase_rad += TWO_PI * u_hz * self.t_rev * f64::from(decimation);
    }

    fn applied_jump_deg(&self) -> f64 {
        self.state.applied_jump_deg
    }

    fn seed_state(&mut self, time_s: f64, ctrl_phase_rad: f64) {
        self.state.time = time_s;
        self.state.ctrl_phase_rad = ctrl_phase_rad;
    }

    fn cavity_voltage_scale(&self) -> f64 {
        self.plant.effective_scale_at(self.state.time)
    }

    fn command_voltage(&mut self, boost: f64) {
        self.plant.command_boost(boost);
    }

    fn cavity_state(&self) -> CavityPlantState {
        self.plant.state()
    }

    fn restore_cavity(&mut self, state: &CavityPlantState) {
        self.plant.restore(state);
    }

    fn save_state(&self) -> EngineState {
        EngineState::Cgra(CgraEngineState {
            executor: self.executor.state(),
            gap_phase_rad: self.bus.gap_phase_rad,
            gap_dropout: self.bus.gap_dropout,
            dt_out: self.bus.dt_out.clone(),
            turn: self.state.snapshot(self.plant.state()),
        })
    }

    fn restore_state(&mut self, state: &EngineState) -> bool {
        let EngineState::Cgra(s) = state else {
            return false;
        };
        if s.dt_out.len() != self.bus.dt_out.len() || !self.executor.restore(&s.executor) {
            return false;
        }
        self.bus.gap_phase_rad = s.gap_phase_rad;
        self.bus.gap_dropout = s.gap_dropout;
        self.bus.dt_out = s.dt_out.clone();
        self.state.restore(&s.turn);
        self.plant.restore(&s.turn.cavity);
        true
    }
}

/// The multi-particle reference tracker as a [`BeamEngine`] — the "MDE
/// stand-in" fidelity the CGRA results are checked against.
pub struct RefTrackEngine {
    tracker: MultiParticleTracker,
    t_rev: f64,
    state: TurnState,
    plant: CavityPlant,
}

impl RefTrackEngine {
    /// Engine over a matched Gaussian ensemble of `particles` macro
    /// particles (`sigma_s` RMS bunch length, deterministic in `seed`),
    /// coherently displaced by `displace_dt` seconds at launch.
    pub fn from_scenario(
        s: &MdeScenario,
        particles: usize,
        seed: u64,
        sigma_s: f64,
        displace_dt: f64,
    ) -> Result<Self> {
        let op = s.operating_point()?;
        let spec = cil_physics::distribution::BunchSpec::gaussian(sigma_s);
        let mut ensemble = Ensemble::matched(&spec, particles, &op, seed)?;
        ensemble.displace_dt(displace_dt);
        Ok(Self {
            tracker: MultiParticleTracker::new(op, ensemble, TrackerConfig::default()),
            t_rev: 1.0 / s.f_rev,
            state: TurnState::default(),
            plant: CavityPlant::from_program(&s.faults),
        })
    }

    /// The tracked ensemble (inspection).
    pub fn ensemble(&self) -> &Ensemble {
        &self.tracker.ensemble
    }

    /// Replace the tracker's worker configuration (threads, chunking,
    /// kernel backend). Determinism contract: any configuration produces
    /// bit-identical trajectories and centroid bits on the polynomial
    /// backends, so this only changes *how fast* the engine runs — callers
    /// (harness, tests, benches) may retune freely between steps.
    pub fn set_tracker_config(&mut self, config: cil_reftrack::TrackerConfig) {
        self.tracker.config = config;
    }

    /// The tracker's current worker configuration.
    pub fn tracker_config(&self) -> cil_reftrack::TrackerConfig {
        self.tracker.config
    }
}

impl BeamEngine for RefTrackEngine {
    fn bunches(&self) -> usize {
        1
    }

    fn time(&self) -> f64 {
        self.state.time
    }

    fn step(&mut self, jumps: &PhaseJumpProgram, phase_out: &mut [f64]) -> EngineStep {
        let gap_phase = self.state.gap_phase_rad(jumps);
        if self.plant.is_idle() {
            let moments = self.tracker.step(gap_phase);
            phase_out[0] = self.tracker.phase_deg_of_dt(moments.centroid_dt());
            self.state.time += self.t_rev;
            return EngineStep::Measured;
        }
        let c = self.plant.advance(self.state.time, self.t_rev);
        let moments = self.tracker.step_scaled(gap_phase + c.phase_rad, c.scale);
        let deg = self.tracker.phase_deg_of_dt(moments.centroid_dt());
        phase_out[0] = deg;
        self.state.time += self.t_rev;
        if !deg.is_finite() {
            return EngineStep::Lost(LossCause::NonFinitePhase);
        }
        if deg.abs() > 180.0 {
            return EngineStep::Lost(LossCause::CavityFault);
        }
        EngineStep::Measured
    }

    fn apply_control(&mut self, u_hz: f64, decimation: u32) {
        self.state.ctrl_phase_rad += TWO_PI * u_hz * self.t_rev * f64::from(decimation);
    }

    fn applied_jump_deg(&self) -> f64 {
        self.state.applied_jump_deg
    }

    fn seed_state(&mut self, time_s: f64, ctrl_phase_rad: f64) {
        self.state.time = time_s;
        self.state.ctrl_phase_rad = ctrl_phase_rad;
    }

    fn cavity_voltage_scale(&self) -> f64 {
        self.plant.effective_scale_at(self.state.time)
    }

    fn command_voltage(&mut self, boost: f64) {
        self.plant.command_boost(boost);
    }

    fn cavity_state(&self) -> CavityPlantState {
        self.plant.state()
    }

    fn restore_cavity(&mut self, state: &CavityPlantState) {
        self.plant.restore(state);
    }

    fn save_state(&self) -> EngineState {
        EngineState::RefTrack(RefTrackEngineState {
            dt: self.tracker.ensemble.dt.clone(),
            dgamma: self.tracker.ensemble.dgamma.clone(),
            tracker_turn: self.tracker.turn,
            turn: self.state.snapshot(self.plant.state()),
        })
    }

    fn restore_state(&mut self, state: &EngineState) -> bool {
        let EngineState::RefTrack(s) = state else {
            return false;
        };
        if s.dt.len() != self.tracker.ensemble.dt.len() || s.dt.len() != s.dgamma.len() {
            return false;
        }
        self.tracker.ensemble.dt = s.dt.clone();
        self.tracker.ensemble.dgamma = s.dgamma.clone();
        self.tracker.turn = s.tracker_turn;
        self.state.restore(&s.turn);
        self.plant.restore(&s.turn.cavity);
        true
    }

    fn sample_telemetry(&self, telemetry: &crate::telemetry::TelemetryRegistry) {
        let cfg = self.tracker.config;
        telemetry
            .gauge(&format!(
                "cil_reftrack_kernel_active{{backend=\"{}\"}}",
                cfg.backend.resolve().label()
            ))
            .set(1.0);
        telemetry
            .gauge("cil_reftrack_worker_threads")
            .set(cfg.threads.max(1) as f64);
        telemetry
            .gauge("cil_reftrack_particles")
            .set(self.tracker.ensemble.len() as f64);
    }
}

/// The two-particle map along an acceleration ramp. Reports
/// [`EngineStep::Lost`] when the ramp over-demands the bucket or the phase
/// leaves ±180°; the revolution period varies with the ramp, so its
/// measurement times are not uniform.
pub struct RampEngine {
    machine: MachineParams,
    tracker: RampTracker,
    ctrl_phase_rad: f64,
    applied_jump_deg: f64,
    last_f_rev: f64,
    last_gamma_r: f64,
    last_phi_s_deg: f64,
}

impl RampEngine {
    /// Engine at the start of a ramp program.
    pub fn new(machine: MachineParams, ion: IonSpecies, program: RampProgram) -> Self {
        let f0 = program.f_rev.at(0.0);
        let tracker = RampTracker::new(machine, ion, program);
        let gamma0 = tracker.map.reference.gamma;
        Self {
            machine,
            tracker,
            ctrl_phase_rad: 0.0,
            applied_jump_deg: 0.0,
            last_f_rev: f0,
            last_gamma_r: gamma0,
            last_phi_s_deg: 0.0,
        }
    }

    /// Reference γ after the latest step.
    pub fn gamma_r(&self) -> f64 {
        self.last_gamma_r
    }

    /// Synchronous phase of the latest step, degrees.
    pub fn phi_s_deg(&self) -> f64 {
        self.last_phi_s_deg
    }
}

impl BeamEngine for RampEngine {
    fn bunches(&self) -> usize {
        1
    }

    fn time(&self) -> f64 {
        self.tracker.time
    }

    fn step(&mut self, jumps: &PhaseJumpProgram, phase_out: &mut [f64]) -> EngineStep {
        self.applied_jump_deg = jumps.offset_deg_at(self.tracker.time);
        let offset = self.applied_jump_deg.to_radians() + self.ctrl_phase_rad;
        let Some(sample) = self.tracker.step_with_phase_offset(offset) else {
            return EngineStep::Lost(LossCause::BucketOverdemand);
        };
        let f_rev = self.machine.revolution_frequency(sample.gamma_r);
        let f_rf = self.machine.rf_frequency(f_rev);
        let phase_deg = sample.dt * f_rf * 360.0;
        if phase_deg.abs() > 180.0 {
            // Left the bucket: count as beam loss.
            return EngineStep::Lost(LossCause::OutOfBucket);
        }
        self.last_f_rev = f_rev;
        self.last_gamma_r = sample.gamma_r;
        self.last_phi_s_deg = sample.phi_s.to_degrees();
        phase_out[0] = phase_deg;
        EngineStep::Measured
    }

    fn apply_control(&mut self, u_hz: f64, decimation: u32) {
        // The actuation interval follows the ramping revolution frequency.
        self.ctrl_phase_rad += TWO_PI * u_hz / self.last_f_rev * f64::from(decimation);
    }

    fn applied_jump_deg(&self) -> f64 {
        self.applied_jump_deg
    }

    fn save_state(&self) -> EngineState {
        EngineState::Ramp(RampEngineState {
            gamma_r: self.tracker.map.reference.gamma,
            dgamma: self.tracker.map.particle.dgamma,
            dt: self.tracker.map.particle.dt,
            time: self.tracker.time,
            tracker_turn: self.tracker.turn,
            ctrl_phase_rad: self.ctrl_phase_rad,
            applied_jump_deg: self.applied_jump_deg,
            last_f_rev: self.last_f_rev,
            last_gamma_r: self.last_gamma_r,
            last_phi_s_deg: self.last_phi_s_deg,
        })
    }

    fn restore_state(&mut self, state: &EngineState) -> bool {
        let EngineState::Ramp(s) = state else {
            return false;
        };
        self.tracker.map.reference.gamma = s.gamma_r;
        self.tracker.map.particle.dgamma = s.dgamma;
        self.tracker.map.particle.dt = s.dt;
        self.tracker.time = s.time;
        self.tracker.turn = s.tracker_turn;
        self.ctrl_phase_rad = s.ctrl_phase_rad;
        self.applied_jump_deg = s.applied_jump_deg;
        self.last_f_rev = s.last_f_rev;
        self.last_gamma_r = s.last_gamma_r;
        self.last_phi_s_deg = s.last_phi_s_deg;
        true
    }
}

/// The full signal-level chain as a [`BeamEngine`]: DDS bench → ADC →
/// framework (ring buffers, detectors, CGRA, Gauss pulses, DAC) → DSP phase
/// detector. One `step` runs samples until the detector produces a
/// measurement (or an internal cap is hit during warm-up → `Idle`). The
/// bench owns the jump program and applies it edge-accurately at sample
/// resolution, so `step`'s `jumps` argument is not consulted here.
pub struct SignalLevelEngine {
    bench: SignalBench,
    fw: crate::framework::SimulatorFramework,
    detector: PhaseDetector,
    period_samples: f64,
    sample_rate: f64,
    sample: u64,
    faults: FaultProgram,
    plant: CavityPlant,
    /// Period-guard verdicts: detector-period updates admitted vs rejected
    /// as transient mis-measurements (exported via `sample_telemetry`).
    period_admitted: u64,
    period_rejected: u64,
}

impl SignalLevelEngine {
    /// The scenario's Fig. 4 bench (jump program included).
    pub fn from_scenario(s: &MdeScenario) -> Result<Self> {
        let sample_rate = 250e6;
        let bench = SignalBench::new(
            sample_rate,
            s.f_rev,
            s.harmonic(),
            s.adc_amplitude,
            s.adc_amplitude,
            s.jumps,
        );
        let fw =
            crate::framework::SimulatorFramework::new(s.framework_config(), s.kernel_params()?);
        let period_samples = sample_rate / s.f_rev;
        let detector = PhaseDetector::with_zc_threshold(
            fw.config.pulse_amplitude * 0.25,
            f64::from(s.harmonic()),
            period_samples,
            fw.config.zc_threshold,
        );
        Ok(Self {
            bench,
            fw,
            detector,
            period_samples,
            sample_rate,
            sample: 0,
            faults: s.faults.clone(),
            plant: CavityPlant::from_program(&s.faults),
            period_admitted: 0,
            period_rejected: 0,
        })
    }

    /// The underlying framework (inspection: records, kernel statics, …).
    pub fn framework(&self) -> &crate::framework::SimulatorFramework {
        &self.fw
    }
}

impl BeamEngine for SignalLevelEngine {
    fn bunches(&self) -> usize {
        1
    }

    fn time(&self) -> f64 {
        self.sample as f64 / self.sample_rate
    }

    fn step(&mut self, _jumps: &PhaseJumpProgram, phase_out: &mut [f64]) -> EngineStep {
        // Signal-chain fault injection, refreshed once per step (~2 µs of
        // bench time — far finer than any scheduled fault window).
        if !self.faults.is_empty() {
            let sf = self.faults.sample_faults_at(self.time());
            self.fw.set_adc_fault(sf.adc);
            self.bench.gap.set_dropout(sf.dds_dropout);
        }
        if !self.plant.is_idle() {
            // The signal chain applies the cavity plant on the real DDS:
            // scaled gap amplitude, and the detuning as a true frequency
            // offset (the phase accumulator integrates it for real, where
            // the turn-level engines integrate analytically).
            let t = self.time();
            self.bench
                .set_cavity(self.plant.effective_scale_at(t), self.plant.detune_hz_at(t));
        }
        // At most two revolutions per step: during detector warm-up no
        // measurement fires, and the harness must still observe time moving.
        let cap = (self.period_samples * 2.0) as usize;
        for _ in 0..cap {
            let (v_ref, v_gap) = self.bench.tick();
            let out = self.fw.push_sample(v_ref, v_gap);
            self.sample += 1;
            if let Some(p) = self.fw.measured_period() {
                let samples = p * self.sample_rate;
                // Guard against transient mis-measurements under heavy noise.
                if samples > self.period_samples * 0.5 && samples < self.period_samples * 2.0 {
                    self.period_admitted += 1;
                    self.detector.set_period_samples(samples);
                } else {
                    self.period_rejected += 1;
                }
            }
            if let Some(m) = self.detector.push(v_ref, out.beam) {
                phase_out[0] = m.phase_deg;
                return EngineStep::Measured;
            }
        }
        EngineStep::Idle
    }

    fn apply_control(&mut self, u_hz: f64, _decimation: u32) {
        self.bench.set_control_frequency_offset(u_hz);
    }

    fn applied_jump_deg(&self) -> f64 {
        self.bench.applied_jump_deg()
    }

    fn cavity_voltage_scale(&self) -> f64 {
        self.plant.effective_scale_at(self.time())
    }

    fn command_voltage(&mut self, boost: f64) {
        self.plant.command_boost(boost);
    }

    fn cavity_state(&self) -> CavityPlantState {
        self.plant.state()
    }

    fn restore_cavity(&mut self, state: &CavityPlantState) {
        self.plant.restore(state);
    }

    fn save_state(&self) -> EngineState {
        EngineState::SignalLevel(Box::new(SignalLevelEngineState {
            bench: self.bench.state(),
            fw: self.fw.state(),
            detector: self.detector.state(),
            period_samples: self.period_samples,
            sample: self.sample,
            period_admitted: self.period_admitted,
            period_rejected: self.period_rejected,
            cavity: self.plant.state(),
        }))
    }

    fn restore_state(&mut self, state: &EngineState) -> bool {
        let EngineState::SignalLevel(s) = state else {
            return false;
        };
        if !self.fw.restore(&s.fw) {
            return false;
        }
        self.bench.restore(&s.bench);
        // PhaseDetectorState carries the detector's own (measured) period,
        // so no set_period_samples here — that would clobber it with the
        // nominal one.
        self.detector.restore(&s.detector);
        self.period_samples = s.period_samples;
        self.sample = s.sample;
        self.period_admitted = s.period_admitted;
        self.period_rejected = s.period_rejected;
        self.plant.restore(&s.cavity);
        true
    }

    fn sample_telemetry(&self, telemetry: &crate::telemetry::TelemetryRegistry) {
        telemetry
            .counter("cil_detector_dropped_samples_total")
            .add(self.detector.dropped_samples());
        telemetry
            .counter("cil_detector_period_admissions_total")
            .add(self.period_admitted);
        telemetry
            .counter("cil_detector_period_rejections_total")
            .add(self.period_rejected);
        telemetry
            .gauge("cil_ring_buffer_occupancy_samples{channel=\"ref\"}")
            .set(self.fw.ref_buffer_occupancy() as f64);
        telemetry
            .gauge("cil_ring_buffer_occupancy_samples{channel=\"gap\"}")
            .set(self.fw.gap_buffer_occupancy() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.01;
        s.bunches = 1;
        s
    }

    #[test]
    fn map_engine_steps_one_turn() {
        let s = scenario();
        let mut e = MapEngine::from_scenario(&s).unwrap();
        let mut out = [0.0];
        assert_eq!(e.time(), 0.0);
        assert_eq!(e.step(&s.jumps, &mut out), EngineStep::Measured);
        assert!((e.time() - 1.25e-6).abs() < 1e-15);
    }

    #[test]
    fn turn_engines_report_the_jump() {
        let s = scenario();
        let mut e = MapEngine::from_scenario(&s).unwrap();
        let mut out = [0.0];
        // Jump program displaced so the very first turn already sees it.
        let jumps = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: -0.06,
        };
        e.step(&jumps, &mut out);
        assert_eq!(e.applied_jump_deg(), 8.0);
    }

    #[test]
    fn cgra_engine_uses_the_compile_cache() {
        let s = scenario();
        let before = cil_cgra::cache::global().misses();
        let a = CgraEngine::from_scenario(&s, 1, &[]).unwrap();
        let _b = CgraEngine::from_scenario(&s, 1, &[]).unwrap();
        let after_misses = cil_cgra::cache::global().misses();
        // Building the same engine twice compiles at most once.
        assert!(
            after_misses - before <= 1,
            "second build must hit the cache"
        );
        assert!(a.compiled().schedule.makespan > 0);
    }

    #[test]
    fn engine_kind_is_object_safe() {
        let s = scenario();
        let mut e: Box<dyn BeamEngine> = EngineKind::Map.build(&s).unwrap();
        let mut out = vec![0.0; e.bunches()];
        assert_eq!(e.step(&s.jumps, &mut out), EngineStep::Measured);
        e.apply_control(10.0, 4);
    }

    #[test]
    fn ramp_engine_reports_loss_on_overdemand() {
        use cil_physics::ramp::Curve;
        let program = RampProgram {
            f_rev: Curve::linear(0.0, 400e3, 0.01, 1.2e6),
            v_hat: Curve::constant(100.0),
        };
        let mut e = RampEngine::new(MachineParams::sis18(), IonSpecies::n14_7plus(), program);
        let jumps = PhaseJumpProgram {
            amplitude_deg: 0.0,
            interval_s: 1e9,
            path_latency_s: 0.0,
        };
        let mut out = [0.0];
        let mut lost = false;
        for _ in 0..200_000 {
            if matches!(e.step(&jumps, &mut out), EngineStep::Lost(_)) {
                lost = true;
                break;
            }
        }
        assert!(lost, "over-demanded ramp must lose the beam");
    }
}
