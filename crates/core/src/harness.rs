//! The shared closed-loop harness.
//!
//! Every executive — turn-level, signal-level, ramp, multi-bunch — runs the
//! same experiment skeleton: step the beam model, watch the jump program
//! toggle, feed the (offset-corrected) mean phase to the beam-phase
//! controller, actuate, record. [`LoopHarness`] owns that skeleton once;
//! the executives in [`crate::hil`], [`crate::ramploop`] and
//! [`crate::multibunch`] reduce to scenario adapters that pick an engine,
//! run the harness, and reshape the [`LoopTrace`] into their result type.

use crate::control::BeamPhaseController;
use crate::engine::{BeamEngine, EngineStep};
use crate::scenario::MdeScenario;
use crate::signalgen::PhaseJumpProgram;

/// Everything one closed-loop run records.
#[derive(Debug, Clone)]
pub struct LoopTrace {
    /// Measurement time of each row, seconds (uniform per revolution for
    /// turn-level engines, detector-event times for the signal level,
    /// ramp-varying for [`crate::engine::RampEngine`]).
    pub times: Vec<f64>,
    /// Per-bunch phase rows, degrees at the RF harmonic (instrumentation
    /// offset included), indexed `[bunch][row]`.
    pub bunch_phase_deg: Vec<Vec<f64>>,
    /// Pickup-average phase per row — what the controller acted on.
    pub mean_phase_deg: Vec<f64>,
    /// Controller actuation after each row, Hz.
    pub control_hz: Vec<f64>,
    /// Times at which the jump program toggled, seconds. A program that
    /// starts displaced (negative path latency) records its first event at
    /// t = 0.
    pub jump_times: Vec<f64>,
    /// False if the engine reported beam loss before the end time.
    pub survived: bool,
}

/// The closed-loop skeleton: controller + jump program + instrumentation
/// offset + trace recording, generic over the [`BeamEngine`] fidelity.
pub struct LoopHarness {
    /// The beam-phase controller (owns the loop-enable flag).
    pub controller: BeamPhaseController,
    /// The AWG jump program handed to the engine each step.
    pub jumps: PhaseJumpProgram,
    /// Constant instrumentation phase offset added to every measurement,
    /// degrees.
    pub instrument_offset_deg: f64,
}

impl LoopHarness {
    /// Harness from parts.
    pub fn new(
        controller: BeamPhaseController,
        jumps: PhaseJumpProgram,
        instrument_offset_deg: f64,
    ) -> Self {
        Self {
            controller,
            jumps,
            instrument_offset_deg,
        }
    }

    /// The scenario's turn-level harness: controller at the revolution
    /// frequency, the scenario's jump program and instrumentation offset.
    pub fn for_scenario(s: &MdeScenario, control_enabled: bool) -> Self {
        let mut controller = BeamPhaseController::new(s.controller, s.f_rev);
        controller.enabled = control_enabled;
        Self::new(controller, s.jumps, s.instrument_offset_deg)
    }

    /// Run the loop until the engine's time reaches `duration_s`.
    pub fn run<E: BeamEngine + ?Sized>(&mut self, engine: &mut E, duration_s: f64) -> LoopTrace {
        self.run_with(engine, duration_s, |_| {})
    }

    /// Like [`Self::run`], calling `observer` after every recorded row —
    /// the hook through which executives capture engine-specific telemetry
    /// (e.g. γ_R and φ_s along a ramp) without widening the trace type.
    pub fn run_with<E, F>(&mut self, engine: &mut E, duration_s: f64, mut observer: F) -> LoopTrace
    where
        E: BeamEngine + ?Sized,
        F: FnMut(&E),
    {
        let bunches = engine.bunches();
        let mut phase = vec![0.0; bunches];
        let mut trace = LoopTrace {
            times: Vec::new(),
            bunch_phase_deg: vec![Vec::new(); bunches],
            mean_phase_deg: Vec::new(),
            control_hz: Vec::new(),
            jump_times: Vec::new(),
            survived: true,
        };
        let mut last_jump = 0.0f64;

        while engine.time() < duration_s {
            let t_pre = engine.time();
            let step = engine.step(&self.jumps, &mut phase);
            // The engine evaluated the jump program for this step at its
            // pre-step time, so an edge is stamped there — a program that
            // starts displaced therefore records its first event at t = 0.
            let applied = engine.applied_jump_deg();
            if applied != last_jump {
                trace.jump_times.push(t_pre);
                last_jump = applied;
            }
            match step {
                EngineStep::Lost => {
                    trace.survived = false;
                    break;
                }
                EngineStep::Idle => continue,
                EngineStep::Measured => {
                    let mut acc = 0.0;
                    for (row, &p) in trace.bunch_phase_deg.iter_mut().zip(&phase) {
                        let deg = p + self.instrument_offset_deg;
                        row.push(deg);
                        acc += deg;
                    }
                    let mean = acc / bunches as f64;
                    trace.times.push(engine.time());
                    trace.mean_phase_deg.push(mean);
                    if let Some(u) = self.controller.push_measurement(mean) {
                        engine.apply_control(u, self.controller.params.decimation);
                    }
                    trace.control_hz.push(self.controller.output());
                    observer(engine);
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, MapEngine};

    fn scenario() -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.02;
        s.bunches = 1;
        s
    }

    #[test]
    fn records_one_row_per_turn() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s);
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert_eq!(trace.times.len(), s.revolutions());
        assert_eq!(trace.mean_phase_deg.len(), trace.control_hz.len());
        assert_eq!(trace.bunch_phase_deg.len(), 1);
        assert!(trace.survived);
    }

    #[test]
    fn displaced_jump_program_records_t0_event() {
        // Regression: a jump program already displaced at t = 0 must put
        // its first event at exactly 0.0, so `jump_times[0]`-based analyses
        // cannot panic or mis-window.
        let mut s = scenario();
        s.duration_s = 1e-3;
        s.jumps = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: -0.06,
        };
        let mut engine = MapEngine::from_scenario(&s);
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert_eq!(trace.jump_times.first().copied(), Some(0.0));
    }

    #[test]
    fn open_loop_never_actuates() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s);
        let mut harness = LoopHarness::for_scenario(&s, false);
        let trace = harness.run(&mut engine, s.duration_s);
        assert!(trace.control_hz.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn observer_sees_every_row() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s);
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut rows = 0usize;
        let trace = harness.run_with(&mut engine, s.duration_s, |_| rows += 1);
        assert_eq!(rows, trace.times.len());
    }

    #[test]
    fn boxed_engine_runs_through_the_harness() {
        let s = scenario();
        let mut engine = EngineKind::Map.build(&s);
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(engine.as_mut(), s.duration_s);
        assert_eq!(trace.times.len(), s.revolutions());
    }
}
