//! The shared closed-loop harness.
//!
//! Every executive — turn-level, signal-level, ramp, multi-bunch — runs the
//! same experiment skeleton: step the beam model, watch the jump program
//! toggle, feed the (offset-corrected) mean phase to the beam-phase
//! controller, actuate, record. [`LoopHarness`] owns that skeleton once;
//! the executives in [`crate::hil`], [`crate::ramploop`] and
//! [`crate::multibunch`] reduce to scenario adapters that pick an engine,
//! run the harness, and reshape the [`LoopTrace`] into their result type.
//!
//! Since the event-core refactor there is exactly **one** loop body,
//! [`LoopHarness::run_dispatch`]: the engine steps in blocks
//! ([`crate::engine::BeamEngine::step_block`]) whose budget is the
//! [`EventQueue::horizon`] — the distance to the next scheduled
//! [`SimEvent`] (controller actuation, checkpoint cadence, observer hook,
//! wall-clock sample, supervisor watchdog). Events fire *between* blocks,
//! in the queue's fixed `(tick, priority, seq)` order, so the recorded
//! trace, audit events and checkpoint bytes are bit-identical for every
//! block size — there is no per-turn fallback any more, not even under an
//! observer hook or an active fault program (fault windows and jump edges
//! are time-keyed and therefore *detected* per step, not queued).
//!
//! The harness also hosts the fault layer: a [`FaultInjector`] corrupts
//! measured rows per the scenario's schedule, and
//! [`LoopHarness::run_supervised`] wraps the loop in a [`LoopSupervisor`] —
//! deadline watchdog, outlier gate, actuation clamp and graceful engine
//! degradation through [`EngineKind::demote`].
//!
//! Telemetry is opt-in via [`LoopHarness::with_telemetry`]: the harness
//! resolves all metric handles up front ([`LoopMetrics`]), records
//! per-revolution wall-clock (sampled every
//! [`crate::telemetry::WALL_SAMPLE_ROWS`] rows via a scheduled
//! [`SimEvent::WallSample`], keeping `Instant::now` off the per-row path),
//! modelled step cost and deadline headroom, folds the finished trace's
//! event log into the counters, and exports the queue's per-kind
//! scheduled/fired tallies ([`LoopMetrics::note_events`]) so the exported
//! numbers always agree with the audit channel.

use crate::checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointError, CheckpointSession, DecodedTrace,
};
use crate::control::BeamPhaseController;
use crate::engine::{BeamEngine, EngineKind, EngineState, EngineStep, StepBlock};
use crate::error::Result;
use crate::event::{EventQueue, SimEvent};
use crate::fault::{
    FaultInjector, FaultProgram, LoopEvent, LoopOutcome, LoopSupervisor, LossCause, StepCalibration,
};
use crate::scenario::MdeScenario;
use crate::signalgen::PhaseJumpProgram;
use crate::telemetry::{LoopMetrics, TelemetryRegistry, WALL_SAMPLE_ROWS};
use cil_physics::constants::TWO_PI;
use std::time::Instant;

/// Everything one closed-loop run records.
#[derive(Debug, Clone)]
pub struct LoopTrace {
    /// Measurement time of each row, seconds (uniform per revolution for
    /// turn-level engines, detector-event times for the signal level,
    /// ramp-varying for [`crate::engine::RampEngine`]).
    pub times: Vec<f64>,
    /// Per-bunch phase rows, degrees at the RF harmonic (instrumentation
    /// offset included), indexed `[bunch][row]`. Rows carry the *raw*
    /// (possibly fault-corrupted) measurements; supervision acts on the
    /// admitted mean.
    pub bunch_phase_deg: Vec<Vec<f64>>,
    /// Pickup-average phase per row — what the controller acted on (the
    /// supervisor's held value when a row was rejected).
    pub mean_phase_deg: Vec<f64>,
    /// Controller actuation after each row, Hz.
    pub control_hz: Vec<f64>,
    /// Times at which the jump program toggled, seconds. A program that
    /// starts displaced (negative path latency) records its first event at
    /// t = 0.
    pub jump_times: Vec<f64>,
    /// Audit channel: every fault activation, rejection, clamp, overrun,
    /// demotion and loss, in order.
    pub events: Vec<LoopEvent>,
    /// How the run ended (loss carries turn index, time and cause).
    pub outcome: LoopOutcome,
}

impl LoopTrace {
    fn empty(bunches: usize) -> Self {
        Self {
            times: Vec::new(),
            bunch_phase_deg: vec![Vec::new(); bunches],
            mean_phase_deg: Vec::new(),
            control_hz: Vec::new(),
            jump_times: Vec::new(),
            events: Vec::new(),
            outcome: LoopOutcome::Survived,
        }
    }

    /// True when the run reached its scheduled end time.
    pub fn survived(&self) -> bool {
        self.outcome.survived()
    }
}

/// The closed-loop skeleton: controller + jump program + instrumentation
/// offset + fault injector + trace recording, generic over the
/// [`BeamEngine`] fidelity.
pub struct LoopHarness {
    /// The beam-phase controller (owns the loop-enable flag).
    pub controller: BeamPhaseController,
    /// The AWG jump program handed to the engine each step.
    pub jumps: PhaseJumpProgram,
    /// Constant instrumentation phase offset added to every measurement,
    /// degrees.
    pub instrument_offset_deg: f64,
    /// Run-time state of the scenario's fault schedule (empty = clean run).
    pub faults: FaultInjector,
    /// Resolved metric handles when telemetry is enabled (None = zero-cost).
    telemetry: Option<LoopMetrics>,
    /// Periodic checkpointing, when configured via
    /// [`Self::with_checkpointing`] (None = no checkpoint I/O at all).
    checkpoint: Option<CheckpointConfig>,
    /// Measured rows per [`StepBlock`] on the batched stepping path
    /// (1 = per-turn stepping; see [`Self::with_block_rows`]).
    block_rows: usize,
}

/// Default measured rows per engine step block — matches the wall-clock
/// sampling cadence, so one block is one wall sample.
pub const DEFAULT_BLOCK_ROWS: usize = WALL_SAMPLE_ROWS as usize;

/// Wall-clock sampler for the hot loop: fired through a scheduled
/// [`SimEvent::WallSample`] every [`WALL_SAMPLE_ROWS`] measured rows, it
/// reads `Instant::now` once per firing and records the per-row average, so
/// the clock read never rivals the cost of a Map-fidelity step.
struct WallSampler {
    histogram: crate::telemetry::Histogram,
    block_start: Instant,
}

impl WallSampler {
    fn new(metrics: &LoopMetrics) -> Self {
        Self {
            histogram: metrics.revolution_wall.clone(),
            block_start: Instant::now(),
        }
    }

    fn sample(&mut self) {
        let now = Instant::now();
        let per_row = now.duration_since(self.block_start).as_secs_f64() / WALL_SAMPLE_ROWS as f64;
        self.histogram.observe(per_row);
        self.block_start = now;
    }
}

/// Continuable cursor for the dispatch loop: an existing trace prefix
/// (empty for a fresh run, restored for a resume or a previous time slice)
/// plus the jump level it left off at. [`LoopHarness::run_dispatch`] both
/// consumes and returns one, so slice-based callers (the
/// [`crate::session`] executor) can feed the next slice from exactly where
/// the last one stopped.
pub(crate) struct RunCursor {
    pub(crate) trace: LoopTrace,
    pub(crate) last_jump: f64,
}

impl RunCursor {
    /// Fresh cursor: empty trace, jump program at its rest level.
    pub(crate) fn fresh(bunches: usize) -> Self {
        Self {
            trace: LoopTrace::empty(bunches),
            last_jump: 0.0,
        }
    }
}

/// How the dispatch loop holds its engine. The supervised path must be
/// able to *rebuild* the engine mid-run (watchdog demotion swaps the
/// fidelity); the plain path borrows a caller-built engine whose
/// [`EngineKind`] it cannot know, so rebuilding is a config error there.
trait EngineSlot {
    type E: BeamEngine + ?Sized;
    fn engine(&mut self) -> &mut Self::E;
    fn rebuild(&mut self, to: EngineKind, scenario: &MdeScenario) -> Result<()>;
}

/// A caller-owned engine: steppable, never rebuildable.
struct BorrowedEngine<'a, E: BeamEngine + ?Sized>(&'a mut E);

impl<E: BeamEngine + ?Sized> EngineSlot for BorrowedEngine<'_, E> {
    type E = E;
    fn engine(&mut self) -> &mut E {
        self.0
    }
    fn rebuild(&mut self, _to: EngineKind, _scenario: &MdeScenario) -> Result<()> {
        Err(crate::error::CilError::InvalidConfig(
            "engine demotion requires an owned engine (run_supervised)".into(),
        ))
    }
}

/// A harness-owned boxed engine: the supervised path, free to swap
/// fidelities.
struct OwnedEngine(Box<dyn BeamEngine>);

impl EngineSlot for OwnedEngine {
    type E = dyn BeamEngine;
    fn engine(&mut self) -> &mut (dyn BeamEngine + 'static) {
        self.0.as_mut()
    }
    fn rebuild(&mut self, to: EngineKind, scenario: &MdeScenario) -> Result<()> {
        self.0 = to.build(scenario)?;
        Ok(())
    }
}

/// A caller-leased boxed engine (the session executor's arena lease):
/// steppable *and* rebuildable in place — a watchdog demotion swaps the
/// box, so the caller sees the new fidelity when the slice returns.
struct LeasedEngine<'a>(&'a mut Box<dyn BeamEngine>);

impl EngineSlot for LeasedEngine<'_> {
    type E = dyn BeamEngine;
    fn engine(&mut self) -> &mut (dyn BeamEngine + 'static) {
        self.0.as_mut()
    }
    fn rebuild(&mut self, to: EngineKind, scenario: &MdeScenario) -> Result<()> {
        *self.0 = to.build(scenario)?;
        Ok(())
    }
}

/// An executive observer hook with its row cadence (1 = see every row).
struct ObserverHook<'a, E: ?Sized> {
    hook: &'a mut dyn FnMut(&E),
    every_rows: u64,
}

/// Supervision context threaded through the dispatch loop. The fidelity
/// and control-phase mirror are borrowed, not owned: a demotion mid-run
/// mutates them, and slice-based callers need the updated values back to
/// seed the next slice.
struct SupCtx<'a> {
    supervisor: &'a mut LoopSupervisor,
    scenario: &'a MdeScenario,
    kind: &'a mut EngineKind,
    /// Mirror of the engine's accumulated control phase, so a freshly
    /// built engine can be seeded mid-run after a demotion.
    ctrl_phase_rad: &'a mut f64,
    t_rev: f64,
}

/// Measured rows before the watchdog could possibly intervene: it counts
/// *consecutive* bad rows, so it cannot fire before `max_consecutive_bad -
/// bad_streak` more rows have passed. Floored at 1 so the loop always makes
/// progress.
fn watchdog_headroom(supervisor: &LoopSupervisor) -> u64 {
    u64::from(
        supervisor
            .config
            .max_consecutive_bad
            .saturating_sub(supervisor.bad_streak())
            .max(1),
    )
}

impl LoopHarness {
    /// Harness from parts (no faults scheduled).
    pub fn new(
        controller: BeamPhaseController,
        jumps: PhaseJumpProgram,
        instrument_offset_deg: f64,
    ) -> Self {
        Self {
            controller,
            jumps,
            instrument_offset_deg,
            faults: FaultInjector::none(),
            telemetry: None,
            checkpoint: None,
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }

    /// The scenario's turn-level harness: controller at the revolution
    /// frequency, the scenario's jump program, instrumentation offset and
    /// fault schedule.
    pub fn for_scenario(s: &MdeScenario, control_enabled: bool) -> Self {
        let mut controller = BeamPhaseController::new(s.controller, s.f_rev);
        controller.enabled = control_enabled;
        let mut harness = Self::new(controller, s.jumps, s.instrument_offset_deg);
        harness.faults = FaultInjector::new(s.faults.clone());
        harness
    }

    /// Replace the fault schedule (builder style).
    pub fn with_fault_program(mut self, program: FaultProgram) -> Self {
        self.faults = FaultInjector::new(program);
        self
    }

    /// Record run metrics into `registry` (builder style). All handles are
    /// resolved here, once — the run loops only touch atomics.
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = Some(LoopMetrics::register(registry));
        self
    }

    /// Measured rows per engine step block (builder style; 1 reproduces
    /// per-turn stepping, 0 is an [`crate::error::CilError::InvalidConfig`]
    /// error). Blocks amortise per-revolution harness overhead; the event
    /// queue caps every block at the next scheduled event
    /// ([`EventQueue::horizon`]) — controller actuation, checkpoint
    /// cadence, observer hook, wall sample, watchdog — so the recorded
    /// trace, events and checkpoint bytes are bit-identical for every
    /// block size.
    pub fn with_block_rows(mut self, rows: usize) -> Result<Self> {
        if rows == 0 {
            return Err(crate::error::CilError::InvalidConfig(
                "block size (measured rows per step block) must be >= 1".into(),
            ));
        }
        self.block_rows = rows;
        Ok(self)
    }

    /// Checkpoint periodically into `config.dir` (builder style). Only
    /// [`Self::run_checkpointed`], [`Self::run_supervised`] and the
    /// `resume_*` entry points honour this — plain [`Self::run`] takes an
    /// already-built engine whose [`EngineKind`] it cannot know, so it
    /// could not rebuild the engine on resume and therefore never
    /// checkpoints. The configuration is validated (non-zero cadence and
    /// retention) by those entry points.
    pub fn with_checkpointing(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint = Some(config);
        self
    }

    /// Run the loop until the engine's time reaches `duration_s`.
    pub fn run<E: BeamEngine + ?Sized>(&mut self, engine: &mut E, duration_s: f64) -> LoopTrace {
        let cursor = RunCursor::fresh(engine.bunches());
        let mut slot = BorrowedEngine(engine);
        self.run_dispatch(&mut slot, duration_s, None, cursor, None, None, None)
            .expect("unsupervised run never rebuilds the engine")
            .trace
    }

    /// Like [`Self::run`], calling `observer` after every recorded row —
    /// the hook through which executives capture engine-specific telemetry
    /// (e.g. γ_R and φ_s along a ramp) without widening the trace type.
    /// A cadence-1 observer must see the engine *at* each row, so the
    /// scheduled [`SimEvent::Observer`] caps every block at one measured
    /// row. For a cheaper sampled view use [`Self::run_with_every`].
    pub fn run_with<E, F>(&mut self, engine: &mut E, duration_s: f64, observer: F) -> LoopTrace
    where
        E: BeamEngine + ?Sized,
        F: FnMut(&E),
    {
        self.run_with_every(engine, duration_s, 1, observer)
            .expect("cadence 1 is always valid and the run never rebuilds the engine")
    }

    /// Like [`Self::run_with`], but the observer fires only every
    /// `every_rows` measured rows (as a scheduled [`SimEvent::Observer`],
    /// so blocks stay as large as the cadence allows — the trace itself is
    /// bit-identical to [`Self::run`] at any cadence). `every_rows = 0` is
    /// an [`crate::error::CilError::InvalidConfig`] error.
    pub fn run_with_every<E, F>(
        &mut self,
        engine: &mut E,
        duration_s: f64,
        every_rows: u64,
        mut observer: F,
    ) -> Result<LoopTrace>
    where
        E: BeamEngine + ?Sized,
        F: FnMut(&E),
    {
        if every_rows == 0 {
            return Err(crate::error::CilError::InvalidConfig(
                "observer cadence (every_rows) must be >= 1 row".into(),
            ));
        }
        let cursor = RunCursor::fresh(engine.bunches());
        let mut slot = BorrowedEngine(engine);
        let hook = ObserverHook {
            hook: &mut observer,
            every_rows,
        };
        self.run_dispatch(&mut slot, duration_s, Some(hook), cursor, None, None, None)
            .map(|c| c.trace)
    }

    /// The single loop body every entry point funnels into. Steps the
    /// engine in blocks whose budget is the event queue's horizon, records
    /// rows, and dispatches due [`SimEvent`]s between blocks in the queue's
    /// fixed total order. Continuable: starts from an existing trace prefix
    /// (the resume path), checkpoints through `ckpt` when one is attached,
    /// and supervises through `sup` when attached.
    ///
    /// Fault windows and jump-program toggles are keyed to *engine time*
    /// (non-uniform for ramp and signal-level engines), so their edges are
    /// detected per step rather than queued; the queue carries their fired
    /// tallies ([`SimEvent::FaultEdge`], [`SimEvent::JumpEdge`]). A forced
    /// beam loss is checked exactly where per-turn stepping would have
    /// checked it: at the block's first step and at every step following a
    /// measured row — those positions are precisely the block boundaries of
    /// the old budget-1 stepping under an active fault program.
    ///
    /// `limit_rows` is the cooperative time-slice budget: an *absolute* cap
    /// on the trace's row count at which the loop returns early (engine and
    /// peripheral state left live, telemetry not yet folded). A slice
    /// boundary is just an extra block boundary, so the recorded trace,
    /// events and checkpoint bytes are bit-identical whether or not a run
    /// was sliced.
    #[allow(clippy::too_many_arguments)]
    fn run_dispatch<S: EngineSlot>(
        &mut self,
        slot: &mut S,
        duration_s: f64,
        mut observer: Option<ObserverHook<'_, S::E>>,
        start: RunCursor,
        limit_rows: Option<u64>,
        mut ckpt: Option<CkptRun<'_>>,
        mut sup: Option<SupCtx<'_>>,
    ) -> Result<RunCursor> {
        let RunCursor {
            mut trace,
            mut last_jump,
        } = start;
        let bunches = slot.engine().bunches();
        let mut wall = self.telemetry.as_ref().map(WallSampler::new);
        let mut block = StepBlock::new();
        let mut queue = EventQueue::new();

        // Seed the queue. The tick domain is the count of measured trace
        // rows, so on resume `rows0` restarts every cadence exactly where
        // the interrupted run left it and the seeded history reconstructs
        // the prefix's tallies — a resumed run exports the same totals as
        // an uninterrupted one.
        let rows0 = trace.times.len() as u64;
        let decimation = u64::from(self.controller.params.decimation);
        let until_actuation = u64::from(self.controller.rows_until_actuation());
        // Actuations completed so far: the accumulator advances on every
        // row regardless of the enable flag, so this is pure row counting.
        let acted = (rows0 + until_actuation).saturating_sub(decimation) / decimation;
        queue.seed_history(SimEvent::Actuation, acted, acted);
        queue.schedule(SimEvent::Actuation, rows0 + until_actuation);
        queue.seed_history(SimEvent::JumpEdge, 0, trace.jump_times.len() as u64);
        let fault_edges0 = trace
            .events
            .iter()
            .filter(|e| matches!(e, LoopEvent::FaultActive { .. }))
            .count() as u64;
        queue.seed_history(SimEvent::FaultEdge, 0, fault_edges0);
        if let Some(obs) = &observer {
            let seen = rows0 / obs.every_rows;
            queue.seed_history(SimEvent::Observer, seen, seen);
            queue.schedule(SimEvent::Observer, rows0 + obs.every_rows);
        }
        if wall.is_some() {
            let sampled = rows0 / WALL_SAMPLE_ROWS;
            queue.seed_history(SimEvent::WallSample, sampled, sampled);
            queue.schedule(SimEvent::WallSample, rows0 + WALL_SAMPLE_ROWS);
        }
        if let Some(c) = ckpt.as_ref() {
            let every = self
                .checkpoint
                .as_ref()
                .map_or(1, |cfg| cfg.every_turns.max(1)) as u64;
            let written = rows0 / every;
            queue.seed_history(SimEvent::Checkpoint, written, written);
            let until = c.session.rows_until_due(rows0 as usize) as u64;
            queue.schedule(SimEvent::Checkpoint, rows0.saturating_add(until));
        }
        if let Some(s) = sup.as_ref() {
            let demoted = trace
                .events
                .iter()
                .filter(|e| matches!(e, LoopEvent::EngineDemoted { .. }))
                .count() as u64;
            queue.seed_history(SimEvent::Watchdog, demoted, demoted);
            queue.schedule(SimEvent::Watchdog, rows0 + watchdog_headroom(s.supervisor));
        }

        'run: while slot.engine().time() < duration_s
            && limit_rows.is_none_or(|l| (trace.times.len() as u64) < l)
        {
            // The watchdog's earliest possible intervention moves with the
            // live bad-streak; reposition (not re-schedule — the tallies
            // must not depend on block boundaries) before sizing the block.
            if let Some(s) = sup.as_ref() {
                queue.defer(
                    SimEvent::Watchdog,
                    trace.times.len() as u64 + watchdog_headroom(s.supervisor),
                );
            }
            let rows_now = trace.times.len() as u64;
            let mut budget = queue.horizon(rows_now, self.block_rows);
            if let Some(l) = limit_rows {
                // The loop condition guarantees l > rows_now, so the capped
                // budget stays >= 1 and the block always makes progress.
                budget = budget.min((l - rows_now) as usize);
            }
            slot.engine()
                .step_block(&self.jumps, duration_s, budget, &mut block);

            let rows = block.rows();
            trace.times.reserve(rows);
            trace.mean_phase_deg.reserve(rows);
            trace.control_hz.reserve(rows);
            for col in trace.bunch_phase_deg.iter_mut() {
                col.reserve(rows);
            }
            let mut row = 0usize;
            // Forced-loss eligibility: true at the block's first step and
            // at every step following a measured row — exactly the block
            // boundaries per-turn stepping would have checked at.
            let mut check_loss = true;
            for i in 0..block.steps().len() {
                let step = block.steps()[i];
                let turn = trace.times.len();
                if check_loss
                    && !self.faults.program.is_empty()
                    && self.faults.forced_loss_at(step.t_pre)
                {
                    trace.outcome = LoopOutcome::Lost {
                        turn,
                        time_s: step.t_pre,
                        cause: LossCause::Injected,
                    };
                    trace.events.push(LoopEvent::BeamLost {
                        turn,
                        time_s: step.t_pre,
                        cause: LossCause::Injected,
                    });
                    break 'run;
                }
                check_loss = false;
                // The engine evaluated the jump program for this step at
                // its pre-step time, so an edge is stamped there — a
                // program that starts displaced therefore records its first
                // event at t = 0.
                if step.jump_deg != last_jump {
                    trace.jump_times.push(step.t_pre);
                    last_jump = step.jump_deg;
                    queue.count_fired(SimEvent::JumpEdge);
                }
                match step.result {
                    EngineStep::Lost(cause) => {
                        let time_s = step.t_post;
                        // A garbage-producing engine is demotable; injected
                        // or physical losses are not. A loss ends the block
                        // early, so a demotion resumes stepping from the
                        // fresh engine immediately (the post-block dispatch
                        // is a no-op: the loss row precedes every armed
                        // tick).
                        if let Some(s) = sup.as_mut() {
                            if cause == LossCause::NonFinitePhase
                                && s.supervisor.config.allow_demotion
                            {
                                if let Some(to) = s.kind.demote() {
                                    trace.events.push(LoopEvent::EngineDemoted {
                                        turn,
                                        time_s,
                                        from: *s.kind,
                                        to,
                                    });
                                    // The cavity plant's dynamic state
                                    // (compensation boost, integrated detune
                                    // phase) survives the fidelity swap — the
                                    // fault degrades the *plant*, not the
                                    // model of it.
                                    let cavity = slot.engine().cavity_state();
                                    slot.rebuild(to, s.scenario)?;
                                    slot.engine().seed_state(time_s, *s.ctrl_phase_rad);
                                    slot.engine().restore_cavity(&cavity);
                                    *s.kind = to;
                                    s.supervisor.reset_watchdog();
                                    queue.count_fired(SimEvent::Watchdog);
                                    queue.schedule(
                                        SimEvent::Watchdog,
                                        trace.times.len() as u64 + watchdog_headroom(s.supervisor),
                                    );
                                    break;
                                }
                            }
                        }
                        trace.outcome = LoopOutcome::Lost {
                            turn,
                            time_s,
                            cause,
                        };
                        trace.events.push(LoopEvent::BeamLost {
                            turn,
                            time_s,
                            cause,
                        });
                        break 'run;
                    }
                    EngineStep::Idle => {
                        if let Some(m) = &self.telemetry {
                            m.idle_steps.inc();
                        }
                    }
                    EngineStep::Measured => {
                        let time_s = step.t_post;
                        let mut overrun = false;
                        if let Some(s) = sup.as_mut() {
                            // Deadline accounting: one measured row = one
                            // revolution of wall-clock budget.
                            let modeled = s.supervisor.model_step_seconds(
                                *s.kind,
                                self.faults.overrun_factor_at(step.t_pre),
                            );
                            overrun = modeled > s.supervisor.config.deadline_s;
                            if let Some(m) = &self.telemetry {
                                m.step_modeled.observe(modeled);
                                m.deadline_headroom
                                    .observe((s.supervisor.config.deadline_s - modeled).max(0.0));
                            }
                            if overrun {
                                trace.events.push(LoopEvent::DeadlineOverrun {
                                    turn,
                                    time_s,
                                    budget_s: s.supervisor.config.deadline_s,
                                    modeled_s: modeled,
                                });
                            }
                        }

                        let phase = block.phase_row_mut(row);
                        row += 1;
                        let events_before = trace.events.len();
                        self.faults
                            .apply_row(turn, time_s, phase, &mut trace.events);
                        let fault_edges = trace.events[events_before..]
                            .iter()
                            .filter(|e| matches!(e, LoopEvent::FaultActive { .. }))
                            .count();
                        for _ in 0..fault_edges {
                            queue.count_fired(SimEvent::FaultEdge);
                        }
                        let mut acc = 0.0;
                        for (col, &p) in trace.bunch_phase_deg.iter_mut().zip(phase.iter()) {
                            let deg = p + self.instrument_offset_deg;
                            col.push(deg);
                            acc += deg;
                        }
                        let mean = acc / bunches as f64;
                        match sup.as_mut() {
                            None => {
                                trace.times.push(time_s);
                                trace.mean_phase_deg.push(mean);
                                if let Some(u) = self.controller.push_measurement(mean) {
                                    slot.engine()
                                        .apply_control(u, self.controller.params.decimation);
                                }
                                trace.control_hz.push(self.controller.output());
                            }
                            Some(s) => {
                                let admission = s.supervisor.admit(mean);
                                if admission.rejected {
                                    trace.events.push(LoopEvent::OutlierRejected {
                                        turn,
                                        time_s,
                                        measured_deg: mean,
                                        held_deg: admission.value_deg,
                                    });
                                }
                                trace.times.push(time_s);
                                trace.mean_phase_deg.push(admission.value_deg);
                                if let Some(ctrl) = self.controller.push_measurement_limited(
                                    admission.value_deg,
                                    s.supervisor.config.max_actuation_hz,
                                ) {
                                    if ctrl.clamped {
                                        trace.events.push(LoopEvent::ActuationClamped {
                                            turn,
                                            time_s,
                                            raw_hz: ctrl.raw_hz,
                                            limit_hz: ctrl.limit_hz,
                                        });
                                    }
                                    let decimation = self.controller.params.decimation;
                                    slot.engine().apply_control(ctrl.actuation_hz, decimation);
                                    *s.ctrl_phase_rad += TWO_PI
                                        * ctrl.actuation_hz
                                        * s.t_rev
                                        * f64::from(decimation);
                                }
                                trace.control_hz.push(self.controller.output());

                                // Watchdog: consecutive bad steps demote
                                // (or, with no fidelity left, lose the
                                // beam). Every intervention counts as one
                                // watchdog firing; a demotion does *not*
                                // end the block — the remaining pre-stepped
                                // rows belonged to the old engine and are
                                // simply discarded by the budget math, so
                                // the post-block dispatch runs against the
                                // fresh engine exactly as per-turn stepping
                                // would.
                                if s.supervisor.note_step(overrun || admission.rejected) {
                                    queue.count_fired(SimEvent::Watchdog);
                                    let demoted = if s.supervisor.config.allow_demotion {
                                        s.kind.demote()
                                    } else {
                                        None
                                    };
                                    match demoted {
                                        Some(to) => {
                                            trace.events.push(LoopEvent::EngineDemoted {
                                                turn,
                                                time_s,
                                                from: *s.kind,
                                                to,
                                            });
                                            let cavity = slot.engine().cavity_state();
                                            slot.rebuild(to, s.scenario)?;
                                            slot.engine().seed_state(time_s, *s.ctrl_phase_rad);
                                            slot.engine().restore_cavity(&cavity);
                                            *s.kind = to;
                                            s.supervisor.reset_watchdog();
                                            queue.schedule(
                                                SimEvent::Watchdog,
                                                trace.times.len() as u64
                                                    + watchdog_headroom(s.supervisor),
                                            );
                                        }
                                        None => {
                                            trace.outcome = LoopOutcome::Lost {
                                                turn,
                                                time_s,
                                                cause: LossCause::Watchdog,
                                            };
                                            trace.events.push(LoopEvent::BeamLost {
                                                turn,
                                                time_s,
                                                cause: LossCause::Watchdog,
                                            });
                                            break 'run;
                                        }
                                    }
                                }
                            }
                        }
                        check_loss = true;
                    }
                }
            }

            // Dispatch everything that fell due on the block's last row, in
            // the queue's fixed (tick, priority, seq) order. The horizon
            // guarantees no event tick lies strictly inside the block, so
            // an early break above can never have skipped a due event.
            let rows_now = trace.times.len() as u64;
            while let Some(kind) = queue.pop_due(rows_now) {
                match kind {
                    SimEvent::Actuation => {
                        // The control output itself was applied on the row
                        // (bit-identity demands it); the event is the
                        // cadence bookkeeping and the horizon constraint.
                        queue.count_fired(SimEvent::Actuation);
                        // Cavity degradation ladder, one tick per completed
                        // actuation: observe the effective gap-voltage scale
                        // on the audit channel, latch sag episodes, and push
                        // any changed compensation command to the plant and
                        // the controller. Healthy plant + policy `None` is a
                        // strict no-op (no events, no commands, no RNG), so
                        // cavity-free supervised runs are bit-identical to
                        // before. The horizon pins this tick to a block
                        // boundary, so the observed scale — and with it the
                        // whole ladder — is block-size invariant.
                        if let Some(s) = sup.as_mut() {
                            let eff = slot.engine().cavity_voltage_scale();
                            if let Some((boost, gain)) = s.supervisor.observe_cavity(
                                rows_now as usize,
                                slot.engine().time(),
                                eff,
                                &mut trace.events,
                            ) {
                                slot.engine().command_voltage(boost);
                                self.controller.set_gain_scale(gain);
                            }
                        }
                        queue.schedule(
                            SimEvent::Actuation,
                            rows_now + u64::from(self.controller.rows_until_actuation()),
                        );
                    }
                    SimEvent::Observer => {
                        queue.count_fired(SimEvent::Observer);
                        let obs = observer
                            .as_mut()
                            .expect("observer event armed without a hook");
                        (obs.hook)(slot.engine());
                        queue.schedule(SimEvent::Observer, rows_now + obs.every_rows);
                    }
                    SimEvent::WallSample => {
                        queue.count_fired(SimEvent::WallSample);
                        if let Some(w) = &mut wall {
                            w.sample();
                        }
                        queue.schedule(SimEvent::WallSample, rows_now + WALL_SAMPLE_ROWS);
                    }
                    SimEvent::Checkpoint => {
                        queue.count_fired(SimEvent::Checkpoint);
                        let c = ckpt
                            .as_mut()
                            .expect("checkpoint event armed without a session");
                        let t0 = Instant::now();
                        let ck = Checkpoint {
                            turn: 0,
                            time_s: slot.engine().time(),
                            supervised: sup.is_some(),
                            kind: sup.as_ref().map_or(c.kind, |s| *s.kind),
                            bunches: bunches as u32,
                            engine: slot.engine().save_state(),
                            controller: self.controller.state(),
                            injector: self.faults.state(),
                            supervisor: sup.as_ref().map(|s| s.supervisor.state()),
                            ctrl_phase_rad: sup.as_ref().map_or(0.0, |s| *s.ctrl_phase_rad),
                            last_jump_deg: last_jump,
                            rows: 0,
                            events: 0,
                            jumps: 0,
                            log_bytes: 0,
                            telemetry: self
                                .telemetry
                                .as_ref()
                                .map(LoopMetrics::checkpoint_snapshot),
                        };
                        c.session.checkpoint(&trace, move || ck);
                        if let Some(m) = &self.telemetry {
                            m.checkpoint_writes.inc();
                            m.checkpoint_write_wall.observe(t0.elapsed().as_secs_f64());
                        }
                        // A latched write error pushes the next due row to
                        // usize::MAX — the event stays armed but never
                        // fires again.
                        let until = c.session.rows_until_due(rows_now as usize) as u64;
                        queue.schedule(SimEvent::Checkpoint, rows_now.saturating_add(until));
                    }
                    // A watchdog check that reached its tick found nothing
                    // to do (interventions are counted inline where they
                    // happen); the marker keeps the horizon honest and is
                    // repositioned at the top of the loop.
                    SimEvent::Watchdog => {}
                    SimEvent::FaultEdge | SimEvent::JumpEdge => {
                        unreachable!("time-keyed edges are detected per step, never queued")
                    }
                }
            }
        }
        // Telemetry folds exactly once, at run completion. A cooperative
        // slice that stopped on its row budget comes through here again on
        // a later slice — folding the (whole-prefix-derived) trace counters
        // per slice would double-count them.
        let completed = !trace.outcome.survived() || slot.engine().time() >= duration_s;
        if completed {
            if let Some(m) = &self.telemetry {
                m.note_trace(&trace);
                slot.engine().sample_telemetry(&m.registry);
                m.note_events(&queue, ckpt.is_some());
            }
        }
        Ok(RunCursor { trace, last_jump })
    }

    /// One cooperative time slice of a *supervised* closed loop: continue
    /// from `cursor` until the trace reaches `limit_rows` rows, the engine
    /// reaches `duration_s`, or the beam is lost — whichever comes first.
    ///
    /// The caller owns every piece of loop state (leased engine, fidelity,
    /// supervisor, control-phase mirror, cursor), so a fleet executor can
    /// persist it between slices, migrate it across worker threads, or
    /// evict it to checkpoint bytes. A slice boundary is just an extra
    /// block boundary, so the trace, audit events and deterministic
    /// telemetry are bit-identical to an unsliced [`Self::run_supervised`].
    /// A watchdog demotion rebuilds the engine *in the caller's box* and
    /// updates `kind` — the caller must then treat the lease as a fresh
    /// build (an arena may not re-admit it under the old key).
    ///
    /// No startup calibration is measured here (a thousand-session fleet
    /// must not pay a scratch engine per session); the supervisor's
    /// hard-coded per-fidelity step model is in force unless the caller
    /// seeded a calibration itself. Telemetry (when attached) folds only on
    /// the slice that completes the run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_supervised_slice(
        &mut self,
        engine: &mut Box<dyn BeamEngine>,
        scenario: &MdeScenario,
        kind: &mut EngineKind,
        ctrl_phase_rad: &mut f64,
        supervisor: &mut LoopSupervisor,
        duration_s: f64,
        limit_rows: u64,
        cursor: RunCursor,
    ) -> Result<RunCursor> {
        let t_rev = 1.0 / scenario.f_rev;
        let mut slot = LeasedEngine(engine);
        let sup = SupCtx {
            supervisor,
            scenario,
            kind,
            ctrl_phase_rad,
            t_rev,
        };
        self.run_dispatch(
            &mut slot,
            duration_s,
            None,
            cursor,
            Some(limit_rows),
            None,
            Some(sup),
        )
    }

    /// Resolved metric handles, when telemetry is attached — the session
    /// executor snapshots mid-run deterministic telemetry into eviction
    /// bytes through this.
    pub(crate) fn metrics(&self) -> Option<&LoopMetrics> {
        self.telemetry.as_ref()
    }

    /// Run an unsupervised closed loop with periodic checkpointing (the
    /// configuration from [`Self::with_checkpointing`]). Takes the
    /// [`EngineKind`] rather than a built engine so [`Self::resume_from`]
    /// can rebuild the same fidelity later. Without a checkpoint
    /// configuration this is just [`Self::run`] on a freshly built engine.
    ///
    /// Checkpoint write failures do not abort the loop — checkpointing is
    /// disabled for the rest of the run and the first failure is returned
    /// as an error after the (complete) run, with the trace lost to the
    /// caller; treat that as "the run succeeded but is not resumable".
    pub fn run_checkpointed(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
        duration_s: f64,
    ) -> Result<LoopTrace> {
        let mut engine = kind.build(scenario)?;
        self.run_checkpointed_with(engine.as_mut(), kind, duration_s)
    }

    /// [`Self::run_checkpointed`] over a caller-built engine — for callers
    /// that retune an engine before the run (e.g. a [`RefTrackEngine`] with
    /// a non-default worker configuration driving the intra-step parallel
    /// path). `kind` must describe the engine so a later [`Self::resume_from`]
    /// rebuilds a compatible one; the engine fidelities guarantee any
    /// worker configuration replays to bit-identical traces.
    pub fn run_checkpointed_with(
        &mut self,
        engine: &mut dyn BeamEngine,
        kind: EngineKind,
        duration_s: f64,
    ) -> Result<LoopTrace> {
        let Some(cfg) = self.checkpoint.clone() else {
            return Ok(self.run(engine, duration_s));
        };
        cfg.validate()?;
        let mut session = CheckpointSession::begin(&cfg).map_err(crate::error::CilError::from)?;
        let cursor = RunCursor::fresh(engine.bunches());
        let mut slot = BorrowedEngine(engine);
        let cursor = self.run_dispatch(
            &mut slot,
            duration_s,
            None,
            cursor,
            None,
            Some(CkptRun {
                session: &mut session,
                kind,
            }),
            None,
        )?;
        session.into_result()?;
        Ok(cursor.trace)
    }

    /// Resume an unsupervised run from the newest good checkpoint in the
    /// configured directory and carry it to `duration_s`.
    ///
    /// Corrupted or truncated snapshots newer than the chosen one are each
    /// audited as a [`LoopEvent::CheckpointRejected`] (stamped with the
    /// fallback snapshot's turn/time) in the returned trace. The resumed
    /// trace's rows, events and jump times are bit-identical to an
    /// uninterrupted run's.
    pub fn resume_from(&mut self, scenario: &MdeScenario, duration_s: f64) -> Result<LoopTrace> {
        let cfg = self.checkpoint.clone().ok_or_else(|| {
            crate::error::CilError::InvalidConfig("resume_from requires with_checkpointing".into())
        })?;
        cfg.validate()?;
        let resumed = CheckpointSession::resume(&cfg).map_err(crate::error::CilError::from)?;
        let ck = &resumed.checkpoint;
        if ck.supervised {
            return Err(CheckpointError::Incompatible(
                "checkpoint was written by a supervised run; use resume_supervised_from",
            )
            .into());
        }
        let mut engine = ck.kind.build(scenario)?;
        let trace = self.restore_common(engine.as_mut(), ck, &resumed.trace, resumed.rejected)?;
        let last_jump = ck.last_jump_deg;
        let kind = ck.kind;
        let mut session = resumed.session;
        let mut slot = BorrowedEngine(engine.as_mut());
        let cursor = self.run_dispatch(
            &mut slot,
            duration_s,
            None,
            RunCursor { trace, last_jump },
            None,
            Some(CkptRun {
                session: &mut session,
                kind,
            }),
            None,
        )?;
        session.into_result()?;
        Ok(cursor.trace)
    }

    /// Shared resume plumbing: apply the snapshot to the engine,
    /// controller, fault injector and telemetry, and rebuild the trace
    /// prefix (with one [`LoopEvent::CheckpointRejected`] appended per
    /// snapshot that had to be discarded during recovery).
    fn restore_common<E: BeamEngine + ?Sized>(
        &mut self,
        engine: &mut E,
        ck: &Checkpoint,
        decoded: &DecodedTrace,
        rejected: usize,
    ) -> Result<LoopTrace> {
        if ck.bunches as usize != engine.bunches() {
            return Err(
                CheckpointError::Incompatible("bunch count differs from the scenario").into(),
            );
        }
        if !engine.restore_state(&ck.engine) {
            return Err(
                CheckpointError::Incompatible("engine state does not fit the scenario").into(),
            );
        }
        if !self.controller.restore(&ck.controller) {
            return Err(CheckpointError::Incompatible(
                "controller state does not fit the scenario",
            )
            .into());
        }
        if !self.faults.restore(&ck.injector) {
            return Err(CheckpointError::Incompatible(
                "fault-injector state does not fit the scenario's fault program",
            )
            .into());
        }
        if let (Some(m), Some(t)) = (&self.telemetry, &ck.telemetry) {
            if !m.restore_checkpoint(t) {
                return Err(
                    CheckpointError::Incompatible("telemetry histogram shape changed").into(),
                );
            }
        }
        let mut trace = trace_from_decoded(decoded.clone(), engine.bunches());
        for _ in 0..rejected {
            trace.events.push(LoopEvent::CheckpointRejected {
                turn: ck.turn as usize,
                time_s: ck.time_s,
            });
        }
        Ok(trace)
    }

    /// Run the loop under a [`LoopSupervisor`]: a per-revolution deadline
    /// budget (wall-clock modelled per fidelity, stretched by scheduled
    /// overrun faults), outlier rejection with hold-last-good, actuation
    /// clamping with anti-windup, and a watchdog that demotes the engine
    /// fidelity through [`EngineKind::demote`] instead of aborting — the
    /// loop stays closed across the swap, carrying the accumulated control
    /// phase into the fresh engine via [`BeamEngine::seed_state`].
    ///
    /// Owns engine construction (it may rebuild mid-run), so it takes the
    /// [`EngineKind`] rather than a built engine.
    ///
    /// When checkpointing is configured ([`Self::with_checkpointing`]) the
    /// supervised loop checkpoints inline at the configured cadence —
    /// including across demotions (the snapshot records the fidelity
    /// *currently running*). A checkpoint write failure disables further
    /// checkpointing and surfaces as an error after the complete run.
    pub fn run_supervised(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
        duration_s: f64,
        supervisor: &mut LoopSupervisor,
    ) -> Result<LoopTrace> {
        let mut session = match self.checkpoint.clone() {
            Some(cfg) => {
                cfg.validate()?;
                Some(CheckpointSession::begin(&cfg).map_err(crate::error::CilError::from)?)
            }
            None => None,
        };
        let trace = self.run_supervised_core(
            scenario,
            kind,
            duration_s,
            supervisor,
            session.as_mut(),
            None,
        )?;
        if let Some(s) = session {
            s.into_result()?;
        }
        Ok(trace)
    }

    /// Resume a supervised run from the newest good checkpoint and carry
    /// it to `duration_s`. The supervisor is restored from the snapshot
    /// (including its warmup calibration, so no re-calibration happens —
    /// the resumed run stays bit-identical to an uninterrupted one).
    pub fn resume_supervised_from(
        &mut self,
        scenario: &MdeScenario,
        duration_s: f64,
        supervisor: &mut LoopSupervisor,
    ) -> Result<LoopTrace> {
        let cfg = self.checkpoint.clone().ok_or_else(|| {
            crate::error::CilError::InvalidConfig(
                "resume_supervised_from requires with_checkpointing".into(),
            )
        })?;
        cfg.validate()?;
        let resumed = CheckpointSession::resume(&cfg).map_err(crate::error::CilError::from)?;
        let ck = resumed.checkpoint.clone();
        if !ck.supervised {
            return Err(CheckpointError::Incompatible(
                "checkpoint was written by an unsupervised run; use resume_from",
            )
            .into());
        }
        let Some(sup_state) = &ck.supervisor else {
            return Err(
                CheckpointError::Malformed("supervised checkpoint lacks supervisor state").into(),
            );
        };
        supervisor.restore(sup_state);
        // The trace prefix and peripheral state are restored against a
        // scratch engine build; run_supervised_core owns the real engine
        // (it may rebuild it mid-run) and re-applies the engine state
        // itself.
        let mut engine = ck.kind.build(scenario)?;
        let trace = self.restore_common(engine.as_mut(), &ck, &resumed.trace, resumed.rejected)?;
        drop(engine);
        let mut session = resumed.session;
        let init = SupervisedResume {
            trace,
            last_jump: ck.last_jump_deg,
            ctrl_phase_rad: ck.ctrl_phase_rad,
            engine_state: ck.engine.clone(),
        };
        let trace = self.run_supervised_core(
            scenario,
            ck.kind,
            duration_s,
            supervisor,
            Some(&mut session),
            Some(init),
        )?;
        session.into_result()?;
        Ok(trace)
    }

    fn run_supervised_core(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
        duration_s: f64,
        supervisor: &mut LoopSupervisor,
        session: Option<&mut CheckpointSession>,
        resume: Option<SupervisedResume>,
    ) -> Result<LoopTrace> {
        // Startup calibration: measure the real per-step wall-clock on a
        // *scratch* engine that is discarded afterwards, so the run itself
        // stays bit-identical whether or not it happened. The measured
        // figure replaces the hard-coded nominal only when the policy opts
        // in (`use_measured_step`); it is always exported. Skipped entirely
        // on resume: the restored supervisor carries the calibration the
        // original run measured.
        if resume.is_none() && supervisor.calibration().is_none_or(|cal| cal.kind != kind) {
            let cal = measure_step_seconds(scenario, kind)?;
            supervisor.set_calibration(cal);
        }
        if let (Some(m), Some(cal)) = (&self.telemetry, supervisor.calibration()) {
            m.registry
                .gauge(&format!(
                    "cil_supervisor_calibrated_step_wall_seconds{{fidelity=\"{}\"}}",
                    cal.kind.fidelity_label()
                ))
                .set(cal.step_seconds);
        }
        let mut slot = OwnedEngine(kind.build(scenario)?);
        let bunches = slot.0.bunches();
        let (trace, last_jump, mut ctrl_phase_rad) = match resume {
            Some(init) => {
                if !slot.0.restore_state(&init.engine_state) {
                    return Err(CheckpointError::Incompatible(
                        "engine state does not fit the scenario",
                    )
                    .into());
                }
                (init.trace, init.last_jump, init.ctrl_phase_rad)
            }
            None => (LoopTrace::empty(bunches), 0.0, 0.0),
        };
        let mut live_kind = kind;
        let sup = SupCtx {
            supervisor,
            scenario,
            kind: &mut live_kind,
            ctrl_phase_rad: &mut ctrl_phase_rad,
            t_rev: 1.0 / scenario.f_rev,
        };
        let ckpt = session.map(|s| CkptRun { session: s, kind });
        self.run_dispatch(
            &mut slot,
            duration_s,
            None,
            RunCursor { trace, last_jump },
            None,
            ckpt,
            Some(sup),
        )
        .map(|c| c.trace)
    }
}

/// Checkpoint context threaded through the dispatch loop.
struct CkptRun<'a> {
    session: &'a mut CheckpointSession,
    kind: EngineKind,
}

/// Restored starting point for a resumed supervised run.
struct SupervisedResume {
    trace: LoopTrace,
    last_jump: f64,
    ctrl_phase_rad: f64,
    engine_state: EngineState,
}

/// Rebuild a [`LoopTrace`] from the write-ahead log's decoded prefix.
pub(crate) fn trace_from_decoded(d: DecodedTrace, bunches: usize) -> LoopTrace {
    let bunch_phase_deg = if d.bunch_phase_deg.is_empty() {
        vec![Vec::new(); bunches]
    } else {
        d.bunch_phase_deg
    };
    LoopTrace {
        times: d.times,
        bunch_phase_deg,
        mean_phase_deg: d.mean_phase_deg,
        control_hz: d.control_hz,
        jump_times: d.jump_times,
        events: d.events,
        outcome: LoopOutcome::Survived,
    }
}

/// Measure the median per-step wall-clock of `kind` over three warmup steps
/// on a scratch engine (discarded afterwards, so the caller's run is
/// unaffected by the measurement ever having happened).
fn measure_step_seconds(scenario: &MdeScenario, kind: EngineKind) -> Result<StepCalibration> {
    let mut engine = kind.build(scenario)?;
    let mut phase = vec![0.0; engine.bunches()];
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let t0 = Instant::now();
        let _ = engine.step(&scenario.jumps, &mut phase);
        *s = t0.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    Ok(StepCalibration {
        kind,
        step_seconds: samples[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, MapEngine};
    use crate::fault::{FaultEvent, FaultKind};

    fn scenario() -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.02;
        s.bunches = 1;
        s
    }

    #[test]
    fn records_one_row_per_turn() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert_eq!(trace.times.len(), s.revolutions());
        assert_eq!(trace.mean_phase_deg.len(), trace.control_hz.len());
        assert_eq!(trace.bunch_phase_deg.len(), 1);
        assert!(trace.survived());
        assert!(trace.events.is_empty());
    }

    #[test]
    fn displaced_jump_program_records_t0_event() {
        // Regression: a jump program already displaced at t = 0 must put
        // its first event at exactly 0.0, so `jump_times[0]`-based analyses
        // cannot panic or mis-window.
        let mut s = scenario();
        s.duration_s = 1e-3;
        s.jumps = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: -0.06,
        };
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert_eq!(trace.jump_times.first().copied(), Some(0.0));
    }

    #[test]
    fn open_loop_never_actuates() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, false);
        let trace = harness.run(&mut engine, s.duration_s);
        assert!(trace.control_hz.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn observer_sees_every_row() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut rows = 0usize;
        let trace = harness.run_with(&mut engine, s.duration_s, |_| rows += 1);
        assert_eq!(rows, trace.times.len());
    }

    #[test]
    fn sampled_observer_fires_on_its_cadence_only() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut fired = 0u64;
        let trace = harness
            .run_with_every(&mut engine, s.duration_s, 100, |_| fired += 1)
            .unwrap();
        assert_eq!(fired, trace.times.len() as u64 / 100);
        // And the sampled-observer trace is identical to an unobserved run.
        let mut engine2 = MapEngine::from_scenario(&s).unwrap();
        let mut harness2 = LoopHarness::for_scenario(&s, true);
        let reference = harness2.run(&mut engine2, s.duration_s);
        assert_eq!(trace.times, reference.times);
        assert_eq!(trace.mean_phase_deg, reference.mean_phase_deg);
        assert_eq!(trace.control_hz, reference.control_hz);
    }

    #[test]
    fn zero_block_rows_is_a_config_error() {
        let s = scenario();
        let err = LoopHarness::for_scenario(&s, true)
            .with_block_rows(0)
            .err()
            .expect("block size 0 must be rejected");
        assert!(matches!(err, crate::error::CilError::InvalidConfig(_)));
    }

    #[test]
    fn zero_observer_cadence_is_a_config_error() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let err = harness
            .run_with_every(&mut engine, s.duration_s, 0, |_| {})
            .expect_err("observer cadence 0 must be rejected");
        assert!(matches!(err, crate::error::CilError::InvalidConfig(_)));
    }

    #[test]
    fn boxed_engine_runs_through_the_harness() {
        let s = scenario();
        let mut engine = EngineKind::Map.build(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(engine.as_mut(), s.duration_s);
        assert_eq!(trace.times.len(), s.revolutions());
    }

    #[test]
    fn injected_beam_loss_stamps_turn_and_cause() {
        let mut s = scenario();
        s.faults = FaultProgram {
            seed: 0,
            events: vec![FaultEvent {
                start_s: 0.01,
                end_s: 0.02,
                kind: FaultKind::BeamLoss,
            }],
        };
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert!(!trace.survived());
        let LoopOutcome::Lost {
            turn,
            time_s,
            cause,
        } = trace.outcome
        else {
            panic!("expected loss");
        };
        assert_eq!(cause, LossCause::Injected);
        assert!((time_s - 0.01).abs() < 2.0 / s.f_rev, "loss at {time_s}");
        assert_eq!(turn, trace.times.len());
        assert!(matches!(
            trace.events.last(),
            Some(LoopEvent::BeamLost { .. })
        ));
    }

    #[test]
    fn supervised_clean_run_matches_plain_loop_length() {
        let s = scenario();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut sup = LoopSupervisor::for_scenario(&s);
        let trace = harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap();
        assert!(trace.survived());
        assert_eq!(trace.times.len(), s.revolutions());
        assert!(
            !trace
                .events
                .iter()
                .any(|e| matches!(e, LoopEvent::EngineDemoted { .. })),
            "clean run must not demote"
        );
    }
}
