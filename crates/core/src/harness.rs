//! The shared closed-loop harness.
//!
//! Every executive — turn-level, signal-level, ramp, multi-bunch — runs the
//! same experiment skeleton: step the beam model, watch the jump program
//! toggle, feed the (offset-corrected) mean phase to the beam-phase
//! controller, actuate, record. [`LoopHarness`] owns that skeleton once;
//! the executives in [`crate::hil`], [`crate::ramploop`] and
//! [`crate::multibunch`] reduce to scenario adapters that pick an engine,
//! run the harness, and reshape the [`LoopTrace`] into their result type.
//!
//! The harness also hosts the fault layer: a [`FaultInjector`] corrupts
//! measured rows per the scenario's schedule, and
//! [`LoopHarness::run_supervised`] wraps the loop in a [`LoopSupervisor`] —
//! deadline watchdog, outlier gate, actuation clamp and graceful engine
//! degradation through [`EngineKind::demote`].
//!
//! Telemetry is opt-in via [`LoopHarness::with_telemetry`]: the harness
//! resolves all metric handles up front ([`LoopMetrics`]), records
//! per-revolution wall-clock (sampled in blocks of
//! [`crate::telemetry::WALL_SAMPLE_ROWS`] rows to keep `Instant::now` off
//! the per-row path), modelled step cost and deadline headroom, and folds
//! the finished trace's event log into the counters so the exported numbers
//! always agree with the audit channel.

use crate::checkpoint::{
    Checkpoint, CheckpointConfig, CheckpointError, CheckpointSession, DecodedTrace,
};
use crate::control::BeamPhaseController;
use crate::engine::{BeamEngine, EngineKind, EngineState, EngineStep, StepBlock};
use crate::error::Result;
use crate::fault::{
    FaultInjector, FaultProgram, LoopEvent, LoopOutcome, LoopSupervisor, LossCause, StepCalibration,
};
use crate::scenario::MdeScenario;
use crate::signalgen::PhaseJumpProgram;
use crate::telemetry::{LoopMetrics, TelemetryRegistry, WALL_SAMPLE_ROWS};
use cil_physics::constants::TWO_PI;
use std::time::Instant;

/// Everything one closed-loop run records.
#[derive(Debug, Clone)]
pub struct LoopTrace {
    /// Measurement time of each row, seconds (uniform per revolution for
    /// turn-level engines, detector-event times for the signal level,
    /// ramp-varying for [`crate::engine::RampEngine`]).
    pub times: Vec<f64>,
    /// Per-bunch phase rows, degrees at the RF harmonic (instrumentation
    /// offset included), indexed `[bunch][row]`. Rows carry the *raw*
    /// (possibly fault-corrupted) measurements; supervision acts on the
    /// admitted mean.
    pub bunch_phase_deg: Vec<Vec<f64>>,
    /// Pickup-average phase per row — what the controller acted on (the
    /// supervisor's held value when a row was rejected).
    pub mean_phase_deg: Vec<f64>,
    /// Controller actuation after each row, Hz.
    pub control_hz: Vec<f64>,
    /// Times at which the jump program toggled, seconds. A program that
    /// starts displaced (negative path latency) records its first event at
    /// t = 0.
    pub jump_times: Vec<f64>,
    /// Audit channel: every fault activation, rejection, clamp, overrun,
    /// demotion and loss, in order.
    pub events: Vec<LoopEvent>,
    /// How the run ended (loss carries turn index, time and cause).
    pub outcome: LoopOutcome,
}

impl LoopTrace {
    fn empty(bunches: usize) -> Self {
        Self {
            times: Vec::new(),
            bunch_phase_deg: vec![Vec::new(); bunches],
            mean_phase_deg: Vec::new(),
            control_hz: Vec::new(),
            jump_times: Vec::new(),
            events: Vec::new(),
            outcome: LoopOutcome::Survived,
        }
    }

    /// True when the run reached its scheduled end time.
    pub fn survived(&self) -> bool {
        self.outcome.survived()
    }
}

/// The closed-loop skeleton: controller + jump program + instrumentation
/// offset + fault injector + trace recording, generic over the
/// [`BeamEngine`] fidelity.
pub struct LoopHarness {
    /// The beam-phase controller (owns the loop-enable flag).
    pub controller: BeamPhaseController,
    /// The AWG jump program handed to the engine each step.
    pub jumps: PhaseJumpProgram,
    /// Constant instrumentation phase offset added to every measurement,
    /// degrees.
    pub instrument_offset_deg: f64,
    /// Run-time state of the scenario's fault schedule (empty = clean run).
    pub faults: FaultInjector,
    /// Resolved metric handles when telemetry is enabled (None = zero-cost).
    telemetry: Option<LoopMetrics>,
    /// Periodic checkpointing, when configured via
    /// [`Self::with_checkpointing`] (None = no checkpoint I/O at all).
    checkpoint: Option<CheckpointConfig>,
    /// Measured rows per [`StepBlock`] on the batched stepping path
    /// (1 = per-turn stepping; see [`Self::with_block_rows`]).
    block_rows: usize,
}

/// Default measured rows per engine step block — matches the wall-clock
/// sampling cadence, so one block is one wall sample.
pub const DEFAULT_BLOCK_ROWS: usize = WALL_SAMPLE_ROWS as usize;

/// Wall-clock sampler for the hot loop: reads `Instant::now` once per
/// [`WALL_SAMPLE_ROWS`] measured rows and records the per-row average, so
/// the clock read never rivals the cost of a Map-fidelity step.
struct WallSampler {
    histogram: crate::telemetry::Histogram,
    block_start: Instant,
    rows_in_block: u64,
}

impl WallSampler {
    fn new(metrics: &LoopMetrics) -> Self {
        Self {
            histogram: metrics.revolution_wall.clone(),
            block_start: Instant::now(),
            rows_in_block: 0,
        }
    }

    #[inline]
    fn row(&mut self) {
        self.rows_in_block += 1;
        if self.rows_in_block >= WALL_SAMPLE_ROWS {
            let now = Instant::now();
            let per_row =
                now.duration_since(self.block_start).as_secs_f64() / self.rows_in_block as f64;
            self.histogram.observe(per_row);
            self.block_start = now;
            self.rows_in_block = 0;
        }
    }
}

impl LoopHarness {
    /// Harness from parts (no faults scheduled).
    pub fn new(
        controller: BeamPhaseController,
        jumps: PhaseJumpProgram,
        instrument_offset_deg: f64,
    ) -> Self {
        Self {
            controller,
            jumps,
            instrument_offset_deg,
            faults: FaultInjector::none(),
            telemetry: None,
            checkpoint: None,
            block_rows: DEFAULT_BLOCK_ROWS,
        }
    }

    /// The scenario's turn-level harness: controller at the revolution
    /// frequency, the scenario's jump program, instrumentation offset and
    /// fault schedule.
    pub fn for_scenario(s: &MdeScenario, control_enabled: bool) -> Self {
        let mut controller = BeamPhaseController::new(s.controller, s.f_rev);
        controller.enabled = control_enabled;
        let mut harness = Self::new(controller, s.jumps, s.instrument_offset_deg);
        harness.faults = FaultInjector::new(s.faults.clone());
        harness
    }

    /// Replace the fault schedule (builder style).
    pub fn with_fault_program(mut self, program: FaultProgram) -> Self {
        self.faults = FaultInjector::new(program);
        self
    }

    /// Record run metrics into `registry` (builder style). All handles are
    /// resolved here, once — the run loops only touch atomics.
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = Some(LoopMetrics::register(registry));
        self
    }

    /// Measured rows per engine step block (builder style; clamped to
    /// ≥ 1, where 1 reproduces per-turn stepping). Blocks amortise
    /// per-revolution harness overhead; the harness itself caps every block
    /// at the next controller actuation and checkpoint cadence boundary —
    /// and falls back to per-turn stepping under an observer hook or an
    /// active fault program — so the recorded trace, events and checkpoint
    /// bytes are bit-identical for every block size.
    pub fn with_block_rows(mut self, rows: usize) -> Self {
        self.block_rows = rows.max(1);
        self
    }

    /// Checkpoint periodically into `config.dir` (builder style). Only
    /// [`Self::run_checkpointed`], [`Self::run_supervised`] and the
    /// `resume_*` entry points honour this — plain [`Self::run`] takes an
    /// already-built engine whose [`EngineKind`] it cannot know, so it
    /// could not rebuild the engine on resume and therefore never
    /// checkpoints.
    pub fn with_checkpointing(mut self, config: CheckpointConfig) -> Self {
        self.checkpoint = Some(config);
        self
    }

    /// Run the loop until the engine's time reaches `duration_s`.
    pub fn run<E: BeamEngine + ?Sized>(&mut self, engine: &mut E, duration_s: f64) -> LoopTrace {
        let trace = LoopTrace::empty(engine.bunches());
        self.run_core(engine, duration_s, None, trace, 0.0, None)
    }

    /// Like [`Self::run`], calling `observer` after every recorded row —
    /// the hook through which executives capture engine-specific telemetry
    /// (e.g. γ_R and φ_s along a ramp) without widening the trace type.
    /// The observer must see the engine *at* each row, so this path steps
    /// per turn regardless of [`Self::with_block_rows`].
    pub fn run_with<E, F>(&mut self, engine: &mut E, duration_s: f64, mut observer: F) -> LoopTrace
    where
        E: BeamEngine + ?Sized,
        F: FnMut(&E),
    {
        let trace = LoopTrace::empty(engine.bunches());
        self.run_core(engine, duration_s, Some(&mut observer), trace, 0.0, None)
    }

    /// Measured rows the next step block may span without batching past an
    /// observable boundary: a controller actuation may only land on a
    /// block's *last* row (the harness applies it after the block, exactly
    /// where per-turn stepping would), and a due checkpoint must snapshot
    /// the engine at the due row.
    fn block_budget(&self, cap: usize, ckpt_due: Option<usize>) -> usize {
        let mut budget = cap.min(self.controller.rows_until_actuation() as usize);
        if let Some(until) = ckpt_due {
            budget = budget.min(until);
        }
        budget.max(1)
    }

    /// Per-turn stepping is required whenever something must observe or
    /// perturb the loop *between* individual engine steps: an observer hook
    /// or an active fault schedule (forced losses, corruption and overrun
    /// factors are keyed to every turn's pre-step time).
    fn per_turn_cap(&self, use_observer: bool) -> usize {
        if use_observer || !self.faults.program.is_empty() {
            1
        } else {
            self.block_rows
        }
    }

    /// The unsupervised loop body, continuable: starts from an existing
    /// `trace` + `last_jump` (the resume path) and checkpoints through
    /// `ckpt` when one is attached. Steps the engine in blocks
    /// ([`BeamEngine::step_block`]); the recorded trace is bit-identical to
    /// per-turn stepping for every block size.
    fn run_core<E>(
        &mut self,
        engine: &mut E,
        duration_s: f64,
        mut observer: Option<&mut dyn FnMut(&E)>,
        mut trace: LoopTrace,
        mut last_jump: f64,
        mut ckpt: Option<CkptRun<'_>>,
    ) -> LoopTrace
    where
        E: BeamEngine + ?Sized,
    {
        let bunches = engine.bunches();
        let mut wall = self.telemetry.as_ref().map(WallSampler::new);
        let mut block = StepBlock::new();
        let cap = self.per_turn_cap(observer.is_some());

        'run: while engine.time() < duration_s {
            let t_pre = engine.time();
            if self.faults.forced_loss_at(t_pre) {
                let turn = trace.times.len();
                trace.outcome = LoopOutcome::Lost {
                    turn,
                    time_s: t_pre,
                    cause: LossCause::Injected,
                };
                trace.events.push(LoopEvent::BeamLost {
                    turn,
                    time_s: t_pre,
                    cause: LossCause::Injected,
                });
                break;
            }
            let ckpt_due = ckpt
                .as_ref()
                .map(|c| c.session.rows_until_due(trace.times.len()));
            let budget = self.block_budget(cap, ckpt_due);
            engine.step_block(&self.jumps, duration_s, budget, &mut block);

            let rows = block.rows();
            trace.times.reserve(rows);
            trace.mean_phase_deg.reserve(rows);
            trace.control_hz.reserve(rows);
            for col in trace.bunch_phase_deg.iter_mut() {
                col.reserve(rows);
            }
            let mut row = 0usize;
            for i in 0..block.steps().len() {
                let step = block.steps()[i];
                let turn = trace.times.len();
                // The engine evaluated the jump program for this step at
                // its pre-step time, so an edge is stamped there — a
                // program that starts displaced therefore records its first
                // event at t = 0.
                if step.jump_deg != last_jump {
                    trace.jump_times.push(step.t_pre);
                    last_jump = step.jump_deg;
                }
                match step.result {
                    EngineStep::Lost(cause) => {
                        trace.outcome = LoopOutcome::Lost {
                            turn,
                            time_s: step.t_post,
                            cause,
                        };
                        trace.events.push(LoopEvent::BeamLost {
                            turn,
                            time_s: step.t_post,
                            cause,
                        });
                        break 'run;
                    }
                    EngineStep::Idle => {
                        if let Some(m) = &self.telemetry {
                            m.idle_steps.inc();
                        }
                    }
                    EngineStep::Measured => {
                        let phase = block.phase_row_mut(row);
                        row += 1;
                        self.faults
                            .apply_row(turn, step.t_post, phase, &mut trace.events);
                        let mut acc = 0.0;
                        for (col, &p) in trace.bunch_phase_deg.iter_mut().zip(phase.iter()) {
                            let deg = p + self.instrument_offset_deg;
                            col.push(deg);
                            acc += deg;
                        }
                        let mean = acc / bunches as f64;
                        trace.times.push(step.t_post);
                        trace.mean_phase_deg.push(mean);
                        if let Some(u) = self.controller.push_measurement(mean) {
                            engine.apply_control(u, self.controller.params.decimation);
                        }
                        trace.control_hz.push(self.controller.output());
                        if let Some(obs) = observer.as_mut() {
                            obs(engine);
                        }
                        if let Some(w) = &mut wall {
                            w.row();
                        }
                        if let Some(c) = ckpt.as_mut() {
                            if c.session.due(trace.times.len()) {
                                let t0 = Instant::now();
                                let ck = Checkpoint {
                                    turn: 0,
                                    time_s: engine.time(),
                                    supervised: false,
                                    kind: c.kind,
                                    bunches: bunches as u32,
                                    engine: engine.save_state(),
                                    controller: self.controller.state(),
                                    injector: self.faults.state(),
                                    supervisor: None,
                                    ctrl_phase_rad: 0.0,
                                    last_jump_deg: last_jump,
                                    rows: 0,
                                    events: 0,
                                    jumps: 0,
                                    log_bytes: 0,
                                    telemetry: self
                                        .telemetry
                                        .as_ref()
                                        .map(LoopMetrics::checkpoint_snapshot),
                                };
                                c.session.checkpoint(&trace, move || ck);
                                if let Some(m) = &self.telemetry {
                                    m.checkpoint_writes.inc();
                                    m.checkpoint_write_wall.observe(t0.elapsed().as_secs_f64());
                                }
                            }
                        }
                    }
                }
            }
        }
        if let Some(m) = &self.telemetry {
            m.note_trace(&trace);
            engine.sample_telemetry(&m.registry);
        }
        trace
    }

    /// Run an unsupervised closed loop with periodic checkpointing (the
    /// configuration from [`Self::with_checkpointing`]). Takes the
    /// [`EngineKind`] rather than a built engine so [`Self::resume_from`]
    /// can rebuild the same fidelity later. Without a checkpoint
    /// configuration this is just [`Self::run`] on a freshly built engine.
    ///
    /// Checkpoint write failures do not abort the loop — checkpointing is
    /// disabled for the rest of the run and the first failure is returned
    /// as an error after the (complete) run, with the trace lost to the
    /// caller; treat that as "the run succeeded but is not resumable".
    pub fn run_checkpointed(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
        duration_s: f64,
    ) -> Result<LoopTrace> {
        let mut engine = kind.build(scenario)?;
        let Some(cfg) = self.checkpoint.clone() else {
            return Ok(self.run(engine.as_mut(), duration_s));
        };
        let mut session = CheckpointSession::begin(&cfg).map_err(crate::error::CilError::from)?;
        let empty = LoopTrace::empty(engine.bunches());
        let trace = self.run_core(
            engine.as_mut(),
            duration_s,
            None,
            empty,
            0.0,
            Some(CkptRun {
                session: &mut session,
                kind,
            }),
        );
        session.into_result()?;
        Ok(trace)
    }

    /// Resume an unsupervised run from the newest good checkpoint in the
    /// configured directory and carry it to `duration_s`.
    ///
    /// Corrupted or truncated snapshots newer than the chosen one are each
    /// audited as a [`LoopEvent::CheckpointRejected`] (stamped with the
    /// fallback snapshot's turn/time) in the returned trace. The resumed
    /// trace's rows, events and jump times are bit-identical to an
    /// uninterrupted run's.
    pub fn resume_from(&mut self, scenario: &MdeScenario, duration_s: f64) -> Result<LoopTrace> {
        let cfg = self.checkpoint.clone().ok_or_else(|| {
            crate::error::CilError::InvalidConfig("resume_from requires with_checkpointing".into())
        })?;
        let resumed = CheckpointSession::resume(&cfg).map_err(crate::error::CilError::from)?;
        let ck = &resumed.checkpoint;
        if ck.supervised {
            return Err(CheckpointError::Incompatible(
                "checkpoint was written by a supervised run; use resume_supervised_from",
            )
            .into());
        }
        let mut engine = ck.kind.build(scenario)?;
        let trace = self.restore_common(engine.as_mut(), ck, &resumed.trace, resumed.rejected)?;
        let last_jump = ck.last_jump_deg;
        let kind = ck.kind;
        let mut session = resumed.session;
        let trace = self.run_core(
            engine.as_mut(),
            duration_s,
            None,
            trace,
            last_jump,
            Some(CkptRun {
                session: &mut session,
                kind,
            }),
        );
        session.into_result()?;
        Ok(trace)
    }

    /// Shared resume plumbing: apply the snapshot to the engine,
    /// controller, fault injector and telemetry, and rebuild the trace
    /// prefix (with one [`LoopEvent::CheckpointRejected`] appended per
    /// snapshot that had to be discarded during recovery).
    fn restore_common<E: BeamEngine + ?Sized>(
        &mut self,
        engine: &mut E,
        ck: &Checkpoint,
        decoded: &DecodedTrace,
        rejected: usize,
    ) -> Result<LoopTrace> {
        if ck.bunches as usize != engine.bunches() {
            return Err(
                CheckpointError::Incompatible("bunch count differs from the scenario").into(),
            );
        }
        if !engine.restore_state(&ck.engine) {
            return Err(
                CheckpointError::Incompatible("engine state does not fit the scenario").into(),
            );
        }
        if !self.controller.restore(&ck.controller) {
            return Err(CheckpointError::Incompatible(
                "controller state does not fit the scenario",
            )
            .into());
        }
        if !self.faults.restore(&ck.injector) {
            return Err(CheckpointError::Incompatible(
                "fault-injector state does not fit the scenario's fault program",
            )
            .into());
        }
        if let (Some(m), Some(t)) = (&self.telemetry, &ck.telemetry) {
            if !m.restore_checkpoint(t) {
                return Err(
                    CheckpointError::Incompatible("telemetry histogram shape changed").into(),
                );
            }
        }
        let mut trace = trace_from_decoded(decoded.clone(), engine.bunches());
        for _ in 0..rejected {
            trace.events.push(LoopEvent::CheckpointRejected {
                turn: ck.turn as usize,
                time_s: ck.time_s,
            });
        }
        Ok(trace)
    }

    /// Run the loop under a [`LoopSupervisor`]: a per-revolution deadline
    /// budget (wall-clock modelled per fidelity, stretched by scheduled
    /// overrun faults), outlier rejection with hold-last-good, actuation
    /// clamping with anti-windup, and a watchdog that demotes the engine
    /// fidelity through [`EngineKind::demote`] instead of aborting — the
    /// loop stays closed across the swap, carrying the accumulated control
    /// phase into the fresh engine via [`BeamEngine::seed_state`].
    ///
    /// Owns engine construction (it may rebuild mid-run), so it takes the
    /// [`EngineKind`] rather than a built engine.
    ///
    /// When checkpointing is configured ([`Self::with_checkpointing`]) the
    /// supervised loop checkpoints inline at the configured cadence —
    /// including across demotions (the snapshot records the fidelity
    /// *currently running*). A checkpoint write failure disables further
    /// checkpointing and surfaces as an error after the complete run.
    pub fn run_supervised(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
        duration_s: f64,
        supervisor: &mut LoopSupervisor,
    ) -> Result<LoopTrace> {
        let mut session = match self.checkpoint.clone() {
            Some(cfg) => {
                Some(CheckpointSession::begin(&cfg).map_err(crate::error::CilError::from)?)
            }
            None => None,
        };
        let trace = self.run_supervised_core(
            scenario,
            kind,
            duration_s,
            supervisor,
            session.as_mut(),
            None,
        )?;
        if let Some(s) = session {
            s.into_result()?;
        }
        Ok(trace)
    }

    /// Resume a supervised run from the newest good checkpoint and carry
    /// it to `duration_s`. The supervisor is restored from the snapshot
    /// (including its warmup calibration, so no re-calibration happens —
    /// the resumed run stays bit-identical to an uninterrupted one).
    pub fn resume_supervised_from(
        &mut self,
        scenario: &MdeScenario,
        duration_s: f64,
        supervisor: &mut LoopSupervisor,
    ) -> Result<LoopTrace> {
        let cfg = self.checkpoint.clone().ok_or_else(|| {
            crate::error::CilError::InvalidConfig(
                "resume_supervised_from requires with_checkpointing".into(),
            )
        })?;
        let resumed = CheckpointSession::resume(&cfg).map_err(crate::error::CilError::from)?;
        let ck = resumed.checkpoint.clone();
        if !ck.supervised {
            return Err(CheckpointError::Incompatible(
                "checkpoint was written by an unsupervised run; use resume_from",
            )
            .into());
        }
        let Some(sup_state) = &ck.supervisor else {
            return Err(
                CheckpointError::Malformed("supervised checkpoint lacks supervisor state").into(),
            );
        };
        supervisor.restore(sup_state);
        // The trace prefix and peripheral state are restored against a
        // scratch engine build; run_supervised_core owns the real engine
        // (it may rebuild it mid-run) and re-applies the engine state
        // itself.
        let mut engine = ck.kind.build(scenario)?;
        let trace = self.restore_common(engine.as_mut(), &ck, &resumed.trace, resumed.rejected)?;
        drop(engine);
        let mut session = resumed.session;
        let init = SupervisedResume {
            trace,
            last_jump: ck.last_jump_deg,
            ctrl_phase_rad: ck.ctrl_phase_rad,
            engine_state: ck.engine.clone(),
        };
        let trace = self.run_supervised_core(
            scenario,
            ck.kind,
            duration_s,
            supervisor,
            Some(&mut session),
            Some(init),
        )?;
        session.into_result()?;
        Ok(trace)
    }

    fn run_supervised_core(
        &mut self,
        scenario: &MdeScenario,
        kind: EngineKind,
        duration_s: f64,
        supervisor: &mut LoopSupervisor,
        mut session: Option<&mut CheckpointSession>,
        resume: Option<SupervisedResume>,
    ) -> Result<LoopTrace> {
        let mut kind = kind;
        // Startup calibration (satellite fix): measure the real per-step
        // wall-clock on a *scratch* engine that is discarded afterwards, so
        // the run itself stays bit-identical whether or not it happened.
        // The measured figure replaces the hard-coded nominal only when the
        // policy opts in (`use_measured_step`); it is always exported.
        // Skipped entirely on resume: the restored supervisor carries the
        // calibration the original run measured.
        if resume.is_none() && supervisor.calibration().is_none_or(|cal| cal.kind != kind) {
            let cal = measure_step_seconds(scenario, kind)?;
            supervisor.set_calibration(cal);
        }
        if let (Some(m), Some(cal)) = (&self.telemetry, supervisor.calibration()) {
            m.registry
                .gauge(&format!(
                    "cil_supervisor_calibrated_step_wall_seconds{{fidelity=\"{}\"}}",
                    cal.kind.fidelity_label()
                ))
                .set(cal.step_seconds);
        }
        let mut engine = kind.build(scenario)?;
        let bunches = engine.bunches();
        let (mut trace, mut last_jump, mut ctrl_phase_rad) = match resume {
            Some(init) => {
                if !engine.restore_state(&init.engine_state) {
                    return Err(CheckpointError::Incompatible(
                        "engine state does not fit the scenario",
                    )
                    .into());
                }
                (init.trace, init.last_jump, init.ctrl_phase_rad)
            }
            None => (LoopTrace::empty(bunches), 0.0, 0.0),
        };
        let mut wall = self.telemetry.as_ref().map(WallSampler::new);
        // Mirror of the engine's accumulated control phase, so a freshly
        // built engine can be seeded mid-run after a demotion.
        let t_rev = 1.0 / scenario.f_rev;

        let mut block = StepBlock::new();
        'run: while engine.time() < duration_s {
            let t_pre = engine.time();
            if self.faults.forced_loss_at(t_pre) {
                let turn = trace.times.len();
                trace.outcome = LoopOutcome::Lost {
                    turn,
                    time_s: t_pre,
                    cause: LossCause::Injected,
                };
                trace.events.push(LoopEvent::BeamLost {
                    turn,
                    time_s: t_pre,
                    cause: LossCause::Injected,
                });
                break;
            }
            // The watchdog counts *consecutive* bad rows, so it cannot fire
            // before `headroom` more measured rows have passed; capping the
            // block there guarantees a watchdog demotion (which swaps the
            // engine) can only land on a block's last row — exactly where
            // per-turn stepping would swap it.
            let headroom = supervisor
                .config
                .max_consecutive_bad
                .saturating_sub(supervisor.bad_streak())
                .max(1) as usize;
            let ckpt_due = session
                .as_deref()
                .map(|s| s.rows_until_due(trace.times.len()));
            let budget = self.block_budget(self.per_turn_cap(false).min(headroom), ckpt_due);
            engine.step_block(&self.jumps, duration_s, budget, &mut block);

            let rows = block.rows();
            trace.times.reserve(rows);
            trace.mean_phase_deg.reserve(rows);
            trace.control_hz.reserve(rows);
            for col in trace.bunch_phase_deg.iter_mut() {
                col.reserve(rows);
            }
            let mut row = 0usize;
            for i in 0..block.steps().len() {
                let step = block.steps()[i];
                let turn = trace.times.len();
                if step.jump_deg != last_jump {
                    trace.jump_times.push(step.t_pre);
                    last_jump = step.jump_deg;
                }
                match step.result {
                    EngineStep::Lost(cause) => {
                        let time_s = step.t_post;
                        // A garbage-producing engine is demotable; injected
                        // or physical losses are not. A loss ends the block
                        // early, so a demotion resumes stepping from the
                        // fresh engine immediately.
                        if cause == LossCause::NonFinitePhase && supervisor.config.allow_demotion {
                            if let Some(to) = kind.demote() {
                                trace.events.push(LoopEvent::EngineDemoted {
                                    turn,
                                    time_s,
                                    from: kind,
                                    to,
                                });
                                engine = to.build(scenario)?;
                                engine.seed_state(time_s, ctrl_phase_rad);
                                kind = to;
                                supervisor.reset_watchdog();
                                continue 'run;
                            }
                        }
                        trace.outcome = LoopOutcome::Lost {
                            turn,
                            time_s,
                            cause,
                        };
                        trace.events.push(LoopEvent::BeamLost {
                            turn,
                            time_s,
                            cause,
                        });
                        break 'run;
                    }
                    EngineStep::Idle => {
                        if let Some(m) = &self.telemetry {
                            m.idle_steps.inc();
                        }
                    }
                    EngineStep::Measured => {
                        let time_s = step.t_post;
                        // Deadline accounting: one measured row = one
                        // revolution of wall-clock budget.
                        let modeled = supervisor
                            .model_step_seconds(kind, self.faults.overrun_factor_at(step.t_pre));
                        let overrun = modeled > supervisor.config.deadline_s;
                        if let Some(m) = &self.telemetry {
                            m.step_modeled.observe(modeled);
                            m.deadline_headroom
                                .observe((supervisor.config.deadline_s - modeled).max(0.0));
                        }
                        if overrun {
                            trace.events.push(LoopEvent::DeadlineOverrun {
                                turn,
                                time_s,
                                budget_s: supervisor.config.deadline_s,
                                modeled_s: modeled,
                            });
                        }

                        let phase = block.phase_row_mut(row);
                        row += 1;
                        self.faults
                            .apply_row(turn, time_s, phase, &mut trace.events);
                        let mut acc = 0.0;
                        for (col, &p) in trace.bunch_phase_deg.iter_mut().zip(phase.iter()) {
                            let deg = p + self.instrument_offset_deg;
                            col.push(deg);
                            acc += deg;
                        }
                        let raw_mean = acc / bunches as f64;
                        let admission = supervisor.admit(raw_mean);
                        if admission.rejected {
                            trace.events.push(LoopEvent::OutlierRejected {
                                turn,
                                time_s,
                                measured_deg: raw_mean,
                                held_deg: admission.value_deg,
                            });
                        }
                        trace.times.push(time_s);
                        trace.mean_phase_deg.push(admission.value_deg);
                        if let Some(ctrl) = self.controller.push_measurement_limited(
                            admission.value_deg,
                            supervisor.config.max_actuation_hz,
                        ) {
                            if ctrl.clamped {
                                trace.events.push(LoopEvent::ActuationClamped {
                                    turn,
                                    time_s,
                                    raw_hz: ctrl.raw_hz,
                                    limit_hz: ctrl.limit_hz,
                                });
                            }
                            let decimation = self.controller.params.decimation;
                            engine.apply_control(ctrl.actuation_hz, decimation);
                            ctrl_phase_rad +=
                                TWO_PI * ctrl.actuation_hz * t_rev * f64::from(decimation);
                        }
                        trace.control_hz.push(self.controller.output());

                        // Watchdog: consecutive bad steps demote (or, with no
                        // fidelity left, lose the beam).
                        if supervisor.note_step(overrun || admission.rejected) {
                            let demoted = if supervisor.config.allow_demotion {
                                kind.demote()
                            } else {
                                None
                            };
                            match demoted {
                                Some(to) => {
                                    trace.events.push(LoopEvent::EngineDemoted {
                                        turn,
                                        time_s,
                                        from: kind,
                                        to,
                                    });
                                    engine = to.build(scenario)?;
                                    engine.seed_state(time_s, ctrl_phase_rad);
                                    kind = to;
                                    supervisor.reset_watchdog();
                                }
                                None => {
                                    trace.outcome = LoopOutcome::Lost {
                                        turn,
                                        time_s,
                                        cause: LossCause::Watchdog,
                                    };
                                    trace.events.push(LoopEvent::BeamLost {
                                        turn,
                                        time_s,
                                        cause: LossCause::Watchdog,
                                    });
                                    break 'run;
                                }
                            }
                        }
                        if let Some(w) = &mut wall {
                            w.row();
                        }
                        if let Some(s) = session.as_deref_mut() {
                            if s.due(trace.times.len()) {
                                let t0 = Instant::now();
                                let ck = Checkpoint {
                                    turn: 0,
                                    time_s: engine.time(),
                                    supervised: true,
                                    kind,
                                    bunches: bunches as u32,
                                    engine: engine.save_state(),
                                    controller: self.controller.state(),
                                    injector: self.faults.state(),
                                    supervisor: Some(supervisor.state()),
                                    ctrl_phase_rad,
                                    last_jump_deg: last_jump,
                                    rows: 0,
                                    events: 0,
                                    jumps: 0,
                                    log_bytes: 0,
                                    telemetry: self
                                        .telemetry
                                        .as_ref()
                                        .map(LoopMetrics::checkpoint_snapshot),
                                };
                                s.checkpoint(&trace, move || ck);
                                if let Some(m) = &self.telemetry {
                                    m.checkpoint_writes.inc();
                                    m.checkpoint_write_wall.observe(t0.elapsed().as_secs_f64());
                                }
                            }
                        }
                    }
                }
            }
        }
        if let Some(m) = &self.telemetry {
            m.note_trace(&trace);
            engine.sample_telemetry(&m.registry);
        }
        Ok(trace)
    }
}

/// Checkpoint context threaded through the unsupervised loop body.
struct CkptRun<'a> {
    session: &'a mut CheckpointSession,
    kind: EngineKind,
}

/// Restored starting point for a resumed supervised run.
struct SupervisedResume {
    trace: LoopTrace,
    last_jump: f64,
    ctrl_phase_rad: f64,
    engine_state: EngineState,
}

/// Rebuild a [`LoopTrace`] from the write-ahead log's decoded prefix.
fn trace_from_decoded(d: DecodedTrace, bunches: usize) -> LoopTrace {
    let bunch_phase_deg = if d.bunch_phase_deg.is_empty() {
        vec![Vec::new(); bunches]
    } else {
        d.bunch_phase_deg
    };
    LoopTrace {
        times: d.times,
        bunch_phase_deg,
        mean_phase_deg: d.mean_phase_deg,
        control_hz: d.control_hz,
        jump_times: d.jump_times,
        events: d.events,
        outcome: LoopOutcome::Survived,
    }
}

/// Measure the median per-step wall-clock of `kind` over three warmup steps
/// on a scratch engine (discarded afterwards, so the caller's run is
/// unaffected by the measurement ever having happened).
fn measure_step_seconds(scenario: &MdeScenario, kind: EngineKind) -> Result<StepCalibration> {
    let mut engine = kind.build(scenario)?;
    let mut phase = vec![0.0; engine.bunches()];
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let t0 = Instant::now();
        let _ = engine.step(&scenario.jumps, &mut phase);
        *s = t0.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    Ok(StepCalibration {
        kind,
        step_seconds: samples[1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineKind, MapEngine};
    use crate::fault::{FaultEvent, FaultKind};

    fn scenario() -> MdeScenario {
        let mut s = MdeScenario::nov24_2023();
        s.duration_s = 0.02;
        s.bunches = 1;
        s
    }

    #[test]
    fn records_one_row_per_turn() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert_eq!(trace.times.len(), s.revolutions());
        assert_eq!(trace.mean_phase_deg.len(), trace.control_hz.len());
        assert_eq!(trace.bunch_phase_deg.len(), 1);
        assert!(trace.survived());
        assert!(trace.events.is_empty());
    }

    #[test]
    fn displaced_jump_program_records_t0_event() {
        // Regression: a jump program already displaced at t = 0 must put
        // its first event at exactly 0.0, so `jump_times[0]`-based analyses
        // cannot panic or mis-window.
        let mut s = scenario();
        s.duration_s = 1e-3;
        s.jumps = PhaseJumpProgram {
            amplitude_deg: 8.0,
            interval_s: 0.05,
            path_latency_s: -0.06,
        };
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert_eq!(trace.jump_times.first().copied(), Some(0.0));
    }

    #[test]
    fn open_loop_never_actuates() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, false);
        let trace = harness.run(&mut engine, s.duration_s);
        assert!(trace.control_hz.iter().all(|&u| u == 0.0));
    }

    #[test]
    fn observer_sees_every_row() {
        let s = scenario();
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut rows = 0usize;
        let trace = harness.run_with(&mut engine, s.duration_s, |_| rows += 1);
        assert_eq!(rows, trace.times.len());
    }

    #[test]
    fn boxed_engine_runs_through_the_harness() {
        let s = scenario();
        let mut engine = EngineKind::Map.build(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(engine.as_mut(), s.duration_s);
        assert_eq!(trace.times.len(), s.revolutions());
    }

    #[test]
    fn injected_beam_loss_stamps_turn_and_cause() {
        let mut s = scenario();
        s.faults = FaultProgram {
            seed: 0,
            events: vec![FaultEvent {
                start_s: 0.01,
                end_s: 0.02,
                kind: FaultKind::BeamLoss,
            }],
        };
        let mut engine = MapEngine::from_scenario(&s).unwrap();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let trace = harness.run(&mut engine, s.duration_s);
        assert!(!trace.survived());
        let LoopOutcome::Lost {
            turn,
            time_s,
            cause,
        } = trace.outcome
        else {
            panic!("expected loss");
        };
        assert_eq!(cause, LossCause::Injected);
        assert!((time_s - 0.01).abs() < 2.0 / s.f_rev, "loss at {time_s}");
        assert_eq!(turn, trace.times.len());
        assert!(matches!(
            trace.events.last(),
            Some(LoopEvent::BeamLost { .. })
        ));
    }

    #[test]
    fn supervised_clean_run_matches_plain_loop_length() {
        let s = scenario();
        let mut harness = LoopHarness::for_scenario(&s, true);
        let mut sup = LoopSupervisor::for_scenario(&s);
        let trace = harness
            .run_supervised(&s, EngineKind::Map, s.duration_s, &mut sup)
            .unwrap();
        assert!(trace.survived());
        assert_eq!(trace.times.len(), s.revolutions());
        assert!(
            !trace
                .events
                .iter()
                .any(|e| matches!(e, LoopEvent::EngineDemoted { .. })),
            "clean run must not demote"
        );
    }
}
