//! Deterministic event scheduling for the multi-rate closed loop.
//!
//! The paper's HIL rig is inherently multi-rate: the converter/framework
//! side ticks at 250 MHz, the CGRA at 111 MHz, the controller once per
//! `decimation` revolutions, the AWG jump program every 0.05 s wall time.
//! The harness models all of it on one *row tick* — the count of measured
//! trace rows — and schedules everything that must observe or perturb the
//! loop as a [`SimEvent`] on an [`EventQueue`]. Between events the engine
//! is free to step an entire span in one [`step_block`] call; the queue's
//! [`EventQueue::horizon`] is the single source of the block budget that
//! `LoopHarness::run` and `run_supervised` previously computed with
//! duplicated min-chains.
//!
//! Determinism is the design constraint, not a nice-to-have: traces, audit
//! events and checkpoint bytes must be bit-identical for every block size
//! and across kill/resume. Three properties deliver that:
//!
//! 1. **Fixed total order.** Events are ordered by `(tick, priority,
//!    insertion seq)` — see [`ScheduledEvent`]'s `Ord`. Same-tick events
//!    always fire in the same relative order the per-row loop used to
//!    interleave them (actuation before observer before wall sample before
//!    checkpoint), and the insertion sequence breaks any remaining tie
//!    deterministically.
//! 2. **No event inside a block.** [`EventQueue::horizon`] caps every step
//!    block at the next armed tick, so an event can only fall due on a
//!    block's *last* row — exactly where per-turn stepping would have
//!    handled it.
//! 3. **Resume-invariant accounting.** The per-kind scheduled/fired tallies
//!    can be seeded from a restored trace ([`EventQueue::seed_history`]),
//!    so a resumed run exports the same `cil_events_*` totals as an
//!    uninterrupted one.
//!
//! Cross-domain cadences (a fault edge specified in 250 MHz system ticks, a
//! watchdog deadline in CGRA cycles) are mapped onto the row tick with
//! [`EventQueue::schedule_from_domain`], built on the
//! [`ClockDomain`](crate::clock::ClockDomain) conversions — always rounding
//! *up*, so a converted deadline can never land later than the original.
//!
//! [`step_block`]: crate::engine::BeamEngine::step_block

use crate::clock::ClockDomain;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Everything the harness schedules between engine step blocks.
///
/// Two kinds — [`SimEvent::FaultEdge`] and [`SimEvent::JumpEdge`] — are
/// *detected* rather than queued: fault windows and AWG jump toggles are
/// keyed to engine time (which is non-uniform for ramp and signal-level
/// engines), so the harness recognises their edges per step and only
/// accounts them here ([`EventQueue::count_fired`]). They still carry a
/// priority so cross-domain tests can enqueue them explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimEvent {
    /// A decimated controller step completes on this row.
    Actuation,
    /// The supervisor's watchdog could demote (or lose) the loop on this
    /// row at the earliest.
    Watchdog,
    /// A scheduled fault program window opens or closes.
    FaultEdge,
    /// The AWG phase-jump program toggles.
    JumpEdge,
    /// An executive observer hook fires.
    Observer,
    /// The telemetry wall-clock sampler reads `Instant::now`.
    WallSample,
    /// A checkpoint snapshot falls due.
    Checkpoint,
}

/// Number of [`SimEvent`] kinds.
pub const EVENT_KINDS: usize = 7;

impl SimEvent {
    /// Every kind, in priority order.
    pub const ALL: [SimEvent; EVENT_KINDS] = [
        SimEvent::Actuation,
        SimEvent::Watchdog,
        SimEvent::FaultEdge,
        SimEvent::JumpEdge,
        SimEvent::Observer,
        SimEvent::WallSample,
        SimEvent::Checkpoint,
    ];

    /// Same-tick firing priority (lower fires first). The order encodes the
    /// per-row sequence of the original harness loop: control acts on the
    /// row, the supervisor may intervene, edges are stamped, then the
    /// passive observers run — observer hook, wall sample, and the
    /// checkpoint last, so a snapshot captures every same-row effect.
    pub fn priority(self) -> u8 {
        match self {
            SimEvent::Actuation => 0,
            SimEvent::Watchdog => 1,
            SimEvent::FaultEdge => 2,
            SimEvent::JumpEdge => 3,
            SimEvent::Observer => 4,
            SimEvent::WallSample => 5,
            SimEvent::Checkpoint => 6,
        }
    }

    /// Dense index (equals [`Self::priority`]).
    pub fn index(self) -> usize {
        self.priority() as usize
    }

    /// Telemetry label for this kind. Wall-clock- and checkpoint-derived
    /// kinds embed `wall` / `checkpoint` in the label so the determinism
    /// test filters exclude them together with the other nondeterministic
    /// metrics.
    pub fn label(self) -> &'static str {
        match self {
            SimEvent::Actuation => "actuation",
            SimEvent::Watchdog => "watchdog",
            SimEvent::FaultEdge => "fault_edge",
            SimEvent::JumpEdge => "jump_edge",
            SimEvent::Observer => "observer",
            SimEvent::WallSample => "wall_sample",
            SimEvent::Checkpoint => "checkpoint",
        }
    }
}

/// One queued event occurrence: fires on row `tick`, ordered by
/// `(tick, priority, seq)`. The `seq` is assigned at insertion, so two
/// same-kind same-tick insertions (which cannot coexist in an
/// [`EventQueue`], but can in a raw sort) still have a fixed total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Row tick (measured trace rows) at which the event falls due.
    pub tick: u64,
    /// What fires.
    pub kind: SimEvent,
    /// Insertion sequence number — the final tie-break.
    pub seq: u64,
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        self.tick
            .cmp(&other.tick)
            .then_with(|| self.kind.priority().cmp(&other.kind.priority()))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Heap entry: a scheduled occurrence plus the generation it belongs to.
/// Rescheduling a kind bumps its generation; stale entries are skipped
/// lazily on pop instead of being dug out of the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    event: ScheduledEvent,
    generation: u32,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event.
        other.event.cmp(&self.event)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic event queue over the row-tick domain.
///
/// At most one *live* occurrence exists per [`SimEvent`] kind (the loop's
/// cadences are all "next occurrence" schedules); superseded occurrences
/// are invalidated by generation and drained lazily, which bounds heap
/// garbage to the few kinds that get repositioned (the watchdog, once per
/// block).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    generation: [u32; EVENT_KINDS],
    /// Live tick per kind; `None` = not armed.
    next: [Option<u64>; EVENT_KINDS],
    next_seq: u64,
    scheduled: [u64; EVENT_KINDS],
    fired: [u64; EVENT_KINDS],
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: SimEvent, tick: u64) {
        let i = kind.index();
        self.generation[i] = self.generation[i].wrapping_add(1);
        self.next[i] = Some(tick);
        let event = ScheduledEvent {
            tick,
            kind,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            event,
            generation: self.generation[i],
        });
    }

    /// Arm (or re-arm) `kind` to fire at row `tick`, superseding any live
    /// occurrence, and count it as scheduled.
    pub fn schedule(&mut self, kind: SimEvent, tick: u64) {
        self.push(kind, tick);
        self.scheduled[kind.index()] += 1;
    }

    /// Reposition `kind` to `tick` *without* counting a new schedule — for
    /// cadences that are re-derived every block (the watchdog horizon
    /// depends on the live bad-streak) and would otherwise make the
    /// `cil_events_scheduled_total` tallies depend on block boundaries.
    pub fn defer(&mut self, kind: SimEvent, tick: u64) {
        self.push(kind, tick);
    }

    /// Arm `kind` at a deadline given in ticks of another clock domain,
    /// converted onto the row-tick domain `rows` (one tick per revolution,
    /// i.e. `ClockDomain { frequency: f_rev }`). The conversion rounds up
    /// ([`ClockDomain::convert_ticks_ceil`]): a converted deadline may fire
    /// one row early, never late.
    pub fn schedule_from_domain(
        &mut self,
        kind: SimEvent,
        ticks: u64,
        domain: &ClockDomain,
        rows: &ClockDomain,
    ) {
        self.schedule(kind, domain.convert_ticks_ceil(ticks, rows));
    }

    /// Disarm `kind` (a no-op if it is not armed).
    pub fn cancel(&mut self, kind: SimEvent) {
        let i = kind.index();
        self.generation[i] = self.generation[i].wrapping_add(1);
        self.next[i] = None;
    }

    /// Live tick of `kind`, if armed.
    pub fn next_tick(&self, kind: SimEvent) -> Option<u64> {
        self.next[kind.index()]
    }

    /// Measured rows the next engine step block may span from row `now`
    /// without stepping past an armed event: the distance to the earliest
    /// live tick, capped at `cap` and floored at 1 (an event due *now* was
    /// already dispatched; the loop must always make progress). This is the
    /// single block-budget rule — actuation cadence, checkpoint cadence,
    /// wall sampling, observer cadence and the watchdog all enter as armed
    /// events.
    pub fn horizon(&self, now: u64, cap: usize) -> usize {
        let mut budget = cap as u64;
        for tick in self.next.iter().flatten() {
            budget = budget.min(tick.saturating_sub(now));
        }
        usize::try_from(budget.max(1)).unwrap_or(usize::MAX)
    }

    /// Pop the next live event with `tick <= now`, in `(tick, priority,
    /// seq)` order, disarming it. Returns `None` once nothing (live) is
    /// due. Popping does not count as firing — the dispatcher calls
    /// [`Self::count_fired`] for occurrences that actually act, so marker
    /// events (a watchdog check that found nothing to do) leave the fired
    /// tallies block-size-invariant.
    pub fn pop_due(&mut self, now: u64) -> Option<SimEvent> {
        while let Some(top) = self.heap.peek() {
            let i = top.event.kind.index();
            let live = top.generation == self.generation[i] && self.next[i] == Some(top.event.tick);
            if !live {
                self.heap.pop();
                continue;
            }
            if top.event.tick > now {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            self.next[i] = None;
            return Some(entry.event.kind);
        }
        None
    }

    /// Record one firing of `kind` in the telemetry tallies.
    pub fn count_fired(&mut self, kind: SimEvent) {
        self.fired[kind.index()] += 1;
    }

    /// Seed the scheduled/fired history of `kind` — the resume path, which
    /// reconstructs how often each event fired during the restored trace
    /// prefix so the exported totals match an uninterrupted run.
    pub fn seed_history(&mut self, kind: SimEvent, scheduled: u64, fired: u64) {
        self.scheduled[kind.index()] = scheduled;
        self.fired[kind.index()] = fired;
    }

    /// Total occurrences of `kind` counted as scheduled.
    pub fn scheduled_total(&self, kind: SimEvent) -> u64 {
        self.scheduled[kind.index()]
    }

    /// Total occurrences of `kind` counted as fired.
    pub fn fired_total(&self, kind: SimEvent) -> u64 {
        self.fired[kind.index()]
    }

    /// Number of kinds currently armed.
    pub fn depth(&self) -> usize {
        self.next.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_is_tick_then_priority_then_seq() {
        let e = |tick, kind, seq| ScheduledEvent { tick, kind, seq };
        // Tick dominates.
        assert!(e(1, SimEvent::Checkpoint, 9) < e(2, SimEvent::Actuation, 0));
        // Same tick: priority decides, in the documented per-row order.
        assert!(e(5, SimEvent::Actuation, 9) < e(5, SimEvent::Watchdog, 0));
        assert!(e(5, SimEvent::Observer, 9) < e(5, SimEvent::WallSample, 0));
        assert!(e(5, SimEvent::WallSample, 9) < e(5, SimEvent::Checkpoint, 0));
        // Same tick and kind: insertion sequence breaks the tie.
        assert!(e(5, SimEvent::Observer, 0) < e(5, SimEvent::Observer, 1));
    }

    #[test]
    fn priorities_are_dense_and_match_all_order() {
        for (i, kind) in SimEvent::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn pop_due_drains_same_tick_events_in_priority_order() {
        let mut q = EventQueue::new();
        // Inserted in scrambled order; all due at tick 8.
        q.schedule(SimEvent::Checkpoint, 8);
        q.schedule(SimEvent::Actuation, 8);
        q.schedule(SimEvent::WallSample, 8);
        q.schedule(SimEvent::Observer, 8);
        let mut fired = Vec::new();
        while let Some(kind) = q.pop_due(8) {
            fired.push(kind);
        }
        assert_eq!(
            fired,
            vec![
                SimEvent::Actuation,
                SimEvent::Observer,
                SimEvent::WallSample,
                SimEvent::Checkpoint
            ]
        );
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn reschedule_supersedes_and_pop_skips_stale_entries() {
        let mut q = EventQueue::new();
        q.schedule(SimEvent::Actuation, 4);
        q.schedule(SimEvent::Actuation, 6); // supersedes tick 4
        assert_eq!(q.next_tick(SimEvent::Actuation), Some(6));
        assert_eq!(q.pop_due(5), None, "stale tick-4 entry must not fire");
        assert_eq!(q.pop_due(6), Some(SimEvent::Actuation));
        assert_eq!(q.pop_due(100), None);
    }

    #[test]
    fn cancel_disarms() {
        let mut q = EventQueue::new();
        q.schedule(SimEvent::Observer, 3);
        q.cancel(SimEvent::Observer);
        assert_eq!(q.next_tick(SimEvent::Observer), None);
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn horizon_is_distance_to_earliest_armed_tick() {
        let mut q = EventQueue::new();
        assert_eq!(q.horizon(0, 64), 64, "no events: the cap rules");
        q.schedule(SimEvent::Actuation, 10);
        q.schedule(SimEvent::Checkpoint, 7);
        assert_eq!(q.horizon(0, 64), 7);
        assert_eq!(q.horizon(5, 64), 2);
        // An event due now never stalls the loop.
        assert_eq!(q.horizon(7, 64), 1);
        assert_eq!(q.horizon(9, 64), 1);
        // The cap still applies when events are far away.
        assert_eq!(q.horizon(0, 5), 5);
    }

    #[test]
    fn defer_repositions_without_counting_scheduled() {
        let mut q = EventQueue::new();
        q.schedule(SimEvent::Watchdog, 8);
        q.defer(SimEvent::Watchdog, 3);
        q.defer(SimEvent::Watchdog, 5);
        assert_eq!(q.scheduled_total(SimEvent::Watchdog), 1);
        assert_eq!(q.next_tick(SimEvent::Watchdog), Some(5));
        assert_eq!(q.pop_due(4), None, "deferred past the stale tick-3 entry");
        assert_eq!(q.pop_due(5), Some(SimEvent::Watchdog));
    }

    #[test]
    fn tallies_seed_and_accumulate() {
        let mut q = EventQueue::new();
        q.seed_history(SimEvent::Actuation, 25, 25);
        q.schedule(SimEvent::Actuation, 4);
        assert_eq!(q.scheduled_total(SimEvent::Actuation), 26);
        assert_eq!(q.pop_due(4), Some(SimEvent::Actuation));
        q.count_fired(SimEvent::Actuation);
        assert_eq!(q.fired_total(SimEvent::Actuation), 26);
    }

    #[test]
    fn cross_domain_schedule_rounds_up() {
        // 300 system ticks = 1.2 µs; at a 1 MHz row clock that is 1.2 rows
        // → the event must arm at row 2, never row 1.
        let mut q = EventQueue::new();
        let sys = ClockDomain::system();
        let rows = ClockDomain { frequency: 1e6 };
        q.schedule_from_domain(SimEvent::FaultEdge, 300, &sys, &rows);
        assert_eq!(q.next_tick(SimEvent::FaultEdge), Some(2));
        // An exact conversion stays exact: 250 system ticks = 1 row.
        q.schedule_from_domain(SimEvent::FaultEdge, 250, &sys, &rows);
        assert_eq!(q.next_tick(SimEvent::FaultEdge), Some(1));
    }
}
