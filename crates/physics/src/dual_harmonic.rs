//! Dual-harmonic RF systems.
//!
//! SIS18 runs a dual-harmonic cavity system (the paper's companion work,
//! ref. [9]: "A Digital Beam-Phase Control System for a Heavy-Ion
//! Synchrotron With a Dual-Harmonic Cavity System"): a second cavity at
//! twice the RF frequency in counter-phase flattens the bucket, lengthening
//! the bunch and lowering the peak line density. This module models the
//! combined gap voltage and its beam-dynamics consequences, reusing the
//! same two-particle map (the voltage function is the only thing that
//! changes — exactly how the HIL kernel would be extended).

use crate::constants::TWO_PI;
use crate::machine::OperatingPoint;
use crate::tracking::TwoParticleMap;
use serde::{Deserialize, Serialize};

/// A dual-harmonic gap-voltage configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualHarmonicRf {
    /// Fundamental peak voltage V₁, volts.
    pub v1: f64,
    /// Second-harmonic amplitude ratio r = V₂/V₁ (0 = single harmonic;
    /// 0.5 gives the maximally flattened stationary bucket).
    pub ratio: f64,
    /// Harmonic multiple of the second cavity (2 at SIS18).
    pub multiple: u32,
    /// Phase of the second harmonic relative to counter-phase operation,
    /// radians (0 = ideal bunch-lengthening mode).
    pub phase_error: f64,
}

impl DualHarmonicRf {
    /// Single-harmonic configuration (reduces to the paper's model).
    pub fn single(v1: f64) -> Self {
        Self {
            v1,
            ratio: 0.0,
            multiple: 2,
            phase_error: 0.0,
        }
    }

    /// The SIS18 bunch-lengthening mode: V₂ = V₁/2 in counter-phase.
    pub fn bunch_lengthening(v1: f64) -> Self {
        Self {
            v1,
            ratio: 0.5,
            multiple: 2,
            phase_error: 0.0,
        }
    }

    /// Gap voltage at RF phase φ (radians at the fundamental):
    /// `V(φ) = V₁·[sin φ − r·sin(mφ + ε)]`.
    #[inline]
    pub fn voltage_at_phase(&self, phi: f64) -> f64 {
        self.v1
            * (phi.sin() - self.ratio * (f64::from(self.multiple) * phi + self.phase_error).sin())
    }

    /// Restoring-force slope at the stationary point (∂V/∂φ at φ = 0):
    /// `V₁·(1 − r·m·cos ε)`. Zero for the ideally flattened bucket with
    /// r = 1/m — small oscillations become anharmonic.
    pub fn slope_at_center(&self) -> f64 {
        self.v1 * (1.0 - self.ratio * f64::from(self.multiple) * self.phase_error.cos())
    }

    /// Advance a two-particle map one revolution in the stationary case
    /// with this RF (gap phase offset `offset_rad` for jumps/control).
    pub fn step(&self, map: &mut TwoParticleMap, offset_rad: f64) -> f64 {
        let f_rev = map.machine.revolution_frequency(map.reference.gamma);
        let f_rf = map.machine.rf_frequency(f_rev);
        let phi = TWO_PI * f_rf * map.particle.dt + offset_rad;
        let v = self.voltage_at_phase(phi);
        map.step_with_voltages(0.0, v)
    }

    /// Numerically measured synchrotron frequency (Hz) at a given launch
    /// amplitude (degrees at the fundamental), via zero-crossing counting.
    /// Returns `None` if the motion does not complete two oscillation
    /// periods within `max_turns` (e.g. the flat-bucket centre).
    pub fn fs_at_amplitude(
        &self,
        op: &OperatingPoint,
        amplitude_deg: f64,
        max_turns: usize,
    ) -> Option<f64> {
        let mut map = TwoParticleMap::at_operating_point(op);
        map.particle.dt = amplitude_deg / 360.0 / op.f_rf();
        let mut crossings: Vec<usize> = Vec::new();
        let mut last = map.particle.dt;
        for n in 0..max_turns {
            let dt = self.step(&mut map, 0.0);
            if last < 0.0 && dt >= 0.0 {
                crossings.push(n);
                if crossings.len() >= 3 {
                    break;
                }
            }
            last = dt;
        }
        if crossings.len() < 3 {
            return None;
        }
        let periods = (crossings.len() - 1) as f64;
        let turns = (crossings[crossings.len() - 1] - crossings[0]) as f64;
        Some(op.f_rev() * periods / turns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineParams;
    use crate::synchrotron::SynchrotronCalc;
    use crate::IonSpecies;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn single_harmonic_reduces_to_plain_sine() {
        let rf = DualHarmonicRf::single(1000.0);
        for phi in [-1.0f64, 0.0, 0.5, 2.0] {
            assert!((rf.voltage_at_phase(phi) - 1000.0 * phi.sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn lengthening_mode_flattens_the_center() {
        let v1 = 1000.0;
        let single = DualHarmonicRf::single(v1);
        let dual = DualHarmonicRf::bunch_lengthening(v1);
        assert!((single.slope_at_center() - v1).abs() < 1e-9);
        assert!(dual.slope_at_center().abs() < 1e-9, "ideally flat");
        // Near the centre the dual voltage is ~cubic: much smaller.
        let phi = 0.1;
        assert!(dual.voltage_at_phase(phi).abs() < single.voltage_at_phase(phi).abs() * 0.1);
    }

    #[test]
    fn single_harmonic_step_matches_map() {
        let op = op();
        let rf = DualHarmonicRf::single(op.v_gap_volts);
        let mut a = TwoParticleMap::at_operating_point(&op);
        let mut b = TwoParticleMap::at_operating_point(&op);
        a.particle.dt = 5e-9;
        b.particle.dt = 5e-9;
        for _ in 0..1000 {
            rf.step(&mut a, 0.0);
            b.step_stationary(op.v_gap_volts, 0.0);
            assert!((a.particle.dt - b.particle.dt).abs() < 1e-20);
        }
    }

    #[test]
    fn dual_harmonic_lowers_small_amplitude_fs() {
        let op = op();
        let single = DualHarmonicRf::single(op.v_gap_volts);
        let dual = DualHarmonicRf::bunch_lengthening(op.v_gap_volts);
        let fs_single = single.fs_at_amplitude(&op, 4.0, 100_000).unwrap();
        let fs_dual = dual.fs_at_amplitude(&op, 4.0, 100_000).unwrap();
        assert!((fs_single - 1.28e3).abs() < 30.0, "sanity: {fs_single}");
        assert!(
            fs_dual < fs_single * 0.5,
            "flat bucket slows small oscillations: {fs_dual} vs {fs_single}"
        );
    }

    #[test]
    fn dual_harmonic_fs_rises_with_amplitude() {
        // Anharmonic flat bucket: larger amplitudes reach the steep wall and
        // oscillate faster (opposite of the single-harmonic pendulum).
        let op = op();
        let dual = DualHarmonicRf::bunch_lengthening(op.v_gap_volts);
        let fs_small = dual.fs_at_amplitude(&op, 3.0, 400_000).unwrap();
        let fs_large = dual.fs_at_amplitude(&op, 25.0, 400_000).unwrap();
        assert!(fs_large > fs_small * 1.5, "{fs_small} -> {fs_large}");
    }

    #[test]
    fn single_harmonic_fs_falls_with_amplitude() {
        // The classic pendulum softening, for contrast.
        let op = op();
        let rf = DualHarmonicRf::single(op.v_gap_volts);
        let fs_small = rf.fs_at_amplitude(&op, 3.0, 200_000).unwrap();
        let fs_large = rf.fs_at_amplitude(&op, 60.0, 200_000).unwrap();
        assert!(fs_large < fs_small, "{fs_small} -> {fs_large}");
    }

    #[test]
    fn motion_stays_bounded_in_dual_bucket() {
        let op = op();
        let dual = DualHarmonicRf::bunch_lengthening(op.v_gap_volts);
        let mut map = TwoParticleMap::at_operating_point(&op);
        let dt0 = 20.0 / 360.0 / op.f_rf();
        map.particle.dt = dt0;
        let mut max_dt: f64 = 0.0;
        for _ in 0..200_000 {
            max_dt = max_dt.max(dual.step(&mut map, 0.0).abs());
        }
        assert!(max_dt < dt0 * 1.2, "bounded: {max_dt} vs {dt0}");
    }

    #[test]
    fn phase_error_restores_a_linear_slope() {
        // A 90° second-harmonic phase error stops cancelling the slope.
        let rf = DualHarmonicRf {
            phase_error: std::f64::consts::FRAC_PI_2,
            ..DualHarmonicRf::bunch_lengthening(1000.0)
        };
        assert!(rf.slope_at_center() > 900.0);
    }
}
