//! Synchrotron ring model: orbit length, momentum compaction, harmonic
//! number, and the phase-slip factor of Eq. (5).
//!
//! The paper's use cases all refer to the GSI SIS18 (circumference 216.72 m,
//! harmonic number 4 in the reproduced MDE); other rings can be described by
//! constructing [`MachineParams`] directly.

use crate::constants::C;
use crate::ion::IonSpecies;
use crate::relativity;
use serde::{Deserialize, Serialize};

/// Static parameters of a synchrotron ring and the chosen ion optics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineParams {
    /// Reference-orbit length `l_R` in metres (the paper's constant orbit).
    pub orbit_length_m: f64,
    /// Momentum compaction factor α_c (Eq. 4). Positive at GSI.
    pub momentum_compaction: f64,
    /// Harmonic number h: f_RF = h · f_R.
    pub harmonic_number: u32,
}

impl MachineParams {
    /// The GSI SIS18 heavy-ion synchrotron with the MDE's harmonic number 4.
    ///
    /// Circumference 216.72 m; transition gamma γ_t ≈ 5.45, i.e.
    /// α_c = 1/γ_t² ≈ 0.0337.
    pub fn sis18() -> Self {
        Self::sis18_with_harmonic(4)
    }

    /// SIS18 with an explicit harmonic number (Fig. 2 uses h = 2).
    pub fn sis18_with_harmonic(harmonic_number: u32) -> Self {
        let gamma_t = 5.45_f64;
        Self {
            orbit_length_m: 216.72,
            momentum_compaction: 1.0 / (gamma_t * gamma_t),
            harmonic_number,
        }
    }

    /// Transition gamma γ_t = 1/√α_c. Above this energy the phase-slip
    /// factor changes sign and the stable phase flips.
    pub fn gamma_transition(&self) -> f64 {
        (1.0 / self.momentum_compaction).sqrt()
    }

    /// Phase-slip factor η_R = α_c − 1/γ² (Eq. 5).
    #[inline]
    pub fn phase_slip(&self, gamma: f64) -> f64 {
        self.momentum_compaction - 1.0 / (gamma * gamma)
    }

    /// True if a particle with Lorentz factor γ is below transition
    /// (η < 0, the regime of the reproduced MDE).
    pub fn below_transition(&self, gamma: f64) -> bool {
        self.phase_slip(gamma) < 0.0
    }

    /// RF frequency for a given revolution frequency: f_RF = h·f_R.
    #[inline]
    pub fn rf_frequency(&self, f_rev: f64) -> f64 {
        f64::from(self.harmonic_number) * f_rev
    }

    /// Revolution frequency of a particle with Lorentz factor γ on the
    /// reference orbit.
    #[inline]
    pub fn revolution_frequency(&self, gamma: f64) -> f64 {
        relativity::revolution_frequency(gamma, self.orbit_length_m)
    }

    /// Revolution period of a particle with Lorentz factor γ.
    #[inline]
    pub fn revolution_time(&self, gamma: f64) -> f64 {
        relativity::revolution_time(gamma, self.orbit_length_m)
    }

    /// The drift coefficient of Eq. (6): the per-revolution advance of Δt per
    /// unit of Δγ/γ_R, i.e. `l_R·η_R/(β_R³·c)` (with β ≈ β_R for the
    /// asynchronous particle, the paper's second simplification).
    #[inline]
    pub fn drift_coefficient(&self, gamma: f64) -> f64 {
        let beta = relativity::beta_from_gamma(gamma);
        self.orbit_length_m * self.phase_slip(gamma) / (beta * beta * beta * C)
    }
}

/// A fully specified operating point: ring + ion + reference energy + gap
/// voltage amplitude. This is the tuple every experiment in the evaluation
/// is parameterised by.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Ring and optics.
    pub machine: MachineParams,
    /// Circulating species.
    pub ion: IonSpecies,
    /// Lorentz factor of the reference particle.
    pub gamma_r: f64,
    /// Peak gap voltage V̂ in volts.
    pub v_gap_volts: f64,
}

impl OperatingPoint {
    /// Construct the operating point from a measured revolution frequency,
    /// exactly like the paper's kernel initialises from the period-length
    /// detector (Section IV-B).
    pub fn from_revolution_frequency(
        machine: MachineParams,
        ion: IonSpecies,
        f_rev: f64,
        v_gap_volts: f64,
    ) -> Self {
        let gamma_r = relativity::gamma_from_revolution(f_rev, machine.orbit_length_m);
        Self {
            machine,
            ion,
            gamma_r,
            v_gap_volts,
        }
    }

    /// Revolution frequency of the reference particle, Hz.
    pub fn f_rev(&self) -> f64 {
        self.machine.revolution_frequency(self.gamma_r)
    }

    /// RF (gap) frequency, Hz.
    pub fn f_rf(&self) -> f64 {
        self.machine.rf_frequency(self.f_rev())
    }

    /// Phase-slip factor at this energy.
    pub fn eta(&self) -> f64 {
        self.machine.phase_slip(self.gamma_r)
    }

    /// β of the reference particle.
    pub fn beta_r(&self) -> f64 {
        relativity::beta_from_gamma(self.gamma_r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mde_point() -> OperatingPoint {
        OperatingPoint::from_revolution_frequency(
            MachineParams::sis18(),
            IonSpecies::n14_7plus(),
            800e3,
            4.9e3,
        )
    }

    #[test]
    fn sis18_basic_parameters() {
        let m = MachineParams::sis18();
        assert_eq!(m.harmonic_number, 4);
        assert!((m.orbit_length_m - 216.72).abs() < 1e-9);
        assert!((m.gamma_transition() - 5.45).abs() < 1e-9);
        assert!(m.momentum_compaction > 0.0, "GSI: alpha_c positive");
    }

    #[test]
    fn mde_point_is_below_transition() {
        let op = mde_point();
        assert!(op.machine.below_transition(op.gamma_r));
        // eta ≈ 0.0337 - 1/1.2258^2 ≈ -0.632
        assert!((op.eta() + 0.632).abs() < 2e-3, "eta={}", op.eta());
    }

    #[test]
    fn rf_frequency_is_harmonic_multiple() {
        let op = mde_point();
        assert!((op.f_rf() - 3.2e6).abs() < 10.0);
        assert!((op.f_rev() - 800e3).abs() < 1.0);
    }

    #[test]
    fn phase_slip_changes_sign_at_transition() {
        let m = MachineParams::sis18();
        let gt = m.gamma_transition();
        assert!(m.phase_slip(gt * 0.99) < 0.0);
        assert!(m.phase_slip(gt * 1.01) > 0.0);
        assert!(m.phase_slip(gt).abs() < 1e-6);
    }

    #[test]
    fn drift_coefficient_sign_below_transition() {
        // Below transition a positive Δγ must *reduce* Δt (higher energy
        // arrives earlier), so the coefficient is negative.
        let op = mde_point();
        assert!(op.machine.drift_coefficient(op.gamma_r) < 0.0);
    }

    #[test]
    fn fig2_harmonic_two_variant() {
        let m = MachineParams::sis18_with_harmonic(2);
        assert_eq!(m.rf_frequency(800e3), 1.6e6);
    }
}
