//! Longitudinal phase-space distributions.
//!
//! The paper's HIL simulator plays back a *Gaussian* beam pulse (Section
//! III-B) and its future work replaces the single macro particle with a
//! particle set. This module generates matched particle ensembles in
//! (Δt, Δγ) used by `cil-reftrack` (the real-beam stand-in for Fig. 5b) and
//! parametric bunch-profile shapes for the pulse generator.

use crate::machine::OperatingPoint;
use crate::synchrotron::{SynchrotronCalc, SynchrotronError};
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Supported bunch profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BunchShape {
    /// Gaussian in both planes — the common SIS18 observation
    /// ("often Gaussian", Section I).
    Gaussian,
    /// Parabolic line density (elliptic in phase space), the textbook
    /// matched distribution for a single-harmonic bucket.
    Parabolic,
}

/// A matched-bunch specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BunchSpec {
    /// Profile family.
    pub shape: BunchShape,
    /// RMS bunch length in seconds (Gaussian) or half-length/√5 (parabolic,
    /// so that `sigma_t` is always the RMS).
    pub sigma_t: f64,
}

impl BunchSpec {
    /// Gaussian bunch with the given RMS length.
    pub fn gaussian(sigma_t: f64) -> Self {
        Self {
            shape: BunchShape::Gaussian,
            sigma_t,
        }
    }

    /// Parabolic bunch with the given RMS length.
    pub fn parabolic(sigma_t: f64) -> Self {
        Self {
            shape: BunchShape::Parabolic,
            sigma_t,
        }
    }

    /// Sample `n` particles matched to the bucket at `op`, returning
    /// `(dt, dgamma)` pairs in SoA form. The energy spread is chosen so the
    /// distribution is stationary under small-amplitude motion.
    pub fn sample<R: Rng>(
        &self,
        n: usize,
        op: &OperatingPoint,
        rng: &mut R,
    ) -> Result<(Vec<f64>, Vec<f64>), SynchrotronError> {
        let calc = SynchrotronCalc::new(op.machine, op.ion);
        let f_rev = op.f_rev();
        let sigma_dg = calc.matched_sigma_dgamma(f_rev, op.v_gap_volts, self.sigma_t)?;
        let mut dts = Vec::with_capacity(n);
        let mut dgs = Vec::with_capacity(n);
        match self.shape {
            BunchShape::Gaussian => {
                let normal_t = rand_normal(self.sigma_t);
                let normal_g = rand_normal(sigma_dg);
                for _ in 0..n {
                    dts.push(normal_t.sample(rng));
                    dgs.push(normal_g.sample(rng));
                }
            }
            BunchShape::Parabolic => {
                // A parabolic line density (1 − u²) corresponds to the
                // phase-space density f(x, y) ∝ √(1 − x² − y²): sample a
                // point uniformly in the 3-ball and keep (x, y). Half-axes
                // √5·σ give RMS σ in each projection (Var(x) = a²/5).
                let a_t = 5.0_f64.sqrt() * self.sigma_t;
                let a_g = 5.0_f64.sqrt() * sigma_dg;
                let mut accepted = 0usize;
                while accepted < n {
                    let x: f64 = rng.gen_range(-1.0..1.0);
                    let y: f64 = rng.gen_range(-1.0..1.0);
                    let z: f64 = rng.gen_range(-1.0..1.0);
                    if x * x + y * y + z * z <= 1.0 {
                        dts.push(x * a_t);
                        dgs.push(y * a_g);
                        accepted += 1;
                    }
                }
            }
        }
        Ok((dts, dgs))
    }

    /// Line-density profile λ(t) sampled on `points` over ±`span_sigmas`·σ,
    /// normalised to peak 1 — the table the Gauss pulse generator plays
    /// back (and its parametric extension, Section VI).
    pub fn profile(&self, points: usize, span_sigmas: f64) -> Vec<f64> {
        assert!(points >= 2);
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let x = (i as f64 / (points - 1) as f64 * 2.0 - 1.0) * span_sigmas;
            let v = match self.shape {
                BunchShape::Gaussian => (-0.5 * x * x).exp(),
                BunchShape::Parabolic => {
                    // Parabolic density over half-length √5·σ.
                    let half = 5.0_f64.sqrt();
                    let u = x / half;
                    (1.0 - u * u).max(0.0)
                }
            };
            out.push(v);
        }
        out
    }
}

/// Minimal Box–Muller normal distribution (avoids depending on rand_distr).
#[derive(Debug, Clone, Copy)]
struct Normal {
    sigma: f64,
}

fn rand_normal(sigma: f64) -> Normal {
    Normal { sigma }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        self.sigma * mag * (std::f64::consts::TAU * u2).cos()
    }
}

/// Summary statistics of an ensemble — used by tests and by the mode
/// diagnostics in [`crate::modes`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnsembleStats {
    /// Mean of the samples.
    pub mean: f64,
    /// Standard deviation (population).
    pub std: f64,
}

/// Compute mean/std of a slice.
pub fn stats(xs: &[f64]) -> EnsembleStats {
    assert!(!xs.is_empty());
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    EnsembleStats {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ion::IonSpecies;
    use crate::machine::MachineParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn op() -> OperatingPoint {
        let m = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(m, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        OperatingPoint::from_revolution_frequency(m, ion, 800e3, v)
    }

    #[test]
    fn gaussian_sample_has_requested_sigmas() {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = BunchSpec::gaussian(50e-9);
        let (dts, dgs) = spec.sample(200_000, &op(), &mut rng).unwrap();
        let st = stats(&dts);
        assert!(
            (st.std - 50e-9).abs() / 50e-9 < 0.02,
            "sigma_t = {}",
            st.std
        );
        assert!(st.mean.abs() < 2e-9);
        let sg = stats(&dgs);
        assert!(sg.std > 0.0);
    }

    #[test]
    fn parabolic_sample_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = BunchSpec::parabolic(50e-9);
        let (dts, _) = spec.sample(50_000, &op(), &mut rng).unwrap();
        let half = 5.0_f64.sqrt() * 50e-9;
        assert!(dts.iter().all(|&t| t.abs() <= half));
        // RMS of a uniformly filled ellipse projection is sigma.
        let st = stats(&dts);
        assert!((st.std - 50e-9).abs() / 50e-9 < 0.03, "sigma = {}", st.std);
    }

    #[test]
    fn gaussian_profile_peak_centered() {
        let p = BunchSpec::gaussian(1.0).profile(101, 4.0);
        assert_eq!(p.len(), 101);
        assert!((p[50] - 1.0).abs() < 1e-12, "peak at centre");
        assert!(p[0] < 1e-3 && p[100] < 1e-3, "tails small at 4 sigma");
        // Symmetry.
        for i in 0..50 {
            assert!((p[i] - p[100 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn parabolic_profile_has_compact_support() {
        let p = BunchSpec::parabolic(1.0).profile(201, 4.0);
        // Beyond sqrt(5)≈2.24 sigma the density is exactly zero.
        assert_eq!(p[0], 0.0);
        assert_eq!(p[200], 0.0);
        assert!(p[100] > 0.99);
    }

    #[test]
    fn stats_of_constant_slice() {
        let s = stats(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn matched_bunch_is_nearly_stationary_under_tracking() {
        // Track a matched Gaussian bunch for half a synchrotron period: the
        // RMS length must stay within a few percent (it would breathe at
        // 2·fs if mismatched).
        use crate::tracking::TwoParticleMap;
        // σ_t = 10 ns keeps the bunch well inside the 3.2 MHz bucket
        // (half-length 156 ns), i.e. in the near-linear region where the
        // matching is exact; larger bunches filament (that nonlinear effect
        // is exactly what cil-reftrack studies).
        let op = op();
        let mut rng = StdRng::seed_from_u64(3);
        let (mut dts, mut dgs) = BunchSpec::gaussian(10e-9)
            .sample(20_000, &op, &mut rng)
            .unwrap();
        let turns = (800e3 / 1.28e3 / 2.0) as usize;
        let template = TwoParticleMap::at_operating_point(&op);
        let sigma0 = stats(&dts).std;
        for _ in 0..turns {
            for i in 0..dts.len() {
                let mut m = template;
                m.particle.dt = dts[i];
                m.particle.dgamma = dgs[i];
                m.step_stationary(op.v_gap_volts, 0.0);
                dts[i] = m.particle.dt;
                dgs[i] = m.particle.dgamma;
            }
        }
        let sigma1 = stats(&dts).std;
        assert!(
            (sigma1 - sigma0).abs() / sigma0 < 0.06,
            "sigma drifted {sigma0} -> {sigma1}"
        );
    }
}
