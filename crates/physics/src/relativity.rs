//! Relativistic kinematics: the Lorentz factors of Eq. (1) and conversions
//! between velocity, β, γ, momentum and kinetic energy.
//!
//! The paper tracks particle energy through the Lorentz factor γ alone
//! (Eq. 2); everything else — revolution time, phase-slip factor — is derived
//! from γ via these conversions.

use crate::constants::C;

/// β = v/c for a velocity in m/s (Eq. 1, first factor).
///
/// Panics in debug builds if `v` is superluminal.
#[inline]
pub fn beta_from_velocity(v: f64) -> f64 {
    debug_assert!(v.abs() < C, "superluminal velocity {v}");
    v / C
}

/// γ = 1/√(1−β²) (Eq. 1, second factor).
#[inline]
pub fn gamma_from_beta(beta: f64) -> f64 {
    debug_assert!(beta.abs() < 1.0, "|beta| must be < 1, got {beta}");
    1.0 / (1.0 - beta * beta).sqrt()
}

/// β from γ: β = √(1 − 1/γ²). Valid for γ ≥ 1.
#[inline]
pub fn beta_from_gamma(gamma: f64) -> f64 {
    debug_assert!(gamma >= 1.0, "gamma must be >= 1, got {gamma}");
    (1.0 - 1.0 / (gamma * gamma)).sqrt()
}

/// Velocity in m/s from γ.
#[inline]
pub fn velocity_from_gamma(gamma: f64) -> f64 {
    beta_from_gamma(gamma) * C
}

/// γ from a revolution frequency `f_rev` (Hz) on an orbit of length
/// `orbit_len` (m): v = f·l, β = v/c, γ = 1/√(1−β²).
///
/// This is exactly the initialisation the paper's C kernel performs from the
/// period-length detector measurement (Section IV-B).
#[inline]
pub fn gamma_from_revolution(f_rev: f64, orbit_len: f64) -> f64 {
    gamma_from_beta(beta_from_velocity(f_rev * orbit_len))
}

/// Revolution time (s) of a particle with Lorentz factor γ on `orbit_len` m.
#[inline]
pub fn revolution_time(gamma: f64, orbit_len: f64) -> f64 {
    orbit_len / velocity_from_gamma(gamma)
}

/// Revolution frequency (Hz) of a particle with Lorentz factor γ.
#[inline]
pub fn revolution_frequency(gamma: f64, orbit_len: f64) -> f64 {
    velocity_from_gamma(gamma) / orbit_len
}

/// Relativistic momentum times c, in eV: `pc = βγ·mc²`.
///
/// Using `pc` in eV avoids carrying kg·m/s through the tracking equations;
/// only momentum *ratios* ever enter the map (Eqs. 4–5).
#[inline]
pub fn pc_ev(gamma: f64, rest_energy_ev: f64) -> f64 {
    beta_from_gamma(gamma) * gamma * rest_energy_ev
}

/// Kinetic energy in eV: `(γ−1)·mc²`.
#[inline]
pub fn kinetic_energy_ev(gamma: f64, rest_energy_ev: f64) -> f64 {
    (gamma - 1.0) * rest_energy_ev
}

/// γ from kinetic energy per particle in eV.
#[inline]
pub fn gamma_from_kinetic(kinetic_ev: f64, rest_energy_ev: f64) -> f64 {
    1.0 + kinetic_ev / rest_energy_ev
}

/// First-order relation between relative momentum deviation and relative
/// γ deviation: Δp/p = (1/β²)·(Δγ/γ).
///
/// This is the linearisation the paper's third simplification before Eq. (6)
/// relies on.
#[inline]
pub fn dp_over_p_from_dgamma(dgamma: f64, gamma: f64) -> f64 {
    let beta2 = 1.0 - 1.0 / (gamma * gamma);
    dgamma / (gamma * beta2)
}

/// Exact Δp/p between two Lorentz factors, for error analysis of the
/// linearised map: Δp/p = (β'γ' − βγ)/(βγ).
#[inline]
pub fn dp_over_p_exact(gamma: f64, gamma_other: f64) -> f64 {
    let bg = beta_from_gamma(gamma) * gamma;
    let bg2 = beta_from_gamma(gamma_other) * gamma_other;
    (bg2 - bg) / bg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_gamma_roundtrip() {
        for &beta in &[1e-6, 0.1, 0.5783, 0.9, 0.999_999] {
            let gamma = gamma_from_beta(beta);
            // At very small beta the roundtrip loses precision to the
            // catastrophic cancellation in 1 - 1/gamma^2; 1e-9 absolute is
            // what f64 supports there.
            assert!((beta_from_gamma(gamma) - beta).abs() < 1e-9, "beta={beta}");
        }
    }

    #[test]
    fn gamma_is_monotone_in_beta() {
        let mut last = 0.0;
        for i in 1..1000 {
            let g = gamma_from_beta(i as f64 / 1000.0);
            assert!(g > last);
            last = g;
        }
    }

    #[test]
    fn mde_operating_point_kinematics() {
        // Paper Section V: f_ref = 800 kHz on the SIS18 orbit (216.72 m).
        let gamma = gamma_from_revolution(800e3, 216.72);
        let beta = beta_from_gamma(gamma);
        assert!((beta - 0.5783).abs() < 1e-3, "beta={beta}");
        assert!((gamma - 1.2258).abs() < 1e-3, "gamma={gamma}");
        // Round trip back to the revolution frequency.
        let f = revolution_frequency(gamma, 216.72);
        assert!((f - 800e3).abs() < 1.0);
    }

    #[test]
    fn revolution_time_matches_frequency() {
        let gamma = 1.5;
        let t = revolution_time(gamma, 216.72);
        let f = revolution_frequency(gamma, 216.72);
        assert!((t * f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_sis18_revolution_rate() {
        // Paper Section I: f_R,max ≈ 1.4 MHz => T_R ≈ 0.7 µs. The hard
        // ceiling on a 216.72 m ring is c/l ≈ 1.3834 MHz (β → 1); the
        // paper's "≈1.4 MHz" is that ultrarelativistic limit rounded.
        let f_limit = C / 216.72;
        assert!((f_limit - 1.3834e6).abs() < 1e3);
        let gamma = gamma_from_revolution(1.38e6, 216.72);
        let t = revolution_time(gamma, 216.72);
        assert!((t - 0.725e-6).abs() < 0.01e-6);
    }

    #[test]
    fn dp_over_p_linearisation_accurate_for_small_dgamma() {
        let gamma = 1.2258;
        let dgamma = 1e-6;
        let lin = dp_over_p_from_dgamma(dgamma, gamma);
        let exact = dp_over_p_exact(gamma, gamma + dgamma);
        assert!((lin - exact).abs() / exact.abs() < 1e-4);
    }

    #[test]
    fn kinetic_energy_conversions() {
        let rest = 13.04e9;
        let ke = 150e6 * 14.0; // 150 MeV/u for A=14
        let g = gamma_from_kinetic(ke, rest);
        assert!((kinetic_energy_ev(g, rest) - ke).abs() < 1.0);
    }

    #[test]
    fn pc_positive_and_increasing() {
        let rest = 13.04e9;
        assert!(pc_ev(1.1, rest) < pc_ev(1.2, rest));
        assert!(pc_ev(1.0001, rest) > 0.0);
    }
}
