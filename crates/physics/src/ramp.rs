//! Acceleration-ramp programs — the paper's "ramp-up case" (Section VI):
//! after injection the bunches have much smaller energies and longer
//! revolution times, and the RF frequency and amplitude vary during the ramp.
//!
//! A [`RampProgram`] describes set-value curves f_R(t) and V̂(t) plus the
//! synchronous phase; [`RampTracker`] advances the two-particle map along the
//! ramp, with the reference particle accelerated each turn by
//! `V̂·sin(φ_s)` exactly as the LLRF set values demand.

use crate::constants::TWO_PI;
use crate::machine::MachineParams;
use crate::relativity;
use crate::tracking::TwoParticleMap;
use serde::{Deserialize, Serialize};

/// Piecewise-linear set-value curve (time → value), the shape LLRF control
/// systems actually play out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// (time s, value) breakpoints, strictly increasing in time.
    pub points: Vec<(f64, f64)>,
}

impl Curve {
    /// A constant curve.
    pub fn constant(value: f64) -> Self {
        Self {
            points: vec![(0.0, value)],
        }
    }

    /// A linear ramp from `(t0, v0)` to `(t1, v1)`, constant outside.
    pub fn linear(t0: f64, v0: f64, t1: f64, v1: f64) -> Self {
        assert!(t1 > t0, "ramp must have positive duration");
        Self {
            points: vec![(t0, v0), (t1, v1)],
        }
    }

    /// Build from explicit breakpoints.
    ///
    /// Panics if `points` is empty or times are not strictly increasing.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(!points.is_empty(), "curve needs at least one point");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "times must be strictly increasing");
        }
        Self { points }
    }

    /// Sample the curve at time `t` (clamped to the first/last breakpoint).
    pub fn at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the surrounding segment.
        let idx = pts.partition_point(|&(tp, _)| tp <= t);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

/// A complete ramp description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RampProgram {
    /// Revolution-frequency set curve f_R(t), Hz.
    pub f_rev: Curve,
    /// Gap-voltage amplitude set curve V̂(t), volts.
    pub v_hat: Curve,
}

impl RampProgram {
    /// A stationary (flat-top) program.
    pub fn stationary(f_rev: f64, v_hat: f64) -> Self {
        Self {
            f_rev: Curve::constant(f_rev),
            v_hat: Curve::constant(v_hat),
        }
    }

    /// SIS18-like injection-to-flattop ramp: 100 kHz → 800 kHz revolution
    /// frequency over `ramp_seconds`, voltage raised from `v0` to `v1`.
    ///
    /// The 100 kHz lower end is the "smaller revolution frequencies down to
    /// 100 kHz" the paper's ring buffers are sized for (Section III-B).
    pub fn sis18_injection(ramp_seconds: f64, v0: f64, v1: f64) -> Self {
        Self {
            f_rev: Curve::linear(0.0, 100e3, ramp_seconds, 800e3),
            v_hat: Curve::linear(0.0, v0, ramp_seconds, v1),
        }
    }
}

/// Tracks the two-particle map along a ramp program.
///
/// Each revolution the tracker:
/// 1. reads the set values f_R(t), V̂(t);
/// 2. computes the synchronous voltage `V_R` that realises the programmed
///    energy gain (the B-field/frequency program and the cavity must agree —
///    in a real LLRF this is the synchronous phase φ_s);
/// 3. applies the map with the asynchronous particle sampling the sine at
///    its arrival-time offset around φ_s.
#[derive(Debug, Clone)]
pub struct RampTracker {
    /// The underlying two-particle map.
    pub map: TwoParticleMap,
    /// Ramp set curves.
    pub program: RampProgram,
    /// Elapsed machine time, seconds.
    pub time: f64,
    /// Completed revolutions.
    pub turn: u64,
}

/// One revolution's worth of ramp-tracking telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampSample {
    /// Machine time at the end of the revolution, s.
    pub time: f64,
    /// Reference Lorentz factor after the kick.
    pub gamma_r: f64,
    /// Synchronous phase used this turn, radians.
    pub phi_s: f64,
    /// Arrival-time deviation of the macro particle, s.
    pub dt: f64,
    /// Energy deviation of the macro particle.
    pub dgamma: f64,
}

impl RampTracker {
    /// Start a ramp at t = 0 with the reference particle at the programmed
    /// injection frequency and the macro particle on-reference.
    pub fn new(machine: MachineParams, ion: crate::ion::IonSpecies, program: RampProgram) -> Self {
        let f0 = program.f_rev.at(0.0);
        let op = crate::machine::OperatingPoint::from_revolution_frequency(
            machine,
            ion,
            f0,
            program.v_hat.at(0.0),
        );
        Self {
            map: TwoParticleMap::at_operating_point(&op),
            program,
            time: 0.0,
            turn: 0,
        }
    }

    /// The synchronous phase demanded by the programmed frequency slope at
    /// time `t`: the per-turn γ gain needed to follow f_R(t), divided by the
    /// available voltage. Returns `None` if the programmed ramp is steeper
    /// than the cavity voltage allows (over-demanded bucket).
    pub fn required_phi_s(&self, t: f64) -> Option<f64> {
        let dt_probe = 1e-4; // s, well below any realistic ramp feature
        let f_now = self.program.f_rev.at(t);
        let f_next = self.program.f_rev.at(t + dt_probe);
        let l = self.map.machine.orbit_length_m;
        let g_now = relativity::gamma_from_revolution(f_now, l);
        let g_next = relativity::gamma_from_revolution(f_next, l);
        let dgamma_dt = (g_next - g_now) / dt_probe;
        let t_rev = 1.0 / f_now;
        let dgamma_per_turn = dgamma_dt * t_rev;
        let v_hat = self.program.v_hat.at(t);
        let need = dgamma_per_turn / (self.map.ion.gamma_per_volt() * v_hat);
        if need.abs() > 1.0 {
            return None;
        }
        Some(need.asin())
    }

    /// Advance one revolution. Returns `None` if the ramp over-demands the
    /// bucket (caller should treat this as beam loss).
    pub fn step(&mut self) -> Option<RampSample> {
        self.step_with_phase_offset(0.0)
    }

    /// Advance one revolution with an additional gap-phase offset (radians
    /// at the RF harmonic) — the injection point for phase jumps and the
    /// beam-phase controller when the ramp runs inside the HIL loop. The
    /// offset displaces only the asynchronous particle's sampling point;
    /// the reference particle follows the undisturbed set values.
    pub fn step_with_phase_offset(&mut self, offset_rad: f64) -> Option<RampSample> {
        let t = self.time;
        let phi_s = self.required_phi_s(t)?;
        let v_hat = self.program.v_hat.at(t);
        let f_rev = self
            .map
            .machine
            .revolution_frequency(self.map.reference.gamma);
        let f_rf = self.map.machine.rf_frequency(f_rev);

        // Reference particle crosses at φ_s; the asynchronous particle at
        // φ_s + ω_RF·Δt (+ the injected offset).
        let v_ref = v_hat * phi_s.sin();
        let v_async = v_hat * (phi_s + TWO_PI * f_rf * self.map.particle.dt + offset_rad).sin();
        self.map.step_with_voltages(v_ref, v_async);

        self.time += 1.0 / f_rev;
        self.turn += 1;
        Some(RampSample {
            time: self.time,
            gamma_r: self.map.reference.gamma,
            phi_s,
            dt: self.map.particle.dt,
            dgamma: self.map.particle.dgamma,
        })
    }

    /// Run until `t_end` seconds; returns every `stride`-th sample.
    pub fn run_until(&mut self, t_end: f64, stride: usize) -> Vec<RampSample> {
        let mut out = Vec::new();
        let mut n = 0usize;
        while self.time < t_end {
            match self.step() {
                Some(s) => {
                    if n.is_multiple_of(stride.max(1)) {
                        out.push(s);
                    }
                    n += 1;
                }
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ion::IonSpecies;

    #[test]
    fn curve_interpolates_linearly() {
        let c = Curve::linear(0.0, 0.0, 1.0, 10.0);
        assert_eq!(c.at(-1.0), 0.0);
        assert_eq!(c.at(2.0), 10.0);
        assert!((c.at(0.25) - 2.5).abs() < 1e-12);
        assert!((c.at(0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn curve_multi_segment() {
        let c = Curve::from_points(vec![(0.0, 1.0), (1.0, 2.0), (3.0, 0.0)]);
        assert!((c.at(0.5) - 1.5).abs() < 1e-12);
        assert!((c.at(2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn curve_rejects_unordered_points() {
        let _ = Curve::from_points(vec![(1.0, 0.0), (0.5, 1.0)]);
    }

    #[test]
    fn ramp_accelerates_reference_to_programmed_frequency() {
        // A short, gentle ramp: 780 kHz -> 800 kHz in 50 ms.
        let program = RampProgram {
            f_rev: Curve::linear(0.0, 780e3, 0.05, 800e3),
            v_hat: Curve::constant(15e3),
        };
        let mut tr = RampTracker::new(MachineParams::sis18(), IonSpecies::n14_7plus(), program);
        let samples = tr.run_until(0.06, 1000);
        assert!(!samples.is_empty());
        let f_final = tr.map.machine.revolution_frequency(tr.map.reference.gamma);
        assert!(
            (f_final - 800e3).abs() < 2e3,
            "final f_rev = {f_final}, expected ~800 kHz"
        );
        // Synchronous phase must have been positive during the ramp
        // (acceleration below transition) and ~0 at flat top.
        let mid = &samples[samples.len() / 3];
        assert!(mid.phi_s > 0.0);
    }

    #[test]
    fn overdemanded_ramp_detected() {
        // Absurd ramp with tiny voltage: required sin(phi_s) > 1.
        let program = RampProgram {
            f_rev: Curve::linear(0.0, 400e3, 0.001, 1.2e6),
            v_hat: Curve::constant(1.0),
        };
        let tr = RampTracker::new(MachineParams::sis18(), IonSpecies::n14_7plus(), program);
        assert!(tr.required_phi_s(0.0005).is_none());
    }

    #[test]
    fn macro_particle_stays_bound_during_gentle_ramp() {
        let program = RampProgram {
            f_rev: Curve::linear(0.0, 790e3, 0.1, 800e3),
            v_hat: Curve::constant(20e3),
        };
        let mut tr = RampTracker::new(MachineParams::sis18(), IonSpecies::n14_7plus(), program);
        // Offset the macro particle slightly.
        tr.map.particle.dt = 5e-9;
        let samples = tr.run_until(0.1, 100);
        let max_dt = samples.iter().map(|s| s.dt.abs()).fold(0.0, f64::max);
        // Bound motion: stays within a small multiple of the initial offset
        // (adiabatic damping may shrink it; phase-jitter may grow it a bit).
        assert!(max_dt < 50e-9, "max |dt| = {max_dt}");
    }

    #[test]
    fn stationary_program_is_flat() {
        let p = RampProgram::stationary(800e3, 4.9e3);
        assert_eq!(p.f_rev.at(123.0), 800e3);
        assert_eq!(p.v_hat.at(0.5), 4.9e3);
    }

    #[test]
    fn sis18_injection_program_spans_paper_range() {
        let p = RampProgram::sis18_injection(1.0, 2e3, 10e3);
        assert_eq!(p.f_rev.at(0.0), 100e3); // ring-buffer sizing case
        assert_eq!(p.f_rev.at(1.0), 800e3);
    }
}
