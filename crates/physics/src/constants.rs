//! Physical constants used throughout the reproduction.
//!
//! Values follow CODATA 2018 (the defined SI values where applicable).

/// Speed of light in vacuum, m/s (exact SI definition).
pub const C: f64 = 299_792_458.0;

/// Speed of light squared, m²/s².
pub const C2: f64 = C * C;

/// Elementary charge, coulomb (exact SI definition).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Atomic mass unit expressed as rest energy, eV.
pub const AMU_EV: f64 = 931.494_102_42e6;

/// Electron rest energy, eV.
pub const ELECTRON_REST_EV: f64 = 0.510_998_950_00e6;

/// Proton rest energy, eV.
pub const PROTON_REST_EV: f64 = 938.272_088_16e6;

/// Convenience: 2π.
pub const TWO_PI: f64 = 2.0 * std::f64::consts::PI;

/// Degrees per radian.
pub const DEG_PER_RAD: f64 = 180.0 / std::f64::consts::PI;

/// Radians per degree.
pub const RAD_PER_DEG: f64 = std::f64::consts::PI / 180.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_speed_is_exact_si_value() {
        assert_eq!(C, 299_792_458.0);
        assert_eq!(C2, C * C);
    }

    #[test]
    fn amu_matches_codata_to_ppm() {
        // 1 u = 931.49410242 MeV
        let rel = (AMU_EV - 931.494_102_42e6).abs() / AMU_EV;
        assert!(rel < 1e-12);
    }

    #[test]
    fn degree_radian_roundtrip() {
        let x = 123.456_f64;
        assert!((x * RAD_PER_DEG * DEG_PER_RAD - x).abs() < 1e-12);
    }
}
