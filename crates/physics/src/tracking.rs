//! The paper's recursive two-particle tracking map (Section IV-A).
//!
//! One *reference particle* (index R) defines the ideal acceleration scenario
//! and stays on the constant-length reference orbit; one *asynchronous macro
//! particle* represents the whole bunch and oscillates around the reference.
//! Per revolution the map applies:
//!
//! * Eq. (2): `γ_R,n = γ_R,n−1 + (Q/mc²)·V_R,n−1`
//! * Eq. (3): `Δγ_n = Δγ_n−1 + (Q/mc²)·ΔV_n` with `ΔV = V − V_R`
//! * Eq. (5): `η_R,n = α_c − 1/γ_R,n²`
//! * Eq. (6): `Δt_n = Δt_n−1 + l_R·η_R,n/(β_R³·c·γ_R,n) · Δγ_n`
//!
//! Two map variants are provided: the paper's linearised form
//! ([`TwoParticleMap`]) — this is exactly what the CGRA kernel computes — and
//! an exact nonlinear form ([`ExactMap`]) used to quantify the paper's three
//! stated simplifications.

use crate::constants::{C, TWO_PI};
use crate::ion::IonSpecies;
use crate::machine::{MachineParams, OperatingPoint};
use crate::relativity;
use serde::{Deserialize, Serialize};

/// State of the reference particle: its Lorentz factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReferenceParticle {
    /// Lorentz factor γ_R of the reference particle.
    pub gamma: f64,
}

impl ReferenceParticle {
    /// Initialise from a measured revolution frequency (the period-length
    /// detector path of Section IV-B).
    pub fn from_revolution_frequency(f_rev: f64, machine: &MachineParams) -> Self {
        Self {
            gamma: relativity::gamma_from_revolution(f_rev, machine.orbit_length_m),
        }
    }

    /// Apply the energy kick of one gap passage (Eq. 2).
    #[inline]
    pub fn kick(&mut self, v_gap_volts: f64, ion: &IonSpecies) {
        self.gamma += ion.gamma_per_volt() * v_gap_volts;
    }

    /// Current revolution time on the reference orbit.
    #[inline]
    pub fn revolution_time(&self, machine: &MachineParams) -> f64 {
        machine.revolution_time(self.gamma)
    }
}

/// State of the asynchronous macro particle, expressed as deviations from
/// the reference particle (the Δ quantities of Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MacroParticle {
    /// Energy deviation Δγ = γ − γ_R.
    pub dgamma: f64,
    /// Arrival-time deviation Δt at the gap, seconds. Positive = late.
    pub dt: f64,
}

impl MacroParticle {
    /// A particle launched with an initial phase offset (degrees, at RF
    /// harmonic h) and no energy error — the state right after an RF phase
    /// jump of that size.
    pub fn from_phase_offset_deg(phase_deg: f64, op: &OperatingPoint) -> Self {
        Self {
            dgamma: 0.0,
            dt: phase_deg / 360.0 / op.f_rf(),
        }
    }

    /// Phase deviation in degrees at the RF harmonic, the quantity the DSP
    /// phase detector reports in Fig. 5.
    pub fn phase_deg(&self, op: &OperatingPoint) -> f64 {
        self.dt * op.f_rf() * 360.0
    }
}

/// The paper's linearised per-revolution map. This struct is deliberately
/// *voltage-driven*: the caller supplies the gap voltages the two particles
/// sampled (from ring buffers in the HIL, or from an analytic RF model), so
/// the identical state machine runs under the CGRA, the turn-level engine and
/// unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoParticleMap {
    /// Ring parameters.
    pub machine: MachineParams,
    /// Circulating ion species.
    pub ion: IonSpecies,
    /// Reference-particle state.
    pub reference: ReferenceParticle,
    /// Asynchronous macro-particle state.
    pub particle: MacroParticle,
}

impl TwoParticleMap {
    /// Build a map at a given operating point with the macro particle on the
    /// reference trajectory (Δγ = Δt = 0, the paper's initialisation).
    pub fn at_operating_point(op: &OperatingPoint) -> Self {
        Self {
            machine: op.machine,
            ion: op.ion,
            reference: ReferenceParticle { gamma: op.gamma_r },
            particle: MacroParticle::default(),
        }
    }

    /// Advance one revolution given the *sampled* voltages (volts at the
    /// gap): `v_ref` seen by the reference particle and `v_async` seen by the
    /// asynchronous particle. Returns the updated Δt.
    ///
    /// Order of operations follows Section IV-B: kick the reference (Eq. 2),
    /// kick the deviation (Eq. 3), recompute η (Eq. 5), then drift (Eq. 6).
    #[inline]
    pub fn step_with_voltages(&mut self, v_ref: f64, v_async: f64) -> f64 {
        let q_over_mc2 = self.ion.gamma_per_volt();
        self.reference.gamma += q_over_mc2 * v_ref;
        self.particle.dgamma += q_over_mc2 * (v_async - v_ref);
        let drift = self.machine.drift_coefficient(self.reference.gamma);
        self.particle.dt += drift * self.particle.dgamma / self.reference.gamma;
        self.particle.dt
    }

    /// Advance one revolution in the *stationary analytic* case: sinusoidal
    /// gap voltage of amplitude `v_hat` whose phase is offset by
    /// `rf_phase_offset_rad` (phase jumps + control action).
    ///
    /// The reference particle is a mathematical construct that follows the
    /// undisturbed set values (Section IV-B: its voltage comes from the
    /// *reference* signal, whose positive zero crossing it rides), so in the
    /// stationary case it receives no net kick. Only the asynchronous
    /// particle samples the — possibly phase-shifted — gap signal:
    /// `V̂·sin(ω_RF·Δt + φ_off)`. A phase jump therefore moves the stable
    /// point to `Δt = −φ_off/ω_RF` and the bunch starts oscillating around
    /// it, with the first peak at twice the jump (the Fig. 5 signature).
    #[inline]
    pub fn step_stationary(&mut self, v_hat: f64, rf_phase_offset_rad: f64) -> f64 {
        let f_rf = self
            .machine
            .rf_frequency(self.machine.revolution_frequency(self.reference.gamma));
        let v_async = v_hat * (TWO_PI * f_rf * self.particle.dt + rf_phase_offset_rad).sin();
        self.step_with_voltages(0.0, v_async)
    }

    /// Current operating point snapshot (γ_R changes under acceleration).
    pub fn operating_point(&self, v_hat: f64) -> OperatingPoint {
        OperatingPoint {
            machine: self.machine,
            ion: self.ion,
            gamma_r: self.reference.gamma,
            v_gap_volts: v_hat,
        }
    }
}

/// Exact nonlinear per-revolution map tracking absolute quantities for both
/// particles, including the orbit-length change of Eq. (4). Used to validate
/// the paper's three simplifications (Section IV-A) and as ground truth in
/// accuracy ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactMap {
    /// Ring parameters.
    pub machine: MachineParams,
    /// Circulating ion species.
    pub ion: IonSpecies,
    /// γ of the reference particle.
    pub gamma_r: f64,
    /// γ of the asynchronous particle (absolute, not a deviation).
    pub gamma: f64,
    /// Absolute arrival-time deviation Δt, seconds.
    pub dt: f64,
}

impl ExactMap {
    /// Build from the linearised map state.
    pub fn from_linear(map: &TwoParticleMap) -> Self {
        Self {
            machine: map.machine,
            ion: map.ion,
            gamma_r: map.reference.gamma,
            gamma: map.reference.gamma + map.particle.dgamma,
            dt: map.particle.dt,
        }
    }

    /// Advance one revolution with explicit sampled voltages.
    ///
    /// Both particles get exact relativistic updates; the asynchronous
    /// particle's revolution time uses its own velocity *and* its own orbit
    /// length `l = l_R·(1 + α_c·Δp/p)` (Eq. 4) — no small-deviation
    /// expansion anywhere.
    pub fn step_with_voltages(&mut self, v_ref: f64, v_async: f64) -> f64 {
        let q_over_mc2 = self.ion.gamma_per_volt();
        self.gamma_r += q_over_mc2 * v_ref;
        self.gamma += q_over_mc2 * v_async;

        let l_r = self.machine.orbit_length_m;
        let dp_over_p = relativity::dp_over_p_exact(self.gamma_r, self.gamma);
        let l = l_r * (1.0 + self.machine.momentum_compaction * dp_over_p);

        let t_r = l_r / (relativity::beta_from_gamma(self.gamma_r) * C);
        let t = l / (relativity::beta_from_gamma(self.gamma) * C);
        self.dt += t - t_r;
        self.dt
    }

    /// Stationary analytic step, mirroring [`TwoParticleMap::step_stationary`]
    /// (reference particle follows undisturbed set values; only the
    /// asynchronous particle samples the shifted gap signal).
    pub fn step_stationary(&mut self, v_hat: f64, rf_phase_offset_rad: f64) -> f64 {
        let f_rev = self.machine.revolution_frequency(self.gamma_r);
        let f_rf = self.machine.rf_frequency(f_rev);
        let v_async = v_hat * (TWO_PI * f_rf * self.dt + rf_phase_offset_rad).sin();
        self.step_with_voltages(0.0, v_async)
    }

    /// Energy deviation Δγ.
    pub fn dgamma(&self) -> f64 {
        self.gamma - self.gamma_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synchrotron::SynchrotronCalc;

    fn mde_op() -> OperatingPoint {
        let machine = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v = SynchrotronCalc::new(machine, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .expect("stationary point below transition");
        OperatingPoint::from_revolution_frequency(machine, ion, 800e3, v)
    }

    #[test]
    fn stationary_particle_on_reference_stays_put() {
        let op = mde_op();
        let mut map = TwoParticleMap::at_operating_point(&op);
        for _ in 0..10_000 {
            map.step_stationary(op.v_gap_volts, 0.0);
        }
        assert_eq!(map.particle.dt, 0.0);
        assert_eq!(map.particle.dgamma, 0.0);
        // Stationary: zero net acceleration of the reference.
        assert!((map.reference.gamma - op.gamma_r).abs() < 1e-12);
    }

    #[test]
    fn displaced_particle_oscillates_at_synchrotron_frequency() {
        let op = mde_op();
        let mut map = TwoParticleMap::at_operating_point(&op);
        // 8 degree offset at the RF harmonic, as after a phase jump.
        map.particle = MacroParticle::from_phase_offset_deg(8.0, &op);
        let dt0 = map.particle.dt;

        // Track for one synchrotron period and find the dominant frequency
        // from zero crossings of dt.
        let f_rev = op.f_rev();
        let turns = (f_rev / 1.28e3 * 6.0) as usize; // six synchrotron periods
        let mut crossings = 0usize;
        let mut last = map.particle.dt;
        let mut first_crossing_turn = None;
        let mut last_crossing_turn = 0usize;
        for n in 0..turns {
            let dt = map.step_stationary(op.v_gap_volts, 0.0);
            if last > 0.0 && dt <= 0.0 || last < 0.0 && dt >= 0.0 {
                crossings += 1;
                if first_crossing_turn.is_none() {
                    first_crossing_turn = Some(n);
                }
                last_crossing_turn = n;
            }
            last = dt;
        }
        // crossings-1 half periods between first and last crossing.
        let half_periods = crossings - 1;
        let span_turns = (last_crossing_turn - first_crossing_turn.unwrap()) as f64;
        let fs = f_rev * half_periods as f64 / (2.0 * span_turns);
        assert!(
            (fs - 1.28e3).abs() / 1.28e3 < 0.02,
            "measured fs = {fs}, expected 1.28 kHz"
        );
        // Amplitude is preserved to a few percent over 6 periods
        // (the symplectic-ish discrete map has tiny amplitude error).
        assert!(map.particle.dt.abs() <= dt0 * 1.05);
    }

    #[test]
    fn oscillation_is_stable_below_transition() {
        let op = mde_op();
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle = MacroParticle::from_phase_offset_deg(8.0, &op);
        let dt0 = map.particle.dt;
        let mut max_dt: f64 = 0.0;
        for _ in 0..200_000 {
            let dt = map.step_stationary(op.v_gap_volts, 0.0);
            max_dt = max_dt.max(dt.abs());
        }
        // Bounded motion: never exceeds the initial amplitude by more than 10%.
        assert!(max_dt < dt0 * 1.10, "max |dt| = {max_dt}, dt0 = {dt0}");
    }

    #[test]
    fn energy_kick_signs_match_fig1() {
        // Fig. 1: a late particle (Δt > 0) sees a higher voltage and is
        // accelerated; an early one is slowed down.
        let op = mde_op();
        let mut late = TwoParticleMap::at_operating_point(&op);
        late.particle.dt = 10e-9;
        late.step_stationary(op.v_gap_volts, 0.0);
        assert!(late.particle.dgamma > 0.0, "late particle must gain energy");

        let mut early = TwoParticleMap::at_operating_point(&op);
        early.particle.dt = -10e-9;
        early.step_stationary(op.v_gap_volts, 0.0);
        assert!(
            early.particle.dgamma < 0.0,
            "early particle must lose energy"
        );
    }

    #[test]
    fn linear_map_matches_exact_map_for_small_amplitude() {
        let op = mde_op();
        let mut lin = TwoParticleMap::at_operating_point(&op);
        lin.particle = MacroParticle::from_phase_offset_deg(2.0, &op);
        let mut exact = ExactMap::from_linear(&lin);
        let mut max_rel = 0.0_f64;
        let amp = lin.particle.dt;
        for _ in 0..5_000 {
            let a = lin.step_stationary(op.v_gap_volts, 0.0);
            let b = exact.step_stationary(op.v_gap_volts, 0.0);
            max_rel = max_rel.max((a - b).abs() / amp);
        }
        // The paper's simplifications hold to well below a percent of the
        // oscillation amplitude at small Δγ/γ.
        assert!(max_rel < 0.02, "max relative deviation {max_rel}");
    }

    #[test]
    fn acceleration_raises_reference_energy() {
        let op = mde_op();
        let mut map = TwoParticleMap::at_operating_point(&op);
        let g0 = map.reference.gamma;
        // Synchronous phase 30 degrees: net acceleration each turn.
        for _ in 0..1000 {
            let v_ref = op.v_gap_volts * (30.0_f64.to_radians()).sin();
            map.step_with_voltages(v_ref, v_ref);
        }
        assert!(map.reference.gamma > g0);
        // With equal voltages the deviation stays zero.
        assert_eq!(map.particle.dgamma, 0.0);
    }

    #[test]
    fn phase_deg_conversion_roundtrip() {
        let op = mde_op();
        let p = MacroParticle::from_phase_offset_deg(8.0, &op);
        assert!((p.phase_deg(&op) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn reference_particle_from_frequency_matches_machine() {
        let m = MachineParams::sis18();
        let r = ReferenceParticle::from_revolution_frequency(800e3, &m);
        assert!((m.revolution_frequency(r.gamma) - 800e3).abs() < 1e-3);
    }
}
