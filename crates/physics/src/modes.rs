//! Longitudinal oscillation-mode diagnostics.
//!
//! The paper's evaluation concerns the *dipole* mode (the bunch centre
//! oscillating around the RF zero crossing); its future work targets
//! *quadrupole* (bunch-length breathing) and higher modes. This module
//! extracts mode amplitudes from ensemble trajectories so those experiments
//! can be scored quantitatively.

use serde::{Deserialize, Serialize};

/// Time series of ensemble moments, one entry per revolution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MomentHistory {
    /// Centroid ⟨Δt⟩ per turn, seconds — the dipole coordinate.
    pub centroid: Vec<f64>,
    /// RMS bunch length per turn, seconds — the quadrupole coordinate.
    pub rms: Vec<f64>,
}

impl MomentHistory {
    /// Record one turn's moments from particle arrival times.
    pub fn push_from_particles(&mut self, dts: &[f64]) {
        let n = dts.len() as f64;
        let mean = dts.iter().sum::<f64>() / n;
        let var = dts.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n;
        self.centroid.push(mean);
        self.rms.push(var.sqrt());
    }

    /// Number of recorded turns.
    pub fn len(&self) -> usize {
        self.centroid.len()
    }

    /// True if no turns have been recorded.
    pub fn is_empty(&self) -> bool {
        self.centroid.is_empty()
    }
}

/// Result of a single-mode analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeAnalysis {
    /// Dominant oscillation frequency in units of 1/turn.
    pub frequency_per_turn: f64,
    /// Peak amplitude of the oscillating component (same units as input).
    pub amplitude: f64,
    /// Mean (DC) level that the oscillation rides on.
    pub mean: f64,
}

/// Estimate the dominant oscillation of a (detrended) series by scanning a
/// dense frequency grid with the Goertzel-style projection
/// `A(f) = |Σ x_n e^{-2πi f n}|·2/N`.
///
/// `f_min`/`f_max` bound the search in cycles/turn. Designed for the short,
/// noisy traces the Fig. 5 experiments produce; resolution is refined by a
/// three-point parabolic interpolation around the grid peak.
pub fn analyze_mode(series: &[f64], f_min: f64, f_max: f64) -> ModeAnalysis {
    assert!(series.len() >= 8, "need at least 8 samples");
    assert!(f_min >= 0.0 && f_max > f_min && f_max <= 0.5);
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;

    let grid = 512usize;
    let mut best = (0usize, 0.0_f64);
    let mut amps = vec![0.0_f64; grid];
    for (k, amp_slot) in amps.iter_mut().enumerate() {
        let f = f_min + (f_max - f_min) * k as f64 / (grid - 1) as f64;
        let (mut re, mut im) = (0.0_f64, 0.0_f64);
        for (i, &x) in series.iter().enumerate() {
            let ph = std::f64::consts::TAU * f * i as f64;
            let v = x - mean;
            re += v * ph.cos();
            im -= v * ph.sin();
        }
        let a = 2.0 * (re * re + im * im).sqrt() / n as f64;
        *amp_slot = a;
        if a > best.1 {
            best = (k, a);
        }
    }
    // Parabolic refinement of the peak bin.
    let k = best.0;
    let df = (f_max - f_min) / (grid - 1) as f64;
    let f_peak = if k > 0 && k < grid - 1 {
        let (a0, a1, a2) = (amps[k - 1], amps[k], amps[k + 1]);
        let denom = a0 - 2.0 * a1 + a2;
        let delta = if denom.abs() > 1e-30 {
            0.5 * (a0 - a2) / denom
        } else {
            0.0
        };
        f_min + (k as f64 + delta.clamp(-0.5, 0.5)) * df
    } else {
        f_min + k as f64 * df
    };
    ModeAnalysis {
        frequency_per_turn: f_peak,
        amplitude: best.1,
        mean,
    }
}

/// Exponential-decay fit of the envelope of an oscillating series:
/// returns the damping time constant in turns, from a least-squares line fit
/// to `ln |peaks|`. Returns `None` if fewer than 3 peaks are found or the
/// envelope is not decaying.
pub fn damping_time_turns(series: &[f64]) -> Option<f64> {
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    // Collect local maxima of |x - mean|.
    let mut peaks: Vec<(f64, f64)> = Vec::new();
    for i in 1..series.len() - 1 {
        let a = (series[i - 1] - mean).abs();
        let b = (series[i] - mean).abs();
        let c = (series[i + 1] - mean).abs();
        if b >= a && b > c && b > 0.0 {
            peaks.push((i as f64, b.ln()));
        }
    }
    if peaks.len() < 3 {
        return None;
    }
    // Least-squares slope of ln|peak| vs turn.
    let n = peaks.len() as f64;
    let sx: f64 = peaks.iter().map(|p| p.0).sum();
    let sy: f64 = peaks.iter().map(|p| p.1).sum();
    let sxx: f64 = peaks.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = peaks.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    if slope >= 0.0 {
        None // growing or flat envelope
    } else {
        Some(-1.0 / slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(n: usize, f: f64, amp: f64, mean: f64, decay: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                mean + amp
                    * (std::f64::consts::TAU * f * i as f64).sin()
                    * (-(i as f64) / decay).exp()
            })
            .collect()
    }

    #[test]
    fn analyze_recovers_frequency_and_amplitude() {
        let s = synth(4096, 0.0123, 2.5, 10.0, f64::INFINITY);
        let m = analyze_mode(&s, 0.001, 0.05);
        assert!(
            (m.frequency_per_turn - 0.0123).abs() < 1e-4,
            "f = {}",
            m.frequency_per_turn
        );
        assert!((m.amplitude - 2.5).abs() < 0.05, "A = {}", m.amplitude);
        // Mean over a non-integer number of periods carries a small O(A/N)
        // leakage term.
        assert!((m.mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn analyze_two_tone_picks_dominant() {
        let mut s = synth(4096, 0.010, 3.0, 0.0, f64::INFINITY);
        let weak = synth(4096, 0.020, 0.5, 0.0, f64::INFINITY);
        for i in 0..s.len() {
            s[i] += weak[i];
        }
        let m = analyze_mode(&s, 0.005, 0.03);
        assert!((m.frequency_per_turn - 0.010).abs() < 5e-4);
    }

    #[test]
    fn damping_time_recovered() {
        let s = synth(8000, 0.01, 1.0, 0.0, 1500.0);
        let tau = damping_time_turns(&s).expect("decaying envelope");
        assert!((tau - 1500.0).abs() / 1500.0 < 0.1, "tau = {tau}");
    }

    #[test]
    fn growing_envelope_returns_none() {
        let s: Vec<f64> = (0..4000)
            .map(|i| (std::f64::consts::TAU * 0.01 * i as f64).sin() * (i as f64 / 1000.0).exp())
            .collect();
        assert_eq!(damping_time_turns(&s), None);
    }

    #[test]
    fn moment_history_tracks_centroid_and_rms() {
        let mut h = MomentHistory::default();
        h.push_from_particles(&[1.0, 3.0]);
        h.push_from_particles(&[-1.0, 1.0]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.centroid[0], 2.0);
        assert_eq!(h.centroid[1], 0.0);
        assert!((h.rms[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quadrupole_mode_visible_in_rms() {
        // Breathe the RMS at f=0.02: rms_n = 1 + 0.1 sin(2π f n).
        let mut h = MomentHistory::default();
        for i in 0..2048 {
            let r = 1.0 + 0.1 * (std::f64::consts::TAU * 0.02 * i as f64).sin();
            // Two symmetric particles at ±r give rms = r, centroid 0.
            h.push_from_particles(&[-r, r]);
        }
        let dip = analyze_mode(&h.centroid, 0.001, 0.1);
        let quad = analyze_mode(&h.rms, 0.001, 0.1);
        assert!(dip.amplitude < 1e-9, "no dipole motion");
        assert!((quad.frequency_per_turn - 0.02).abs() < 1e-3);
        assert!((quad.amplitude - 0.1).abs() < 5e-3);
    }
}
