//! Small-amplitude synchrotron-oscillation theory.
//!
//! The evaluation (Section V) sets the gap-voltage amplitude so that the
//! simulated synchrotron frequency matches the 1.28 kHz observed in the MDE.
//! This module provides that inversion, the forward formula, and bucket
//! parameters used by the multi-particle reference tracker to generate
//! matched bunches.
//!
//! For a stationary bucket (synchronous phase 0 below transition) the
//! per-second angular synchrotron frequency is
//!
//! ```text
//! ω_s = ω_R · sqrt( h·|η|·Q·V̂·cos φ_s / (2π·β²·γ·mc²) )
//! ```
//!
//! which follows from linearising the two-particle map of
//! [`crate::tracking`]; the derivation is checked *numerically* against the
//! map in this module's tests, so theory and simulation cannot drift apart.

use crate::constants::TWO_PI;
use crate::ion::IonSpecies;
use crate::machine::MachineParams;
use crate::relativity;
use serde::{Deserialize, Serialize};

/// Error returned when a synchrotron-frequency computation is requested at
/// an unstable operating point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynchrotronError {
    /// The requested phase/energy combination gives no stable oscillation
    /// (e.g. stationary bucket exactly at transition energy).
    Unstable,
}

impl std::fmt::Display for SynchrotronError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unstable => write!(
                f,
                "no stable synchrotron oscillation at this operating point"
            ),
        }
    }
}

impl std::error::Error for SynchrotronError {}

/// Calculator bundling machine + ion for synchrotron-frequency relations.
#[derive(Debug, Clone, Copy)]
pub struct SynchrotronCalc {
    machine: MachineParams,
    ion: IonSpecies,
}

impl SynchrotronCalc {
    /// New calculator for a ring/species pair.
    pub fn new(machine: MachineParams, ion: IonSpecies) -> Self {
        Self { machine, ion }
    }

    /// Small-amplitude synchrotron frequency (Hz) in a stationary bucket at
    /// revolution frequency `f_rev` with peak gap voltage `v_hat` volts.
    pub fn fs_stationary(&self, f_rev: f64, v_hat: f64) -> Result<f64, SynchrotronError> {
        self.fs_at_phase(f_rev, v_hat, 0.0)
    }

    /// Small-amplitude synchrotron frequency (Hz) about a synchronous phase
    /// `phi_s` (radians). Below transition stability requires cos φ_s > 0.
    pub fn fs_at_phase(&self, f_rev: f64, v_hat: f64, phi_s: f64) -> Result<f64, SynchrotronError> {
        let gamma = relativity::gamma_from_revolution(f_rev, self.machine.orbit_length_m);
        let beta2 = 1.0 - 1.0 / (gamma * gamma);
        let eta = self.machine.phase_slip(gamma);
        let h = f64::from(self.machine.harmonic_number);
        let q_v = f64::from(self.ion.charge_number) * v_hat;
        let e_total = gamma * self.ion.rest_energy_ev;
        // Stability: η·cosφ_s < 0 below transition convention folded into |·|;
        // the product must be positive after sign bookkeeping.
        let arg = -eta * q_v * phi_s.cos() * h / (TWO_PI * beta2 * e_total);
        if arg <= 0.0 {
            return Err(SynchrotronError::Unstable);
        }
        Ok(f_rev * arg.sqrt())
    }

    /// Invert [`Self::fs_stationary`]: the peak gap voltage (volts) that
    /// yields synchrotron frequency `fs` at revolution frequency `f_rev`.
    ///
    /// This is how the evaluation's V̂ ≈ 4.9 kV is derived from the MDE's
    /// 1.28 kHz (Section V: "the input voltage amplitude was adjusted to
    /// achieve a similar synchrotron frequency").
    pub fn voltage_for_fs(&self, f_rev: f64, fs: f64) -> Result<f64, SynchrotronError> {
        let gamma = relativity::gamma_from_revolution(f_rev, self.machine.orbit_length_m);
        let beta2 = 1.0 - 1.0 / (gamma * gamma);
        let eta = self.machine.phase_slip(gamma);
        if eta >= 0.0 {
            // Above (or at) transition the stationary bucket at φ_s = 0 is
            // unstable; the MDE ran below transition.
            return Err(SynchrotronError::Unstable);
        }
        let h = f64::from(self.machine.harmonic_number);
        let e_total = gamma * self.ion.rest_energy_ev;
        let ratio = fs / f_rev;
        let v = ratio * ratio * TWO_PI * beta2 * e_total
            / (h * eta.abs() * f64::from(self.ion.charge_number));
        Ok(v)
    }

    /// Bucket half-height in Δγ for a stationary bucket: the maximum energy
    /// deviation still inside the separatrix,
    /// `Δγ_max = sqrt( 2·Q·V̂·β²·γ / (π·h·|η|·mc²) ) · γ` — expressed via the
    /// map coefficients so it is consistent with the tracker.
    pub fn bucket_half_height_dgamma(
        &self,
        f_rev: f64,
        v_hat: f64,
    ) -> Result<f64, SynchrotronError> {
        let gamma = relativity::gamma_from_revolution(f_rev, self.machine.orbit_length_m);
        let eta = self.machine.phase_slip(gamma);
        if eta >= 0.0 {
            return Err(SynchrotronError::Unstable);
        }
        let h = f64::from(self.machine.harmonic_number);
        let q_v = f64::from(self.ion.charge_number) * v_hat;
        let beta2 = 1.0 - 1.0 / (gamma * gamma);
        // Standard stationary-bucket height: ΔE_max = β·sqrt(2·Q·V̂·E/(π·h·|η|)),
        // converted to Δγ = ΔE / mc².
        let e_total = gamma * self.ion.rest_energy_ev;
        let de_max =
            beta2.sqrt() * (2.0 * q_v * e_total / (std::f64::consts::PI * h * eta.abs())).sqrt();
        Ok(de_max / self.ion.rest_energy_ev)
    }

    /// RMS Δγ matched to an RMS bunch length (seconds) for small-amplitude
    /// (linear) motion: σ_Δγ = ω_s·γ·β³·c·σ_t / (l_R·|η|) — the inverse of the
    /// Eq. (6) drift over a quarter oscillation.
    pub fn matched_sigma_dgamma(
        &self,
        f_rev: f64,
        v_hat: f64,
        sigma_t: f64,
    ) -> Result<f64, SynchrotronError> {
        let fs = self.fs_stationary(f_rev, v_hat)?;
        let gamma = relativity::gamma_from_revolution(f_rev, self.machine.orbit_length_m);
        let drift = self.machine.drift_coefficient(gamma).abs() / gamma;
        // Linear oscillator: dt' = drift·Δγ per turn; angular frequency per
        // turn ω = 2π·fs/f_rev. Matched ellipse: σ_Δγ = ω·σ_t/drift.
        let omega_per_turn = TWO_PI * fs / f_rev;
        Ok(omega_per_turn * sigma_t / drift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OperatingPoint;
    use crate::tracking::{MacroParticle, TwoParticleMap};

    fn calc() -> SynchrotronCalc {
        SynchrotronCalc::new(MachineParams::sis18(), IonSpecies::n14_7plus())
    }

    #[test]
    fn mde_voltage_is_a_few_kilovolts() {
        let v = calc().voltage_for_fs(800e3, 1.28e3).unwrap();
        assert!(v > 2e3 && v < 10e3, "V = {v}");
    }

    #[test]
    fn forward_and_inverse_are_consistent() {
        let c = calc();
        for &fs in &[0.5e3, 1.28e3, 3.0e3] {
            let v = c.voltage_for_fs(800e3, fs).unwrap();
            let fs_back = c.fs_stationary(800e3, v).unwrap();
            assert!((fs_back - fs).abs() / fs < 1e-12);
        }
    }

    #[test]
    fn fs_scales_with_sqrt_voltage() {
        let c = calc();
        let f1 = c.fs_stationary(800e3, 1e3).unwrap();
        let f4 = c.fs_stationary(800e3, 4e3).unwrap();
        assert!((f4 / f1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn theory_matches_tracking_map() {
        // The analytic fs must match the frequency the actual discrete map
        // produces — the consistency anchor between theory and simulation.
        let c = calc();
        let v = c.voltage_for_fs(800e3, 1.28e3).unwrap();
        let op = OperatingPoint::from_revolution_frequency(
            MachineParams::sis18(),
            IonSpecies::n14_7plus(),
            800e3,
            v,
        );
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle = MacroParticle::from_phase_offset_deg(1.0, &op); // small amplitude
                                                                       // Count turns for 4 full periods via positive-going zero crossings.
        let mut crossings = Vec::new();
        let mut last = map.particle.dt;
        for n in 0..(800e3 / 1.28e3 * 5.0) as usize {
            let dt = map.step_stationary(op.v_gap_volts, 0.0);
            if last < 0.0 && dt >= 0.0 {
                crossings.push(n);
            }
            last = dt;
        }
        assert!(crossings.len() >= 3);
        let periods = (crossings.len() - 1) as f64;
        let turns = (crossings[crossings.len() - 1] - crossings[0]) as f64;
        let fs_sim = 800e3 * periods / turns;
        assert!((fs_sim - 1.28e3).abs() / 1.28e3 < 5e-3, "fs_sim = {fs_sim}");
    }

    #[test]
    fn unstable_above_transition() {
        let m = MachineParams::sis18();
        // Pick a revolution frequency corresponding to γ > γ_t: β from γ = 6.
        let beta = relativity::beta_from_gamma(6.0);
        let f_rev = beta * crate::constants::C / m.orbit_length_m;
        let c = SynchrotronCalc::new(m, IonSpecies::n14_7plus());
        assert_eq!(
            c.voltage_for_fs(f_rev, 1e3),
            Err(SynchrotronError::Unstable)
        );
        assert_eq!(c.fs_stationary(f_rev, 1e3), Err(SynchrotronError::Unstable));
    }

    #[test]
    fn unstable_phase_rejected() {
        // φ_s = 100° below transition: cos < 0, unstable.
        let c = calc();
        assert!(c.fs_at_phase(800e3, 4e3, 100.0_f64.to_radians()).is_err());
        assert!(c.fs_at_phase(800e3, 4e3, 30.0_f64.to_radians()).is_ok());
    }

    #[test]
    fn bucket_height_positive_and_scaling() {
        let c = calc();
        let h1 = c.bucket_half_height_dgamma(800e3, 1e3).unwrap();
        let h4 = c.bucket_half_height_dgamma(800e3, 4e3).unwrap();
        assert!(h1 > 0.0);
        assert!((h4 / h1 - 2.0).abs() < 1e-12, "height scales with sqrt(V)");
    }

    #[test]
    fn matched_sigma_produces_circular_motion() {
        // A particle launched at (σ_t, 0) and one at (0, σ_Δγ) should reach
        // the same extremes — i.e. the matching is consistent with the map.
        let c = calc();
        let v = c.voltage_for_fs(800e3, 1.28e3).unwrap();
        // Small amplitude (5 ns ≈ 5.8° at the RF harmonic) so the linear
        // matching formula applies; at tens of ns the pendulum nonlinearity
        // distorts the ellipse by several percent.
        let sigma_t = 5e-9;
        let sigma_dg = c.matched_sigma_dgamma(800e3, v, sigma_t).unwrap();
        let op = OperatingPoint::from_revolution_frequency(
            MachineParams::sis18(),
            IonSpecies::n14_7plus(),
            800e3,
            v,
        );
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle = MacroParticle {
            dgamma: sigma_dg,
            dt: 0.0,
        };
        let mut max_dt: f64 = 0.0;
        for _ in 0..(800e3 / 1.28e3) as usize {
            let dt = map.step_stationary(op.v_gap_volts, 0.0);
            max_dt = max_dt.max(dt.abs());
        }
        assert!(
            (max_dt - sigma_t).abs() / sigma_t < 0.02,
            "max_dt = {max_dt}"
        );
    }
}
