//! # cil-physics — longitudinal beam-dynamics substrate
//!
//! This crate implements the accelerator-physics foundation of the
//! *Cavity in the Loop* reproduction: relativistic kinematics (Eq. 1 of the
//! paper), the recursive two-particle tracking map (Eqs. 2, 3 and 6), the
//! machine model of a synchrotron ring (momentum compaction, phase-slip
//! factor, Eq. 5), small-amplitude synchrotron-frequency theory used to set
//! the MDE operating point, acceleration-ramp programs (the paper's "ramp-up
//! case" future work), matched phase-space distributions, and oscillation-mode
//! diagnostics for particle ensembles.
//!
//! All quantities use SI units unless stated otherwise; energies are carried
//! in electron-volts (eV) because the tracking equations combine `Q·V` (eV
//! when `Q` is a charge *number*) with the rest energy `m c²` (eV).
//!
//! The tracking maps are plain-old-data state machines that allocate nothing
//! per revolution, so they can be re-expressed 1:1 as CGRA kernels by
//! `cil-cgra::kernels`.

pub mod constants;
pub mod distribution;
pub mod dual_harmonic;
pub mod ion;
pub mod machine;
pub mod modes;
pub mod ramp;
pub mod relativity;
pub mod synchrotron;
pub mod tracking;

pub use ion::IonSpecies;
pub use machine::{MachineParams, OperatingPoint};
pub use tracking::{MacroParticle, ReferenceParticle, TwoParticleMap};
