//! Ion species: charge state and rest energy.
//!
//! The MDE reproduced in the paper's evaluation accelerated ¹⁴N⁷⁺ ions
//! (Fig. 5 caption). SIS18 runs many species; a few common ones are provided
//! as ready-made constants, and arbitrary species can be constructed.

use crate::constants::{AMU_EV, ELECTRON_REST_EV, PROTON_REST_EV};
use serde::{Deserialize, Serialize};

/// An ion species circulating in the synchrotron.
///
/// `charge_number` is the net charge in units of the elementary charge
/// (the `Q` of Eqs. 2–3, when voltages are expressed in volts and energies in
/// eV). `rest_energy_ev` is the ion rest energy `m c²` in eV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IonSpecies {
    /// Human-readable species label, e.g. `"14N7+"`. Not serialised (it is
    /// display-only); deserialised species get an empty label.
    #[serde(skip)]
    pub name: &'static str,
    /// Mass number A (number of nucleons); 1 for a proton.
    pub mass_number: u32,
    /// Net charge in units of e (the paper's Q/e).
    pub charge_number: u32,
    /// Rest energy m·c² in eV.
    pub rest_energy_ev: f64,
}

impl IonSpecies {
    /// Construct a species from its neutral atomic mass in unified atomic
    /// mass units and the number of stripped electrons.
    ///
    /// The rest energy subtracts the stripped electrons' rest mass (electron
    /// binding energies, ~keV, are negligible at the eV precision any of the
    /// reproduced experiments resolve).
    pub fn from_atomic_mass(
        name: &'static str,
        mass_number: u32,
        atomic_mass_u: f64,
        charge_number: u32,
    ) -> Self {
        let rest = atomic_mass_u * AMU_EV - f64::from(charge_number) * ELECTRON_REST_EV;
        Self {
            name,
            mass_number,
            charge_number,
            rest_energy_ev: rest,
        }
    }

    /// ¹⁴N⁷⁺ — fully stripped nitrogen, the species of the Nov 24 2023 MDE
    /// reproduced in Fig. 5.
    pub fn n14_7plus() -> Self {
        Self::from_atomic_mass("14N7+", 14, 14.003_074_004, 7)
    }

    /// ⁴⁰Ar¹⁸⁺ — fully stripped argon, a common SIS18 species.
    pub fn ar40_18plus() -> Self {
        Self::from_atomic_mass("40Ar18+", 40, 39.962_383_124, 18)
    }

    /// ²³⁸U⁷³⁺ — partially stripped uranium, the SIS18 design ion.
    pub fn u238_73plus() -> Self {
        Self::from_atomic_mass("238U73+", 238, 238.050_788_4, 73)
    }

    /// A bare proton.
    pub fn proton() -> Self {
        Self {
            name: "p",
            mass_number: 1,
            charge_number: 1,
            rest_energy_ev: PROTON_REST_EV,
        }
    }

    /// The paper's Q/(m c²) factor of Eqs. (2) and (3): multiplying a gap
    /// voltage in volts by this factor yields the per-passage change in γ.
    #[inline]
    pub fn gamma_per_volt(&self) -> f64 {
        f64::from(self.charge_number) / self.rest_energy_ev
    }

    /// Rest energy per nucleon in eV, useful for quoting kinetic energies
    /// the way accelerator operators do (MeV/u).
    pub fn rest_energy_per_nucleon(&self) -> f64 {
        self.rest_energy_ev / f64::from(self.mass_number)
    }

    /// γ reached at a given kinetic energy per nucleon (eV/u), the standard
    /// operator-facing energy scale.
    pub fn gamma_at_kinetic_per_nucleon(&self, kinetic_ev_per_u: f64) -> f64 {
        1.0 + kinetic_ev_per_u * f64::from(self.mass_number) / self.rest_energy_ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n14_rest_energy_plausible() {
        let ion = IonSpecies::n14_7plus();
        // 14.003074 u * 931.494 MeV/u - 7 * 0.511 MeV ≈ 13040.2 MeV
        assert!(
            (ion.rest_energy_ev - 13.0402e9).abs() < 5e6,
            "{}",
            ion.rest_energy_ev
        );
        assert_eq!(ion.charge_number, 7);
    }

    #[test]
    fn gamma_per_volt_scales_with_charge() {
        let n = IonSpecies::n14_7plus();
        let p = IonSpecies::proton();
        // Proton: 1 V -> 1 eV on ~938 MeV rest energy.
        assert!((p.gamma_per_volt() - 1.0 / PROTON_REST_EV).abs() < 1e-20);
        // Nitrogen picks up 7 eV per volt but is ~14x heavier.
        assert!(n.gamma_per_volt() < p.gamma_per_volt());
    }

    #[test]
    fn uranium_is_heavy() {
        let u = IonSpecies::u238_73plus();
        assert!(u.rest_energy_ev > 221e9 && u.rest_energy_ev < 222e9);
    }

    #[test]
    fn species_is_serializable() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<IonSpecies>();
    }
}
