//! The processing-element operator set.
//!
//! "Each PE can have its own set of operators to perform numerical
//! operations, with a selection ranging from pure integer arithmetic to
//! floating point operations up to CORDIC for trigonometric functions. For
//! this experiment, basic floating point and square-root operators are in
//! use." (Section III-C.)
//!
//! Latencies are pipeline depths of typical FPGA floating-point operator
//! cores at ~110 MHz; they set the absolute schedule lengths, so they are
//! the main free parameter when comparing against the paper's tick counts
//! (see DESIGN.md §17).

use serde::{Deserialize, Serialize};

/// Operation kind of a DFG node / context-memory slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Floating-point constant, materialised in a PE register.
    Const(f64),
    /// Kernel input port (live-in value, e.g. an initialisation constant).
    Input(u16),
    /// Kernel output port (live-out value).
    Output(u16),
    /// a + b.
    Add,
    /// a − b.
    Sub,
    /// a × b.
    Mul,
    /// a ÷ b.
    Div,
    /// √a.
    Sqrt,
    /// −a.
    Neg,
    /// |a|.
    Abs,
    /// ⌊a⌋ — used to split a fractional buffer address into the two integer
    /// reads + interpolation weight of Section IV-B.
    Floor,
    /// min(a, b).
    Min,
    /// max(a, b).
    Max,
    /// 1.0 if a < b else 0.0.
    CmpLt,
    /// 1.0 if a ≤ b else 0.0.
    CmpLe,
    /// select(cond, a, b): a if cond ≠ 0 else b.
    Select,
    /// Read from the SensorAccess module: `read_sensor(port, addr)`.
    /// Operand 0 is the address (may be a constant 0 for scalar sensors).
    SensorRead(u16),
    /// Write to the SensorAccess module: `write_actuator(port, value)`.
    ActuatorWrite(u16),
    /// Read a loop-carried state register (value produced by the *previous*
    /// iteration's matching `RegWrite`).
    RegRead(u16),
    /// Write a loop-carried state register for the next iteration.
    RegWrite(u16),
    /// Explicit routing hop inserted by the binder.
    Pass,
}

impl OpKind {
    /// Number of value operands the op consumes.
    pub fn arity(&self) -> usize {
        match self {
            Self::Const(_) | Self::Input(_) | Self::RegRead(_) => 0,
            Self::Sqrt
            | Self::Neg
            | Self::Abs
            | Self::Floor
            | Self::Output(_)
            | Self::ActuatorWrite(_)
            | Self::RegWrite(_)
            | Self::SensorRead(_)
            | Self::Pass => 1,
            Self::Add
            | Self::Sub
            | Self::Mul
            | Self::Div
            | Self::Min
            | Self::Max
            | Self::CmpLt
            | Self::CmpLe => 2,
            Self::Select => 3,
        }
    }

    /// Pipeline latency in CGRA clock ticks.
    pub fn latency(&self) -> u32 {
        match self {
            Self::Const(_) | Self::Input(_) => 1,
            Self::RegRead(_) | Self::RegWrite(_) => 1,
            Self::Pass => 1,
            Self::Output(_) => 1,
            Self::Add | Self::Sub => 4,
            Self::Neg | Self::Abs | Self::Floor | Self::Min | Self::Max => 2,
            Self::CmpLt | Self::CmpLe | Self::Select => 2,
            Self::Mul => 5,
            Self::Div => 14,
            Self::Sqrt => 16,
            Self::SensorRead(_) => 4,
            Self::ActuatorWrite(_) => 2,
        }
    }

    /// True for operations that interact with the SensorAccess module and
    /// therefore must be bound to an I/O-capable PE.
    pub fn needs_io(&self) -> bool {
        matches!(self, Self::SensorRead(_) | Self::ActuatorWrite(_))
    }

    /// True for operations with side effects that must execute even if the
    /// value is unused (actuator/register writes, outputs).
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Self::ActuatorWrite(_) | Self::RegWrite(_) | Self::Output(_)
        )
    }

    /// Evaluate the pure arithmetic ops. Returns `None` for ops that need
    /// external state (sensors, registers, I/O ports).
    pub fn eval_pure(&self, args: &[f64]) -> Option<f64> {
        debug_assert_eq!(args.len(), self.arity());
        Some(match self {
            Self::Const(c) => *c,
            Self::Add => args[0] + args[1],
            Self::Sub => args[0] - args[1],
            Self::Mul => args[0] * args[1],
            Self::Div => args[0] / args[1],
            Self::Sqrt => args[0].sqrt(),
            Self::Neg => -args[0],
            Self::Abs => args[0].abs(),
            Self::Floor => args[0].floor(),
            Self::Min => args[0].min(args[1]),
            Self::Max => args[0].max(args[1]),
            Self::CmpLt => f64::from(args[0] < args[1]),
            Self::CmpLe => f64::from(args[0] <= args[1]),
            Self::Select => {
                if args[0] != 0.0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            Self::Pass => args[0],
            Self::Input(_)
            | Self::Output(_)
            | Self::SensorRead(_)
            | Self::ActuatorWrite(_)
            | Self::RegRead(_)
            | Self::RegWrite(_) => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(OpKind::Const(1.0).arity(), 0);
        assert_eq!(OpKind::Sqrt.arity(), 1);
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Select.arity(), 3);
        assert_eq!(OpKind::SensorRead(0).arity(), 1);
        assert_eq!(OpKind::ActuatorWrite(0).arity(), 1);
    }

    #[test]
    fn latencies_reflect_fpga_cores() {
        // Div and sqrt are the long-latency ops that dominate the beam
        // kernel's critical path.
        assert!(OpKind::Div.latency() > OpKind::Mul.latency());
        assert!(OpKind::Sqrt.latency() > OpKind::Div.latency() / 2);
        assert!(OpKind::Add.latency() >= 1);
    }

    #[test]
    fn eval_pure_arithmetic() {
        assert_eq!(OpKind::Add.eval_pure(&[2.0, 3.0]), Some(5.0));
        assert_eq!(OpKind::Sub.eval_pure(&[2.0, 3.0]), Some(-1.0));
        assert_eq!(OpKind::Mul.eval_pure(&[2.0, 3.0]), Some(6.0));
        assert_eq!(OpKind::Div.eval_pure(&[3.0, 2.0]), Some(1.5));
        assert_eq!(OpKind::Sqrt.eval_pure(&[9.0]), Some(3.0));
        assert_eq!(OpKind::Neg.eval_pure(&[2.0]), Some(-2.0));
        assert_eq!(OpKind::Abs.eval_pure(&[-2.0]), Some(2.0));
        assert_eq!(OpKind::Floor.eval_pure(&[2.7]), Some(2.0));
        assert_eq!(OpKind::Floor.eval_pure(&[-0.5]), Some(-1.0));
        assert_eq!(OpKind::Min.eval_pure(&[1.0, 2.0]), Some(1.0));
        assert_eq!(OpKind::Max.eval_pure(&[1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn compare_and_select() {
        assert_eq!(OpKind::CmpLt.eval_pure(&[1.0, 2.0]), Some(1.0));
        assert_eq!(OpKind::CmpLt.eval_pure(&[2.0, 1.0]), Some(0.0));
        assert_eq!(OpKind::CmpLe.eval_pure(&[2.0, 2.0]), Some(1.0));
        assert_eq!(OpKind::Select.eval_pure(&[1.0, 10.0, 20.0]), Some(10.0));
        assert_eq!(OpKind::Select.eval_pure(&[0.0, 10.0, 20.0]), Some(20.0));
    }

    #[test]
    fn io_ops_flagged() {
        assert!(OpKind::SensorRead(3).needs_io());
        assert!(OpKind::ActuatorWrite(0).needs_io());
        assert!(!OpKind::Add.needs_io());
        assert!(OpKind::RegWrite(0).has_side_effect());
        assert!(!OpKind::Mul.has_side_effect());
    }

    #[test]
    fn stateful_ops_not_pure() {
        assert_eq!(OpKind::SensorRead(0).eval_pure(&[0.0]), None);
        assert_eq!(OpKind::RegRead(0).eval_pure(&[]), None);
    }
}
