//! Pre-decoded micro-op execution plans.
//!
//! Replaying a schedule through [`crate::exec::CgraExecutor`] used to mean
//! chasing the `Arc<Dfg>` per node per revolution: load the node, read its
//! operand `Vec`, dispatch a wide [`OpKind`] match. This module lowers a
//! validated `(Dfg, Schedule)` pair **once, at compile time** into a flat
//! [`MicroOpPlan`]: a contiguous array of pre-decoded [`MicroOp`]s with a
//! small discriminant and pre-resolved `u16` value-slot indices, in exact
//! schedule order. The executor then replays the plan with no pointer
//! chasing and no per-iteration allocation.
//!
//! Lowering performs three semantics-preserving simplifications:
//!
//! * **Constant pre-folding** — `Const` nodes carry no runtime work; their
//!   values are baked into [`MicroOpPlan::values_template`], which seeds the
//!   executor's scratch value store. No micro-op is emitted for them.
//! * **Output forwarding** — `Output` nodes only copy their operand's value
//!   slot; they are collected into a dedicated output stream `(port, slot)`
//!   replayed after the compute stream (every slot is written exactly once,
//!   so reading at the end observes the same value the legacy walk read
//!   in-place). Consumers of an `Output` node are rewired to its source.
//! * **Stream typing** — ops are pre-split by kind (input / sensor /
//!   register / pure / output) at the discriminant level, with per-stream
//!   counts recorded in [`StreamStats`]. The compute stream itself stays in
//!   schedule order because sensor reads, actuator writes and the
//!   mid-iteration fault point are order-observable through the
//!   [`crate::exec::SensorBus`]; only the output stream is hoisted.
//!
//! Bit-identity with [`crate::exec::interpret_dfg`] and with the legacy
//! node-walk executor is enforced by the differential proptest suite
//! (`tests/plan_equivalence.rs`), including `ExecError` cases and the
//! register-rollback guarantee.

use crate::dfg::{Dfg, NodeId};
use crate::isa::OpKind;
use crate::sched::Schedule;

/// A pre-decoded unary pure op (operand/result slots live in the micro-op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// √a.
    Sqrt,
    /// −a.
    Neg,
    /// |a|.
    Abs,
    /// ⌊a⌋.
    Floor,
    /// Routing hop: a.
    Pass,
}

impl UnOp {
    #[inline]
    fn apply(self, a: f64) -> f64 {
        match self {
            Self::Sqrt => a.sqrt(),
            Self::Neg => -a,
            Self::Abs => a.abs(),
            Self::Floor => a.floor(),
            Self::Pass => a,
        }
    }
}

/// A pre-decoded binary pure op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// a + b.
    Add,
    /// a − b.
    Sub,
    /// a × b.
    Mul,
    /// a ÷ b.
    Div,
    /// min(a, b).
    Min,
    /// max(a, b).
    Max,
    /// 1.0 if a < b else 0.0.
    CmpLt,
    /// 1.0 if a ≤ b else 0.0.
    CmpLe,
}

impl BinOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            Self::Add => a + b,
            Self::Sub => a - b,
            Self::Mul => a * b,
            Self::Div => a / b,
            Self::Min => a.min(b),
            Self::Max => a.max(b),
            Self::CmpLt => f64::from(a < b),
            Self::CmpLe => f64::from(a <= b),
        }
    }
}

/// One pre-decoded operation of the compute stream. All slot indices are
/// resolved at plan-build time; the replay loop never touches the DFG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MicroOp {
    /// `values[dst] = inputs[port]`, failing with
    /// [`crate::exec::ExecError::MissingInput`] when absent.
    Input {
        /// Kernel input port.
        port: u16,
        /// Result value slot.
        dst: u16,
    },
    /// `values[dst] = bus.read(port, values[addr])`.
    SensorRead {
        /// Sensor port.
        port: u16,
        /// Value slot holding the address operand.
        addr: u16,
        /// Result value slot.
        dst: u16,
    },
    /// `bus.write(port, values[src]); values[dst] = values[src]`.
    ActuatorWrite {
        /// Actuator port.
        port: u16,
        /// Value slot of the written operand.
        src: u16,
        /// Result value slot (the node's own — actuator writes forward
        /// their operand and may have consumers).
        dst: u16,
    },
    /// `values[dst] = regs_current[reg]`.
    RegRead {
        /// Loop-carried register.
        reg: u16,
        /// Result value slot.
        dst: u16,
    },
    /// `regs_next[reg] = values[src]; values[dst] = values[src]`.
    RegWrite {
        /// Loop-carried register.
        reg: u16,
        /// Value slot of the written operand.
        src: u16,
        /// Result value slot.
        dst: u16,
    },
    /// `values[dst] = op(values[a])`.
    Un {
        /// The operation.
        op: UnOp,
        /// Operand slot.
        a: u16,
        /// Result slot.
        dst: u16,
    },
    /// `values[dst] = op(values[a], values[b])`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand slot.
        a: u16,
        /// Right operand slot.
        b: u16,
        /// Result slot.
        dst: u16,
    },
    /// `values[dst] = if values[c] != 0 { values[a] } else { values[b] }`.
    Select {
        /// Condition slot.
        c: u16,
        /// Then slot.
        a: u16,
        /// Else slot.
        b: u16,
        /// Result slot.
        dst: u16,
    },
}

impl MicroOp {
    /// Apply one micro-op against the executor's run state. Kept here so
    /// the replay loop in `exec.rs` and any future batched interpreter
    /// share one definition.
    #[inline]
    pub(crate) fn dispatch<B: crate::exec::SensorBus>(
        self,
        values: &mut [f64],
        regs_current: &[f64],
        regs_next: &mut [f64],
        bus: &mut B,
        inputs: &[f64],
    ) -> Result<(), u16> {
        match self {
            Self::Input { port, dst } => match inputs.get(port as usize) {
                Some(&v) => values[dst as usize] = v,
                None => return Err(port),
            },
            Self::SensorRead { port, addr, dst } => {
                let a = values[addr as usize];
                values[dst as usize] = bus.read(port, a);
            }
            Self::ActuatorWrite { port, src, dst } => {
                let v = values[src as usize];
                bus.write(port, v);
                values[dst as usize] = v;
            }
            Self::RegRead { reg, dst } => values[dst as usize] = regs_current[reg as usize],
            Self::RegWrite { reg, src, dst } => {
                let v = values[src as usize];
                regs_next[reg as usize] = v;
                values[dst as usize] = v;
            }
            Self::Un { op, a, dst } => values[dst as usize] = op.apply(values[a as usize]),
            Self::Bin { op, a, b, dst } => {
                values[dst as usize] = op.apply(values[a as usize], values[b as usize]);
            }
            Self::Select { c, a, b, dst } => {
                values[dst as usize] = if values[c as usize] != 0.0 {
                    values[a as usize]
                } else {
                    values[b as usize]
                };
            }
        }
        Ok(())
    }
}

/// Per-stream op counts, for reports and plan inspection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// `Input` ops in the compute stream.
    pub inputs: usize,
    /// `SensorRead` + `ActuatorWrite` ops.
    pub sensor_io: usize,
    /// `RegRead` + `RegWrite` ops.
    pub registers: usize,
    /// Pure arithmetic ops (unary/binary/select).
    pub pure_ops: usize,
    /// Entries in the hoisted output stream.
    pub outputs: usize,
    /// `Const` nodes folded into the values template (no runtime op).
    pub folded_consts: usize,
}

/// Why a `(Dfg, Schedule)` pair could not be lowered to a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The DFG has more nodes than the `u16` slot index space.
    TooManyNodes(usize),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooManyNodes(n) => {
                write!(f, "DFG has {n} nodes, exceeding the u16 slot space")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A flat, cache-friendly execution plan lowered from a validated
/// `(Dfg, Schedule)` pair. Built once (typically inside
/// [`crate::cache::CompiledKernel`], where it is `Arc`-shared across all
/// executors stamped from one cached compile) and replayed every iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroOpPlan {
    /// The compute stream, in exact schedule order `(start, pe)`.
    ops: Vec<MicroOp>,
    /// The hoisted output stream: `(port, value slot)` in schedule order.
    outputs: Vec<(u16, u16)>,
    /// Scratch value store template with constants pre-folded.
    values_template: Vec<f64>,
    /// Loop-carried register count.
    reg_count: u16,
    /// Per-stream counts.
    stats: StreamStats,
}

impl MicroOpPlan {
    /// Lower a `(Dfg, Schedule)` pair. The schedule must already be valid
    /// for the DFG (the executor validates before planning).
    pub fn try_build(dfg: &Dfg, schedule: &Schedule) -> Result<Self, PlanError> {
        if dfg.len() > usize::from(u16::MAX) {
            return Err(PlanError::TooManyNodes(dfg.len()));
        }
        // Schedule order, identical to the legacy executor's node walk.
        let mut order: Vec<NodeId> = dfg.nodes().map(|(id, _)| id).collect();
        order.sort_by_key(|&id| {
            let p = schedule.placement(id);
            (p.start, p.pe.0)
        });

        // Forwarding map: consumers of an `Output` node read its source
        // slot directly (an Output's value *is* its operand's value).
        let mut fwd: Vec<u16> = (0..dfg.len() as u32).map(|i| i as u16).collect();
        let mut values_template = vec![0.0f64; dfg.len()];
        let mut stats = StreamStats::default();
        let mut ops = Vec::new();
        let mut outputs = Vec::new();

        for &id in &order {
            let node = dfg.node(id);
            let dst = id.0 as u16;
            let slot = |op_idx: usize| fwd[node.operands[op_idx].0 as usize];
            match node.op {
                OpKind::Const(c) => {
                    values_template[dst as usize] = c;
                    stats.folded_consts += 1;
                }
                OpKind::Input(port) => {
                    stats.inputs += 1;
                    ops.push(MicroOp::Input { port, dst });
                }
                OpKind::Output(port) => {
                    stats.outputs += 1;
                    let src = slot(0);
                    fwd[dst as usize] = src;
                    outputs.push((port, src));
                }
                OpKind::SensorRead(port) => {
                    stats.sensor_io += 1;
                    ops.push(MicroOp::SensorRead {
                        port,
                        addr: slot(0),
                        dst,
                    });
                }
                OpKind::ActuatorWrite(port) => {
                    stats.sensor_io += 1;
                    ops.push(MicroOp::ActuatorWrite {
                        port,
                        src: slot(0),
                        dst,
                    });
                }
                OpKind::RegRead(reg) => {
                    stats.registers += 1;
                    ops.push(MicroOp::RegRead { reg, dst });
                }
                OpKind::RegWrite(reg) => {
                    stats.registers += 1;
                    ops.push(MicroOp::RegWrite {
                        reg,
                        src: slot(0),
                        dst,
                    });
                }
                OpKind::Sqrt | OpKind::Neg | OpKind::Abs | OpKind::Floor | OpKind::Pass => {
                    stats.pure_ops += 1;
                    let op = match node.op {
                        OpKind::Sqrt => UnOp::Sqrt,
                        OpKind::Neg => UnOp::Neg,
                        OpKind::Abs => UnOp::Abs,
                        OpKind::Floor => UnOp::Floor,
                        _ => UnOp::Pass,
                    };
                    ops.push(MicroOp::Un {
                        op,
                        a: slot(0),
                        dst,
                    });
                }
                OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Min
                | OpKind::Max
                | OpKind::CmpLt
                | OpKind::CmpLe => {
                    stats.pure_ops += 1;
                    let op = match node.op {
                        OpKind::Add => BinOp::Add,
                        OpKind::Sub => BinOp::Sub,
                        OpKind::Mul => BinOp::Mul,
                        OpKind::Div => BinOp::Div,
                        OpKind::Min => BinOp::Min,
                        OpKind::Max => BinOp::Max,
                        OpKind::CmpLt => BinOp::CmpLt,
                        _ => BinOp::CmpLe,
                    };
                    ops.push(MicroOp::Bin {
                        op,
                        a: slot(0),
                        b: slot(1),
                        dst,
                    });
                }
                OpKind::Select => {
                    stats.pure_ops += 1;
                    ops.push(MicroOp::Select {
                        c: slot(0),
                        a: slot(1),
                        b: slot(2),
                        dst,
                    });
                }
            }
        }
        Ok(Self {
            ops,
            outputs,
            values_template,
            reg_count: dfg.reg_count(),
            stats,
        })
    }

    /// Panicking wrapper of [`Self::try_build`] for contexts that already
    /// guarantee a plannable DFG (kernel compilation caps node counts far
    /// below the slot space).
    pub fn build(dfg: &Dfg, schedule: &Schedule) -> Self {
        match Self::try_build(dfg, schedule) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// The compute stream, in schedule order.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// The hoisted output stream: `(port, value slot)` in schedule order.
    pub fn outputs(&self) -> &[(u16, u16)] {
        &self.outputs
    }

    /// Scratch value store template (constants pre-folded, rest zero).
    pub fn values_template(&self) -> &[f64] {
        &self.values_template
    }

    /// Loop-carried register count the plan expects.
    pub fn reg_count(&self) -> u16 {
        self.reg_count
    }

    /// Number of kernel output ports an iteration produces — the capacity
    /// callers should reserve in the scratch output buffer.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Per-stream op counts.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::sched::ListScheduler;

    fn plan_of(dfg: &Dfg) -> MicroOpPlan {
        let s = ListScheduler::new(GridConfig::mesh_5x5()).schedule(dfg);
        MicroOpPlan::build(dfg, &s)
    }

    #[test]
    fn constants_fold_into_template() {
        let mut g = Dfg::new();
        let c = g.konst(2.5);
        let s = g.add(OpKind::Sqrt, &[c]);
        g.add(OpKind::Output(0), &[s]);
        let plan = plan_of(&g);
        assert_eq!(plan.values_template()[0], 2.5);
        assert_eq!(plan.stats().folded_consts, 1);
        // Only the sqrt remains in the compute stream.
        assert_eq!(plan.ops().len(), 1);
        assert_eq!(plan.output_count(), 1);
    }

    #[test]
    fn output_consumers_forward_to_source() {
        // out0 = x; y = out0 + 1 — the add must read x's slot directly.
        let mut g = Dfg::new();
        let x = g.konst(3.0);
        let o = g.add(OpKind::Output(0), &[x]);
        let one = g.konst(1.0);
        let y = g.add(OpKind::Add, &[o, one]);
        g.add(OpKind::Output(1), &[y]);
        let plan = plan_of(&g);
        let adds: Vec<_> = plan
            .ops()
            .iter()
            .filter_map(|op| match *op {
                MicroOp::Bin {
                    op: BinOp::Add, a, ..
                } => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(adds, vec![x.0 as u16], "add reads the const's slot");
    }

    #[test]
    fn streams_are_counted() {
        let mut g = Dfg::new();
        let zero = g.konst(0.0);
        let s = g.add(OpKind::SensorRead(0), &[zero]);
        let r = g.add(OpKind::RegRead(0), &[]);
        let sum = g.add(OpKind::Add, &[s, r]);
        g.add(OpKind::RegWrite(0), &[sum]);
        g.add(OpKind::ActuatorWrite(0), &[sum]);
        g.add(OpKind::Output(0), &[sum]);
        let plan = plan_of(&g);
        let st = plan.stats();
        assert_eq!(st.sensor_io, 2);
        assert_eq!(st.registers, 2);
        assert_eq!(st.pure_ops, 1);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.folded_consts, 1);
        assert_eq!(plan.reg_count(), 1);
    }
}
