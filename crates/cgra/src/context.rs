//! Context memories (Section III-C).
//!
//! "Output of the scheduler are the contents for all context memories, which
//! can be inserted into the final FPGA bitstream without requiring a new
//! synthesis. This allows very fast iterations of the model."
//!
//! A context memory is, per PE, one instruction slot per schedule cycle. We
//! also provide a compact binary serialisation (via `bytes`-free manual
//! packing + serde) standing in for the bitstream-patch artifact, so the
//! "reconfiguration in seconds" workflow can be benchmarked end to end.

use crate::dfg::{Dfg, NodeId};
use crate::grid::PeId;
use crate::isa::OpKind;
use crate::sched::Schedule;
use serde::{Deserialize, Serialize};

/// One context-memory slot: the operation a PE issues in a given cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSlot {
    /// Cycle at which the op is issued.
    pub cycle: u32,
    /// The node this slot executes (for tracing back to the DFG).
    pub node: NodeId,
    /// Operation.
    pub op: OpKind,
    /// Operand sources: the producing node ids (resolved to PE/cycle by the
    /// executor via the schedule).
    pub operands: Vec<NodeId>,
}

/// All context memories of a configured CGRA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextMemories {
    /// Slots per PE, sorted by cycle.
    pub per_pe: Vec<Vec<ContextSlot>>,
    /// Schedule length.
    pub makespan: u32,
}

impl ContextMemories {
    /// Derive context memories from a schedule.
    pub fn from_schedule(dfg: &Dfg, schedule: &Schedule) -> Self {
        let mut per_pe: Vec<Vec<ContextSlot>> = vec![Vec::new(); schedule.grid.pe_count()];
        for (id, node) in dfg.nodes() {
            let p = schedule.placement(id);
            per_pe[p.pe.0 as usize].push(ContextSlot {
                cycle: p.start,
                node: id,
                op: node.op,
                operands: node.operands.clone(),
            });
        }
        for lane in &mut per_pe {
            lane.sort_by_key(|s| s.cycle);
        }
        Self {
            per_pe,
            makespan: schedule.makespan,
        }
    }

    /// Slots of one PE.
    pub fn pe(&self, pe: PeId) -> &[ContextSlot] {
        &self.per_pe[pe.0 as usize]
    }

    /// Total configured slots.
    pub fn slot_count(&self) -> usize {
        self.per_pe.iter().map(Vec::len).sum()
    }

    /// Pack into the "bitstream patch" byte image: a flat, deterministic
    /// little-endian encoding (PE count, then per PE: slot count and slots).
    /// The inverse is [`Self::unpack`]; the pair stands in for writing the
    /// context contents into the FPGA bitstream.
    pub fn pack(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.slot_count() * 24);
        out.extend_from_slice(&(self.per_pe.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.makespan.to_le_bytes());
        for lane in &self.per_pe {
            out.extend_from_slice(&(lane.len() as u32).to_le_bytes());
            for slot in lane {
                out.extend_from_slice(&slot.cycle.to_le_bytes());
                out.extend_from_slice(&slot.node.0.to_le_bytes());
                out.extend_from_slice(&encode_op(&slot.op));
                out.extend_from_slice(&(slot.operands.len() as u32).to_le_bytes());
                for o in &slot.operands {
                    out.extend_from_slice(&o.0.to_le_bytes());
                }
            }
        }
        out
    }

    /// Unpack a byte image produced by [`Self::pack`].
    pub fn unpack(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = Cursor { b: bytes, pos: 0 };
        let pe_count = cur.u32()? as usize;
        let makespan = cur.u32()?;
        if pe_count > 1 << 16 {
            return Err("implausible PE count".into());
        }
        let mut per_pe = Vec::with_capacity(pe_count);
        for _ in 0..pe_count {
            let n = cur.u32()? as usize;
            let mut lane = Vec::with_capacity(n);
            for _ in 0..n {
                let cycle = cur.u32()?;
                let node = NodeId(cur.u32()?);
                let op = decode_op(&mut cur)?;
                let argc = cur.u32()? as usize;
                let mut operands = Vec::with_capacity(argc);
                for _ in 0..argc {
                    operands.push(NodeId(cur.u32()?));
                }
                lane.push(ContextSlot {
                    cycle,
                    node,
                    op,
                    operands,
                });
            }
            per_pe.push(lane);
        }
        Ok(Self { per_pe, makespan })
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.pos + n > self.b.len() {
            return Err("truncated context image".into());
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_op(op: &OpKind) -> Vec<u8> {
    // tag byte + optional payload.
    let mut v = Vec::with_capacity(9);
    match op {
        OpKind::Const(c) => {
            v.push(0);
            v.extend_from_slice(&c.to_le_bytes());
        }
        OpKind::Input(p) => {
            v.push(1);
            v.extend_from_slice(&p.to_le_bytes());
        }
        OpKind::Output(p) => {
            v.push(2);
            v.extend_from_slice(&p.to_le_bytes());
        }
        OpKind::Add => v.push(3),
        OpKind::Sub => v.push(4),
        OpKind::Mul => v.push(5),
        OpKind::Div => v.push(6),
        OpKind::Sqrt => v.push(7),
        OpKind::Neg => v.push(8),
        OpKind::Abs => v.push(9),
        OpKind::Floor => v.push(10),
        OpKind::Min => v.push(11),
        OpKind::Max => v.push(12),
        OpKind::CmpLt => v.push(13),
        OpKind::CmpLe => v.push(14),
        OpKind::Select => v.push(15),
        OpKind::SensorRead(p) => {
            v.push(16);
            v.extend_from_slice(&p.to_le_bytes());
        }
        OpKind::ActuatorWrite(p) => {
            v.push(17);
            v.extend_from_slice(&p.to_le_bytes());
        }
        OpKind::RegRead(p) => {
            v.push(18);
            v.extend_from_slice(&p.to_le_bytes());
        }
        OpKind::RegWrite(p) => {
            v.push(19);
            v.extend_from_slice(&p.to_le_bytes());
        }
        OpKind::Pass => v.push(20),
    }
    v
}

fn decode_op(cur: &mut Cursor) -> Result<OpKind, String> {
    let tag = cur.take(1)?[0];
    Ok(match tag {
        0 => OpKind::Const(cur.f64()?),
        1 => OpKind::Input(cur.u16()?),
        2 => OpKind::Output(cur.u16()?),
        3 => OpKind::Add,
        4 => OpKind::Sub,
        5 => OpKind::Mul,
        6 => OpKind::Div,
        7 => OpKind::Sqrt,
        8 => OpKind::Neg,
        9 => OpKind::Abs,
        10 => OpKind::Floor,
        11 => OpKind::Min,
        12 => OpKind::Max,
        13 => OpKind::CmpLt,
        14 => OpKind::CmpLe,
        15 => OpKind::Select,
        16 => OpKind::SensorRead(cur.u16()?),
        17 => OpKind::ActuatorWrite(cur.u16()?),
        18 => OpKind::RegRead(cur.u16()?),
        19 => OpKind::RegWrite(cur.u16()?),
        20 => OpKind::Pass,
        t => return Err(format!("unknown op tag {t}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::sched::ListScheduler;

    fn sample() -> (Dfg, ContextMemories) {
        let mut g = Dfg::new();
        let c = g.konst(0.0);
        let r = g.add(OpKind::SensorRead(1), &[c]);
        let s = g.add(OpKind::Sqrt, &[r]);
        let two = g.konst(2.0);
        let m = g.add(OpKind::Mul, &[s, two]);
        g.add(OpKind::ActuatorWrite(0), &[m]);
        let sched = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let ctx = ContextMemories::from_schedule(&g, &sched);
        (g, ctx)
    }

    #[test]
    fn every_node_has_a_slot() {
        let (g, ctx) = sample();
        assert_eq!(ctx.slot_count(), g.len());
    }

    #[test]
    fn slots_sorted_by_cycle() {
        let (_, ctx) = sample();
        for lane in &ctx.per_pe {
            for w in lane.windows(2) {
                assert!(w[0].cycle < w[1].cycle, "one issue per cycle per PE");
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (_, ctx) = sample();
        let img = ctx.pack();
        let back = ContextMemories::unpack(&img).unwrap();
        assert_eq!(back.makespan, ctx.makespan);
        assert_eq!(back.per_pe.len(), ctx.per_pe.len());
        for (a, b) in ctx.per_pe.iter().zip(&back.per_pe) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn unpack_rejects_truncation() {
        let (_, ctx) = sample();
        let img = ctx.pack();
        assert!(ContextMemories::unpack(&img[..img.len() - 3]).is_err());
        assert!(ContextMemories::unpack(&[1, 2]).is_err());
    }

    #[test]
    fn image_is_compact() {
        // Reconfiguration artifact stays in the kilobyte range for realistic
        // kernels — that is what makes "seconds" turnarounds possible.
        let (_, ctx) = sample();
        assert!(ctx.pack().len() < 4096);
    }
}
