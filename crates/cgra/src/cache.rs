//! Compiled-kernel cache.
//!
//! Compiling a beam kernel — source generation, parsing, optional pipeline
//! split, list scheduling, placement — is pure in its inputs: the kernel
//! parameters, bunch count, pipelining/interpolation flags, and the grid.
//! Sweeps and repeated loop construction used to redo that work per run;
//! the [`CompiledKernelCache`] memoises it once per distinct configuration
//! and hands out [`CompiledKernel`]s whose DFG and schedule are shared
//! behind `Arc`. Executors stamped out of a cached kernel carry private
//! register/value state, so concurrent runs never interfere.
//!
//! A process-wide [`global`] cache exists because kernel compilation is
//! deterministic and configuration-keyed — there is nothing per-experiment
//! about the artifact. Use a local cache instance in tests that count hits.

use crate::exec::CgraExecutor;
use crate::grid::GridConfig;
use crate::kernels::{build_beam_kernel_opts, BeamKernel, KernelParams};
use crate::plan::MicroOpPlan;
use crate::sched::{ListScheduler, Schedule};
use crate::Dfg;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Everything that determines a beam-kernel compilation, in hashable form.
/// `f64` params are keyed by bit pattern: two configs compare equal exactly
/// when every parameter is bit-identical, which is the right notion for a
/// compilation cache (compilation is a pure function of the bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    params_bits: [u64; 7],
    bunches: usize,
    pipelined: bool,
    interpolate: bool,
    grid: GridConfig,
}

impl KernelKey {
    /// Key for a kernel configuration.
    pub fn new(
        params: &KernelParams,
        bunches: usize,
        pipelined: bool,
        interpolate: bool,
        grid: GridConfig,
    ) -> Self {
        Self {
            params_bits: [
                params.orbit_length_m.to_bits(),
                params.momentum_compaction.to_bits(),
                params.gamma_per_volt.to_bits(),
                params.sample_rate.to_bits(),
                params.scale_ref.to_bits(),
                params.scale_gap.to_bits(),
                params.gamma_r_init.to_bits(),
            ],
            bunches,
            pipelined,
            interpolate,
            grid,
        }
    }
}

/// One compiled + scheduled beam kernel, shareable across runs and threads.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The frontend artifact (source, statics table, register inits).
    pub kernel: BeamKernel,
    /// The DFG actually scheduled (post pipeline split), shared.
    pub dfg: Arc<Dfg>,
    /// The placement/timing schedule, shared.
    pub schedule: Arc<Schedule>,
    /// The pre-decoded micro-op plan executors replay, shared — lowered
    /// once per cache entry, so sweep workers share it for free.
    pub plan: Arc<MicroOpPlan>,
    /// Grid the schedule targets.
    pub grid: GridConfig,
}

impl CompiledKernel {
    /// Stamp out a fresh executor over the shared artifacts with the
    /// kernel's `static` register initialisers applied. No parsing,
    /// scheduling or plan lowering happens here.
    pub fn executor(&self) -> CgraExecutor {
        let mut ex = CgraExecutor::from_shared_plan(
            Arc::clone(&self.dfg),
            Arc::clone(&self.schedule),
            Arc::clone(&self.plan),
        );
        for &(reg, value) in &self.kernel.kernel.reg_inits {
            ex.set_reg(reg, value);
        }
        ex
    }

    /// Register index of a kernel `static` by name (e.g. `"dt_0"`).
    pub fn static_reg(&self, name: &str) -> Option<u16> {
        self.kernel
            .kernel
            .statics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, reg)| reg)
    }
}

/// Thread-safe memoisation of kernel compilation + scheduling.
#[derive(Debug, Default)]
pub struct CompiledKernelCache {
    map: Mutex<HashMap<KernelKey, Arc<CompiledKernel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Wall-clock spent in cold compiles, nanoseconds.
    compile_nanos: AtomicU64,
}

impl CompiledKernelCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get the compiled kernel for a configuration, compiling and
    /// scheduling it on first request.
    ///
    /// The compile happens outside the map lock, so a slow first
    /// compilation never blocks hits on other keys; if two threads race on
    /// the same cold key, one result wins and the other is dropped (both
    /// are identical — compilation is deterministic).
    pub fn get_or_compile(
        &self,
        params: &KernelParams,
        bunches: usize,
        pipelined: bool,
        interpolate: bool,
        grid: GridConfig,
    ) -> Arc<CompiledKernel> {
        let key = KernelKey::new(params, bunches, pipelined, interpolate, grid);
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        let t0 = std::time::Instant::now();
        let kernel = build_beam_kernel_opts(params, bunches, pipelined, interpolate);
        let dfg = Arc::new(kernel.kernel.dfg.clone());
        let schedule = Arc::new(ListScheduler::new(grid).schedule(&dfg));
        let plan = Arc::new(MicroOpPlan::build(&dfg, &schedule));
        self.compile_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let compiled = Arc::new(CompiledKernel {
            kernel,
            dfg,
            schedule,
            plan,
            grid,
        });

        Arc::clone(self.map.lock().unwrap().entry(key).or_insert(compiled))
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (cold compiles) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total wall-clock spent in cold compiles (source generation through
    /// scheduling), seconds.
    pub fn compile_seconds(&self) -> f64 {
        self.compile_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Distinct configurations currently cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all entries and reset counters.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.compile_nanos.store(0, Ordering::Relaxed);
    }
}

/// The process-wide cache used by the HIL executives and sweeps.
pub fn global() -> &'static CompiledKernelCache {
    static GLOBAL: OnceLock<CompiledKernelCache> = OnceLock::new();
    GLOBAL.get_or_init(CompiledKernelCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> KernelParams {
        KernelParams::mde_default()
    }

    #[test]
    fn second_request_hits() {
        let cache = CompiledKernelCache::new();
        let a = cache.get_or_compile(&params(), 1, true, true, GridConfig::mesh_5x5());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.get_or_compile(&params(), 1, true, true, GridConfig::mesh_5x5());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same artifact");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let cache = CompiledKernelCache::new();
        cache.get_or_compile(&params(), 1, true, true, GridConfig::mesh_5x5());
        cache.get_or_compile(&params(), 2, true, true, GridConfig::mesh_5x5());
        cache.get_or_compile(&params(), 1, false, true, GridConfig::mesh_5x5());
        cache.get_or_compile(&params(), 1, true, false, GridConfig::mesh_5x5());
        cache.get_or_compile(&params(), 1, true, true, GridConfig::mesh_3x3());
        let mut p = params();
        p.gamma_r_init += 1e-9;
        cache.get_or_compile(&p, 1, true, true, GridConfig::mesh_5x5());
        assert_eq!(cache.misses(), 6);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn executors_share_artifacts_but_not_state() {
        let cache = CompiledKernelCache::new();
        let compiled = cache.get_or_compile(&params(), 1, false, true, GridConfig::mesh_5x5());
        let mut a = compiled.executor();
        let b = compiled.executor();
        // Mutating one executor's registers must not leak into the other.
        let reg = compiled.static_reg("dt_0").expect("dt_0 static exists");
        a.set_reg(reg, 42.0);
        assert_eq!(a.reg(reg), 42.0);
        assert_ne!(b.reg(reg), 42.0);
        // Both view the very same schedule object.
        assert_eq!(a.ticks_per_iteration(), b.ticks_per_iteration());
    }

    #[test]
    fn executor_reset_restores_cold_state() {
        let cache = CompiledKernelCache::new();
        let compiled = cache.get_or_compile(&params(), 1, false, true, GridConfig::mesh_5x5());
        let mut ex = compiled.executor();
        let reg = compiled.static_reg("dt_0").unwrap();
        ex.set_reg(reg, 7.0);
        ex.reset();
        assert_eq!(ex.reg(reg), 0.0);
        assert_eq!(ex.iterations(), 0);
    }

    #[test]
    fn clear_resets_counters() {
        let cache = CompiledKernelCache::new();
        cache.get_or_compile(&params(), 1, true, true, GridConfig::mesh_5x5());
        cache.clear();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
    }
}
