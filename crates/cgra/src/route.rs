//! Operand routing over the interconnect.
//!
//! "Each PE is connected to its surrounding neighbours through a
//! configurable interconnect. Results of operations can be passed on,
//! allowing the routing of operands where no direct connection exists."
//! (Section III-C.)
//!
//! The list scheduler accounts for routing *latency* (one cycle per hop);
//! this module materialises the actual paths — dimension-order (X then Y)
//! routing on the mesh — and measures link *occupancy*: how many transfers
//! cross each physical link in the same cycle. The maximum simultaneous
//! occupancy is the channel multiplicity the interconnect must provide
//! (real CGRA links carry several word-wide channels); the report makes
//! that requirement explicit per kernel instead of assuming it.

use crate::dfg::Dfg;
use crate::grid::{GridConfig, PeId, Topology};
use crate::sched::Schedule;
use std::collections::HashMap;

/// A directed physical link between neighbouring PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Source PE.
    pub from: PeId,
    /// Destination PE (a grid neighbour of `from`).
    pub to: PeId,
}

/// One hop of a routed transfer: which link, at which cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The link used.
    pub link: Link,
    /// The cycle in which the value crosses the link.
    pub cycle: u32,
}

/// Routing analysis of a scheduled kernel.
#[derive(Debug, Clone)]
pub struct RoutingReport {
    /// Total operand transfers that needed at least one hop.
    pub routed_transfers: usize,
    /// Total hops across all transfers.
    pub total_hops: usize,
    /// Maximum number of transfers on one link in one cycle — the channel
    /// multiplicity the interconnect must provide for this schedule.
    pub max_link_occupancy: usize,
    /// Number of (link, cycle) slots that carry more than one transfer.
    pub contended_slots: usize,
    /// Distinct links used at least once.
    pub links_used: usize,
}

/// Route every scheduled operand transfer and produce the report.
///
/// Panics if the schedule was produced for a different DFG.
pub fn route(dfg: &Dfg, schedule: &Schedule) -> RoutingReport {
    let grid = schedule.grid;
    let mut occupancy: HashMap<(Link, u32), usize> = HashMap::new();
    let mut routed = 0usize;
    let mut total_hops = 0usize;

    for (id, node) in dfg.nodes() {
        let dst = schedule.placement(id);
        for &o in &node.operands {
            let src = schedule.placement(o);
            if src.pe == dst.pe {
                continue;
            }
            let path = dimension_order_path(&grid, src.pe, dst.pe);
            debug_assert_eq!(path.len() as u32, grid.distance(src.pe, dst.pe));
            routed += 1;
            total_hops += path.len();
            // The value leaves the producer when it finishes; one hop/cycle.
            for (k, link) in path.into_iter().enumerate() {
                let cycle = src.finish + k as u32;
                *occupancy.entry((link, cycle)).or_default() += 1;
            }
        }
    }

    let max_link_occupancy = occupancy.values().copied().max().unwrap_or(0);
    let contended_slots = occupancy.values().filter(|&&c| c > 1).count();
    let links_used = {
        let mut links: Vec<Link> = occupancy.keys().map(|(l, _)| *l).collect();
        links.sort();
        links.dedup();
        links.len()
    };
    RoutingReport {
        routed_transfers: routed,
        total_hops,
        max_link_occupancy,
        contended_slots,
        links_used,
    }
}

/// Dimension-order (X-first) shortest path between two PEs; returns the
/// sequence of directed links. Respects the grid topology: diagonal moves
/// on [`Topology::MeshDiagonal`], wrap-around moves on [`Topology::Torus`].
pub fn dimension_order_path(grid: &GridConfig, from: PeId, to: PeId) -> Vec<Link> {
    let (mut r, mut c) = grid.coords(from);
    let (tr, tc) = grid.coords(to);
    let mut path = Vec::new();
    let rows = i32::from(grid.rows);
    let cols = i32::from(grid.cols);

    let step_toward = |cur: u16, target: u16, n: i32, wrap: bool| -> i32 {
        if cur == target {
            return 0;
        }
        let fwd = (i32::from(target) - i32::from(cur)).rem_euclid(n);
        let bwd = (i32::from(cur) - i32::from(target)).rem_euclid(n);
        if wrap {
            if bwd < fwd {
                -1
            } else {
                1
            }
        } else if target > cur {
            1
        } else {
            -1
        }
    };

    let wrap = grid.topology == Topology::Torus;
    let diagonal = grid.topology == Topology::MeshDiagonal;
    while (r, c) != (tr, tc) {
        let dc = step_toward(c, tc, cols, wrap);
        let dr = step_toward(r, tr, rows, wrap);
        let (nr, nc) = if diagonal && dr != 0 && dc != 0 {
            // Diagonal hop covers both dimensions at once.
            (
                ((i32::from(r) + dr).rem_euclid(rows)) as u16,
                ((i32::from(c) + dc).rem_euclid(cols)) as u16,
            )
        } else if dc != 0 {
            (r, ((i32::from(c) + dc).rem_euclid(cols)) as u16)
        } else {
            (((i32::from(r) + dr).rem_euclid(rows)) as u16, c)
        };
        let next = grid.pe_at(nr, nc);
        path.push(Link {
            from: grid.pe_at(r, c),
            to: next,
        });
        r = nr;
        c = nc;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::isa::OpKind;
    use crate::kernels::{build_beam_kernel, KernelParams};
    use crate::sched::ListScheduler;

    #[test]
    fn path_length_matches_distance_mesh() {
        let g = GridConfig::mesh_5x5();
        for a in g.pes() {
            for b in g.pes() {
                let p = dimension_order_path(&g, a, b);
                assert_eq!(p.len() as u32, g.distance(a, b), "{a:?} -> {b:?}");
                // Path is connected and ends at b.
                let mut cur = a;
                for hop in &p {
                    assert_eq!(hop.from, cur);
                    assert_eq!(g.distance(hop.from, hop.to), 1, "one hop per link");
                    cur = hop.to;
                }
                if !p.is_empty() {
                    assert_eq!(p.last().unwrap().to, b);
                }
            }
        }
    }

    #[test]
    fn path_length_matches_distance_torus_and_diagonal() {
        for topo in [Topology::Torus, Topology::MeshDiagonal] {
            let g = GridConfig {
                topology: topo,
                ..GridConfig::mesh(4, 5)
            };
            for a in g.pes() {
                for b in g.pes() {
                    let p = dimension_order_path(&g, a, b);
                    assert_eq!(p.len() as u32, g.distance(a, b), "{topo:?} {a:?}->{b:?}");
                }
            }
        }
    }

    #[test]
    fn same_pe_transfer_needs_no_route() {
        let g = GridConfig::mesh_3x3();
        let p = dimension_order_path(&g, g.pe_at(1, 1), g.pe_at(1, 1));
        assert!(p.is_empty());
    }

    #[test]
    fn report_on_local_chain_is_empty() {
        // A pure chain schedules on one PE: no routed transfers.
        let mut dfg = Dfg::new();
        let mut v = dfg.konst(2.0);
        for _ in 0..4 {
            v = dfg.add(OpKind::Sqrt, &[v]);
        }
        dfg.add(OpKind::Output(0), &[v]);
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&dfg);
        let r = route(&dfg, &s);
        assert_eq!(r.routed_transfers, 0);
        assert_eq!(r.max_link_occupancy, 0);
    }

    #[test]
    fn beam_kernel_routing_is_modest() {
        // The 8-bunch kernel spreads over the grid: transfers exist, but the
        // required channel multiplicity stays small — the property that
        // makes a word-wide mesh interconnect sufficient.
        let bk = build_beam_kernel(&KernelParams::mde_default(), 8, true);
        let s = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&bk.kernel.dfg);
        let r = route(&bk.kernel.dfg, &s);
        assert!(r.routed_transfers > 10, "kernel actually uses the mesh");
        assert!(r.total_hops >= r.routed_transfers);
        assert!(
            r.max_link_occupancy <= 4,
            "channel multiplicity {} should be small",
            r.max_link_occupancy
        );
        assert!(r.links_used > 4);
    }
}
