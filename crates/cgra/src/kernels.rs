//! The beam-model kernel of Section IV, expressed in the C subset and run
//! through the full toolchain (parser → SCAR DFG → list scheduler → context
//! memories → executor).
//!
//! The kernel is generated for a configurable number of bunches B ∈ {1, 4,
//! 8, …} and optionally with the paper's factor-2 manual loop pipelining
//! ("splitting the loop after the voltages have been calculated", with the
//! Δt write-back pushed into the first half so all I/O happens in stage 0).
//! Scheduling these variants reproduces the Section IV-B tick-count table.

use crate::frontend::{compile, Kernel, ParseError};
use crate::grid::GridConfig;
use crate::sched::{ListScheduler, Schedule, ScheduleError};
use std::fmt::Write as _;

/// Why a beam kernel could not be generated, compiled or scheduled.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelBuildError {
    /// Bunch count outside the supported 1..=64 range (the generated
    /// per-bunch statics and actuator ports are sized for it).
    BadBunchCount(usize),
    /// The generated C source failed to compile — only reachable if the
    /// generator itself regresses, but surfaced rather than asserted so
    /// callers embedding user-tweaked sources get a diagnostic.
    Compile(ParseError),
    /// The compiled DFG could not be scheduled on the requested grid.
    Schedule(ScheduleError),
    /// The schedule failed post-validation (a scheduler bug surfaced as
    /// data, carrying the human-readable violation).
    InvalidSchedule(String),
}

impl std::fmt::Display for KernelBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadBunchCount(b) => {
                write!(f, "bunch count {b} outside the supported range 1..=64")
            }
            Self::Compile(e) => write!(f, "generated kernel source failed to compile: {e}"),
            Self::Schedule(e) => write!(f, "kernel DFG unschedulable: {e}"),
            Self::InvalidSchedule(msg) => write!(f, "kernel schedule invalid: {msg}"),
        }
    }
}

impl std::error::Error for KernelBuildError {}

/// Sensor port: measured revolution period (seconds). Address ignored.
pub const PORT_PERIOD: u16 = 0;
/// Sensor port: reference-signal ring buffer. Address = whole samples
/// relative to the last positive zero crossing (negative = before).
pub const PORT_REF_BUF: u16 = 1;
/// Sensor port: gap-signal ring buffer. Addressing as [`PORT_REF_BUF`].
pub const PORT_GAP_BUF: u16 = 2;
/// Actuator ports 0..B−1: Δt of bunch b (seconds relative to the reference
/// zero crossing).
pub const ACT_DT_BASE: u16 = 0;
/// Actuator port: monitoring output (the runtime-selectable second DAC
/// channel of Section III-A).
pub const ACT_MONITOR: u16 = 100;

/// Physical/scaling constants the kernel is specialised with (the paper
/// hard-codes these per experiment via the SpartanMC parameter interface).
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Reference orbit length l_R, metres.
    pub orbit_length_m: f64,
    /// Momentum compaction α_c.
    pub momentum_compaction: f64,
    /// Q/(mc²) in 1/volts (γ gained per volt of gap voltage).
    pub gamma_per_volt: f64,
    /// ADC sample rate, Hz (address unit of the ring buffers).
    pub sample_rate: f64,
    /// Gap volts per ADC volt on the reference channel.
    pub scale_ref: f64,
    /// Gap volts per ADC volt on the gap channel.
    pub scale_gap: f64,
    /// Initial γ_R (from the period-length detector at init).
    pub gamma_r_init: f64,
}

/// A fully built beam kernel: compiled DFG + metadata.
#[derive(Debug, Clone)]
pub struct BeamKernel {
    /// The compiled kernel (DFG + register initialisers).
    pub kernel: Kernel,
    /// The generated C source (for inspection/tests — the artifact a user
    /// of the paper's system would edit).
    pub source: String,
    /// Number of bunches simulated per revolution.
    pub bunches: usize,
    /// Whether the factor-2 pipeline split was applied.
    pub pipelined: bool,
}

/// Generate the kernel C source for `bunches` bunches.
///
/// Layout mirrors Section IV-B:
/// 1. read the averaged revolution period from the period-length detector;
/// 2. compute the reference particle's revolution time from γ_R and the
///    offset ΔT to the measured zero crossing;
/// 3. fetch V_R from the reference ring buffer and V_b from the gap ring
///    buffer (two reads + linear interpolation each);
/// 4. `pipeline_stage()` (the paper's manual split point, only if
///    `pipelined`) — all I/O is in the first half, including the Δt
///    write-back of the previous result;
/// 5. apply Eqs. (2), (5), (3), (6) and store the new state.
pub fn beam_kernel_source(params: &KernelParams, bunches: usize, pipelined: bool) -> String {
    beam_kernel_source_opts(params, bunches, pipelined, true)
}

/// [`beam_kernel_source`] with the linear interpolation made optional
/// (ablation A1: "a second value is requested from the buffer to perform
/// linear interpolation to increase the accuracy" — what if it were not?).
///
/// Panics on a bunch count outside 1..=64; use
/// [`try_beam_kernel_source_opts`] to get that as a typed error instead.
pub fn beam_kernel_source_opts(
    params: &KernelParams,
    bunches: usize,
    pipelined: bool,
    interpolate: bool,
) -> String {
    try_beam_kernel_source_opts(params, bunches, pipelined, interpolate)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`beam_kernel_source_opts`] with the bunch-count check reported as a
/// typed [`KernelBuildError`] instead of a panic.
pub fn try_beam_kernel_source_opts(
    params: &KernelParams,
    bunches: usize,
    pipelined: bool,
    interpolate: bool,
) -> Result<String, KernelBuildError> {
    if !(1..=64).contains(&bunches) {
        return Err(KernelBuildError::BadBunchCount(bunches));
    }
    // All the `.unwrap()`s below are `writeln!` into a `String`, whose
    // `fmt::Write` impl is infallible.
    let mut s = String::new();
    let p = params;
    let c_light = 299_792_458.0_f64;
    writeln!(
        s,
        "// Beam-phase kernel: {bunches} bunch(es), pipelined={pipelined}"
    )
    .unwrap();
    writeln!(s, "static float gamma_r = {:.17e};", p.gamma_r_init).unwrap();
    for b in 0..bunches {
        writeln!(s, "static float dgamma_{b} = 0.0f;").unwrap();
        writeln!(s, "static float dt_{b} = 0.0f;").unwrap();
    }
    writeln!(s, "for (;;) {{").unwrap();
    // --- Stage 0: measurement + voltage acquisition (all I/O). ---
    writeln!(s, "  float t_meas = read_sensor({PORT_PERIOD}, 0.0f);").unwrap();
    writeln!(s, "  float inv_g = 1.0f / gamma_r;").unwrap();
    writeln!(s, "  float beta2 = 1.0f - inv_g * inv_g;").unwrap();
    writeln!(s, "  float beta = sqrtf(beta2);").unwrap();
    writeln!(
        s,
        "  float t_ref = {:.17e} / (beta * {:.17e});",
        p.orbit_length_m, c_light
    )
    .unwrap();
    writeln!(s, "  float dT = t_ref - t_meas;").unwrap();
    // Reference voltage (Eq. 2 input), interpolated.
    writeln!(s, "  float a_r = dT * {:.17e};", p.sample_rate).unwrap();
    if interpolate {
        writeln!(s, "  float a_r0 = floorf(a_r);").unwrap();
        writeln!(s, "  float fr_r = a_r - a_r0;").unwrap();
        writeln!(
            s,
            "  float v_r = (read_sensor({PORT_REF_BUF}, a_r0) * (1.0f - fr_r) + read_sensor({PORT_REF_BUF}, a_r0 + 1.0f) * fr_r) * {:.17e};",
            p.scale_ref
        )
        .unwrap();
    } else {
        // Single (nearest) read: floor(a + 0.5).
        writeln!(
            s,
            "  float v_r = read_sensor({PORT_REF_BUF}, floorf(a_r + 0.5f)) * {:.17e};",
            p.scale_ref
        )
        .unwrap();
    }
    // Gap voltage per bunch (Eq. 3 input).
    for b in 0..bunches {
        writeln!(
            s,
            "  float a_g{b} = (dT + dt_{b}) * {:.17e};",
            p.sample_rate
        )
        .unwrap();
        if interpolate {
            writeln!(s, "  float a_g{b}0 = floorf(a_g{b});").unwrap();
            writeln!(s, "  float fr_g{b} = a_g{b} - a_g{b}0;").unwrap();
            writeln!(
                s,
                "  float v_{b} = (read_sensor({PORT_GAP_BUF}, a_g{b}0) * (1.0f - fr_g{b}) + read_sensor({PORT_GAP_BUF}, a_g{b}0 + 1.0f) * fr_g{b}) * {:.17e};",
                p.scale_gap
            )
            .unwrap();
        } else {
            writeln!(
                s,
                "  float v_{b} = read_sensor({PORT_GAP_BUF}, floorf(a_g{b} + 0.5f)) * {:.17e};",
                p.scale_gap
            )
            .unwrap();
        }
    }
    if pipelined {
        // The paper pushes the Δt write-back into the first loop half: the
        // value written is the previous iteration's result, so all I/O is in
        // stage 0 and "there is no additional delay induced by the loop
        // pipelining".
        for b in 0..bunches {
            writeln!(s, "  write_actuator({}, dt_{b});", ACT_DT_BASE + b as u16).unwrap();
        }
        writeln!(s, "  pipeline_stage();").unwrap();
    }
    // --- Stage 1: the tracking equations. ---
    writeln!(s, "  float g2 = gamma_r + {:.17e} * v_r;", p.gamma_per_volt).unwrap(); // Eq. (2)
    writeln!(s, "  float inv_g2 = 1.0f / g2;").unwrap();
    writeln!(
        s,
        "  float eta = {:.17e} - inv_g2 * inv_g2;",
        p.momentum_compaction
    )
    .unwrap(); // Eq. (5)
    writeln!(
        s,
        "  float drift = {:.17e} * eta / (beta * beta2 * {:.17e}) * inv_g2;",
        p.orbit_length_m, c_light
    )
    .unwrap(); // l_R·η/(β³·c·γ) of Eq. (6)
    for b in 0..bunches {
        writeln!(
            s,
            "  dgamma_{b} = dgamma_{b} + {:.17e} * (v_{b} - v_r);",
            p.gamma_per_volt
        )
        .unwrap(); // Eq. (3)
        writeln!(s, "  dt_{b} = dt_{b} + drift * dgamma_{b};").unwrap(); // Eq. (6)
        if !pipelined {
            writeln!(s, "  write_actuator({}, dt_{b});", ACT_DT_BASE + b as u16).unwrap();
        }
    }
    writeln!(s, "  gamma_r = g2;").unwrap();
    writeln!(s, "}}").unwrap();
    Ok(s)
}

/// Build (compile and optionally pipeline-split) the beam kernel.
pub fn build_beam_kernel(params: &KernelParams, bunches: usize, pipelined: bool) -> BeamKernel {
    build_beam_kernel_opts(params, bunches, pipelined, true)
}

/// [`build_beam_kernel`] with optional interpolation (ablation A1).
///
/// Panics on a bad bunch count or a generator regression; use
/// [`try_build_beam_kernel_opts`] for the typed-error form.
pub fn build_beam_kernel_opts(
    params: &KernelParams,
    bunches: usize,
    pipelined: bool,
    interpolate: bool,
) -> BeamKernel {
    try_build_beam_kernel_opts(params, bunches, pipelined, interpolate)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Generate, compile and (optionally) pipeline-split the beam kernel,
/// reporting every failure mode as a typed [`KernelBuildError`].
pub fn try_build_beam_kernel_opts(
    params: &KernelParams,
    bunches: usize,
    pipelined: bool,
    interpolate: bool,
) -> Result<BeamKernel, KernelBuildError> {
    let source = try_beam_kernel_source_opts(params, bunches, pipelined, interpolate)?;
    let mut kernel = compile(&source).map_err(KernelBuildError::Compile)?;
    if pipelined {
        kernel.dfg = kernel.dfg.pipeline_split();
    }
    Ok(BeamKernel {
        kernel,
        source,
        bunches,
        pipelined,
    })
}

/// One row of the Section IV-B schedule-length table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleRow {
    /// Bunches simulated per revolution.
    pub bunches: usize,
    /// Pipelined?
    pub pipelined: bool,
    /// Our schedule length in ticks.
    pub ticks: u32,
    /// Max revolution frequency at the given CGRA clock.
    pub max_f_rev: f64,
}

/// Reproduce the Section IV-B table on a given grid and CGRA clock:
/// schedule the kernel for each (bunches, pipelined) configuration.
///
/// Fails with a typed [`KernelBuildError`] on an unsupported bunch count,
/// an unschedulable grid, or a schedule that does not validate.
pub fn schedule_table(
    params: &KernelParams,
    grid: GridConfig,
    f_clk: f64,
    configs: &[(usize, bool)],
) -> Result<Vec<(ScheduleRow, Schedule)>, KernelBuildError> {
    let sched = ListScheduler::new(grid);
    configs
        .iter()
        .map(|&(bunches, pipelined)| {
            let bk = try_build_beam_kernel_opts(params, bunches, pipelined, true)?;
            let schedule = sched
                .try_schedule(&bk.kernel.dfg)
                .map_err(KernelBuildError::Schedule)?;
            schedule
                .validate(&bk.kernel.dfg)
                .map_err(KernelBuildError::InvalidSchedule)?;
            let row = ScheduleRow {
                bunches,
                pipelined,
                ticks: schedule.makespan,
                max_f_rev: schedule.max_revolution_frequency(f_clk),
            };
            Ok((row, schedule))
        })
        .collect()
}

impl KernelParams {
    /// The MDE operating point of the evaluation: SIS18, ¹⁴N⁷⁺, 800 kHz,
    /// gap scale chosen for ≈4.9 kV at 1 V ADC full scale.
    pub fn mde_default() -> Self {
        // Values mirror cil-physics (SIS18 + N14,7+ at 800 kHz); duplicated
        // numerically here to keep cil-cgra dependency-free of cil-physics.
        let gamma_t = 5.45_f64;
        Self {
            orbit_length_m: 216.72,
            momentum_compaction: 1.0 / (gamma_t * gamma_t),
            gamma_per_volt: 7.0 / 13.0402e9,
            sample_rate: 250e6,
            scale_ref: 4.9e3,
            scale_gap: 4.9e3,
            gamma_r_init: 1.2258,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CgraExecutor, SensorBus};
    use cil_physics::machine::{MachineParams, OperatingPoint};
    use cil_physics::synchrotron::SynchrotronCalc;
    use cil_physics::tracking::TwoParticleMap;
    use cil_physics::IonSpecies;

    fn mde_params() -> (KernelParams, OperatingPoint) {
        let machine = MachineParams::sis18();
        let ion = IonSpecies::n14_7plus();
        let v_hat = SynchrotronCalc::new(machine, ion)
            .voltage_for_fs(800e3, 1.28e3)
            .unwrap();
        let op = OperatingPoint::from_revolution_frequency(machine, ion, 800e3, v_hat);
        let params = KernelParams {
            orbit_length_m: machine.orbit_length_m,
            momentum_compaction: machine.momentum_compaction,
            gamma_per_volt: ion.gamma_per_volt(),
            sample_rate: 250e6,
            scale_ref: 1.0,
            scale_gap: 1.0,
            gamma_r_init: op.gamma_r,
        };
        (params, op)
    }

    #[test]
    fn kernel_source_compiles_for_all_configs() {
        let (p, _) = mde_params();
        for &(b, pl) in &[(1, false), (1, true), (4, true), (8, true), (8, false)] {
            let bk = build_beam_kernel(&p, b, pl);
            assert!(bk.kernel.dfg.len() > 20);
            // One Δt actuator write per bunch.
            let writes = bk
                .kernel
                .dfg
                .nodes()
                .filter(|(_, n)| matches!(n.op, crate::isa::OpKind::ActuatorWrite(_)))
                .count();
            assert_eq!(writes, b, "bunches={b} pipelined={pl}");
        }
    }

    #[test]
    fn schedule_table_shape_matches_paper() {
        // Section IV-B: pipelined(8) < unpipelined(8); fewer bunches -> fewer
        // ticks; 1 MHz-class revolution frequencies at 111 MHz.
        let (p, _) = mde_params();
        let rows = schedule_table(
            &p,
            GridConfig::mesh_5x5(),
            111e6,
            &[(8, false), (8, true), (4, true), (1, true)],
        )
        .unwrap();
        let ticks: Vec<u32> = rows.iter().map(|(r, _)| r.ticks).collect();
        let (t8np, t8p, t4p, t1p) = (ticks[0], ticks[1], ticks[2], ticks[3]);
        assert!(t8p < t8np, "pipelining must shorten: {t8p} !< {t8np}");
        assert!(t4p <= t8p, "4 bunches <= 8 bunches: {t4p} !<= {t8p}");
        assert!(t1p <= t4p, "1 bunch <= 4 bunches: {t1p} !<= {t4p}");
        // Same order of magnitude as the paper's 93-128 ticks.
        assert!(
            t8np < 400 && t1p > 20,
            "ticks in a plausible range: {ticks:?}"
        );
        // Max revolution frequency covers the SIS18 range (>= 800 kHz for
        // the pipelined single-bunch configuration).
        let f1 = rows[3].0.max_f_rev;
        assert!(f1 > 800e3, "single-bunch max f_rev = {f1}");
    }

    /// Bus that serves analytic stationary signals to the kernel, mirroring
    /// what the HIL framework provides from its ring buffers.
    struct AnalyticBus {
        op: OperatingPoint,
        phase_offset_rad: f64,
        /// collected Δt writes (port, value)
        writes: Vec<(u16, f64)>,
    }

    impl SensorBus for AnalyticBus {
        fn read(&mut self, port: u16, addr: f64) -> f64 {
            let fs = 250e6;
            let t = addr / fs; // seconds relative to the reference crossing
            match port {
                PORT_PERIOD => 1.0 / self.op.f_rev(),
                PORT_REF_BUF => (std::f64::consts::TAU * self.op.f_rev() * t).sin(),
                PORT_GAP_BUF => {
                    (std::f64::consts::TAU * self.op.f_rf() * t + self.phase_offset_rad).sin()
                        * self.op.v_gap_volts
                }
                _ => 0.0,
            }
        }
        fn write(&mut self, port: u16, value: f64) {
            self.writes.push((port, value));
        }
    }

    #[test]
    fn kernel_tracks_like_two_particle_map() {
        // The full toolchain (C source -> DFG -> schedule -> executor)
        // driven by analytic signals must reproduce the physics map's
        // synchrotron oscillation.
        let (mut p, op) = mde_params();
        p.scale_gap = 1.0;
        let bk = build_beam_kernel(&p, 1, false);
        let sched = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&bk.kernel.dfg);
        let mut ex = CgraExecutor::new(bk.kernel.dfg.clone(), sched);
        for (r, v) in &bk.kernel.reg_inits {
            ex.set_reg(*r, *v);
        }
        // Give the kernel's bunch an 8 degree offset like a phase jump, by
        // initialising dt_0 (register of the "dt_0" static).
        let dt_reg = bk
            .kernel
            .statics
            .iter()
            .find(|(n, _)| n == "dt_0")
            .map(|(_, r)| *r)
            .unwrap();
        let dt0 = 8.0 / 360.0 / op.f_rf();
        ex.set_reg(dt_reg, dt0);

        let mut bus = AnalyticBus {
            op,
            phase_offset_rad: 0.0,
            writes: Vec::new(),
        };

        // Reference map with the same initial condition.
        let mut map = TwoParticleMap::at_operating_point(&op);
        map.particle.dt = dt0;

        let turns = (op.f_rev() / 1.28e3 * 2.0) as usize; // two synchrotron periods
        let mut max_err: f64 = 0.0;
        for _ in 0..turns {
            bus.writes.clear();
            ex.run_iteration(&mut bus, &[]);
            let dt_kernel = bus
                .writes
                .iter()
                .find(|(p, _)| *p == ACT_DT_BASE)
                .unwrap()
                .1;
            let dt_map = map.step_stationary(op.v_gap_volts, 0.0);
            max_err = max_err.max((dt_kernel - dt_map).abs());
        }
        // The kernel samples signals with its own ΔT bookkeeping; agreement
        // to a few percent of the amplitude proves the chain.
        assert!(
            max_err < dt0 * 0.05,
            "kernel vs map max deviation {max_err} (amplitude {dt0})"
        );
    }

    #[test]
    fn pipelined_kernel_same_physics_one_turn_late() {
        let (p, op) = mde_params();
        let bk = build_beam_kernel(&p, 1, true);
        let sched = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&bk.kernel.dfg);
        let mut ex = CgraExecutor::new(bk.kernel.dfg.clone(), sched);
        for (r, v) in &bk.kernel.reg_inits {
            ex.set_reg(*r, *v);
        }
        let dt_reg = bk
            .kernel
            .statics
            .iter()
            .find(|(n, _)| n == "dt_0")
            .unwrap()
            .1;
        let dt0 = 8.0 / 360.0 / op.f_rf();
        ex.set_reg(dt_reg, dt0);
        let mut bus = AnalyticBus {
            op,
            phase_offset_rad: 0.0,
            writes: Vec::new(),
        };
        // Pipelined kernels need the initialisation pass to fill the stage
        // bridges before the architectural state is valid.
        let mut restore: Vec<(u16, f64)> = bk.kernel.reg_inits.clone();
        restore.push((dt_reg, dt0));
        ex.warmup(&mut bus, &[], &restore);
        bus.writes.clear();
        // Track amplitude over one synchrotron period; oscillation must stay
        // bounded (the pipelined kernel's one-iteration-stale voltages are a
        // tiny perturbation at fs << f_rev).
        let turns = (op.f_rev() / 1.28e3) as usize;
        let mut max_dt: f64 = 0.0;
        let mut min_dt: f64 = f64::MAX;
        for _ in 0..turns {
            bus.writes.clear();
            ex.run_iteration(&mut bus, &[]);
            let dt = bus
                .writes
                .iter()
                .find(|(p, _)| *p == ACT_DT_BASE)
                .unwrap()
                .1;
            max_dt = max_dt.max(dt.abs());
            min_dt = min_dt.min(dt);
        }
        assert!(max_dt < dt0 * 1.1, "bounded oscillation, max {max_dt}");
        assert!(
            min_dt < -dt0 * 0.8,
            "oscillates to the other side, min {min_dt}"
        );
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        let (p, _) = mde_params();
        for bunches in [0, 65, 1000] {
            assert_eq!(
                try_beam_kernel_source_opts(&p, bunches, false, true),
                Err(KernelBuildError::BadBunchCount(bunches))
            );
            assert!(matches!(
                try_build_beam_kernel_opts(&p, bunches, true, true),
                Err(KernelBuildError::BadBunchCount(_))
            ));
        }
        // An I/O-less grid cannot host the kernel's sensor reads.
        let mut grid = GridConfig::mesh_5x5();
        grid.io_columns = 0;
        assert!(matches!(
            schedule_table(&p, grid, 111e6, &[(1, false)]),
            Err(KernelBuildError::Schedule(_))
        ));
    }

    #[test]
    fn source_is_human_editable_c() {
        let (p, _) = mde_params();
        let src = beam_kernel_source(&p, 2, true);
        assert!(src.contains("for (;;)"));
        assert!(src.contains("pipeline_stage();"));
        assert!(src.contains("static float gamma_r"));
        assert!(src.contains("dt_1"));
        // Round-trips through the compiler.
        assert!(compile(&src).is_ok());
    }

    #[test]
    fn beam_kernel_lowers_to_micro_op_plan() {
        use crate::plan::MicroOpPlan;
        let (p, _) = mde_params();
        let sched = ListScheduler::new(GridConfig::mesh_5x5());
        for &(b, pl) in &[(1, false), (2, true), (4, true)] {
            let bk = build_beam_kernel(&p, b, pl);
            let schedule = sched.schedule(&bk.kernel.dfg);
            schedule.validate(&bk.kernel.dfg).unwrap();
            let plan = MicroOpPlan::try_build(&bk.kernel.dfg, &schedule).unwrap();
            let stats = plan.stats();
            // The kernel's literals fold into the values template instead of
            // occupying runtime ops, and every Δt actuator write plus the
            // per-bunch sensor reads survive as sensor I/O micro-ops.
            assert!(stats.folded_consts > 0, "bunches={b} pipelined={pl}");
            assert!(stats.sensor_io >= b, "bunches={b} pipelined={pl}");
            assert!(stats.registers > 0, "loop-carried state must persist");
            assert_eq!(
                plan.ops().len(),
                stats.inputs + stats.sensor_io + stats.registers + stats.pure_ops,
                "every compute-stream op is counted exactly once"
            );
            assert_eq!(stats.outputs, plan.output_count());
        }
    }
}
