//! Cycle-accurate CGRA executor.
//!
//! Replays the compiled kernel cycle by cycle against a [`SensorBus`] (the
//! SensorAccess module of Section III-C). Values, register state and sensor
//! traffic are modelled exactly; the executor is the component the HIL
//! framework (`cil-core`) drives once per revolution.
//!
//! The hot path replays a pre-decoded [`MicroOpPlan`] (see [`crate::plan`]):
//! a flat array of micro-ops with pre-resolved value-slot indices, built
//! once from the `(Dfg, Schedule)` pair. The original node-walk over the
//! `Arc<Dfg>` is retained as [`CgraExecutor::try_run_iteration_nodewalk`]
//! for differential testing and benchmarking.
//!
//! Correctness is anchored three ways: `Schedule::validate` proves the
//! timing is feasible, [`interpret_dfg`] provides an order-independent
//! reference evaluation, and the plan replay is differentially tested
//! against both the interpreter and the node walk.

use crate::context::ContextMemories;
use crate::dfg::{Dfg, NodeId};
use crate::isa::OpKind;
use crate::plan::MicroOpPlan;
use crate::sched::Schedule;
use std::sync::Arc;

/// A typed executor failure — what used to be a panic inside the replay
/// loop. The HIL layer surfaces these as beam-loss / engine-fault events
/// instead of aborting the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// An `Input(p)` node fired but the caller supplied no value for port
    /// `p`.
    MissingInput(u16),
    /// A pure op could not be evaluated (malformed operand count — a
    /// compiler bug, not a data fault).
    PureOpFailed(NodeId),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingInput(p) => write!(f, "missing input port {p}"),
            Self::PureOpFailed(id) => write!(f, "pure op at node {} failed to evaluate", id.0),
        }
    }
}

impl std::error::Error for ExecError {}

/// The SensorAccess module interface: "a SensorAccess module was implemented
/// to act as memory. This allows the simulation model to both read input
/// signal data and set the output timing for the next Gauss pulse."
pub trait SensorBus {
    /// Read sensor `port` at address `addr` (meaning is port-specific, e.g.
    /// "samples before the last zero crossing" for ring-buffer ports).
    fn read(&mut self, port: u16, addr: f64) -> f64;
    /// Write `value` to actuator `port`.
    fn write(&mut self, port: u16, value: f64);
}

/// A sensor bus for tests: fixed scalar per port, records writes.
///
/// Sensor values live in a port-sorted table probed by binary search — the
/// table is built once (or amended by [`MapBus::set_sensor`]) and each read
/// is a cache-friendly probe of a small contiguous array instead of a
/// B-tree walk. A port with no entry reads as `0.0`, exactly as before.
#[derive(Debug, Default, Clone)]
pub struct MapBus {
    /// Port table sorted by port number.
    sensors: Vec<(u16, f64)>,
    /// All writes observed, in order.
    pub writes: Vec<(u16, f64)>,
}

impl MapBus {
    /// Set the value served on sensor `port` (inserting or overwriting its
    /// table entry, keeping the table sorted).
    pub fn set_sensor(&mut self, port: u16, value: f64) {
        match self.sensors.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(i) => self.sensors[i].1 = value,
            Err(i) => self.sensors.insert(i, (port, value)),
        }
    }

    /// The value sensor `port` currently serves (`0.0` when unset).
    pub fn sensor(&self, port: u16) -> f64 {
        match self.sensors.binary_search_by_key(&port, |&(p, _)| p) {
            Ok(i) => self.sensors[i].1,
            Err(_) => 0.0,
        }
    }
}

impl SensorBus for MapBus {
    fn read(&mut self, port: u16, _addr: f64) -> f64 {
        self.sensor(port)
    }
    fn write(&mut self, port: u16, value: f64) {
        self.writes.push((port, value));
    }
}

/// Executor state: configured contexts + loop-carried register file.
///
/// The compile artifacts (DFG + schedule + micro-op plan) are held behind
/// `Arc`, so many executors — e.g. one per sweep worker — can share one
/// compiled kernel ([`crate::cache::CompiledKernelCache`]) while keeping
/// private mutable run state.
#[derive(Debug, Clone)]
pub struct CgraExecutor {
    dfg: Arc<Dfg>,
    schedule: Arc<Schedule>,
    plan: Arc<MicroOpPlan>,
    contexts: ContextMemories,
    /// Loop-carried registers (double-buffered: reads see last iteration).
    regs_current: Vec<f64>,
    regs_next: Vec<f64>,
    /// Scratch node-value store reused across iterations, seeded from the
    /// plan's constant-folded template.
    values: Vec<f64>,
    /// Execution order: node ids sorted by (start cycle, pe). Used only by
    /// the legacy node-walk path.
    order: Vec<NodeId>,
    /// Iterations executed.
    iterations: u64,
}

impl CgraExecutor {
    /// Configure an executor from a DFG + its schedule. Initial register
    /// values default to zero; use [`Self::set_reg`] for kernel `static`
    /// initialisers.
    pub fn new(dfg: Dfg, schedule: Schedule) -> Self {
        Self::from_shared(Arc::new(dfg), Arc::new(schedule))
    }

    /// Configure an executor over *shared* compile artifacts (no DFG or
    /// schedule clone), lowering a fresh micro-op plan.
    pub fn from_shared(dfg: Arc<Dfg>, schedule: Arc<Schedule>) -> Self {
        let plan = Arc::new(MicroOpPlan::build(&dfg, &schedule));
        Self::from_shared_plan(dfg, schedule, plan)
    }

    /// Configure an executor over shared artifacts *including* an already
    /// lowered plan. This is how [`crate::cache::CompiledKernel`] stamps out
    /// per-run executors from one cached compilation: the plan is lowered
    /// once per cache entry and shared across every executor and thread.
    pub fn from_shared_plan(
        dfg: Arc<Dfg>,
        schedule: Arc<Schedule>,
        plan: Arc<MicroOpPlan>,
    ) -> Self {
        schedule
            .validate(&dfg)
            .expect("schedule must be valid for its DFG");
        let contexts = ContextMemories::from_schedule(&dfg, &schedule);
        let mut order: Vec<NodeId> = dfg.nodes().map(|(id, _)| id).collect();
        order.sort_by_key(|&id| {
            let p = schedule.placement(id);
            (p.start, p.pe.0)
        });
        let regs = vec![0.0; dfg.reg_count() as usize];
        let values = plan.values_template().to_vec();
        Self {
            dfg,
            schedule,
            plan,
            contexts,
            regs_current: regs.clone(),
            regs_next: regs,
            values,
            order,
            iterations: 0,
        }
    }

    /// Reset all per-run state (registers, scratch values, iteration
    /// counter) without touching the shared compile artifacts — the cheap
    /// way to reuse an executor for a fresh run.
    pub fn reset(&mut self) {
        self.regs_current.fill(0.0);
        self.regs_next.fill(0.0);
        self.values.copy_from_slice(self.plan.values_template());
        self.iterations = 0;
    }

    /// Set a loop-carried register (kernel `static float x = init;`).
    pub fn set_reg(&mut self, reg: u16, value: f64) {
        self.regs_current[reg as usize] = value;
        self.regs_next[reg as usize] = value;
    }

    /// Read a loop-carried register.
    pub fn reg(&self, reg: u16) -> f64 {
        self.regs_current[reg as usize]
    }

    /// Execute one kernel iteration ("one revolution"): every context slot
    /// fires at its cycle; sensor reads/writes hit `bus`; register writes
    /// become visible to the *next* iteration. `inputs[i]` feeds
    /// `OpKind::Input(i)`. Returns the values written to `Output` ports.
    ///
    /// Panicking wrapper around [`Self::try_run_iteration`] for callers that
    /// treat executor faults as unrecoverable (tests, exploratory tools).
    pub fn run_iteration<B: SensorBus>(&mut self, bus: &mut B, inputs: &[f64]) -> Vec<(u16, f64)> {
        match self.try_run_iteration(bus, inputs) {
            Ok(outputs) => outputs,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::run_iteration`]: executor faults come
    /// back as [`ExecError`] with all register state untouched by the failed
    /// iteration (writes only commit on success), so a supervisor can
    /// degrade gracefully instead of unwinding through the loop.
    ///
    /// Thin allocating wrapper over [`Self::try_run_iteration_into`].
    pub fn try_run_iteration<B: SensorBus>(
        &mut self,
        bus: &mut B,
        inputs: &[f64],
    ) -> Result<Vec<(u16, f64)>, ExecError> {
        let mut outputs = Vec::with_capacity(self.plan.output_count());
        self.try_run_iteration_into(bus, inputs, &mut outputs)?;
        Ok(outputs)
    }

    /// The allocation-free hot path: replay the micro-op plan for one
    /// iteration, writing the kernel outputs into the caller-owned scratch
    /// buffer `outputs` (cleared first). Per-iteration cost is one pass
    /// over the flat plan — no `Arc` chasing, no heap traffic.
    ///
    /// Error semantics match [`Self::try_run_iteration`] exactly: on
    /// [`ExecError`] the loop-carried registers are rolled back and
    /// `outputs` is left empty.
    pub fn try_run_iteration_into<B: SensorBus>(
        &mut self,
        bus: &mut B,
        inputs: &[f64],
        outputs: &mut Vec<(u16, f64)>,
    ) -> Result<(), ExecError> {
        outputs.clear();
        for &op in self.plan.ops() {
            if let Err(port) = op.dispatch(
                &mut self.values,
                &self.regs_current,
                &mut self.regs_next,
                bus,
                inputs,
            ) {
                // Roll partially-written next-iteration register state back
                // so a retry starts clean.
                self.regs_next.copy_from_slice(&self.regs_current);
                return Err(ExecError::MissingInput(port));
            }
        }
        outputs.extend(
            self.plan
                .outputs()
                .iter()
                .map(|&(port, slot)| (port, self.values[slot as usize])),
        );
        // Commit loop-carried registers.
        self.regs_current.copy_from_slice(&self.regs_next);
        self.iterations += 1;
        Ok(())
    }

    /// The pre-plan execution path: walk the `Arc<Dfg>` node by node in
    /// schedule order, dispatching on [`OpKind`] per node. Byte-for-byte
    /// the behaviour the micro-op plan must reproduce; kept public as the
    /// differential-test oracle and the `bench_loop` baseline.
    pub fn try_run_iteration_nodewalk<B: SensorBus>(
        &mut self,
        bus: &mut B,
        inputs: &[f64],
    ) -> Result<Vec<(u16, f64)>, ExecError> {
        let mut outputs = Vec::new();
        for &id in &self.order {
            let node = self.dfg.node(id);
            let v = match node.op {
                OpKind::Input(p) => match inputs.get(p as usize) {
                    Some(&v) => v,
                    None => {
                        self.regs_next.copy_from_slice(&self.regs_current);
                        return Err(ExecError::MissingInput(p));
                    }
                },
                OpKind::Output(p) => {
                    let v = self.values[node.operands[0].0 as usize];
                    outputs.push((p, v));
                    v
                }
                OpKind::SensorRead(p) => {
                    let addr = self.values[node.operands[0].0 as usize];
                    bus.read(p, addr)
                }
                OpKind::ActuatorWrite(p) => {
                    let v = self.values[node.operands[0].0 as usize];
                    bus.write(p, v);
                    v
                }
                OpKind::RegRead(r) => self.regs_current[r as usize],
                OpKind::RegWrite(r) => {
                    let v = self.values[node.operands[0].0 as usize];
                    self.regs_next[r as usize] = v;
                    v
                }
                ref pure => {
                    // Gather operands without allocating.
                    let mut args = [0.0f64; 3];
                    for (i, &o) in node.operands.iter().enumerate() {
                        args[i] = self.values[o.0 as usize];
                    }
                    match pure.eval_pure(&args[..node.operands.len()]) {
                        Some(v) => v,
                        None => {
                            // Roll partially-written next-iteration register
                            // state back so a retry starts clean.
                            self.regs_next.copy_from_slice(&self.regs_current);
                            return Err(ExecError::PureOpFailed(id));
                        }
                    }
                }
            };
            self.values[id.0 as usize] = v;
        }
        // Commit loop-carried registers.
        self.regs_current.copy_from_slice(&self.regs_next);
        self.iterations += 1;
        Ok(outputs)
    }

    /// Warm-up for pipelined kernels: the stage-bridging registers start at
    /// zero, so the first iteration's second half computes garbage (up to
    /// NaN via division by zero). This mirrors the paper's initialisation
    /// phase (Section IV-B): run one iteration to fill the bridges, then
    /// restore the architectural state registers to their initial values.
    ///
    /// Panicking wrapper around [`Self::try_warmup`].
    pub fn warmup<B: SensorBus>(&mut self, bus: &mut B, inputs: &[f64], restore: &[(u16, f64)]) {
        if let Err(e) = self.try_warmup(bus, inputs, restore) {
            panic!("{e}");
        }
    }

    /// Fallible warm-up: a malformed kernel surfaces as [`ExecError`] (with
    /// registers rolled back and the iteration counter untouched) instead
    /// of aborting, so the HIL supervisor can degrade the engine fidelity
    /// gracefully.
    pub fn try_warmup<B: SensorBus>(
        &mut self,
        bus: &mut B,
        inputs: &[f64],
        restore: &[(u16, f64)],
    ) -> Result<(), ExecError> {
        let mut scratch = Vec::with_capacity(self.plan.output_count());
        self.try_run_iteration_into(bus, inputs, &mut scratch)?;
        for &(r, v) in restore {
            self.set_reg(r, v);
        }
        self.iterations = 0;
        Ok(())
    }

    /// The micro-op plan this executor replays.
    pub fn plan(&self) -> &MicroOpPlan {
        &self.plan
    }

    /// Schedule length in CGRA ticks — the time one iteration occupies.
    pub fn ticks_per_iteration(&self) -> u32 {
        self.schedule.makespan
    }

    /// Wall-clock duration of one iteration at CGRA clock `f_clk`.
    pub fn iteration_seconds(&self, f_clk: f64) -> f64 {
        f64::from(self.schedule.makespan) / f_clk
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Snapshot the architectural run state for checkpointing. Only the
    /// committed register file and the iteration counter are captured: after
    /// a committed iteration `regs_next == regs_current`, and the scratch
    /// value store carries nothing across iterations.
    pub fn state(&self) -> ExecutorState {
        ExecutorState {
            regs: self.regs_current.clone(),
            iterations: self.iterations,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the register-file size does not match this executor's kernel.
    pub fn restore(&mut self, state: &ExecutorState) -> bool {
        if state.regs.len() != self.regs_current.len() {
            return false;
        }
        self.regs_current.copy_from_slice(&state.regs);
        self.regs_next.copy_from_slice(&state.regs);
        self.iterations = state.iterations;
        true
    }

    /// The configured context memories (the bitstream-patch artifact).
    pub fn contexts(&self) -> &ContextMemories {
        &self.contexts
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The underlying DFG.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }
}

/// Checkpointable architectural state of a [`CgraExecutor`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorState {
    /// Committed loop-carried register file.
    pub regs: Vec<f64>,
    /// Iterations executed.
    pub iterations: u64,
}

/// Reference interpretation of a DFG for one iteration: definition order
/// (operands always precede users), same register/bus semantics. The
/// executor must agree with this exactly.
pub fn interpret_dfg<B: SensorBus>(
    dfg: &Dfg,
    regs: &mut [f64],
    bus: &mut B,
    inputs: &[f64],
) -> Vec<(u16, f64)> {
    let mut values = vec![0.0f64; dfg.len()];
    let mut outputs = Vec::new();
    let mut regs_next = regs.to_vec();
    for (id, node) in dfg.nodes() {
        let v = match node.op {
            OpKind::Input(p) => inputs[p as usize],
            OpKind::Output(p) => {
                let v = values[node.operands[0].0 as usize];
                outputs.push((p, v));
                v
            }
            OpKind::SensorRead(p) => {
                let addr = values[node.operands[0].0 as usize];
                bus.read(p, addr)
            }
            OpKind::ActuatorWrite(p) => {
                let v = values[node.operands[0].0 as usize];
                bus.write(p, v);
                v
            }
            OpKind::RegRead(r) => regs[r as usize],
            OpKind::RegWrite(r) => {
                let v = values[node.operands[0].0 as usize];
                regs_next[r as usize] = v;
                v
            }
            ref pure => {
                let args: Vec<f64> = node
                    .operands
                    .iter()
                    .map(|&o| values[o.0 as usize])
                    .collect();
                pure.eval_pure(&args).expect("pure op")
            }
        };
        values[id.0 as usize] = v;
    }
    regs.copy_from_slice(&regs_next);
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::sched::ListScheduler;

    /// y = sqrt(sensor(0)) * 2 ; actuator(0) <- y ; state += y
    fn kernel() -> Dfg {
        let mut g = Dfg::new();
        let zero = g.konst(0.0);
        let s = g.add(OpKind::SensorRead(0), &[zero]);
        let r = g.add(OpKind::Sqrt, &[s]);
        let two = g.konst(2.0);
        let y = g.add(OpKind::Mul, &[r, two]);
        g.add(OpKind::ActuatorWrite(0), &[y]);
        let acc = g.add(OpKind::RegRead(0), &[]);
        let acc2 = g.add(OpKind::Add, &[acc, y]);
        g.add(OpKind::RegWrite(0), &[acc2]);
        g.add(OpKind::Output(0), &[acc2]);
        g
    }

    fn executor() -> CgraExecutor {
        let g = kernel();
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        CgraExecutor::new(g, s)
    }

    #[test]
    fn single_iteration_value() {
        let mut ex = executor();
        let mut bus = MapBus::default();
        bus.set_sensor(0, 9.0);
        let out = ex.run_iteration(&mut bus, &[]);
        // sqrt(9)*2 = 6; accumulator = 6.
        assert_eq!(out, vec![(0, 6.0)]);
        assert_eq!(bus.writes, vec![(0, 6.0)]);
    }

    #[test]
    fn registers_carry_across_iterations() {
        let mut ex = executor();
        let mut bus = MapBus::default();
        bus.set_sensor(0, 4.0);
        for expected in [4.0, 8.0, 12.0] {
            let out = ex.run_iteration(&mut bus, &[]);
            assert_eq!(out[0].1, expected, "accumulator grows by 4 per turn");
        }
        assert_eq!(ex.iterations(), 3);
    }

    #[test]
    fn set_reg_initialises_state() {
        let mut ex = executor();
        ex.set_reg(0, 100.0);
        let mut bus = MapBus::default();
        bus.set_sensor(0, 1.0);
        let out = ex.run_iteration(&mut bus, &[]);
        assert_eq!(out[0].1, 102.0);
    }

    #[test]
    fn executor_matches_interpreter_and_nodewalk() {
        // Three-way differential test over several iterations and varying
        // sensors: planned replay vs. reference interpreter vs. node walk.
        let g = kernel();
        let s = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&g);
        let mut ex = CgraExecutor::new(g.clone(), s.clone());
        let mut legacy = CgraExecutor::new(g.clone(), s);
        let mut regs = vec![0.0f64; g.reg_count() as usize];
        for i in 0..10 {
            let mut bus_a = MapBus::default();
            let mut bus_b = MapBus::default();
            let mut bus_c = MapBus::default();
            let sensor_val = (i as f64 + 1.0) * 1.7;
            bus_a.set_sensor(0, sensor_val);
            bus_b.set_sensor(0, sensor_val);
            bus_c.set_sensor(0, sensor_val);
            let out_a = ex.run_iteration(&mut bus_a, &[]);
            let out_b = interpret_dfg(&g, &mut regs, &mut bus_b, &[]);
            let out_c = legacy.try_run_iteration_nodewalk(&mut bus_c, &[]).unwrap();
            assert_eq!(out_a, out_b, "iteration {i}");
            assert_eq!(out_a, out_c, "iteration {i} (node walk)");
            assert_eq!(bus_a.writes, bus_b.writes);
            assert_eq!(bus_a.writes, bus_c.writes);
        }
    }

    #[test]
    fn run_into_reuses_caller_buffer() {
        let mut ex = executor();
        let mut bus = MapBus::default();
        bus.set_sensor(0, 4.0);
        let mut out = Vec::new();
        ex.try_run_iteration_into(&mut bus, &[], &mut out).unwrap();
        assert_eq!(out, vec![(0, 4.0)]);
        let cap = out.capacity();
        ex.try_run_iteration_into(&mut bus, &[], &mut out).unwrap();
        assert_eq!(out, vec![(0, 8.0)]);
        assert_eq!(out.capacity(), cap, "no reallocation on reuse");
    }

    #[test]
    fn inputs_feed_input_nodes() {
        let mut g = Dfg::new();
        let a = g.add(OpKind::Input(0), &[]);
        let b = g.add(OpKind::Input(1), &[]);
        let s = g.add(OpKind::Add, &[a, b]);
        g.add(OpKind::Output(0), &[s]);
        let sch = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let mut ex = CgraExecutor::new(g, sch);
        let out = ex.run_iteration(&mut MapBus::default(), &[3.0, 4.0]);
        assert_eq!(out, vec![(0, 7.0)]);
    }

    #[test]
    fn iteration_timing_from_schedule() {
        let ex = executor();
        let ticks = ex.ticks_per_iteration();
        assert!(ticks > 0);
        let dt = ex.iteration_seconds(111e6);
        assert!((dt - f64::from(ticks) / 111e6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "missing input port")]
    fn missing_input_panics() {
        let mut g = Dfg::new();
        let a = g.add(OpKind::Input(0), &[]);
        g.add(OpKind::Output(0), &[a]);
        let sch = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let mut ex = CgraExecutor::new(g, sch);
        ex.run_iteration(&mut MapBus::default(), &[]);
    }

    #[test]
    fn missing_input_rolls_back_and_leaves_outputs_empty() {
        let mut g = Dfg::new();
        let r = g.add(OpKind::RegRead(0), &[]);
        let one = g.konst(1.0);
        let inc = g.add(OpKind::Add, &[r, one]);
        g.add(OpKind::RegWrite(0), &[inc]);
        let a = g.add(OpKind::Input(0), &[]);
        g.add(OpKind::Output(0), &[a]);
        let sch = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let mut ex = CgraExecutor::new(g, sch);
        let mut out = vec![(9u16, 9.0f64)];
        let err = ex.try_run_iteration_into(&mut MapBus::default(), &[], &mut out);
        assert_eq!(err, Err(ExecError::MissingInput(0)));
        assert!(out.is_empty(), "failed iteration produces no outputs");
        assert_eq!(ex.reg(0), 0.0, "register write rolled back");
        assert_eq!(ex.iterations(), 0);
        // A retry with the input present commits normally.
        ex.try_run_iteration_into(&mut MapBus::default(), &[5.0], &mut out)
            .unwrap();
        assert_eq!(out, vec![(0, 5.0)]);
        assert_eq!(ex.reg(0), 1.0);
    }

    #[test]
    fn try_warmup_surfaces_missing_input() {
        let mut g = Dfg::new();
        let a = g.add(OpKind::Input(0), &[]);
        g.add(OpKind::Output(0), &[a]);
        let sch = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let mut ex = CgraExecutor::new(g, sch);
        let err = ex.try_warmup(&mut MapBus::default(), &[], &[]);
        assert_eq!(err, Err(ExecError::MissingInput(0)));
        assert_eq!(ex.iterations(), 0);
        assert!(ex.try_warmup(&mut MapBus::default(), &[1.0], &[]).is_ok());
        assert_eq!(ex.iterations(), 0, "warmup does not count as an iteration");
    }

    #[test]
    fn reset_restores_constant_template() {
        let mut ex = executor();
        let mut bus = MapBus::default();
        bus.set_sensor(0, 4.0);
        ex.run_iteration(&mut bus, &[]);
        ex.reset();
        let out = ex.run_iteration(&mut bus, &[]);
        assert_eq!(out, vec![(0, 4.0)], "reset executor behaves like fresh");
        assert_eq!(ex.iterations(), 1);
    }

    #[test]
    fn map_bus_sorted_table_semantics() {
        let mut bus = MapBus::default();
        bus.set_sensor(7, 1.5);
        bus.set_sensor(2, 2.5);
        bus.set_sensor(7, 3.5); // overwrite
        assert_eq!(bus.read(2, 0.0), 2.5);
        assert_eq!(bus.read(7, 0.0), 3.5);
        assert_eq!(bus.read(99, 0.0), 0.0, "unset port reads zero");
    }
}
