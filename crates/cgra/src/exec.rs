//! Cycle-accurate CGRA executor.
//!
//! Replays the context memories cycle by cycle against a [`SensorBus`] (the
//! SensorAccess module of Section III-C). Values, register state and sensor
//! traffic are modelled exactly; the executor is the component the HIL
//! framework (`cil-core`) drives once per revolution.
//!
//! Correctness is anchored two ways: `Schedule::validate` proves the timing
//! is feasible, and [`interpret_dfg`] provides an order-independent
//! reference evaluation the executor is differentially tested against.

use crate::context::ContextMemories;
use crate::dfg::{Dfg, NodeId};
use crate::isa::OpKind;
use crate::sched::Schedule;
use std::sync::Arc;

/// A typed executor failure — what used to be a panic inside the replay
/// loop. The HIL layer surfaces these as beam-loss / engine-fault events
/// instead of aborting the whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// An `Input(p)` node fired but the caller supplied no value for port
    /// `p`.
    MissingInput(u16),
    /// A pure op could not be evaluated (malformed operand count — a
    /// compiler bug, not a data fault).
    PureOpFailed(NodeId),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingInput(p) => write!(f, "missing input port {p}"),
            Self::PureOpFailed(id) => write!(f, "pure op at node {} failed to evaluate", id.0),
        }
    }
}

impl std::error::Error for ExecError {}

/// The SensorAccess module interface: "a SensorAccess module was implemented
/// to act as memory. This allows the simulation model to both read input
/// signal data and set the output timing for the next Gauss pulse."
pub trait SensorBus {
    /// Read sensor `port` at address `addr` (meaning is port-specific, e.g.
    /// "samples before the last zero crossing" for ring-buffer ports).
    fn read(&mut self, port: u16, addr: f64) -> f64;
    /// Write `value` to actuator `port`.
    fn write(&mut self, port: u16, value: f64);
}

/// A sensor bus for tests: fixed scalar per port, records writes.
#[derive(Debug, Default, Clone)]
pub struct MapBus {
    /// Values served per sensor port (addr is ignored).
    pub sensors: std::collections::BTreeMap<u16, f64>,
    /// All writes observed, in order.
    pub writes: Vec<(u16, f64)>,
}

impl SensorBus for MapBus {
    fn read(&mut self, port: u16, _addr: f64) -> f64 {
        *self.sensors.get(&port).unwrap_or(&0.0)
    }
    fn write(&mut self, port: u16, value: f64) {
        self.writes.push((port, value));
    }
}

/// Executor state: configured contexts + loop-carried register file.
///
/// The compile artifacts (DFG + schedule) are held behind `Arc`, so many
/// executors — e.g. one per sweep worker — can share one compiled kernel
/// ([`crate::cache::CompiledKernelCache`]) while keeping private mutable
/// run state.
#[derive(Debug, Clone)]
pub struct CgraExecutor {
    dfg: Arc<Dfg>,
    schedule: Arc<Schedule>,
    contexts: ContextMemories,
    /// Loop-carried registers (double-buffered: reads see last iteration).
    regs_current: Vec<f64>,
    regs_next: Vec<f64>,
    /// Scratch node-value store reused across iterations.
    values: Vec<f64>,
    /// Execution order: node ids sorted by (start cycle, pe).
    order: Vec<NodeId>,
    /// Iterations executed.
    iterations: u64,
}

impl CgraExecutor {
    /// Configure an executor from a DFG + its schedule. Initial register
    /// values default to zero; use [`Self::set_reg`] for kernel `static`
    /// initialisers.
    pub fn new(dfg: Dfg, schedule: Schedule) -> Self {
        Self::from_shared(Arc::new(dfg), Arc::new(schedule))
    }

    /// Configure an executor over *shared* compile artifacts (no DFG or
    /// schedule clone). This is how [`crate::cache::CompiledKernel`] stamps
    /// out per-run executors from one cached compilation.
    pub fn from_shared(dfg: Arc<Dfg>, schedule: Arc<Schedule>) -> Self {
        schedule
            .validate(&dfg)
            .expect("schedule must be valid for its DFG");
        let contexts = ContextMemories::from_schedule(&dfg, &schedule);
        let mut order: Vec<NodeId> = dfg.nodes().map(|(id, _)| id).collect();
        order.sort_by_key(|&id| {
            let p = schedule.placement(id);
            (p.start, p.pe.0)
        });
        let regs = vec![0.0; dfg.reg_count() as usize];
        let values = vec![0.0; dfg.len()];
        Self {
            dfg,
            schedule,
            contexts,
            regs_current: regs.clone(),
            regs_next: regs,
            values,
            order,
            iterations: 0,
        }
    }

    /// Reset all per-run state (registers, scratch values, iteration
    /// counter) without touching the shared compile artifacts — the cheap
    /// way to reuse an executor for a fresh run.
    pub fn reset(&mut self) {
        self.regs_current.fill(0.0);
        self.regs_next.fill(0.0);
        self.values.fill(0.0);
        self.iterations = 0;
    }

    /// Set a loop-carried register (kernel `static float x = init;`).
    pub fn set_reg(&mut self, reg: u16, value: f64) {
        self.regs_current[reg as usize] = value;
        self.regs_next[reg as usize] = value;
    }

    /// Read a loop-carried register.
    pub fn reg(&self, reg: u16) -> f64 {
        self.regs_current[reg as usize]
    }

    /// Execute one kernel iteration ("one revolution"): every context slot
    /// fires at its cycle; sensor reads/writes hit `bus`; register writes
    /// become visible to the *next* iteration. `inputs[i]` feeds
    /// `OpKind::Input(i)`. Returns the values written to `Output` ports.
    ///
    /// Panicking wrapper around [`Self::try_run_iteration`] for callers that
    /// treat executor faults as unrecoverable (tests, exploratory tools).
    pub fn run_iteration<B: SensorBus>(&mut self, bus: &mut B, inputs: &[f64]) -> Vec<(u16, f64)> {
        match self.try_run_iteration(bus, inputs) {
            Ok(outputs) => outputs,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Self::run_iteration`]: executor faults come
    /// back as [`ExecError`] with all register state untouched by the failed
    /// iteration (writes only commit on success), so a supervisor can
    /// degrade gracefully instead of unwinding through the loop.
    pub fn try_run_iteration<B: SensorBus>(
        &mut self,
        bus: &mut B,
        inputs: &[f64],
    ) -> Result<Vec<(u16, f64)>, ExecError> {
        let mut outputs = Vec::new();
        for &id in &self.order {
            let node = self.dfg.node(id);
            let v = match node.op {
                OpKind::Input(p) => match inputs.get(p as usize) {
                    Some(&v) => v,
                    None => {
                        self.regs_next.copy_from_slice(&self.regs_current);
                        return Err(ExecError::MissingInput(p));
                    }
                },
                OpKind::Output(p) => {
                    let v = self.values[node.operands[0].0 as usize];
                    outputs.push((p, v));
                    v
                }
                OpKind::SensorRead(p) => {
                    let addr = self.values[node.operands[0].0 as usize];
                    bus.read(p, addr)
                }
                OpKind::ActuatorWrite(p) => {
                    let v = self.values[node.operands[0].0 as usize];
                    bus.write(p, v);
                    v
                }
                OpKind::RegRead(r) => self.regs_current[r as usize],
                OpKind::RegWrite(r) => {
                    let v = self.values[node.operands[0].0 as usize];
                    self.regs_next[r as usize] = v;
                    v
                }
                ref pure => {
                    // Gather operands without allocating.
                    let mut args = [0.0f64; 3];
                    for (i, &o) in node.operands.iter().enumerate() {
                        args[i] = self.values[o.0 as usize];
                    }
                    match pure.eval_pure(&args[..node.operands.len()]) {
                        Some(v) => v,
                        None => {
                            // Roll partially-written next-iteration register
                            // state back so a retry starts clean.
                            self.regs_next.copy_from_slice(&self.regs_current);
                            return Err(ExecError::PureOpFailed(id));
                        }
                    }
                }
            };
            self.values[id.0 as usize] = v;
        }
        // Commit loop-carried registers.
        self.regs_current.copy_from_slice(&self.regs_next);
        self.iterations += 1;
        Ok(outputs)
    }

    /// Warm-up for pipelined kernels: the stage-bridging registers start at
    /// zero, so the first iteration's second half computes garbage (up to
    /// NaN via division by zero). This mirrors the paper's initialisation
    /// phase (Section IV-B): run one iteration to fill the bridges, then
    /// restore the architectural state registers to their initial values.
    pub fn warmup<B: SensorBus>(&mut self, bus: &mut B, inputs: &[f64], restore: &[(u16, f64)]) {
        self.run_iteration(bus, inputs);
        for &(r, v) in restore {
            self.set_reg(r, v);
        }
        self.iterations = 0;
    }

    /// Schedule length in CGRA ticks — the time one iteration occupies.
    pub fn ticks_per_iteration(&self) -> u32 {
        self.schedule.makespan
    }

    /// Wall-clock duration of one iteration at CGRA clock `f_clk`.
    pub fn iteration_seconds(&self, f_clk: f64) -> f64 {
        f64::from(self.schedule.makespan) / f_clk
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Snapshot the architectural run state for checkpointing. Only the
    /// committed register file and the iteration counter are captured: after
    /// a committed iteration `regs_next == regs_current`, and the scratch
    /// value store carries nothing across iterations.
    pub fn state(&self) -> ExecutorState {
        ExecutorState {
            regs: self.regs_current.clone(),
            iterations: self.iterations,
        }
    }

    /// Restore a state captured by [`Self::state`]. Fails (returns `false`)
    /// when the register-file size does not match this executor's kernel.
    pub fn restore(&mut self, state: &ExecutorState) -> bool {
        if state.regs.len() != self.regs_current.len() {
            return false;
        }
        self.regs_current.copy_from_slice(&state.regs);
        self.regs_next.copy_from_slice(&state.regs);
        self.iterations = state.iterations;
        true
    }

    /// The configured context memories (the bitstream-patch artifact).
    pub fn contexts(&self) -> &ContextMemories {
        &self.contexts
    }

    /// The underlying schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The underlying DFG.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }
}

/// Checkpointable architectural state of a [`CgraExecutor`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorState {
    /// Committed loop-carried register file.
    pub regs: Vec<f64>,
    /// Iterations executed.
    pub iterations: u64,
}

/// Reference interpretation of a DFG for one iteration: definition order
/// (operands always precede users), same register/bus semantics. The
/// executor must agree with this exactly.
pub fn interpret_dfg<B: SensorBus>(
    dfg: &Dfg,
    regs: &mut [f64],
    bus: &mut B,
    inputs: &[f64],
) -> Vec<(u16, f64)> {
    let mut values = vec![0.0f64; dfg.len()];
    let mut outputs = Vec::new();
    let mut regs_next = regs.to_vec();
    for (id, node) in dfg.nodes() {
        let v = match node.op {
            OpKind::Input(p) => inputs[p as usize],
            OpKind::Output(p) => {
                let v = values[node.operands[0].0 as usize];
                outputs.push((p, v));
                v
            }
            OpKind::SensorRead(p) => {
                let addr = values[node.operands[0].0 as usize];
                bus.read(p, addr)
            }
            OpKind::ActuatorWrite(p) => {
                let v = values[node.operands[0].0 as usize];
                bus.write(p, v);
                v
            }
            OpKind::RegRead(r) => regs[r as usize],
            OpKind::RegWrite(r) => {
                let v = values[node.operands[0].0 as usize];
                regs_next[r as usize] = v;
                v
            }
            ref pure => {
                let args: Vec<f64> = node
                    .operands
                    .iter()
                    .map(|&o| values[o.0 as usize])
                    .collect();
                pure.eval_pure(&args).expect("pure op")
            }
        };
        values[id.0 as usize] = v;
    }
    regs.copy_from_slice(&regs_next);
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::sched::ListScheduler;

    /// y = sqrt(sensor(0)) * 2 ; actuator(0) <- y ; state += y
    fn kernel() -> Dfg {
        let mut g = Dfg::new();
        let zero = g.konst(0.0);
        let s = g.add(OpKind::SensorRead(0), &[zero]);
        let r = g.add(OpKind::Sqrt, &[s]);
        let two = g.konst(2.0);
        let y = g.add(OpKind::Mul, &[r, two]);
        g.add(OpKind::ActuatorWrite(0), &[y]);
        let acc = g.add(OpKind::RegRead(0), &[]);
        let acc2 = g.add(OpKind::Add, &[acc, y]);
        g.add(OpKind::RegWrite(0), &[acc2]);
        g.add(OpKind::Output(0), &[acc2]);
        g
    }

    fn executor() -> CgraExecutor {
        let g = kernel();
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        CgraExecutor::new(g, s)
    }

    #[test]
    fn single_iteration_value() {
        let mut ex = executor();
        let mut bus = MapBus::default();
        bus.sensors.insert(0, 9.0);
        let out = ex.run_iteration(&mut bus, &[]);
        // sqrt(9)*2 = 6; accumulator = 6.
        assert_eq!(out, vec![(0, 6.0)]);
        assert_eq!(bus.writes, vec![(0, 6.0)]);
    }

    #[test]
    fn registers_carry_across_iterations() {
        let mut ex = executor();
        let mut bus = MapBus::default();
        bus.sensors.insert(0, 4.0);
        for expected in [4.0, 8.0, 12.0] {
            let out = ex.run_iteration(&mut bus, &[]);
            assert_eq!(out[0].1, expected, "accumulator grows by 4 per turn");
        }
        assert_eq!(ex.iterations(), 3);
    }

    #[test]
    fn set_reg_initialises_state() {
        let mut ex = executor();
        ex.set_reg(0, 100.0);
        let mut bus = MapBus::default();
        bus.sensors.insert(0, 1.0);
        let out = ex.run_iteration(&mut bus, &[]);
        assert_eq!(out[0].1, 102.0);
    }

    #[test]
    fn executor_matches_interpreter() {
        // Differential test over several iterations and varying sensors.
        let g = kernel();
        let s = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&g);
        let mut ex = CgraExecutor::new(g.clone(), s);
        let mut regs = vec![0.0f64; g.reg_count() as usize];
        for i in 0..10 {
            let mut bus_a = MapBus::default();
            let mut bus_b = MapBus::default();
            let sensor_val = (i as f64 + 1.0) * 1.7;
            bus_a.sensors.insert(0, sensor_val);
            bus_b.sensors.insert(0, sensor_val);
            let out_a = ex.run_iteration(&mut bus_a, &[]);
            let out_b = interpret_dfg(&g, &mut regs, &mut bus_b, &[]);
            assert_eq!(out_a, out_b, "iteration {i}");
            assert_eq!(bus_a.writes, bus_b.writes);
        }
    }

    #[test]
    fn inputs_feed_input_nodes() {
        let mut g = Dfg::new();
        let a = g.add(OpKind::Input(0), &[]);
        let b = g.add(OpKind::Input(1), &[]);
        let s = g.add(OpKind::Add, &[a, b]);
        g.add(OpKind::Output(0), &[s]);
        let sch = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let mut ex = CgraExecutor::new(g, sch);
        let out = ex.run_iteration(&mut MapBus::default(), &[3.0, 4.0]);
        assert_eq!(out, vec![(0, 7.0)]);
    }

    #[test]
    fn iteration_timing_from_schedule() {
        let ex = executor();
        let ticks = ex.ticks_per_iteration();
        assert!(ticks > 0);
        let dt = ex.iteration_seconds(111e6);
        assert!((dt - f64::from(ticks) / 111e6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "missing input port")]
    fn missing_input_panics() {
        let mut g = Dfg::new();
        let a = g.add(OpKind::Input(0), &[]);
        g.add(OpKind::Output(0), &[a]);
        let sch = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let mut ex = CgraExecutor::new(g, sch);
        ex.run_iteration(&mut MapBus::default(), &[]);
    }
}
