//! The SCAR-style control/data-flow graph (Section III-C).
//!
//! "A code parser converts the program into a Scheduler Application
//! Representation (SCAR) control and data flow graph format, which is
//! processed by the CGRA scheduler."
//!
//! The graph describes *one iteration* of the kernel main loop. Loop-carried
//! state flows through register pairs ([`OpKind::RegRead`] /
//! [`OpKind::RegWrite`]), which keeps the graph acyclic — exactly the trick
//! that also enables the paper's factor-2 loop pipelining (stage-crossing
//! values are demoted to registers, see [`Dfg::pipeline_split`]).

use crate::isa::OpKind;
use serde::{Deserialize, Serialize};

/// Handle of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// One DFG node: an operation plus its operand edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Operation.
    pub op: OpKind,
    /// Operand nodes, in positional order.
    pub operands: Vec<NodeId>,
    /// Pipeline stage tag (0 = first loop half, 1 = second). Only meaningful
    /// before [`Dfg::pipeline_split`]; the paper's manual split corresponds
    /// to assigning these tags in the C source.
    pub stage: u8,
}

/// A dataflow graph for one kernel iteration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dfg {
    nodes: Vec<Node>,
    next_reg: u16,
}

impl Dfg {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with the given operation and operands; returns its id.
    ///
    /// Panics if the operand count does not match the op's arity or an
    /// operand id is out of range (forward references are impossible by
    /// construction, keeping the graph acyclic).
    pub fn add(&mut self, op: OpKind, operands: &[NodeId]) -> NodeId {
        assert_eq!(operands.len(), op.arity(), "arity mismatch for {op:?}");
        for &o in operands {
            assert!(
                (o.0 as usize) < self.nodes.len(),
                "operand {o:?} not yet defined"
            );
        }
        if let OpKind::RegRead(r) | OpKind::RegWrite(r) = op {
            self.next_reg = self.next_reg.max(r + 1);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            operands: operands.to_vec(),
            stage: 0,
        });
        id
    }

    /// Add a node tagged with a pipeline stage.
    pub fn add_staged(&mut self, op: OpKind, operands: &[NodeId], stage: u8) -> NodeId {
        let id = self.add(op, operands);
        self.nodes[id.0 as usize].stage = stage;
        id
    }

    /// Convenience: add a constant.
    pub fn konst(&mut self, v: f64) -> NodeId {
        self.add(OpKind::Const(v), &[])
    }

    /// Allocate a fresh loop-carried register index.
    pub fn alloc_reg(&mut self) -> u16 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes in definition order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of loop-carried registers in use.
    pub fn reg_count(&self) -> u16 {
        self.next_reg
    }

    /// Longest path to any sink, in latency ticks, per node — the classic
    /// list-scheduling priority. Also yields the overall critical-path
    /// length (the lower bound on the schedule).
    pub fn critical_path(&self) -> (Vec<u32>, u32) {
        let n = self.nodes.len();
        // users[i] = nodes that consume i.
        let mut height = vec![0u32; n];
        let mut best = 0u32;
        // Process in reverse definition order: operands always precede users,
        // so a reverse sweep sees all users first.
        for i in (0..n).rev() {
            let lat = self.nodes[i].op.latency();
            let mut h = lat;
            // Height through users.
            for (j, node) in self.nodes.iter().enumerate().skip(i + 1) {
                if node.operands.contains(&NodeId(i as u32)) {
                    h = h.max(lat + height[j]);
                }
            }
            height[i] = h;
            best = best.max(h);
        }
        (height, best)
    }

    /// The paper's factor-2 loop pipelining: every edge from a stage-0 node
    /// to a stage-1 node is replaced by a loop-carried register pair, so the
    /// two halves no longer depend on each other *within* an iteration and
    /// the scheduler can overlap them.
    ///
    /// Semantically, stage 1 then consumes stage 0's values from the
    /// *previous* iteration: "at the end of the loop any results from the
    /// first loop iteration that are needed for the second iteration are
    /// assigned to new variables" (Section IV-B). One iteration of the
    /// transformed kernel completes one stage-0 *and* one stage-1
    /// computation, for different logical revolutions.
    pub fn pipeline_split(&self) -> Dfg {
        let mut out = Dfg::new();
        out.next_reg = self.next_reg;
        // Map old ids to new ids. Nodes are copied in order; stage-crossing
        // edges are rerouted through fresh registers.
        let mut map: Vec<NodeId> = Vec::with_capacity(self.nodes.len());
        // For each stage-0 node consumed by stage 1, a register id.
        let mut bridge: Vec<Option<u16>> = vec![None; self.nodes.len()];
        // First pass: find crossing edges.
        for node in &self.nodes {
            if node.stage == 1 {
                for &o in &node.operands {
                    if self.nodes[o.0 as usize].stage == 0 && bridge[o.0 as usize].is_none() {
                        bridge[o.0 as usize] = Some(out.alloc_reg());
                    }
                }
            }
        }
        // Second pass: emit nodes. Stage-1 reads of bridged values become
        // RegReads (emitted lazily, memoised per bridged source).
        let mut reg_read_of: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut ops: Vec<NodeId> = Vec::with_capacity(node.operands.len());
            for &o in &node.operands {
                let src = &self.nodes[o.0 as usize];
                if node.stage == 1 && src.stage == 0 {
                    let reg = bridge[o.0 as usize].expect("bridge allocated");
                    let rr = *reg_read_of[o.0 as usize]
                        .get_or_insert_with(|| out.add_staged(OpKind::RegRead(reg), &[], 1));
                    ops.push(rr);
                } else {
                    ops.push(map[o.0 as usize]);
                }
            }
            let new_id = out.add_staged(node.op, &ops, node.stage);
            map.push(new_id);
            // If this node bridges, also emit its RegWrite.
            if let Some(reg) = bridge[i] {
                out.add_staged(OpKind::RegWrite(reg), &[new_id], 0);
            }
        }
        out
    }

    /// Count of nodes per op-category — used in reports.
    pub fn op_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<String, usize> = BTreeMap::new();
        for n in &self.nodes {
            let key = match n.op {
                OpKind::Const(_) => "const".into(),
                OpKind::Input(_) => "input".into(),
                OpKind::Output(_) => "output".into(),
                OpKind::SensorRead(_) => "sensor_read".into(),
                OpKind::ActuatorWrite(_) => "actuator_write".into(),
                OpKind::RegRead(_) => "reg_read".into(),
                OpKind::RegWrite(_) => "reg_write".into(),
                other => format!("{other:?}").to_lowercase(),
            };
            *m.entry(key).or_default() += 1;
        }
        m.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a = 2 + 3; b = sqrt(a); out b
    fn tiny() -> Dfg {
        let mut g = Dfg::new();
        let c2 = g.konst(2.0);
        let c3 = g.konst(3.0);
        let a = g.add(OpKind::Add, &[c2, c3]);
        let b = g.add(OpKind::Sqrt, &[a]);
        g.add(OpKind::Output(0), &[b]);
        g
    }

    #[test]
    fn build_and_inspect() {
        let g = tiny();
        assert_eq!(g.len(), 5);
        assert_eq!(g.node(NodeId(2)).op, OpKind::Add);
        assert_eq!(g.node(NodeId(2)).operands, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut g = Dfg::new();
        let c = g.konst(1.0);
        g.add(OpKind::Add, &[c]);
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_reference_rejected() {
        let mut g = Dfg::new();
        g.add(OpKind::Sqrt, &[NodeId(5)]);
    }

    #[test]
    fn critical_path_of_chain() {
        let g = tiny();
        let (_, cp) = g.critical_path();
        // const(1) -> add(4) -> sqrt(16) -> output(1) = 22.
        assert_eq!(cp, 22);
    }

    #[test]
    fn critical_path_of_parallel_branches() {
        let mut g = Dfg::new();
        let a = g.konst(1.0);
        let b = g.konst(2.0);
        let s = g.add(OpKind::Sqrt, &[a]); // 1+16
        let m = g.add(OpKind::Neg, &[b]); // 1+2
        let r = g.add(OpKind::Add, &[s, m]);
        g.add(OpKind::Output(0), &[r]);
        let (_, cp) = g.critical_path();
        // 1 + 16 + 4 + 1 = 22 through the sqrt branch.
        assert_eq!(cp, 22);
    }

    #[test]
    fn register_allocation_is_fresh() {
        let mut g = Dfg::new();
        let r0 = g.alloc_reg();
        let r1 = g.alloc_reg();
        assert_ne!(r0, r1);
        assert_eq!(g.reg_count(), 2);
    }

    #[test]
    fn explicit_reg_ops_bump_counter() {
        let mut g = Dfg::new();
        let v = g.konst(1.0);
        g.add(OpKind::RegWrite(7), &[v]);
        assert_eq!(g.reg_count(), 8);
        assert_eq!(g.alloc_reg(), 8);
    }

    #[test]
    fn pipeline_split_breaks_cross_stage_edges() {
        // stage0: x = in + 1;  stage1: y = x * 2; out y
        let mut g = Dfg::new();
        let i = g.add_staged(OpKind::Input(0), &[], 0);
        let c1 = g.add_staged(OpKind::Const(1.0), &[], 0);
        let x = g.add_staged(OpKind::Add, &[i, c1], 0);
        let c2 = g.add_staged(OpKind::Const(2.0), &[], 1);
        let y = g.add_staged(OpKind::Mul, &[x, c2], 1);
        g.add_staged(OpKind::Output(0), &[y], 1);

        let split = g.pipeline_split();
        // The mul must now read a RegRead, and a RegWrite of x must exist.
        let has_regread = split
            .nodes()
            .any(|(_, n)| matches!(n.op, OpKind::RegRead(_)));
        let has_regwrite = split
            .nodes()
            .any(|(_, n)| matches!(n.op, OpKind::RegWrite(_)));
        assert!(has_regread && has_regwrite);
        // No stage-1 node consumes a stage-0 node anymore.
        for (_, n) in split.nodes() {
            if n.stage == 1 {
                for &o in &n.operands {
                    assert_ne!(split.node(o).stage, 0, "crossing edge survived");
                }
            }
        }
    }

    #[test]
    fn pipeline_split_shortens_critical_path() {
        // Long chain split across stages: stage0 = sqrt chain, stage1 = div
        // chain; splitting should roughly halve the critical path.
        let mut g = Dfg::new();
        let i = g.add_staged(OpKind::Input(0), &[], 0);
        let s1 = g.add_staged(OpKind::Sqrt, &[i], 0);
        let s2 = g.add_staged(OpKind::Sqrt, &[s1], 0);
        let c = g.add_staged(OpKind::Const(2.0), &[], 1);
        let d1 = g.add_staged(OpKind::Div, &[s2, c], 1);
        let d2 = g.add_staged(OpKind::Div, &[d1, c], 1);
        g.add_staged(OpKind::Output(0), &[d2], 1);
        let (_, before) = g.critical_path();
        let (_, after) = g.pipeline_split().critical_path();
        assert!(after < before, "cp {before} -> {after}");
    }

    #[test]
    fn pipeline_split_reuses_one_register_per_source() {
        // One stage-0 value consumed twice in stage 1 → exactly one bridge
        // register and one RegRead.
        let mut g = Dfg::new();
        let i = g.add_staged(OpKind::Input(0), &[], 0);
        let x = g.add_staged(OpKind::Sqrt, &[i], 0);
        let y = g.add_staged(OpKind::Mul, &[x, x], 1);
        g.add_staged(OpKind::Output(0), &[y], 1);
        let split = g.pipeline_split();
        let rr = split
            .nodes()
            .filter(|(_, n)| matches!(n.op, OpKind::RegRead(_)))
            .count();
        let rw = split
            .nodes()
            .filter(|(_, n)| matches!(n.op, OpKind::RegWrite(_)))
            .count();
        assert_eq!(rr, 1);
        assert_eq!(rw, 1);
    }

    #[test]
    fn histogram_counts_ops() {
        let g = tiny();
        let h = g.op_histogram();
        let get = |k: &str| h.iter().find(|(n, _)| n == k).map(|(_, c)| *c).unwrap_or(0);
        assert_eq!(get("const"), 2);
        assert_eq!(get("add"), 1);
        assert_eq!(get("sqrt"), 1);
        assert_eq!(get("output"), 1);
    }
}
