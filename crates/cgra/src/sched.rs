//! The customised resource-constrained list scheduler (Section III-C).
//!
//! "The scheduler is a customised resource-constrained list scheduler.
//! Output of the scheduler are the contents for all context memories."
//!
//! The scheduler performs combined scheduling + binding:
//!
//! * priority = longest latency-weighted path to a sink (critical path);
//! * each PE issues at most one operation per cycle (operators are
//!   internally pipelined, so issue slots, not whole durations, conflict);
//! * moving an operand between PEs costs one cycle per interconnect hop
//!   (the "results can be passed on" routing of Section III-C);
//! * sensor/actuator operations bind only to I/O-capable PEs.
//!
//! Schedule length ("ticks") and the CGRA clock give the maximum real-time
//! revolution frequency — the Section IV-B table this reproduction scores.

use crate::dfg::{Dfg, NodeId};
use crate::grid::{GridConfig, PeId};
use serde::{Deserialize, Serialize};

/// Why a DFG could not be scheduled on a grid. These are input problems
/// (the DFG/grid combination is unusable), not scheduler bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The DFG contains sensor/actuator ops but the grid has no
    /// I/O-capable PEs to bind them to.
    NoIoCapablePe,
    /// The grid has no PEs at all.
    EmptyGrid,
    /// Some nodes never became ready — their operand edges form a cycle,
    /// which a dataflow graph for a feed-forward kernel iteration must not.
    DependencyCycle {
        /// How many nodes were left unscheduled.
        unscheduled: usize,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoIoCapablePe => write!(f, "DFG has I/O ops but grid has no I/O-capable PEs"),
            Self::EmptyGrid => write!(f, "grid has no PEs"),
            Self::DependencyCycle { unscheduled } => write!(
                f,
                "{unscheduled} node(s) never became ready: the DFG has a dependency cycle"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Placement of one DFG node in space and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Executing PE.
    pub pe: PeId,
    /// Issue cycle.
    pub start: u32,
    /// Cycle at which the result is available for same-PE consumers.
    pub finish: u32,
}

/// A complete schedule for one kernel iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// Grid the schedule is bound to.
    pub grid: GridConfig,
    /// Per-node placement, indexed by `NodeId`.
    pub placements: Vec<Placement>,
    /// Total schedule length in CGRA clock ticks ("111 clock ticks").
    pub makespan: u32,
}

impl Schedule {
    /// Placement of a node.
    pub fn placement(&self, id: NodeId) -> Placement {
        self.placements[id.0 as usize]
    }

    /// Maximum real-time revolution frequency this schedule supports at a
    /// given CGRA clock: one kernel iteration must finish within one
    /// revolution, so `f_rev,max = f_clk / makespan` (Section IV-B: 111
    /// ticks at 111 MHz → 1 MHz).
    pub fn max_revolution_frequency(&self, f_clk: f64) -> f64 {
        f_clk / f64::from(self.makespan)
    }

    /// Validate the schedule against its DFG: dependency timing (including
    /// routing hops), one issue per PE per cycle, and I/O placement rules.
    /// Returns a human-readable violation if any.
    pub fn validate(&self, dfg: &Dfg) -> Result<(), String> {
        use std::collections::HashSet;
        if self.placements.len() != dfg.len() {
            return Err(format!(
                "placement count {} != node count {}",
                self.placements.len(),
                dfg.len()
            ));
        }
        let mut issue: HashSet<(PeId, u32)> = HashSet::new();
        for (id, node) in dfg.nodes() {
            let p = self.placement(id);
            if p.finish != p.start + node.op.latency() {
                return Err(format!("{id:?}: finish != start + latency"));
            }
            if node.op.needs_io() && !self.grid.is_io_capable(p.pe) {
                return Err(format!("{id:?}: I/O op on non-I/O PE {:?}", p.pe));
            }
            if !issue.insert((p.pe, p.start)) {
                return Err(format!(
                    "{id:?}: issue-slot conflict on {:?} @ {}",
                    p.pe, p.start
                ));
            }
            for &o in &node.operands {
                let po = self.placement(o);
                let arrive = po.finish + self.grid.distance(po.pe, p.pe);
                if p.start < arrive {
                    return Err(format!(
                        "{id:?} starts at {} before operand {o:?} arrives at {arrive}",
                        p.start
                    ));
                }
            }
            if p.finish > self.makespan {
                return Err(format!("{id:?} finishes after makespan"));
            }
        }
        Ok(())
    }

    /// Per-PE utilisation: fraction of cycles with an issued op.
    pub fn utilisation(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.placements.len() as f64 / (self.makespan as f64 * self.grid.pe_count() as f64)
    }
}

/// Ready-list priority heuristic (the "customised" part of a customised
/// resource-constrained list scheduler — compared in the scheduler
/// ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Longest latency-weighted path to a sink (classic critical-path
    /// priority; the default).
    CriticalPath,
    /// Least slack first: ALAP − ASAP mobility, critical path as the
    /// tie-break.
    Mobility,
    /// DFG definition order — the naive baseline a "customised" scheduler
    /// is measured against.
    SourceOrder,
}

/// The list scheduler.
#[derive(Debug, Clone)]
pub struct ListScheduler {
    grid: GridConfig,
    policy: SchedulerPolicy,
}

impl ListScheduler {
    /// Scheduler for a given grid with the default critical-path priority.
    pub fn new(grid: GridConfig) -> Self {
        Self {
            grid,
            policy: SchedulerPolicy::CriticalPath,
        }
    }

    /// Scheduler with an explicit priority policy.
    pub fn with_policy(grid: GridConfig, policy: SchedulerPolicy) -> Self {
        Self { grid, policy }
    }

    /// Per-node priority keys (higher = scheduled first among ready nodes).
    fn priorities(&self, dfg: &Dfg) -> Vec<(i64, i64)> {
        let (heights, cp) = dfg.critical_path();
        match self.policy {
            SchedulerPolicy::CriticalPath => heights.iter().map(|&h| (i64::from(h), 0)).collect(),
            SchedulerPolicy::Mobility => {
                // ASAP: longest latency-weighted path from sources.
                let mut asap = vec![0u32; dfg.len()];
                for (id, node) in dfg.nodes() {
                    let mut start = 0;
                    for &o in &node.operands {
                        let on = dfg.node(o);
                        start = start.max(asap[o.0 as usize] + on.op.latency());
                    }
                    asap[id.0 as usize] = start;
                }
                heights
                    .iter()
                    .zip(&asap)
                    .map(|(&h, &a)| {
                        let alap = cp - h; // latest start preserving cp
                        let mobility = i64::from(alap) - i64::from(a);
                        (-mobility, i64::from(h))
                    })
                    .collect()
            }
            SchedulerPolicy::SourceOrder => (0..dfg.len()).map(|i| (-(i as i64), 0)).collect(),
        }
    }

    /// Schedule a DFG, panicking on an unschedulable input.
    ///
    /// Convenience wrapper over [`ListScheduler::try_schedule`] for the
    /// common case where the DFG comes from the kernel generator and the
    /// grid from a validated configuration, so the error cases are
    /// unreachable by construction.
    pub fn schedule(&self, dfg: &Dfg) -> Schedule {
        self.try_schedule(dfg)
            .unwrap_or_else(|e| panic!("unschedulable DFG: {e}"))
    }

    /// Schedule a DFG, reporting unschedulable inputs as a typed
    /// [`ScheduleError`] (I/O ops with no I/O-capable PE, an empty grid, a
    /// dependency cycle) instead of panicking.
    pub fn try_schedule(&self, dfg: &Dfg) -> Result<Schedule, ScheduleError> {
        let n = dfg.len();
        if self.grid.pe_count() == 0 && n > 0 {
            return Err(ScheduleError::EmptyGrid);
        }
        let heights = self.priorities(dfg);

        // users count for ready-set maintenance.
        let mut unscheduled_operands: Vec<usize> =
            dfg.nodes().map(|(_, node)| node.operands.len()).collect();
        let mut users: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (id, node) in dfg.nodes() {
            for &o in &node.operands {
                users[o.0 as usize].push(id);
            }
        }

        let mut ready: Vec<NodeId> = dfg
            .nodes()
            .filter(|(_, node)| node.operands.is_empty())
            .map(|(id, _)| id)
            .collect();

        let mut placements: Vec<Option<Placement>> = vec![None; n];
        // Issue occupancy per PE as bitsets over cycles, grown on demand.
        let pe_count = self.grid.pe_count();
        let mut busy: Vec<Vec<bool>> = vec![Vec::new(); pe_count];
        let mut load: Vec<u32> = vec![0; pe_count];
        let mut makespan = 0u32;

        let io_pes = self.grid.io_pes();

        while let Some(pick_idx) = ready
            .iter()
            .enumerate()
            .max_by_key(|(_, id)| heights[id.0 as usize])
            .map(|(i, _)| i)
        {
            let id = ready.swap_remove(pick_idx);
            let node = dfg.node(id);

            // Candidate PEs.
            let candidates: &[PeId] = if node.op.needs_io() {
                if io_pes.is_empty() {
                    return Err(ScheduleError::NoIoCapablePe);
                }
                &io_pes
            } else {
                // All PEs; allocate a scratch list lazily only once.
                // (grid.pes() is cheap.)
                &[]
            };

            let mut best: Option<(u32, u32, PeId)> = None; // (start, load, pe)
            let consider =
                |pe: PeId, busy: &mut Vec<Vec<bool>>, best: &mut Option<(u32, u32, PeId)>| {
                    // Earliest data-ready cycle on this PE. A node enters
                    // the ready list only once every operand is placed, so
                    // the lookup cannot miss.
                    let mut earliest = 0u32;
                    for &o in &node.operands {
                        let po = placements[o.0 as usize].expect("operand scheduled");
                        earliest = earliest.max(po.finish + self.grid.distance(po.pe, pe));
                    }
                    // First free issue slot ≥ earliest.
                    let lane = &mut busy[pe.0 as usize];
                    let mut t = earliest;
                    loop {
                        if (t as usize) >= lane.len() || !lane[t as usize] {
                            break;
                        }
                        t += 1;
                    }
                    let cand = (t, load[pe.0 as usize], pe);
                    if best.is_none_or(|b| (cand.0, cand.1, cand.2 .0) < (b.0, b.1, b.2 .0)) {
                        *best = Some(cand);
                    }
                };

            if node.op.needs_io() {
                for &pe in candidates {
                    consider(pe, &mut busy, &mut best);
                }
            } else {
                for pe in self.grid.pes() {
                    consider(pe, &mut busy, &mut best);
                }
            }

            // The grid was checked non-empty (and the I/O PE list non-empty
            // for I/O ops) above, so some candidate was considered.
            let (start, _, pe) = best.expect("at least one candidate PE");
            let lane = &mut busy[pe.0 as usize];
            if lane.len() <= start as usize {
                lane.resize(start as usize + 1, false);
            }
            lane[start as usize] = true;
            load[pe.0 as usize] += 1;
            let finish = start + node.op.latency();
            placements[id.0 as usize] = Some(Placement { pe, start, finish });
            makespan = makespan.max(finish);

            for &u in &users[id.0 as usize] {
                let slot = &mut unscheduled_operands[u.0 as usize];
                *slot -= 1;
                if *slot == 0 {
                    ready.push(u);
                }
            }
        }

        // Nodes on an operand cycle never enter the ready list and stay
        // unplaced — surface that as a typed error, not a corrupt schedule.
        let unscheduled = placements.iter().filter(|p| p.is_none()).count();
        if unscheduled > 0 {
            return Err(ScheduleError::DependencyCycle { unscheduled });
        }
        let placements: Vec<Placement> = placements.into_iter().flatten().collect();
        Ok(Schedule {
            grid: self.grid,
            placements,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::OpKind;

    fn chain(len: usize) -> Dfg {
        let mut g = Dfg::new();
        let mut v = g.konst(2.0);
        for _ in 0..len {
            v = g.add(OpKind::Sqrt, &[v]);
        }
        g.add(OpKind::Output(0), &[v]);
        g
    }

    #[test]
    fn chain_schedule_is_serial() {
        let g = chain(4);
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        s.validate(&g).unwrap();
        let (_, cp) = g.critical_path();
        // A pure chain cannot beat its critical path; with zero routing it
        // matches it exactly (all ops can sit on one PE).
        assert_eq!(s.makespan, cp);
    }

    #[test]
    fn independent_ops_run_in_parallel() {
        // 9 independent sqrt chains on a 3x3 grid: makespan ≈ one chain.
        let mut g = Dfg::new();
        for i in 0..9 {
            let c = g.konst(f64::from(i));
            let s1 = g.add(OpKind::Sqrt, &[c]);
            g.add(OpKind::Output(i as u16), &[s1]);
        }
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        s.validate(&g).unwrap();
        // Serial execution would be ~9*(1+16+1); parallel must be far less.
        assert!(s.makespan <= 16 + 6, "makespan = {}", s.makespan);
    }

    #[test]
    fn issue_slots_are_exclusive() {
        // Many 1-latency consts: a kxk grid can issue at most k*k per cycle.
        let mut g = Dfg::new();
        for _ in 0..40 {
            g.konst(1.0);
        }
        let s = ListScheduler::new(GridConfig::mesh(2, 2)).schedule(&g);
        s.validate(&g).unwrap();
        // 40 consts on 4 PEs -> at least 10 cycles + latency.
        assert!(s.makespan >= 10, "makespan = {}", s.makespan);
    }

    #[test]
    fn io_ops_land_on_io_column() {
        let mut g = Dfg::new();
        let a = g.konst(0.0);
        let r = g.add(OpKind::SensorRead(0), &[a]);
        g.add(OpKind::ActuatorWrite(0), &[r]);
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        s.validate(&g).unwrap();
        for (id, node) in g.nodes() {
            if node.op.needs_io() {
                assert!(s.grid.is_io_capable(s.placement(id).pe));
            }
        }
    }

    #[test]
    fn routing_distance_delays_consumers() {
        // Force spatial spread: 30 parallel consts fill the 2x2 grid, then a
        // final sum tree must pay hop latency. Mostly a validate() check.
        let mut g = Dfg::new();
        let mut vals: Vec<NodeId> = (0..16).map(|i| g.konst(f64::from(i))).collect();
        while vals.len() > 1 {
            let mut next = Vec::new();
            for pair in vals.chunks(2) {
                if pair.len() == 2 {
                    next.push(g.add(OpKind::Add, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            vals = next;
        }
        g.add(OpKind::Output(0), &[vals[0]]);
        let s = ListScheduler::new(GridConfig::mesh(2, 2)).schedule(&g);
        s.validate(&g).unwrap();
    }

    #[test]
    fn bigger_grid_never_slower() {
        let g = {
            // A mix of parallel work.
            let mut g = Dfg::new();
            let mut outs = Vec::new();
            for i in 0..12 {
                let c = g.konst(f64::from(i) + 1.0);
                let d = g.konst(2.0);
                let m = g.add(OpKind::Mul, &[c, d]);
                let q = g.add(OpKind::Div, &[m, d]);
                outs.push(q);
            }
            let mut acc = outs[0];
            for &o in &outs[1..] {
                acc = g.add(OpKind::Add, &[acc, o]);
            }
            g.add(OpKind::Output(0), &[acc]);
            g
        };
        let s2 = ListScheduler::new(GridConfig::mesh(2, 2)).schedule(&g);
        let s5 = ListScheduler::new(GridConfig::mesh_5x5()).schedule(&g);
        s2.validate(&g).unwrap();
        s5.validate(&g).unwrap();
        // Allow a small tolerance: greedy list scheduling is not monotone in
        // general, but must be close.
        assert!(
            s5.makespan <= s2.makespan + 4,
            "5x5 {} vs 2x2 {}",
            s5.makespan,
            s2.makespan
        );
    }

    #[test]
    fn pipelined_dfg_schedules_shorter() {
        // Two long dependent stages; after pipeline_split the halves overlap.
        let mut g = Dfg::new();
        let i = g.add_staged(OpKind::Input(0), &[], 0);
        let mut x = i;
        for _ in 0..3 {
            x = g.add_staged(OpKind::Sqrt, &[x], 0);
        }
        let mut y = x;
        for _ in 0..3 {
            y = g.add_staged(OpKind::Sqrt, &[y], 1);
        }
        g.add_staged(OpKind::Output(0), &[y], 1);

        let sched = ListScheduler::new(GridConfig::mesh_3x3());
        let plain = sched.schedule(&g);
        let split_dfg = g.pipeline_split();
        let split = sched.schedule(&split_dfg);
        plain.validate(&g).unwrap();
        split.validate(&split_dfg).unwrap();
        assert!(
            split.makespan < plain.makespan,
            "pipelining must shorten: {} -> {}",
            plain.makespan,
            split.makespan
        );
    }

    #[test]
    fn utilisation_bounded() {
        let g = chain(3);
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let u = s.utilisation();
        assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn validate_catches_tampering() {
        let g = chain(2);
        let mut s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        s.placements[1].start = 0; // sqrt issued before const finished
        s.placements[1].finish = s.placements[1].start + 16;
        assert!(s.validate(&g).is_err());
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        // Policies differ in quality, never in correctness.
        let mut g = Dfg::new();
        let mut outs = Vec::new();
        for i in 0..10 {
            let a = g.konst(f64::from(i));
            let b = g.konst(2.0);
            let m = g.add(OpKind::Mul, &[a, b]);
            let q = g.add(OpKind::Sqrt, &[m]);
            outs.push(q);
        }
        let mut acc = outs[0];
        for &o in &outs[1..] {
            acc = g.add(OpKind::Add, &[acc, o]);
        }
        g.add(OpKind::Output(0), &[acc]);

        let grid = GridConfig::mesh_3x3();
        let mut spans = Vec::new();
        for policy in [
            SchedulerPolicy::CriticalPath,
            SchedulerPolicy::Mobility,
            SchedulerPolicy::SourceOrder,
        ] {
            let s = ListScheduler::with_policy(grid, policy).schedule(&g);
            s.validate(&g).unwrap_or_else(|e| panic!("{policy:?}: {e}"));
            spans.push((policy, s.makespan));
        }
        // The informed policies must not lose to the naive baseline.
        let get = |p: SchedulerPolicy| spans.iter().find(|(q, _)| *q == p).unwrap().1;
        assert!(get(SchedulerPolicy::CriticalPath) <= get(SchedulerPolicy::SourceOrder));
        assert!(get(SchedulerPolicy::Mobility) <= get(SchedulerPolicy::SourceOrder) + 2);
    }

    #[test]
    fn unschedulable_inputs_are_typed_errors() {
        // I/O op on a grid whose I/O column has been configured away.
        let mut g = Dfg::new();
        let a = g.konst(0.0);
        let r = g.add(OpKind::SensorRead(0), &[a]);
        g.add(OpKind::ActuatorWrite(0), &[r]);
        let mut grid = GridConfig::mesh_3x3();
        grid.io_columns = 0;
        assert!(matches!(
            ListScheduler::new(grid).try_schedule(&g),
            Err(ScheduleError::NoIoCapablePe)
        ));
        // A grid with no PEs at all (constructible via the public fields
        // or deserialization, which skip the mesh() constructor's check).
        let empty = GridConfig {
            rows: 0,
            cols: 0,
            ..GridConfig::mesh_3x3()
        };
        assert!(matches!(
            ListScheduler::new(empty).try_schedule(&chain(1)),
            Err(ScheduleError::EmptyGrid)
        ));
        // The happy path through try_schedule matches schedule().
        let ok = ListScheduler::new(GridConfig::mesh_3x3())
            .try_schedule(&chain(3))
            .unwrap();
        ok.validate(&chain(3)).unwrap();
    }

    #[test]
    fn max_rev_frequency_formula() {
        let g = chain(1);
        let s = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        let f = s.max_revolution_frequency(111e6);
        assert!((f - 111e6 / f64::from(s.makespan)).abs() < 1e-6);
    }
}
