//! C-subset frontend (Section III-C): "Programming of the CGRA is done
//! using the C programming language. A code parser converts the program into
//! a SCAR control and data flow graph format."
//!
//! The accepted subset is exactly what the beam-model kernel needs:
//!
//! ```c
//! static float gamma_r = 1.2258f;      // loop-carried state
//! static float dt = 0.0f;
//!
//! for (;;) {                            // the per-revolution main loop
//!     float t = read_sensor(0, 0.0f);   // SensorAccess read
//!     float b = sqrtf(1.0f - 1.0f / (gamma_r * gamma_r));
//!     pipeline_stage();                 // manual factor-2 loop pipelining
//!     dt = dt + t * b;                  // assignment to statics carries
//!     write_actuator(0, dt);            // SensorAccess write
//! }
//! ```
//!
//! Supported: `float` locals, assignment, `+ - * /`, unary `-`, parentheses,
//! `< <=` comparisons, calls `sqrtf fabsf floorf fminf fmaxf select
//! read_sensor write_actuator pipeline_stage output`, float literals with
//! optional `f` suffix. The parser is a classic recursive-descent with
//! precedence climbing; codegen is direct SSA into [`Dfg`].

use crate::dfg::{Dfg, NodeId};
use crate::isa::OpKind;
use std::collections::HashMap;

/// A compiled kernel: the DFG plus the initial values of the loop-carried
/// registers that `static` initialisers demand.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The dataflow graph of one loop iteration.
    pub dfg: Dfg,
    /// `(register, initial value)` pairs from `static float x = init;`.
    pub reg_inits: Vec<(u16, f64)>,
    /// Static variable name → register index (for tests/inspection).
    pub statics: Vec<(String, u16)>,
}

/// Parse error with line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Compile a kernel source into a [`Kernel`].
pub fn compile(source: &str) -> Result<Kernel, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Punct(&'static str),
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let (mut line, mut col) = (1usize, 1usize);
    let err = |m: &str, line: usize, col: usize| ParseError {
        message: m.to_string(),
        line,
        col,
    };
    while i < bytes.len() {
        let c = bytes[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
            i += 2;
            col += 2;
            while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                if bytes[i] == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                i += 1;
            }
            if i + 1 >= bytes.len() {
                return Err(err("unterminated block comment", line, col));
            }
            i += 2;
            col += 2;
            continue;
        }
        let (tline, tcol) = (line, col);
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
                col += 1;
            }
            let s: String = bytes[start..i].iter().collect();
            out.push(Token {
                tok: Tok::Ident(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-') && matches!(bytes[i - 1], 'e' | 'E')))
            {
                i += 1;
                col += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            // Optional f/F suffix.
            if i < bytes.len() && (bytes[i] == 'f' || bytes[i] == 'F') {
                i += 1;
                col += 1;
            }
            let v: f64 = text
                .parse()
                .map_err(|_| err(&format!("bad number literal '{text}'"), tline, tcol))?;
            out.push(Token {
                tok: Tok::Number(v),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Punctuation (two-char first).
        if c == '<' && i + 1 < bytes.len() && bytes[i + 1] == '=' {
            out.push(Token {
                tok: Tok::Punct("<="),
                line: tline,
                col: tcol,
            });
            i += 2;
            col += 2;
            continue;
        }
        let punct: Option<&'static str> = match c {
            '(' => Some("("),
            ')' => Some(")"),
            '{' => Some("{"),
            '}' => Some("}"),
            ';' => Some(";"),
            ',' => Some(","),
            '=' => Some("="),
            '+' => Some("+"),
            '-' => Some("-"),
            '*' => Some("*"),
            '/' => Some("/"),
            '<' => Some("<"),
            _ => None,
        };
        match punct {
            Some(p) => {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line: tline,
                    col: tcol,
                });
                i += 1;
                col += 1;
            }
            None => return Err(err(&format!("unexpected character '{c}'"), tline, tcol)),
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

struct LoopCtx {
    dfg: Dfg,
    /// current SSA value of every visible name.
    env: HashMap<String, NodeId>,
    /// static name -> register.
    statics: HashMap<String, u16>,
    /// statics assigned in the loop (need a RegWrite), with assignment stage.
    dirty: HashMap<String, u8>,
    /// memoised RegRead per (static, stage). Per-stage memoisation is what
    /// keeps a static's update recurrence inside one pipeline stage (II = 1)
    /// while other stages see the previous iteration's value — the paper's
    /// "results … are assigned to new variables" trick.
    reads: HashMap<(String, u8), NodeId>,
    stage: u8,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn error_here(&self, msg: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                message: msg.to_string(),
                line: t.line,
                col: t.col,
            },
            None => ParseError {
                message: format!("{msg} (at end of input)"),
                line: 0,
                col: 0,
            },
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Punct(q), ..
            }) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error_here(&format!("expected '{p}'"))),
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Punct(q), .. }) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.error_here("expected identifier")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error_here(&format!("expected '{kw}'"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Ident(s), .. }) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_number(&mut self) -> Result<f64, ParseError> {
        let neg = self.try_punct("-");
        match self.peek() {
            Some(Token {
                tok: Tok::Number(v),
                ..
            }) => {
                let v = *v;
                self.pos += 1;
                Ok(if neg { -v } else { v })
            }
            _ => Err(self.error_here("expected number")),
        }
    }

    fn eat_int(&mut self) -> Result<u16, ParseError> {
        let v = self.eat_number()?;
        if v < 0.0 || v.fract() != 0.0 || v > f64::from(u16::MAX) {
            return Err(self.error_here("expected small non-negative integer"));
        }
        Ok(v as u16)
    }

    fn program(&mut self) -> Result<Kernel, ParseError> {
        let mut ctx = LoopCtx {
            dfg: Dfg::new(),
            env: HashMap::new(),
            statics: HashMap::new(),
            dirty: HashMap::new(),
            reads: HashMap::new(),
            stage: 0,
        };
        let mut reg_inits = Vec::new();
        let mut saw_loop = false;

        while self.peek().is_some() {
            if self.try_keyword("static") {
                self.eat_keyword("float")?;
                let name = self.eat_ident()?;
                let mut init = 0.0;
                if self.try_punct("=") {
                    init = self.eat_number()?;
                }
                self.eat_punct(";")?;
                if ctx.statics.contains_key(&name) {
                    return Err(self.error_here(&format!("duplicate static '{name}'")));
                }
                let reg = ctx.dfg.alloc_reg();
                ctx.statics.insert(name, reg);
                reg_inits.push((reg, init));
            } else if self.try_keyword("for") {
                if saw_loop {
                    return Err(self.error_here("only one main loop is allowed"));
                }
                saw_loop = true;
                self.eat_punct("(")?;
                self.eat_punct(";")?;
                self.eat_punct(";")?;
                self.eat_punct(")")?;
                self.eat_punct("{")?;
                while !self.try_punct("}") {
                    if self.peek().is_none() {
                        return Err(self.error_here("unterminated loop body"));
                    }
                    self.statement(&mut ctx)?;
                }
            } else {
                return Err(self.error_here("expected 'static' declaration or 'for (;;)' loop"));
            }
        }
        if !saw_loop {
            return Err(ParseError {
                message: "kernel has no 'for (;;)' main loop".into(),
                line: 0,
                col: 0,
            });
        }

        // Emit RegWrites for statics assigned in the loop.
        let mut dirty: Vec<(String, u8)> = ctx.dirty.iter().map(|(k, v)| (k.clone(), *v)).collect();
        dirty.sort();
        for (name, stage) in dirty {
            let reg = ctx.statics[&name];
            let val = ctx.env[&name];
            ctx.dfg.add_staged(OpKind::RegWrite(reg), &[val], stage);
        }

        let mut statics: Vec<(String, u16)> = ctx.statics.into_iter().collect();
        statics.sort();
        Ok(Kernel {
            dfg: ctx.dfg,
            reg_inits,
            statics,
        })
    }

    fn statement(&mut self, ctx: &mut LoopCtx) -> Result<(), ParseError> {
        if self.try_keyword("float") {
            let name = self.eat_ident()?;
            self.eat_punct("=")?;
            let v = self.expr(ctx)?;
            self.eat_punct(";")?;
            if ctx.statics.contains_key(&name) {
                return Err(self.error_here(&format!("'{name}' shadows a static")));
            }
            ctx.env.insert(name, v);
            return Ok(());
        }
        if self.try_keyword("write_actuator") {
            self.eat_punct("(")?;
            let port = self.eat_int()?;
            self.eat_punct(",")?;
            let v = self.expr(ctx)?;
            self.eat_punct(")")?;
            self.eat_punct(";")?;
            let stage = ctx.stage;
            ctx.dfg.add_staged(OpKind::ActuatorWrite(port), &[v], stage);
            return Ok(());
        }
        if self.try_keyword("output") {
            self.eat_punct("(")?;
            let port = self.eat_int()?;
            self.eat_punct(",")?;
            let v = self.expr(ctx)?;
            self.eat_punct(")")?;
            self.eat_punct(";")?;
            let stage = ctx.stage;
            ctx.dfg.add_staged(OpKind::Output(port), &[v], stage);
            return Ok(());
        }
        if self.try_keyword("pipeline_stage") {
            self.eat_punct("(")?;
            self.eat_punct(")")?;
            self.eat_punct(";")?;
            if ctx.stage >= 1 {
                return Err(self.error_here("only factor-2 pipelining is supported"));
            }
            ctx.stage = 1;
            return Ok(());
        }
        // Assignment: ident = expr ;
        let name = self.eat_ident()?;
        self.eat_punct("=")?;
        let v = self.expr(ctx)?;
        self.eat_punct(";")?;
        if ctx.statics.contains_key(&name) {
            ctx.dirty.insert(name.clone(), ctx.stage);
            ctx.env.insert(name, v);
        } else if let Some(slot) = ctx.env.get_mut(&name) {
            *slot = v;
        } else {
            return Err(self.error_here(&format!("assignment to undeclared '{name}'")));
        }
        Ok(())
    }

    // Precedence: cmp < addsub < muldiv < unary < primary.
    fn expr(&mut self, ctx: &mut LoopCtx) -> Result<NodeId, ParseError> {
        let lhs = self.addsub(ctx)?;
        if self.try_punct("<=") {
            let rhs = self.addsub(ctx)?;
            let stage = ctx.stage;
            return Ok(ctx.dfg.add_staged(OpKind::CmpLe, &[lhs, rhs], stage));
        }
        if self.try_punct("<") {
            let rhs = self.addsub(ctx)?;
            let stage = ctx.stage;
            return Ok(ctx.dfg.add_staged(OpKind::CmpLt, &[lhs, rhs], stage));
        }
        Ok(lhs)
    }

    fn addsub(&mut self, ctx: &mut LoopCtx) -> Result<NodeId, ParseError> {
        let mut lhs = self.muldiv(ctx)?;
        loop {
            if self.try_punct("+") {
                let rhs = self.muldiv(ctx)?;
                let stage = ctx.stage;
                lhs = ctx.dfg.add_staged(OpKind::Add, &[lhs, rhs], stage);
            } else if self.try_punct("-") {
                let rhs = self.muldiv(ctx)?;
                let stage = ctx.stage;
                lhs = ctx.dfg.add_staged(OpKind::Sub, &[lhs, rhs], stage);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn muldiv(&mut self, ctx: &mut LoopCtx) -> Result<NodeId, ParseError> {
        let mut lhs = self.unary(ctx)?;
        loop {
            if self.try_punct("*") {
                let rhs = self.unary(ctx)?;
                let stage = ctx.stage;
                lhs = ctx.dfg.add_staged(OpKind::Mul, &[lhs, rhs], stage);
            } else if self.try_punct("/") {
                let rhs = self.unary(ctx)?;
                let stage = ctx.stage;
                lhs = ctx.dfg.add_staged(OpKind::Div, &[lhs, rhs], stage);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary(&mut self, ctx: &mut LoopCtx) -> Result<NodeId, ParseError> {
        if self.try_punct("-") {
            let v = self.unary(ctx)?;
            let stage = ctx.stage;
            return Ok(ctx.dfg.add_staged(OpKind::Neg, &[v], stage));
        }
        self.primary(ctx)
    }

    fn primary(&mut self, ctx: &mut LoopCtx) -> Result<NodeId, ParseError> {
        if self.try_punct("(") {
            let v = self.expr(ctx)?;
            self.eat_punct(")")?;
            return Ok(v);
        }
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Number(v),
                ..
            }) => {
                self.pos += 1;
                let stage = ctx.stage;
                Ok(ctx.dfg.add_staged(OpKind::Const(v), &[], stage))
            }
            Some(Token {
                tok: Tok::Ident(name),
                ..
            }) => {
                self.pos += 1;
                // Call?
                if self.try_punct("(") {
                    return self.call(ctx, &name);
                }
                // Variable.
                if let Some(&v) = ctx.env.get(&name) {
                    return Ok(v);
                }
                if let Some(&reg) = ctx.statics.get(&name) {
                    let stage = ctx.stage;
                    let key = (name.clone(), stage);
                    let id = match ctx.reads.get(&key) {
                        Some(&id) => id,
                        None => {
                            let id = ctx.dfg.add_staged(OpKind::RegRead(reg), &[], stage);
                            ctx.reads.insert(key, id);
                            id
                        }
                    };
                    // Deliberately NOT cached in env: a later read in another
                    // stage must get its own RegRead so stage-crossing only
                    // happens through explicit assignments.
                    return Ok(id);
                }
                Err(self.error_here(&format!("unknown identifier '{name}'")))
            }
            _ => Err(self.error_here("expected expression")),
        }
    }

    fn call(&mut self, ctx: &mut LoopCtx, name: &str) -> Result<NodeId, ParseError> {
        let stage = ctx.stage;
        let node = match name {
            "sqrtf" | "sqrt" => {
                let a = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::Sqrt, &[a], stage)
            }
            "fabsf" | "fabs" => {
                let a = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::Abs, &[a], stage)
            }
            "floorf" | "floor" => {
                let a = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::Floor, &[a], stage)
            }
            "fminf" | "fmin" => {
                let a = self.expr(ctx)?;
                self.eat_punct(",")?;
                let b = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::Min, &[a, b], stage)
            }
            "fmaxf" | "fmax" => {
                let a = self.expr(ctx)?;
                self.eat_punct(",")?;
                let b = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::Max, &[a, b], stage)
            }
            "select" => {
                let c = self.expr(ctx)?;
                self.eat_punct(",")?;
                let a = self.expr(ctx)?;
                self.eat_punct(",")?;
                let b = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::Select, &[c, a, b], stage)
            }
            "read_sensor" => {
                let port = self.eat_int()?;
                self.eat_punct(",")?;
                let addr = self.expr(ctx)?;
                ctx.dfg.add_staged(OpKind::SensorRead(port), &[addr], stage)
            }
            other => return Err(self.error_here(&format!("unknown function '{other}'"))),
        };
        self.eat_punct(")")?;
        Ok(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{interpret_dfg, MapBus};

    #[test]
    fn minimal_kernel_compiles() {
        let k = compile(
            "static float x = 1.5f;\n\
             for (;;) { x = x + 1.0f; write_actuator(0, x); }",
        )
        .unwrap();
        assert_eq!(k.reg_inits, vec![(0, 1.5)]);
        assert_eq!(k.statics, vec![("x".to_string(), 0)]);
        assert!(k.dfg.len() >= 4);
    }

    #[test]
    fn compiled_kernel_executes_correctly() {
        let k = compile(
            "static float acc = 0.0f;\n\
             for (;;) {\n\
               float v = read_sensor(3, 0.0f);\n\
               acc = acc + sqrtf(v) * 2.0f;\n\
               write_actuator(1, acc);\n\
             }",
        )
        .unwrap();
        let mut regs = vec![0.0f64; k.dfg.reg_count() as usize];
        for (r, v) in &k.reg_inits {
            regs[*r as usize] = *v;
        }
        let mut bus = MapBus::default();
        bus.set_sensor(3, 16.0);
        interpret_dfg(&k.dfg, &mut regs, &mut bus, &[]);
        interpret_dfg(&k.dfg, &mut regs, &mut bus, &[]);
        // acc = 8 then 16.
        assert_eq!(bus.writes, vec![(1, 8.0), (1, 16.0)]);
    }

    #[test]
    fn precedence_and_parens() {
        let k = compile(
            "for (;;) { float y = 2.0f + 3.0f * 4.0f - (1.0f + 1.0f) / 2.0f; output(0, y); }",
        )
        .unwrap();
        let mut regs = vec![];
        let out = interpret_dfg(&k.dfg, &mut regs, &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, 13.0)]);
    }

    #[test]
    fn unary_minus_and_comparison() {
        let k = compile("for (;;) { float y = select(1.0f < 2.0f, -3.0f, 4.0f); output(0, y); }")
            .unwrap();
        let out = interpret_dfg(&k.dfg, &mut [], &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, -3.0)]);
    }

    #[test]
    fn math_builtins() {
        let k = compile(
            "for (;;) { output(0, fminf(floorf(2.9f), fabsf(-5.0f))); output(1, fmaxf(1.0f, 2.0f)); }",
        )
        .unwrap();
        let out = interpret_dfg(&k.dfg, &mut [], &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, 2.0), (1, 2.0)]);
    }

    #[test]
    fn pipeline_stage_tags_nodes() {
        let k = compile(
            "static float s = 0.0f;\n\
             for (;;) {\n\
               float a = read_sensor(0, 0.0f);\n\
               pipeline_stage();\n\
               s = s + a;\n\
               write_actuator(0, s);\n\
             }",
        )
        .unwrap();
        let stages: Vec<u8> = k.dfg.nodes().map(|(_, n)| n.stage).collect();
        assert!(stages.contains(&0));
        assert!(stages.contains(&1));
        // The split graph must validate the stage separation.
        let split = k.dfg.pipeline_split();
        for (_, n) in split.nodes() {
            if n.stage == 1 {
                for &o in &n.operands {
                    assert_ne!(split.node(o).stage, 0);
                }
            }
        }
    }

    #[test]
    fn scientific_notation_literals() {
        let k = compile("for (;;) { output(0, 2.5e-3f + 1e2f); }").unwrap();
        let out = interpret_dfg(&k.dfg, &mut [], &mut MapBus::default(), &[]);
        assert!((out[0].1 - 100.0025).abs() < 1e-12);
    }

    #[test]
    fn comments_are_ignored() {
        let k = compile(
            "// line comment\n/* block\ncomment */\nfor (;;) { output(0, 1.0f); // end\n }",
        )
        .unwrap();
        assert_eq!(k.dfg.len(), 2);
    }

    #[test]
    fn error_unknown_identifier() {
        let e = compile("for (;;) { output(0, nope); }").unwrap_err();
        assert!(e.message.contains("unknown identifier"), "{e}");
        assert!(e.line >= 1);
    }

    #[test]
    fn error_assignment_to_undeclared() {
        let e = compile("for (;;) { y = 1.0f; }").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn error_missing_loop() {
        let e = compile("static float x = 1.0f;").unwrap_err();
        assert!(e.message.contains("no 'for (;;)'"), "{e}");
    }

    #[test]
    fn error_double_pipeline_stage() {
        let e = compile("for (;;) { pipeline_stage(); pipeline_stage(); }").unwrap_err();
        assert!(e.message.contains("factor-2"), "{e}");
    }

    #[test]
    fn error_duplicate_static() {
        let e = compile("static float x = 1.0f; static float x = 2.0f; for(;;){}").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn error_unknown_function() {
        let e = compile("for (;;) { output(0, tanhf(1.0f)); }").unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn statics_without_assignment_need_no_regwrite() {
        let k = compile("static float c = 3.0f; for (;;) { output(0, c * 2.0f); }").unwrap();
        let writes = k
            .dfg
            .nodes()
            .filter(|(_, n)| matches!(n.op, OpKind::RegWrite(_)))
            .count();
        assert_eq!(writes, 0);
        let mut regs = vec![3.0f64];
        let out = interpret_dfg(&k.dfg, &mut regs, &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, 6.0)]);
    }

    #[test]
    fn local_reassignment_is_ssa() {
        let k = compile("for (;;) { float a = 1.0f; a = a + 1.0f; a = a * 3.0f; output(0, a); }")
            .unwrap();
        let out = interpret_dfg(&k.dfg, &mut [], &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, 6.0)]);
    }
}
