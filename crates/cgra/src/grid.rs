//! The PE array: grid geometry and interconnect topology.
//!
//! "Each PE is connected to its surrounding neighbours through a
//! configurable interconnect. Results of operations can be passed on,
//! allowing the routing of operands where no direct connection exists. The
//! framework design … allow[s] an arbitrary number of PEs (e.g. 3x3 or 5x5)
//! and any interconnect structure." (Section III-C.)
//!
//! The SensorAccess module attaches to one edge of the array, so sensor and
//! actuator operations must be bound to I/O-capable PEs (first column by
//! default) — the realistic placement constraint the scheduler has to work
//! around.

use serde::{Deserialize, Serialize};

/// Interconnect topology between neighbouring PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// 4-neighbour mesh (N, E, S, W).
    Mesh,
    /// 8-neighbour mesh (adds diagonals).
    MeshDiagonal,
    /// 4-neighbour mesh with wrap-around links.
    Torus,
}

/// A PE index (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PeId(pub u16);

/// Grid configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridConfig {
    /// Number of rows.
    pub rows: u16,
    /// Number of columns.
    pub cols: u16,
    /// Interconnect structure.
    pub topology: Topology,
    /// Number of I/O-capable columns starting at column 0 (the side the
    /// SensorAccess module is attached to).
    pub io_columns: u16,
}

impl GridConfig {
    /// A `rows × cols` mesh with one I/O column.
    pub fn mesh(rows: u16, cols: u16) -> Self {
        assert!(rows >= 1 && cols >= 1);
        Self {
            rows,
            cols,
            topology: Topology::Mesh,
            io_columns: 1,
        }
    }

    /// The paper's example sizes.
    pub fn mesh_3x3() -> Self {
        Self::mesh(3, 3)
    }

    /// 5×5 mesh — the size used for the schedule-length experiments here.
    pub fn mesh_5x5() -> Self {
        Self::mesh(5, 5)
    }

    /// Total PE count.
    pub fn pe_count(&self) -> usize {
        usize::from(self.rows) * usize::from(self.cols)
    }

    /// Row/column of a PE.
    pub fn coords(&self, pe: PeId) -> (u16, u16) {
        let idx = pe.0;
        assert!((idx as usize) < self.pe_count());
        (idx / self.cols, idx % self.cols)
    }

    /// PE at row/column.
    pub fn pe_at(&self, row: u16, col: u16) -> PeId {
        assert!(row < self.rows && col < self.cols);
        PeId(row * self.cols + col)
    }

    /// True if the PE may host sensor/actuator operations.
    pub fn is_io_capable(&self, pe: PeId) -> bool {
        let (_, c) = self.coords(pe);
        c < self.io_columns
    }

    /// Routing distance in interconnect hops between two PEs. Operands need
    /// `hops` extra cycles to travel (one register stage per hop).
    pub fn distance(&self, a: PeId, b: PeId) -> u32 {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        let dr = i32::from(ra) - i32::from(rb);
        let dc = i32::from(ca) - i32::from(cb);
        match self.topology {
            Topology::Mesh => dr.unsigned_abs() + dc.unsigned_abs(),
            Topology::MeshDiagonal => dr.unsigned_abs().max(dc.unsigned_abs()),
            Topology::Torus => {
                let wr = dr
                    .unsigned_abs()
                    .min(u32::from(self.rows) - dr.unsigned_abs());
                let wc = dc
                    .unsigned_abs()
                    .min(u32::from(self.cols) - dc.unsigned_abs());
                wr + wc
            }
        }
    }

    /// All PEs.
    pub fn pes(&self) -> impl Iterator<Item = PeId> {
        (0..self.pe_count() as u16).map(PeId)
    }

    /// All I/O-capable PEs.
    pub fn io_pes(&self) -> Vec<PeId> {
        self.pes().filter(|&p| self.is_io_capable(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizes() {
        assert_eq!(GridConfig::mesh_3x3().pe_count(), 9);
        assert_eq!(GridConfig::mesh_5x5().pe_count(), 25);
    }

    #[test]
    fn coords_roundtrip() {
        let g = GridConfig::mesh(3, 4);
        for pe in g.pes() {
            let (r, c) = g.coords(pe);
            assert_eq!(g.pe_at(r, c), pe);
        }
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let g = GridConfig::mesh_5x5();
        let a = g.pe_at(0, 0);
        let b = g.pe_at(2, 3);
        assert_eq!(g.distance(a, b), 5);
        assert_eq!(g.distance(a, a), 0);
        assert_eq!(g.distance(b, a), g.distance(a, b));
    }

    #[test]
    fn diagonal_distance_is_chebyshev() {
        let g = GridConfig {
            topology: Topology::MeshDiagonal,
            ..GridConfig::mesh_5x5()
        };
        let a = g.pe_at(0, 0);
        let b = g.pe_at(2, 3);
        assert_eq!(g.distance(a, b), 3);
    }

    #[test]
    fn torus_wraps_around() {
        let g = GridConfig {
            topology: Topology::Torus,
            ..GridConfig::mesh_5x5()
        };
        let a = g.pe_at(0, 0);
        let b = g.pe_at(0, 4);
        assert_eq!(g.distance(a, b), 1, "wrap link");
        assert_eq!(g.distance(g.pe_at(4, 0), a), 1);
    }

    #[test]
    fn io_column_is_first() {
        let g = GridConfig::mesh_3x3();
        assert!(g.is_io_capable(g.pe_at(0, 0)));
        assert!(g.is_io_capable(g.pe_at(2, 0)));
        assert!(!g.is_io_capable(g.pe_at(0, 1)));
        assert_eq!(g.io_pes().len(), 3);
    }

    #[test]
    fn triangle_inequality_on_mesh() {
        let g = GridConfig::mesh(4, 4);
        for a in g.pes() {
            for b in g.pes() {
                for c in g.pes() {
                    assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
                }
            }
        }
    }
}
