//! # cil-cgra — Coarse-Grained Reconfigurable Architecture overlay simulator
//!
//! A from-scratch implementation of the CGRA environment of Section III-C:
//!
//! * [`isa`] — the processing-element operator set (floating point + square
//!   root, as used by the beam model) with per-operator latencies;
//! * [`dfg`] — the SCAR-style control/data-flow graph the C frontend emits;
//! * [`frontend`] — a C-subset parser ("Programming of the CGRA is done
//!   using the C programming language");
//! * [`grid`] — the PE array with configurable size (3×3, 5×5, …) and
//!   interconnect topology;
//! * [`sched`] — the customised resource-constrained list scheduler,
//!   including the paper's factor-2 loop pipelining transform;
//! * [`context`] — per-PE context memories, the artifact that is swapped
//!   into the bitstream without re-synthesis ("model changes are available
//!   on the experimental setup in seconds");
//! * [`exec`] — a cycle-accurate executor that replays context memories
//!   against a [`exec::SensorBus`], differentially testable against direct
//!   DFG interpretation;
//! * [`plan`] — the compile-time lowering of a `(Dfg, Schedule)` pair into
//!   a flat, pre-decoded micro-op plan the executor replays allocation-free;
//! * [`kernels`] — the beam-model kernel of Section IV for 1/4/8 bunches,
//!   pipelined and sequential, reproducing the schedule-length table;
//! * [`cache`] — memoised kernel compilation: schedules are compiled once
//!   per configuration and shared (`Arc`) across executors and threads.

pub mod cache;
pub mod context;
pub mod dfg;
pub mod exec;
pub mod frontend;
pub mod grid;
pub mod isa;
pub mod kernels;
pub mod optimize;
pub mod plan;
pub mod report;
pub mod route;
pub mod sched;

pub use cache::{CompiledKernel, CompiledKernelCache, KernelKey};
pub use dfg::{Dfg, NodeId};
pub use exec::{CgraExecutor, ExecError, ExecutorState, SensorBus};
pub use grid::{GridConfig, Topology};
pub use isa::OpKind;
pub use plan::{MicroOp, MicroOpPlan, PlanError, StreamStats};
pub use sched::{ListScheduler, Schedule};
