//! Human-readable schedule reports: per-PE Gantt charts and occupancy
//! summaries — the "what did the scheduler do" artifact an engineer
//! iterating on the kernel actually reads.

use crate::dfg::Dfg;
use crate::isa::OpKind;
use crate::sched::Schedule;
use std::fmt::Write as _;

/// A one-character mnemonic per op for the Gantt rendering.
fn glyph(op: &OpKind) -> char {
    match op {
        OpKind::Const(_) => 'c',
        OpKind::Input(_) => 'i',
        OpKind::Output(_) => 'o',
        OpKind::Add => '+',
        OpKind::Sub => '-',
        OpKind::Mul => '*',
        OpKind::Div => '/',
        OpKind::Sqrt => 'q',
        OpKind::Neg => 'n',
        OpKind::Abs => 'a',
        OpKind::Floor => 'f',
        OpKind::Min | OpKind::Max => 'm',
        OpKind::CmpLt | OpKind::CmpLe => '<',
        OpKind::Select => '?',
        OpKind::SensorRead(_) => 'R',
        OpKind::ActuatorWrite(_) => 'W',
        OpKind::RegRead(_) => 'r',
        OpKind::RegWrite(_) => 'w',
        OpKind::Pass => '.',
    }
}

/// Render an ASCII Gantt chart: one row per PE, one column per cycle;
/// the issue cycle shows the op glyph, the remaining latency shows `=`.
/// Wide schedules are windowed to the first `max_cols` cycles.
pub fn gantt(dfg: &Dfg, schedule: &Schedule, max_cols: usize) -> String {
    let cols = (schedule.makespan as usize).min(max_cols);
    let pes = schedule.grid.pe_count();
    let mut rows = vec![vec![' '; cols]; pes];
    for (id, node) in dfg.nodes() {
        let p = schedule.placement(id);
        let row = &mut rows[p.pe.0 as usize];
        let start = p.start as usize;
        if start < cols {
            let end = (p.finish as usize).min(cols);
            for cell in &mut row[start..end] {
                if *cell == ' ' {
                    *cell = '=';
                }
            }
            row[start] = glyph(&node.op);
        }
    }
    let mut out = String::new();
    writeln!(
        out,
        "schedule: {} ticks on {}x{} grid ({} nodes){}",
        schedule.makespan,
        schedule.grid.rows,
        schedule.grid.cols,
        dfg.len(),
        if (schedule.makespan as usize) > cols {
            " [windowed]"
        } else {
            ""
        }
    )
    .unwrap();
    // Cycle ruler every 10.
    let mut ruler = String::from("      ");
    for t in 0..cols {
        ruler.push(if t % 10 == 0 { '|' } else { ' ' });
    }
    out.push_str(&ruler);
    out.push('\n');
    for (i, row) in rows.iter().enumerate() {
        let s: String = row.iter().collect();
        writeln!(out, "PE{i:<3} {s}").unwrap();
    }
    out
}

/// Per-PE occupancy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PeStats {
    /// PE index.
    pub pe: usize,
    /// Ops issued on this PE.
    pub ops: usize,
    /// Fraction of cycles with an issue.
    pub issue_occupancy: f64,
}

/// Compute per-PE statistics.
pub fn pe_stats(dfg: &Dfg, schedule: &Schedule) -> Vec<PeStats> {
    let mut counts = vec![0usize; schedule.grid.pe_count()];
    for (id, _) in dfg.nodes() {
        counts[schedule.placement(id).pe.0 as usize] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(pe, ops)| PeStats {
            pe,
            ops,
            issue_occupancy: ops as f64 / schedule.makespan.max(1) as f64,
        })
        .collect()
}

/// A compact text summary: makespan, critical path, bound gap, busiest PE.
pub fn summary(dfg: &Dfg, schedule: &Schedule) -> String {
    let (_, cp) = dfg.critical_path();
    let stats = pe_stats(dfg, schedule);
    let busiest = stats.iter().max_by_key(|s| s.ops).expect("at least one PE");
    format!(
        "{} nodes, critical path {} ticks, scheduled {} ticks ({:+.0}% over bound), busiest PE{} issues {} ops ({:.0}% of cycles)",
        dfg.len(),
        cp,
        schedule.makespan,
        (schedule.makespan as f64 / cp as f64 - 1.0) * 100.0,
        busiest.pe,
        busiest.ops,
        busiest.issue_occupancy * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use crate::sched::ListScheduler;

    fn sample() -> (Dfg, Schedule) {
        let mut g = Dfg::new();
        let zero = g.konst(0.0);
        let s = g.add(OpKind::SensorRead(0), &[zero]);
        let r = g.add(OpKind::Sqrt, &[s]);
        let two = g.konst(2.0);
        let m = g.add(OpKind::Mul, &[r, two]);
        g.add(OpKind::ActuatorWrite(0), &[m]);
        let sched = ListScheduler::new(GridConfig::mesh_3x3()).schedule(&g);
        (g, sched)
    }

    #[test]
    fn gantt_has_one_row_per_pe_plus_header() {
        let (g, s) = sample();
        let chart = gantt(&g, &s, 200);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2 + 9, "header + ruler + 9 PEs");
        assert!(lines[0].contains("ticks"));
        // The sqrt glyph appears exactly once.
        assert_eq!(chart.matches('q').count(), 1);
        // Issue glyphs for every node appear somewhere.
        assert_eq!(chart.matches('R').count(), 1);
        assert_eq!(chart.matches('W').count(), 1);
        assert_eq!(chart.matches('*').count(), 1);
    }

    #[test]
    fn gantt_windowing() {
        let (g, s) = sample();
        let chart = gantt(&g, &s, 5);
        assert!(chart.contains("[windowed]"));
        let pe_line_len = chart.lines().nth(2).unwrap().len();
        assert!(pe_line_len <= 5 + 6, "rows clipped to window");
    }

    #[test]
    fn stats_account_for_all_ops() {
        let (g, s) = sample();
        let stats = pe_stats(&g, &s);
        let total: usize = stats.iter().map(|x| x.ops).sum();
        assert_eq!(total, g.len());
        for st in &stats {
            assert!(st.issue_occupancy <= 1.0);
        }
    }

    #[test]
    fn summary_mentions_bound_gap() {
        let (g, s) = sample();
        let txt = summary(&g, &s);
        assert!(txt.contains("critical path"));
        assert!(txt.contains("busiest"));
    }
}
