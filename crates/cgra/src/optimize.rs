//! DFG optimisation passes — the middle-end between the C parser and the
//! scheduler.
//!
//! The generated beam kernel contains plenty of redundancy a C programmer
//! would not hand-optimise (repeated `1-frac` terms, shared scale constants
//! per bunch, …). Three classic passes clean it up before scheduling:
//!
//! * **constant folding** — pure ops over constant operands;
//! * **common-subexpression elimination** — pure ops with identical
//!   operands, *within the same pipeline stage* (merging across stages
//!   would re-introduce the cross-stage edges `pipeline_split` removes);
//! * **dead-code elimination** — anything not reachable from a
//!   side-effecting node.
//!
//! Sensor reads are treated as volatile (never folded or merged): the
//! SensorAccess module may be timing-sensitive. Register reads of the same
//! register are pure within one iteration and are merged per stage.

use crate::dfg::{Dfg, NodeId};
use crate::isa::OpKind;
use std::collections::HashMap;

/// Statistics of one optimisation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Nodes in the input graph.
    pub nodes_before: usize,
    /// Nodes in the output graph.
    pub nodes_after: usize,
    /// Pure ops replaced by constants.
    pub folded: usize,
    /// Nodes merged into an existing equivalent node.
    pub cse_merged: usize,
    /// Dead nodes removed.
    pub dead_removed: usize,
}

/// Key identifying a mergeable computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CseKey {
    Const(u64, u8),
    RegRead(u16, u8),
    Pure(&'static str, Vec<NodeId>, u8),
}

fn pure_name(op: &OpKind) -> Option<&'static str> {
    Some(match op {
        OpKind::Add => "add",
        OpKind::Sub => "sub",
        OpKind::Mul => "mul",
        OpKind::Div => "div",
        OpKind::Sqrt => "sqrt",
        OpKind::Neg => "neg",
        OpKind::Abs => "abs",
        OpKind::Floor => "floor",
        OpKind::Min => "min",
        OpKind::Max => "max",
        OpKind::CmpLt => "cmplt",
        OpKind::CmpLe => "cmple",
        OpKind::Select => "select",
        OpKind::Pass => "pass",
        _ => return None,
    })
}

/// Run fold + CSE + DCE; returns the optimised graph and statistics.
pub fn optimize(dfg: &Dfg) -> (Dfg, OptStats) {
    let mut stats = OptStats {
        nodes_before: dfg.len(),
        ..Default::default()
    };

    // ---- pass 1: forward rewrite with folding + CSE --------------------
    // map[i] = id in the new graph representing old node i.
    let mut out = Dfg::new();
    // Preserve the register space.
    for _ in 0..dfg.reg_count() {
        out.alloc_reg();
    }
    let mut map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let mut cse: HashMap<CseKey, NodeId> = HashMap::new();
    // Known constant value of a new-graph node (for folding).
    let mut const_of: HashMap<NodeId, f64> = HashMap::new();

    for (_, node) in dfg.nodes() {
        let ops: Vec<NodeId> = node.operands.iter().map(|&o| map[o.0 as usize]).collect();
        let stage = node.stage;

        // Try folding: pure op, all operands constant.
        let folded = pure_name(&node.op).and_then(|_| {
            let args: Option<Vec<f64>> = ops.iter().map(|o| const_of.get(o).copied()).collect();
            let args = args?;
            node.op.eval_pure(&args)
        });
        if let Some(v) = folded {
            if !matches!(node.op, OpKind::Const(_)) {
                stats.folded += 1;
            }
            let key = CseKey::Const(v.to_bits(), stage);
            let id = match cse.get(&key) {
                Some(&id) => {
                    stats.cse_merged += 1;
                    id
                }
                None => {
                    let id = out.add_staged(OpKind::Const(v), &[], stage);
                    cse.insert(key, id);
                    const_of.insert(id, v);
                    id
                }
            };
            map.push(id);
            continue;
        }

        // CSE for constants, register reads and pure ops.
        let key = match node.op {
            OpKind::Const(c) => Some(CseKey::Const(c.to_bits(), stage)),
            OpKind::RegRead(r) => Some(CseKey::RegRead(r, stage)),
            ref op => pure_name(op).map(|n| CseKey::Pure(n, ops.clone(), stage)),
        };
        if let Some(key) = key {
            if let Some(&existing) = cse.get(&key) {
                stats.cse_merged += 1;
                map.push(existing);
                continue;
            }
            let id = out.add_staged(node.op, &ops, stage);
            if let OpKind::Const(c) = node.op {
                const_of.insert(id, c);
            }
            cse.insert(key, id);
            map.push(id);
            continue;
        }

        // Side-effecting / volatile ops pass through untouched.
        let id = out.add_staged(node.op, &ops, stage);
        map.push(id);
    }

    // ---- pass 2: DCE ----------------------------------------------------
    let mut live = vec![false; out.len()];
    for (id, node) in out.nodes() {
        if node.op.has_side_effect() {
            live[id.0 as usize] = true;
        }
    }
    // Propagate liveness backwards (operands precede users).
    for i in (0..out.len()).rev() {
        if live[i] {
            for &o in &out.node(NodeId(i as u32)).operands {
                live[o.0 as usize] = true;
            }
        }
    }
    let mut final_dfg = Dfg::new();
    for _ in 0..out.reg_count() {
        final_dfg.alloc_reg();
    }
    let mut remap: Vec<Option<NodeId>> = vec![None; out.len()];
    for (id, node) in out.nodes() {
        if !live[id.0 as usize] {
            stats.dead_removed += 1;
            continue;
        }
        let ops: Vec<NodeId> = node
            .operands
            .iter()
            .map(|&o| remap[o.0 as usize].expect("live operand"))
            .collect();
        remap[id.0 as usize] = Some(final_dfg.add_staged(node.op, &ops, node.stage));
    }

    stats.nodes_after = final_dfg.len();
    (final_dfg, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{interpret_dfg, MapBus};
    use crate::frontend::compile;
    use crate::kernels::{build_beam_kernel, KernelParams};

    #[test]
    fn folds_constant_arithmetic() {
        let k = compile("for (;;) { output(0, (2.0f + 3.0f) * 4.0f); }").unwrap();
        let (opt, stats) = optimize(&k.dfg);
        assert!(stats.folded >= 2);
        // Down to one const + one output.
        assert_eq!(opt.len(), 2);
        let out = interpret_dfg(&opt, &mut [], &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, 20.0)]);
    }

    #[test]
    fn merges_common_subexpressions() {
        let k = compile(
            "static float s = 3.0f;\n\
             for (;;) { output(0, s * s + s * s); }",
        )
        .unwrap();
        let (opt, stats) = optimize(&k.dfg);
        assert!(stats.cse_merged >= 1, "s*s computed once");
        let mut regs = vec![3.0];
        let out = interpret_dfg(&opt, &mut regs, &mut MapBus::default(), &[]);
        assert_eq!(out, vec![(0, 18.0)]);
    }

    #[test]
    fn removes_dead_code() {
        let k = compile(
            "for (;;) { float dead = sqrtf(2.0f); float live = 1.0f; write_actuator(0, live); }",
        )
        .unwrap();
        let (opt, stats) = optimize(&k.dfg);
        assert!(stats.dead_removed >= 1);
        assert!(!opt.nodes().any(|(_, n)| matches!(n.op, OpKind::Sqrt)));
    }

    #[test]
    fn sensor_reads_are_volatile() {
        // Two reads of the same port+address must both survive.
        let k = compile("for (;;) { output(0, read_sensor(0, 1.0f) + read_sensor(0, 1.0f)); }")
            .unwrap();
        let (opt, _) = optimize(&k.dfg);
        let reads = opt
            .nodes()
            .filter(|(_, n)| matches!(n.op, OpKind::SensorRead(_)))
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn cse_respects_pipeline_stages() {
        // The same expression in both stages must stay duplicated, so the
        // stage split introduces no new cross-stage edges.
        let k = compile(
            "static float s = 2.0f;\n\
             for (;;) {\n\
               float a = s * s;\n\
               write_actuator(0, a);\n\
               pipeline_stage();\n\
               float b = s * s;\n\
               s = b * 0.5f;\n\
             }",
        )
        .unwrap();
        let (opt, _) = optimize(&k.dfg);
        for (_, n) in opt.nodes() {
            if n.stage == 1 {
                for &o in &n.operands {
                    assert_eq!(opt.node(o).stage, 1, "no cross-stage edges introduced");
                }
            }
        }
    }

    #[test]
    fn beam_kernel_shrinks_and_stays_correct() {
        let params = KernelParams::mde_default();
        let bk = build_beam_kernel(&params, 4, false);
        let (opt, stats) = optimize(&bk.kernel.dfg);
        assert!(
            stats.nodes_after < stats.nodes_before,
            "{} -> {}",
            stats.nodes_before,
            stats.nodes_after
        );

        // Differential check over several iterations with register state.
        let mut regs_a = vec![0.0; bk.kernel.dfg.reg_count() as usize];
        let mut regs_b = vec![0.0; opt.reg_count() as usize];
        for &(r, v) in &bk.kernel.reg_inits {
            regs_a[r as usize] = v;
            regs_b[r as usize] = v;
        }
        for i in 0..5 {
            let mut bus_a = MapBus::default();
            bus_a.set_sensor(0, 1.25e-6);
            bus_a.set_sensor(1, 0.01 * f64::from(i));
            bus_a.set_sensor(2, 0.02);
            let mut bus_b = bus_a.clone();
            interpret_dfg(&bk.kernel.dfg, &mut regs_a, &mut bus_a, &[]);
            interpret_dfg(&opt, &mut regs_b, &mut bus_b, &[]);
            assert_eq!(bus_a.writes, bus_b.writes, "iteration {i}");
        }
        assert_eq!(regs_a[..], regs_b[..bk.kernel.dfg.reg_count() as usize]);
    }

    #[test]
    fn optimized_kernel_schedules_no_longer() {
        use crate::grid::GridConfig;
        use crate::sched::ListScheduler;
        let params = KernelParams::mde_default();
        let bk = build_beam_kernel(&params, 8, true);
        let (opt, _) = optimize(&bk.kernel.dfg);
        let sched = ListScheduler::new(GridConfig::mesh_5x5());
        let before = sched.schedule(&bk.kernel.dfg);
        let after = sched.schedule(&opt);
        after.validate(&opt).unwrap();
        assert!(
            after.makespan <= before.makespan,
            "optimisation must not lengthen the schedule: {} -> {}",
            before.makespan,
            after.makespan
        );
    }

    #[test]
    fn idempotent() {
        let params = KernelParams::mde_default();
        let bk = build_beam_kernel(&params, 2, true);
        let (once, _) = optimize(&bk.kernel.dfg);
        let (twice, stats) = optimize(&once);
        assert_eq!(once.len(), twice.len());
        assert_eq!(stats.folded, 0);
        assert_eq!(stats.dead_removed, 0);
    }
}
